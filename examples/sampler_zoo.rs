//! Sampler zoo: the four mini-batch samplers side by side on one dataset —
//! their subgraph sizes, workload, and end-to-end accuracy after a short
//! auto-tuned training run. Neighbor and ShaDow are the paper's evaluation
//! pair; GraphSAINT-RW and Cluster-GCN are the other families it cites.
//!
//! Run with: `cargo run --release --example sampler_zoo`

use std::sync::Arc;

use argo::core::{Argo, ArgoOptions};
use argo::engine::{evaluate_accuracy, Engine, EngineOptions};
use argo::graph::datasets::FLICKR;
use argo::nn::Arch;
use argo::sample::{ClusterGcnSampler, NeighborSampler, SaintRwSampler, Sampler, ShadowSampler};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let dataset = Arc::new(FLICKR.synthesize(0.02, 17));
    println!(
        "dataset: synthetic Flickr at 2% scale — {} nodes, {} edges, {} classes\n",
        dataset.graph.num_nodes(),
        dataset.graph.num_edges(),
        dataset.num_classes
    );
    let samplers: Vec<(&str, Arc<dyn Sampler>)> = vec![
        (
            "Neighbor [10,5]",
            Arc::new(NeighborSampler::new(vec![10, 5])),
        ),
        (
            "ShaDow [10,5]",
            Arc::new(ShadowSampler::new(vec![10, 5], 2)),
        ),
        ("SAINT-RW (len 3)", Arc::new(SaintRwSampler::new(3, 2))),
        (
            "ClusterGCN (32 cl.)",
            Arc::new(ClusterGcnSampler::new(&dataset.graph, 32, 2)),
        ),
    ];
    println!(
        "{:<20} {:>12} {:>12} {:>10} {:>10}",
        "sampler", "edges/batch", "inputs/batch", "val acc", "time (s)"
    );
    for (name, sampler) in samplers {
        // Workload of a representative batch of 128 seeds.
        let seeds: Vec<u32> = dataset.train_nodes.iter().copied().take(128).collect();
        let batch = sampler.sample(&dataset.graph, &seeds, &mut SmallRng::seed_from_u64(1));
        let edges = batch.total_edges(2);
        let inputs = batch.input_nodes().len();
        // Short auto-tuned training run.
        let mut engine = Engine::new(
            Arc::clone(&dataset),
            Arc::clone(&sampler),
            EngineOptions {
                kind: Arch::Sage,
                hidden: 32,
                num_layers: 2,
                global_batch: 256,
                lr: 5e-3,
                seed: 2,
                ..Default::default()
            },
        );
        let mut runtime = Argo::new(ArgoOptions {
            n_search: 3,
            epochs: 10,
            ..Default::default()
        });
        let report = runtime.train(&mut engine, None, |_, _, _| {});
        let acc = evaluate_accuracy(&engine.model(), &dataset, &dataset.val_nodes);
        println!(
            "{:<20} {:>12} {:>12} {:>10.3} {:>10.2}",
            name, edges, inputs, acc, report.total_time
        );
        assert!(acc > 0.5, "{name} failed to learn");
    }
    println!("\nAll sampling families train through the same ARGO runtime; their different");
    println!("subgraph shapes are exactly why the auto-tuner must learn a per-setup model");
    println!("(paper Section V-B).");
}
