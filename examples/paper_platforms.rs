//! Paper-scale study on the modeled platforms: auto-tune DGL Neighbor-SAGE
//! on ogbn-products for the 112-core Ice Lake and the 64-core Sapphire
//! Rapids (Table II), and compare the auto-tuner's pick against the default
//! setup and the exhaustive optimum — a one-binary tour of Tables IV/VI.
//!
//! Run with: `cargo run --release --example paper_platforms`

use argo::core::{Argo, ArgoOptions};
use argo::graph::datasets::OGBN_PRODUCTS;
use argo::platform::{
    Library, ModelKind, PerfModel, SamplerKind, Setup, ICE_LAKE_8380H, SAPPHIRE_RAPIDS_6430L,
};
use argo::tune::paper_num_searches;

fn main() {
    for platform in [ICE_LAKE_8380H, SAPPHIRE_RAPIDS_6430L] {
        let model = PerfModel::new(Setup {
            platform,
            library: Library::Dgl,
            sampler: SamplerKind::Neighbor,
            model: ModelKind::Sage,
            dataset: OGBN_PRODUCTS,
        });
        println!(
            "=== {} ({} cores, {} GB/s) ===",
            platform.name, platform.total_cores, platform.peak_bw_gbs
        );
        let n_search = paper_num_searches(platform.total_cores, false);
        let mut runtime = Argo::new(ArgoOptions {
            n_search,
            epochs: 200,
            total_cores: platform.total_cores,
            seed: 0,
        });
        let report = runtime.run_modeled(&model, None);
        println!(
            "online learning ({n_search} searches over {} configs):",
            report.space_size
        );
        let mut incumbent = f64::INFINITY;
        for (i, (c, t)) in report.history.iter().enumerate() {
            incumbent = incumbent.min(*t);
            println!("  search {i:>2}: tried {c} -> {t:.2}s (incumbent {incumbent:.2}s)");
        }
        let (opt_cfg, opt_t) = model.argo_best_epoch_time(platform.total_cores);
        let default_t = model.epoch_time(model.default_config());
        println!("\n  exhaustive optimum : {opt_t:.2}s at {opt_cfg}");
        println!(
            "  default setup      : {default_t:.2}s at {} ({:.2}x of optimal)",
            model.default_config(),
            opt_t / default_t
        );
        println!(
            "  auto-tuner found   : {:.2}s at {} ({:.2}x of optimal, {:.1}% of space explored)\n",
            report.best_epoch_time,
            report.config_opt,
            opt_t / report.best_epoch_time,
            100.0 * n_search as f64 / report.space_size as f64
        );
        assert!(opt_t / report.best_epoch_time >= 0.9);
    }
}
