//! Bringing your own graph: build a [`argo::graph::Graph`] from raw edges,
//! attach features and labels, and train a GCN with the ShaDow sampler under
//! ARGO — the workflow a downstream user of this library would follow.
//!
//! Run with: `cargo run --release --example custom_dataset`

use std::sync::Arc;

use argo::core::{Argo, ArgoOptions};
use argo::engine::{evaluate_accuracy, Engine, EngineOptions};
use argo::graph::datasets::{Dataset, DatasetSpec};
use argo::graph::features::Features;
use argo::graph::Graph;
use argo::nn::Arch;
use argo::sample::ShadowSampler;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A toy "citation network": `k` topical clusters in a ring, papers cite
/// mostly within their topic, features are noisy topic indicators.
fn build_citation_graph(n: usize, k: usize, seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for paper in 0..n as u32 {
        let topic = paper as usize % k;
        let cites = rng.gen_range(3..10);
        for _ in 0..cites {
            // 80% within topic, 20% to a neighboring topic in the ring.
            let target_topic = if rng.gen_bool(0.8) {
                topic
            } else {
                (topic + if rng.gen_bool(0.5) { 1 } else { k - 1 }) % k
            };
            // Pick a random paper of that topic.
            let m = n / k;
            let idx = rng.gen_range(0..m) * k + target_topic;
            if idx as u32 != paper {
                edges.push((paper, idx as u32));
            }
        }
    }
    let graph = Graph::from_edges(n, &edges, true);
    let dim = 24;
    let mut feats = vec![0.0f32; n * dim];
    let mut labels = vec![0u32; n];
    for paper in 0..n {
        let topic = paper % k;
        labels[paper] = topic as u32;
        for d in 0..dim {
            let base = if d % k == topic { 1.0 } else { 0.0 };
            feats[paper * dim + d] = base + rng.gen_range(-0.4..0.4);
        }
    }
    let train: Vec<u32> = (0..n as u32).filter(|v| v % 3 == 0).collect();
    let val: Vec<u32> = (0..n as u32).filter(|v| v % 3 == 1).collect();
    Dataset {
        spec: DatasetSpec {
            name: "toy-citations",
            num_nodes: n,
            num_edges: graph.num_edges(),
            f0: dim,
            f1: 32,
            f2: k,
        },
        graph,
        features: Features::new(feats, dim),
        labels,
        train_nodes: train,
        val_nodes: val,
        num_classes: k,
    }
}

fn main() {
    let dataset = Arc::new(build_citation_graph(6000, 5, 99));
    println!(
        "custom dataset: {} nodes, {} directed edges, {} topics",
        dataset.graph.num_nodes(),
        dataset.graph.num_edges(),
        dataset.num_classes
    );

    // GCN + ShaDow sampling — the paper's second task family.
    let sampler: Arc<dyn argo::sample::Sampler> = Arc::new(ShadowSampler::new(vec![8, 4], 2));
    let mut engine = Engine::new(
        Arc::clone(&dataset),
        sampler,
        EngineOptions {
            kind: Arch::Gcn,
            hidden: 32,
            num_layers: 2,
            global_batch: 256,
            lr: 5e-3,
            seed: 1,
            ..Default::default()
        },
    );
    let before = evaluate_accuracy(&engine.model(), &dataset, &dataset.val_nodes);
    let mut runtime = Argo::new(ArgoOptions {
        n_search: 5,
        epochs: 15,
        ..Default::default()
    });
    let report = runtime.train(&mut engine, None, |epoch, config, stats| {
        if epoch % 3 == 0 {
            println!(
                "epoch {epoch:>2} {config}: loss {:.4} ({} iterations)",
                stats.loss, stats.iterations
            );
        }
    });
    let after = evaluate_accuracy(&engine.model(), &dataset, &dataset.val_nodes);
    println!(
        "\nARGO picked {} out of {} configurations",
        report.config_opt, report.space_size
    );
    println!("validation accuracy: {before:.3} -> {after:.3}");
    assert!(after > before + 0.2, "GCN should learn the topics");
}
