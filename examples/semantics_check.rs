//! Semantics preservation (paper Section IV-B2 and Figure 9): training with
//! ARGO's Multi-Process Engine under n processes and per-process batch b/n
//! is algorithmically equivalent to single-process training with batch b.
//!
//! This example shows it two ways:
//! 1. *exactly* — with deterministic sampling (fanout ≥ max degree) and SGD,
//!    the parameters after one epoch agree to float tolerance;
//! 2. *statistically* — full convergence curves for 1/2/4 processes overlap.
//!
//! Run with: `cargo run --release --example semantics_check`

use std::sync::Arc;

use argo::engine::{evaluate_accuracy, Engine, EngineOptions};
use argo::graph::datasets::OGBN_PRODUCTS;
use argo::nn::OptimizerKind;
use argo::rt::Config;
use argo::sample::NeighborSampler;

fn main() {
    let mut raw = (*Arc::new(OGBN_PRODUCTS.synthesize(0.002, 5))).clone();
    if !raw.train_nodes.len().is_multiple_of(4) {
        let drop = raw.train_nodes.len() % 4;
        raw.train_nodes.truncate(raw.train_nodes.len() - drop);
    }
    let dataset = Arc::new(raw);
    println!(
        "synthetic ogbn-products at 0.2% scale: {} nodes, {} train targets\n",
        dataset.graph.num_nodes(),
        dataset.train_nodes.len()
    );

    // --- Part 1: exact gradient equivalence ---------------------------------
    println!("Part 1: exact equivalence of one full-batch epoch (SGD, full fanout)");
    let max_deg = dataset.graph.max_degree();
    let opts = EngineOptions {
        hidden: 16,
        num_layers: 2,
        global_batch: dataset.train_nodes.len(),
        optimizer: OptimizerKind::Sgd { momentum: 0.0 },
        lr: 0.05,
        seed: 11,
        total_cores: 8,
        ..Default::default()
    };
    let mut params: Vec<Vec<f32>> = Vec::new();
    for n_proc in [1usize, 2, 4] {
        let sampler: Arc<dyn argo::sample::Sampler> =
            Arc::new(NeighborSampler::new(vec![max_deg, max_deg]));
        let mut engine = Engine::new(Arc::clone(&dataset), sampler, opts.clone());
        engine.train_epoch(Config::new(n_proc, 1, 1), None);
        params.push(engine.params().to_vec());
    }
    for (i, n) in [2usize, 4].iter().enumerate() {
        let diff = params[0]
            .iter()
            .zip(&params[i + 1])
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        println!("  max |param(1 proc) - param({n} procs)| = {diff:.2e}");
        assert!(diff < 2e-3, "semantics broken for {n} processes");
    }

    // --- Part 2: convergence curves overlap ---------------------------------
    println!("\nPart 2: convergence curves (validation accuracy per epoch)");
    let epochs = 8;
    let mut curves = Vec::new();
    for n_proc in [1usize, 2, 4] {
        let sampler: Arc<dyn argo::sample::Sampler> = Arc::new(NeighborSampler::new(vec![10, 5]));
        let mut engine = Engine::new(
            Arc::clone(&dataset),
            sampler,
            EngineOptions {
                hidden: 32,
                num_layers: 2,
                global_batch: 256,
                lr: 5e-3,
                seed: 3,
                total_cores: 8,
                ..Default::default()
            },
        );
        let mut curve = Vec::new();
        for _ in 0..epochs {
            engine.train_epoch(Config::new(n_proc, 1, 1), None);
            curve.push(evaluate_accuracy(
                &engine.model(),
                &dataset,
                &dataset.val_nodes,
            ));
        }
        println!(
            "  ARGO:{n_proc}  {}",
            curve
                .iter()
                .map(|a| format!("{a:.3}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        curves.push(curve);
    }
    let final_gap = (curves[0][epochs - 1] - curves[2][epochs - 1]).abs();
    println!("\nfinal-accuracy gap between 1 and 4 processes: {final_gap:.4}");
    assert!(final_gap < 0.08, "convergence curves must overlap");
    println!("-> the effective batch size is preserved; ARGO does not alter training semantics.");
}
