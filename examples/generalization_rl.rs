//! Generalizability (paper Section VII-C): the auto-tuner is black-box
//! modeling with few parameters, so it transfers beyond GNN training. The
//! paper's example is parallel Reinforcement Learning on a CPU-GPU platform,
//! where the critical decision is how to split CPU cores among *Actors*
//! (environment rollouts) and streaming multiprocessors among *Learners*
//! (policy updates).
//!
//! This example builds a small analytic model of such a pipeline and tunes
//! the allocation with the same Gaussian-process + Expected-Improvement
//! machinery that tunes ARGO — no GNN anywhere in sight.
//!
//! Run with: `cargo run --release --example generalization_rl`

use argo::tune::acquisition::expected_improvement;
use argo::tune::gp::GaussianProcess;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Allocation: actor processes, CPU cores per actor, learner SMs.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Alloc {
    n_actors: usize,
    cores_per_actor: usize,
    learner_sms: usize,
}

const CPU_CORES: usize = 32;
const GPU_SMS: usize = 48;

fn space() -> Vec<Alloc> {
    let mut out = Vec::new();
    for n_actors in 1..=8 {
        for cores_per_actor in 1..=8 {
            if n_actors * cores_per_actor > CPU_CORES {
                continue;
            }
            for learner_sms in (4..=GPU_SMS).step_by(4) {
                out.push(Alloc {
                    n_actors,
                    cores_per_actor,
                    learner_sms,
                });
            }
        }
    }
    out
}

/// Modeled seconds per training iteration: actors generate experience
/// (CPU-bound, sub-linear in cores per actor), the learner consumes it
/// (GPU-bound in SMs); the pipeline runs at the slower of the two, plus a
/// transfer cost growing with the actor count.
fn iteration_time(a: Alloc) -> f64 {
    let rollout_work = 4.0; // cpu-seconds of environment stepping
    let actor_eff = 1.0 / ((1.0 - 0.85) + 0.85 / a.cores_per_actor as f64); // Amdahl
    let t_actors = rollout_work / (a.n_actors as f64 * actor_eff);
    let learn_work = 2.4; // sm-seconds of gradient updates
    let t_learner = learn_work / (a.learner_sms as f64).powf(0.8);
    let transfer = 0.015 * a.n_actors as f64;
    t_actors.max(t_learner) + transfer
}

fn normalize(a: &Alloc) -> [f64; 3] {
    [
        (a.n_actors as f64 - 1.0) / 7.0,
        (a.cores_per_actor as f64 - 1.0) / 7.0,
        (a.learner_sms as f64 - 4.0) / 44.0,
    ]
}

fn main() {
    let space = space();
    let optimal = space
        .iter()
        .map(|&a| iteration_time(a))
        .fold(f64::INFINITY, f64::min);
    println!(
        "CPU-GPU RL pipeline: {CPU_CORES} CPU cores, {GPU_SMS} SMs, {} allocations",
        space.len()
    );
    println!("exhaustive optimum: {optimal:.3}s per iteration\n");

    // Online BayesOpt, exactly as the ARGO auto-tuner works.
    let budget = 20;
    let mut rng = SmallRng::seed_from_u64(7);
    let mut x: Vec<[f64; 3]> = Vec::new();
    let mut y: Vec<f64> = Vec::new();
    let mut tried: Vec<usize> = Vec::new();
    for step in 0..budget {
        let i = if step < 4 {
            rng.gen_range(0..space.len())
        } else {
            let gp: GaussianProcess<3> = GaussianProcess::fit(&x, &y);
            let best = y.iter().copied().fold(f64::INFINITY, f64::min);
            let mut top = (f64::NEG_INFINITY, 0usize);
            for (i, a) in space.iter().enumerate() {
                if tried.contains(&i) {
                    continue;
                }
                let (mean, std) = gp.predict(&normalize(a));
                let ei = expected_improvement(mean, std, best, 0.01);
                if ei > top.0 {
                    top = (ei, i);
                }
            }
            top.1
        };
        tried.push(i);
        let a = space[i];
        let t = iteration_time(a);
        x.push(normalize(&a));
        y.push(t);
        println!(
            "search {step:>2}: {} actors x {} cores, {} SMs -> {:.3}s",
            a.n_actors, a.cores_per_actor, a.learner_sms, t
        );
    }
    let found = y.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "\nfound {:.3}s with {budget} evaluations ({:.1}% of the space) — {:.1}% of optimal",
        found,
        100.0 * budget as f64 / space.len() as f64,
        100.0 * optimal / found
    );
    assert!(optimal / found > 0.9);
    println!("The same online black-box tuner that allocates ARGO's sampling/training cores");
    println!("balances Actors against Learners — the paper's Section VII-C generalization.");
}
