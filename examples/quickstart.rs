//! Quickstart: enable ARGO on a GNN training job with a two-line wrapper
//! (paper Listing 1).
//!
//! Trains a 2-layer GraphSAGE with neighbor sampling on a synthetic
//! Flickr-like dataset; ARGO auto-tunes the (processes, sampling cores,
//! training cores) configuration online during the first epochs, then
//! reuses the best configuration it found.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use argo::core::{Argo, ArgoOptions};
use argo::engine::{evaluate_accuracy, Engine, EngineOptions};
use argo::graph::datasets::FLICKR;
use argo::sample::NeighborSampler;

fn main() {
    // A scaled-down synthetic stand-in for Flickr (planted-community labels
    // make it learnable end to end).
    let dataset = Arc::new(FLICKR.synthesize(0.05, 42));
    println!(
        "dataset: {} ({} nodes, {} edges, {} classes, {} train targets)",
        dataset.spec.name,
        dataset.graph.num_nodes(),
        dataset.graph.num_edges(),
        dataset.num_classes,
        dataset.train_nodes.len()
    );

    // The user-defined training setup — model, sampler, batch size — exactly
    // what a DGL/PyG script would configure.
    let sampler: Arc<dyn argo::sample::Sampler> = Arc::new(NeighborSampler::new(vec![10, 5]));
    let mut engine = Engine::new(
        Arc::clone(&dataset),
        sampler,
        EngineOptions {
            hidden: 64,
            num_layers: 2,
            global_batch: 512,
            lr: 3e-3,
            seed: 7,
            ..Default::default()
        },
    );
    let acc_before = evaluate_accuracy(&engine.model(), &dataset, &dataset.val_nodes);

    // Enabling ARGO: Listing 1's `runtime = ARGO(...); runtime.run(train)`.
    let mut runtime = Argo::new(ArgoOptions {
        n_search: 6,
        epochs: 20,
        ..Default::default()
    });
    let report = runtime.train(&mut engine, None, |epoch, config, stats| {
        println!(
            "epoch {epoch:>3} under {config}: {:.3}s, loss {:.4}, train acc {:.3}",
            stats.epoch_time, stats.loss, stats.train_accuracy
        );
    });

    let acc_after = evaluate_accuracy(&engine.model(), &dataset, &dataset.val_nodes);
    println!(
        "\nauto-tuner explored {} configurations out of {}",
        report.history.len(),
        report.space_size
    );
    println!("selected configuration: {}", report.config_opt);
    println!(
        "total training time: {:.2}s (auto-tuning overhead included)",
        report.total_time
    );
    println!("validation accuracy: {acc_before:.3} -> {acc_after:.3}");
    assert!(acc_after > acc_before, "training should improve accuracy");
}
