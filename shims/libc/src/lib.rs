//! Minimal stand-in for `libc`, used when the real crate cannot be fetched
//! (offline build environments). Declares the scheduler-affinity surface
//! this workspace uses directly against the system C library; the `CPU_*`
//! helpers mirror the glibc macros.

#![allow(non_camel_case_types, non_snake_case)]

pub type c_int = i32;
pub type pid_t = i32;
pub type size_t = usize;

const CPU_SETSIZE_BITS: usize = 1024;
const MASK_WORDS: usize = CPU_SETSIZE_BITS / 64;

/// Mirror of glibc's `cpu_set_t`: a 1024-bit CPU mask.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct cpu_set_t {
    bits: [u64; MASK_WORDS],
}

impl Default for cpu_set_t {
    fn default() -> Self {
        Self {
            bits: [0; MASK_WORDS],
        }
    }
}

/// Clears every CPU in `set` (glibc `CPU_ZERO`).
///
/// # Safety
/// Always safe: pure-Rust bit manipulation on a valid reference. `unsafe fn`
/// purely for signature parity with the real `libc` crate.
pub unsafe fn CPU_ZERO(set: &mut cpu_set_t) {
    set.bits = [0; MASK_WORDS];
}

/// Adds `cpu` to `set` (glibc `CPU_SET`). CPUs beyond the mask are ignored.
///
/// # Safety
/// Always safe: the core id is bounds-checked against the mask width.
/// `unsafe fn` purely for signature parity with the real `libc` crate.
pub unsafe fn CPU_SET(cpu: usize, set: &mut cpu_set_t) {
    if cpu < CPU_SETSIZE_BITS {
        set.bits[cpu / 64] |= 1u64 << (cpu % 64);
    }
}

/// Whether `cpu` is in `set` (glibc `CPU_ISSET`).
///
/// # Safety
/// Always safe: the core id is bounds-checked against the mask width.
/// `unsafe fn` purely for signature parity with the real `libc` crate.
pub unsafe fn CPU_ISSET(cpu: usize, set: &cpu_set_t) -> bool {
    cpu < CPU_SETSIZE_BITS && set.bits[cpu / 64] & (1u64 << (cpu % 64)) != 0
}

/// Number of CPUs in `set` (glibc `CPU_COUNT`).
///
/// # Safety
/// Always safe: pure-Rust bit counting on a valid reference. `unsafe fn`
/// purely for signature parity with the real `libc` crate.
pub unsafe fn CPU_COUNT(set: &cpu_set_t) -> c_int {
    set.bits.iter().map(|w| w.count_ones()).sum::<u32>() as c_int
}

#[cfg(target_os = "linux")]
extern "C" {
    pub fn sched_getaffinity(pid: pid_t, cpusetsize: size_t, mask: *mut cpu_set_t) -> c_int;
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, mask: *const cpu_set_t) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_count() {
        let mut set = cpu_set_t::default();
        // SAFETY: the CPU_* helpers are pure-Rust and bounds-checked; they
        // are `unsafe fn` only for parity with the real libc crate.
        unsafe {
            CPU_ZERO(&mut set);
            assert_eq!(CPU_COUNT(&set), 0);
            CPU_SET(0, &mut set);
            CPU_SET(63, &mut set);
            CPU_SET(64, &mut set);
            CPU_SET(1023, &mut set);
            CPU_SET(4096, &mut set); // out of range: ignored
            assert_eq!(CPU_COUNT(&set), 4);
            assert!(CPU_ISSET(63, &set));
            assert!(!CPU_ISSET(1, &set));
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn getaffinity_reports_at_least_one_cpu() {
        let mut set = cpu_set_t::default();
        // SAFETY: the kernel is given the exact size of `set` and writes
        // only within it; CPU_COUNT then reads the initialized mask.
        let rc = unsafe { sched_getaffinity(0, std::mem::size_of::<cpu_set_t>(), &mut set) };
        assert_eq!(rc, 0);
        // SAFETY: pure-Rust bit counting; unsafe only for libc parity.
        assert!(unsafe { CPU_COUNT(&set) } >= 1);
    }
}
