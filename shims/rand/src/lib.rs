//! Minimal stand-in for `rand`, used when the real crate cannot be fetched
//! (offline build environments). Implements the surface this workspace
//! uses — [`Rng`], [`SeedableRng`], [`rngs::SmallRng`] and
//! [`seq::SliceRandom`] — over a xoshiro256++ core seeded via SplitMix64.
//!
//! Streams are deterministic for a given seed but are **not** identical to
//! upstream `rand`'s; all workspace code treats RNG output as opaque.

/// Types that can be drawn uniformly from the full value domain
/// (`Rng::gen`). Floats are drawn from `[0, 1)`.
pub trait Standard: Sized {
    fn from_u64(bits: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_u64(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_u64(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    fn from_u64(bits: u64) -> Self {
        // 53 high bits -> [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_u64(bits: u64) -> Self {
        // 24 high bits -> [0, 1).
        (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with uniform sampling over a half-open `start..end` range
/// (`Rng::gen_range`).
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start < end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128;
                // Multiply-shift rejection-free mapping; bias is < 2^-64,
                // far below anything the workspace's tests can resolve.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
        assert!(start < end, "gen_range: empty range");
        let u: f64 = Standard::from_u64(rng.next_u64());
        start + u * (end - start)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
        assert!(start < end, "gen_range: empty range");
        let u: f32 = Standard::from_u64(rng.next_u64());
        start + u * (end - start)
    }
}

/// Random-number generator interface (the subset of `rand::Rng` in use).
pub trait Rng {
    /// Next 64 uniformly random bits — the primitive everything else
    /// derives from.
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} outside [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (the subset of `rand::SeedableRng` in use).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Small fast PRNG (xoshiro256++), the stand-in for `rand`'s `SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice helpers (the subset of `rand::seq::SliceRandom` in use).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_float_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
        assert!(
            (sum / 10_000.0 - 0.5).abs() < 0.02,
            "mean {}",
            sum / 10_000.0
        );
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.8)).count();
        assert!((7700..8300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 100 elements in order");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SmallRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([7u8].choose(&mut rng).is_some());
    }
}
