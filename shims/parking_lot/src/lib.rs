//! Minimal std-backed stand-in for `parking_lot`, used when the real crate
//! cannot be fetched (offline build environments). Only the surface this
//! workspace uses is provided: [`Mutex`], [`RwLock`] and [`Condvar`] with
//! parking_lot's poison-free, guard-returning API.

use std::ops::{Deref, DerefMut};

/// Poison-free mutex: `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Holds an `Option` so [`Condvar::wait`] can
/// temporarily take std's guard out and put the re-acquired one back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Poison-free condition variable compatible with [`MutexGuard`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        guard.inner = Some(
            self.inner
                .wait(std_guard)
                .unwrap_or_else(|e| e.into_inner()),
        );
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

/// Poison-free reader-writer lock.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
