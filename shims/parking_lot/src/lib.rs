//! Minimal std-backed stand-in for `parking_lot`, used when the real crate
//! cannot be fetched (offline build environments). Only the surface this
//! workspace uses is provided: [`Mutex`], [`RwLock`] and [`Condvar`] with
//! parking_lot's poison-free, guard-returning API.

use std::ops::{Deref, DerefMut};

#[cfg(feature = "race")]
pub mod race;
#[cfg(feature = "sanitize")]
pub mod sanitizer;

#[cfg(feature = "sanitize")]
use sanitizer::LockClass;

/// Poison-free mutex: `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "sanitize")]
    id: sanitizer::LockId,
    #[cfg(feature = "race")]
    rid: race::ObjectId,
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Holds an `Option` so [`Condvar::wait`] can
/// temporarily take std's guard out and put the re-acquired one back.
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(feature = "sanitize")]
    id: sanitizer::LockId,
    #[cfg(feature = "race")]
    rid: race::ObjectId,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self {
            #[cfg(feature = "sanitize")]
            id: sanitizer::register(LockClass::Mutex),
            #[cfg(feature = "race")]
            rid: race::register_lock(),
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "sanitize")]
        sanitizer::before_acquire(self.id, LockClass::Mutex);
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "sanitize")]
        sanitizer::after_acquire(self.id, LockClass::Mutex);
        #[cfg(feature = "race")]
        race::lock_acquire(self.rid);
        MutexGuard {
            #[cfg(feature = "sanitize")]
            id: self.id,
            #[cfg(feature = "race")]
            rid: self.rid,
            inner: Some(g),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let g = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        // A successful try_lock cannot deadlock, but it still establishes a
        // hold that later blocking acquisitions must order against.
        #[cfg(feature = "sanitize")]
        sanitizer::after_acquire(self.id, LockClass::Mutex);
        #[cfg(feature = "race")]
        race::lock_acquire(self.rid);
        Some(MutexGuard {
            #[cfg(feature = "sanitize")]
            id: self.id,
            #[cfg(feature = "race")]
            rid: self.rid,
            inner: Some(g),
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(any(feature = "sanitize", feature = "race"))]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // `Condvar::wait` takes the inner guard out and releases bookkeeping
        // itself; only a guard still holding the lock releases here. The
        // race hook runs in the drop *body*, i.e. before the std guard field
        // drops, so the clock publishes while the lock is still held.
        if self.inner.is_some() {
            #[cfg(feature = "sanitize")]
            sanitizer::on_release(self.id);
            #[cfg(feature = "race")]
            race::lock_release(self.rid);
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Poison-free condition variable compatible with [`MutexGuard`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        // The wait releases the mutex until woken: mirror that in the
        // sanitizer's held-lock bookkeeping so other acquisitions made by
        // this thread while blocked do not order against it. The race
        // release publishes the waiter's clock before the lock actually
        // opens, and the re-acquire joins whatever the wakers released.
        #[cfg(feature = "sanitize")]
        sanitizer::on_release(guard.id);
        #[cfg(feature = "race")]
        race::lock_release(guard.rid);
        let reacquired = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "sanitize")]
        {
            sanitizer::before_acquire(guard.id, LockClass::Mutex);
            sanitizer::after_acquire(guard.id, LockClass::Mutex);
        }
        #[cfg(feature = "race")]
        race::lock_acquire(guard.rid);
        guard.inner = Some(reacquired);
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

/// Poison-free reader-writer lock.
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "sanitize")]
    id: sanitizer::LockId,
    #[cfg(feature = "race")]
    rid: race::ObjectId,
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "sanitize")]
    id: sanitizer::LockId,
    #[cfg(feature = "race")]
    rid: race::ObjectId,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "sanitize")]
    id: sanitizer::LockId,
    #[cfg(feature = "race")]
    rid: race::ObjectId,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self {
            #[cfg(feature = "sanitize")]
            id: sanitizer::register(LockClass::RwLock),
            #[cfg(feature = "race")]
            rid: race::register_lock(),
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "sanitize")]
        sanitizer::before_acquire(self.id, LockClass::RwLock);
        let g = self.inner.read().unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "sanitize")]
        sanitizer::after_acquire(self.id, LockClass::RwLock);
        // Readers are modeled like mutex holders: the reader→reader edges
        // this adds can only hide races, never invent them.
        #[cfg(feature = "race")]
        race::lock_acquire(self.rid);
        RwLockReadGuard {
            #[cfg(feature = "sanitize")]
            id: self.id,
            #[cfg(feature = "race")]
            rid: self.rid,
            inner: g,
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "sanitize")]
        sanitizer::before_acquire(self.id, LockClass::RwLock);
        let g = self.inner.write().unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "sanitize")]
        sanitizer::after_acquire(self.id, LockClass::RwLock);
        #[cfg(feature = "race")]
        race::lock_acquire(self.rid);
        RwLockWriteGuard {
            #[cfg(feature = "sanitize")]
            id: self.id,
            #[cfg(feature = "race")]
            rid: self.rid,
            inner: g,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(any(feature = "sanitize", feature = "race"))]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "sanitize")]
        sanitizer::on_release(self.id);
        #[cfg(feature = "race")]
        race::lock_release(self.rid);
    }
}

#[cfg(any(feature = "sanitize", feature = "race"))]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "sanitize")]
        sanitizer::on_release(self.id);
        #[cfg(feature = "race")]
        race::lock_release(self.rid);
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
