//! Debug-build concurrency sanitizer for the shimmed lock primitives.
//!
//! Because the workspace owns its `parking_lot` stand-in, every lock
//! acquisition in the runtime's hot paths (thread pool completion latches,
//! feature-cache shards, telemetry registries, loader channels) flows
//! through this one file when the `sanitize` feature is on. Two properties
//! are checked at runtime:
//!
//! * **Lock-order inversions** (potential deadlocks): a global directed
//!   graph records the edge `A → B` the first time any thread acquires `B`
//!   while holding `A`. Acquiring `B` while a path `B →* A` already exists
//!   for some held lock `A` means two threads can take the locks in
//!   opposite orders — the classic ABBA deadlock — and is recorded as a
//!   [`Violation::OrderInversion`].
//! * **Double-locks**: re-acquiring a lock this thread already holds would
//!   deadlock the std-backed primitives for real, so it is recorded as a
//!   [`Violation::DoubleLock`] and then panics (continuing would hang the
//!   process inside `std::sync::Mutex::lock`).
//!
//! All bookkeeping uses raw `std::sync` primitives, never the instrumented
//! wrappers, so the sanitizer cannot recurse into itself. Violations are
//! collected in a global list that tests drain via [`take_violations`];
//! inversions are *recorded, not fatal* because the interleaving that was
//! actually observed did not deadlock — only its mirror image would.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex as StdMutex;

/// Identity of one lock instance, assigned at construction.
pub type LockId = u64;

/// Which shim primitive a lock id belongs to (diagnostics only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockClass {
    Mutex,
    RwLock,
}

impl LockClass {
    fn label(self) -> &'static str {
        match self {
            LockClass::Mutex => "Mutex",
            LockClass::RwLock => "RwLock",
        }
    }
}

/// One detected violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A thread re-acquired a lock it already holds.
    DoubleLock {
        lock: LockId,
        class: LockClass,
        thread: String,
    },
    /// Acquiring `acquiring` while holding `held` inverts an ordering the
    /// graph has already seen in the other direction (via some path).
    OrderInversion {
        held: LockId,
        acquiring: LockId,
        thread: String,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::DoubleLock {
                lock,
                class,
                thread,
            } => write!(
                f,
                "double-lock: thread '{thread}' re-acquired {} #{lock} it already holds",
                class.label()
            ),
            Violation::OrderInversion {
                held,
                acquiring,
                thread,
            } => write!(
                f,
                "lock-order inversion: thread '{thread}' acquired lock #{acquiring} \
                 while holding #{held}, but the opposite order #{acquiring} → #{held} \
                 was observed before (potential ABBA deadlock)"
            ),
        }
    }
}

#[derive(Default)]
struct State {
    /// Edge `a → b`: some thread acquired `b` while holding `a`.
    order: BTreeMap<LockId, BTreeSet<LockId>>,
    violations: Vec<Violation>,
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static STATE: StdMutex<Option<State>> = StdMutex::new(None);

thread_local! {
    /// Locks currently held by this thread, in acquisition order.
    static HELD: RefCell<Vec<(LockId, LockClass)>> = const { RefCell::new(Vec::new()) };
}

fn with_state<R>(f: impl FnOnce(&mut State) -> R) -> R {
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    f(guard.get_or_insert_with(State::default))
}

fn thread_name() -> String {
    std::thread::current()
        .name()
        .map(str::to_string)
        .unwrap_or_else(|| format!("{:?}", std::thread::current().id()))
}

/// `start →* goal` reachability over the order graph.
fn reaches(order: &BTreeMap<LockId, BTreeSet<LockId>>, start: LockId, goal: LockId) -> bool {
    if start == goal {
        return true;
    }
    let mut visited = BTreeSet::new();
    let mut stack = vec![start];
    while let Some(n) = stack.pop() {
        if !visited.insert(n) {
            continue;
        }
        if let Some(next) = order.get(&n) {
            if next.contains(&goal) {
                return true;
            }
            stack.extend(next.iter().copied());
        }
    }
    false
}

/// Assigns a fresh id to a new lock instance.
pub(crate) fn register(_class: LockClass) -> LockId {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Pre-acquisition check: double-lock detection (fatal) and lock-order
/// recording/inversion detection (recorded, non-fatal).
pub(crate) fn before_acquire(id: LockId, class: LockClass) {
    let held: Vec<(LockId, LockClass)> = HELD.with(|h| h.borrow().clone());
    if held.iter().any(|&(h, _)| h == id) {
        let v = Violation::DoubleLock {
            lock: id,
            class,
            thread: thread_name(),
        };
        let msg = v.to_string();
        with_state(|s| s.violations.push(v));
        // Proceeding would deadlock inside the std primitive for real.
        panic!("argo-sanitizer: {msg}");
    }
    if held.is_empty() {
        return;
    }
    with_state(|s| {
        for &(h, _) in &held {
            // An existing path id →* h means some execution takes these two
            // locks in the opposite order.
            if reaches(&s.order, id, h) {
                s.violations.push(Violation::OrderInversion {
                    held: h,
                    acquiring: id,
                    thread: thread_name(),
                });
            }
            s.order.entry(h).or_default().insert(id);
        }
    });
}

/// Post-acquisition bookkeeping: push onto this thread's held stack.
pub(crate) fn after_acquire(id: LockId, class: LockClass) {
    HELD.with(|h| h.borrow_mut().push((id, class)));
}

/// Release bookkeeping: remove the most recent hold of `id` (guards may be
/// dropped out of acquisition order, so search from the top).
pub(crate) fn on_release(id: LockId) {
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&(l, _)| l == id) {
            held.remove(pos);
        }
    });
}

/// Clears the order graph and pending violations (held stacks are
/// per-thread and survive; they drain naturally as guards drop).
pub fn reset() {
    with_state(|s| {
        s.order.clear();
        s.violations.clear();
    });
}

/// Drains and returns all violations recorded since the last call/reset.
pub fn take_violations() -> Vec<Violation> {
    with_state(|s| std::mem::take(&mut s.violations))
}

/// Number of violations currently recorded.
pub fn violation_count() -> usize {
    with_state(|s| s.violations.len())
}

/// Number of distinct ordering edges observed (diagnostics/tests).
pub fn order_edge_count() -> usize {
    with_state(|s| s.order.values().map(BTreeSet::len).sum())
}
