//! Vector-clock happens-before race detector (a mini-TSan) for the shimmed
//! synchronization primitives.
//!
//! Because the workspace owns its `parking_lot` *and* `crossbeam` stand-ins,
//! every synchronization edge the runtime actually uses flows through a
//! handful of hook points that this module instruments when the `race`
//! feature is on:
//!
//! * **Locks** ([`lock_acquire`]/[`lock_release`]): releasing a lock joins
//!   the releasing thread's vector clock into the lock's clock and advances
//!   the thread's own epoch; acquiring joins the lock's clock into the
//!   acquirer. RwLock readers are treated like mutex holders — the spurious
//!   reader→reader edges this adds can only *hide* races (false negatives),
//!   never invent them.
//! * **Channels** ([`chan_send`]/[`chan_recv`]): each channel keeps a FIFO
//!   of sender clocks parallel to its message queue (the shim invokes both
//!   hooks while holding the channel's queue mutex, so the two queues stay
//!   in lockstep); a receive joins the clock that was pushed with the
//!   message it pops. A *failed* send (receivers gone) establishes no edge.
//! * **Sync points** ([`point_publish`]/[`point_acquire`]): explicit
//!   fork/join barriers for the thread pool's completion latch, whose
//!   `fetch_sub` fast path is invisible to the lock hooks.
//!
//! On top of the clocks sits a FastTrack-style shadow memory
//! ([`region_register`]/[`region_access`]): a *region* models one
//! claimed-disjoint raw-pointer window (one cell per window unit, e.g. one
//! output row), each cell remembering its last write as an `(thread,
//! epoch)` pair plus a read vector. An access that is not ordered after
//! every prior conflicting access by the happens-before relation is a data
//! race, reported with the `file:line` of both sites via
//! [`std::panic::Location`].
//!
//! All bookkeeping uses raw `std::sync` primitives, never the instrumented
//! wrappers, so the detector cannot recurse into itself. Reports accumulate
//! in a global list drained by [`take_reports`]; [`reset`] clears all
//! per-object state between tests (thread identities persist — clocks only
//! grow, which at worst hides a race *across* tests, never fabricates one).

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::panic::Location;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex as StdMutex;

/// Identity of one instrumented object (lock, channel, sync point, region).
pub type ObjectId = u64;

/// A vector clock: `clock[t]` is the latest epoch of thread `t` known to
/// happen before the owner's current instant.
type Clock = Vec<u64>;

/// Pointwise maximum: afterwards `into` knows everything `from` knows.
fn join(into: &mut Clock, from: &Clock) {
    if into.len() < from.len() {
        into.resize(from.len(), 0);
    }
    for (a, b) in into.iter_mut().zip(from.iter()) {
        *a = (*a).max(*b);
    }
}

/// Whether the epoch `(tid, at)` happens before (or is) the instant `clock`.
fn ordered(clock: &Clock, tid: usize, at: u64) -> bool {
    clock.get(tid).copied().unwrap_or(0) >= at
}

/// Kind of shadow-memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    Read,
    Write,
}

impl AccessKind {
    fn label(self) -> &'static str {
        match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        }
    }
}

/// One detected race: two accesses to the same cell with no happens-before
/// order between them, at least one a write.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceReport {
    /// Region name given at [`region_register`].
    pub region: String,
    /// Cell index (window unit, e.g. output row) the accesses collided on.
    pub cell: usize,
    /// Kind of the earlier recorded access.
    pub prior: AccessKind,
    /// `file:line` of the earlier access.
    pub prior_site: String,
    /// Thread that made the earlier access.
    pub prior_thread: String,
    /// Kind of the access that detected the race.
    pub current: AccessKind,
    /// `file:line` of the detecting access.
    pub site: String,
    /// Thread that made the detecting access.
    pub thread: String,
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "data race on region '{}' cell {}: {} at {} (thread '{}') is unordered \
             with prior {} at {} (thread '{}')",
            self.region,
            self.cell,
            self.current.label(),
            self.site,
            self.thread,
            self.prior.label(),
            self.prior_site,
            self.prior_thread,
        )
    }
}

/// FastTrack-style per-cell state: the last write as an epoch, plus the
/// last read per thread since that write.
#[derive(Default)]
struct CellState {
    /// `(tid, epoch, site)` of the most recent write, if any.
    write: Option<(usize, u64, &'static Location<'static>)>,
    /// `(tid, epoch, site)` of each thread's latest read since the last
    /// write. Small in practice: one entry per concurrently-reading thread.
    reads: Vec<(usize, u64, &'static Location<'static>)>,
}

struct RegionState {
    name: &'static str,
    cells: Vec<CellState>,
}

#[derive(Default)]
struct State {
    /// Lock id → clock of everything the last releaser had seen.
    locks: BTreeMap<ObjectId, Clock>,
    /// Channel id → per-message sender clocks, FIFO-parallel to the queue.
    chans: BTreeMap<ObjectId, VecDeque<Clock>>,
    /// Sync point id → merged clock of every publisher so far.
    points: BTreeMap<ObjectId, Clock>,
    /// Shadow-memory regions currently alive.
    regions: BTreeMap<ObjectId, RegionState>,
    /// Thread slot → name, assigned at first instrumented action.
    threads: Vec<String>,
    reports: Vec<RaceReport>,
    /// Dedup key `(region, prior_site, site)`: one report per racing pair
    /// of source sites, not one per cell.
    seen: BTreeSet<(String, String, String)>,
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static STATE: StdMutex<Option<State>> = StdMutex::new(None);

thread_local! {
    /// This thread's `(slot, vector clock)`, assigned lazily.
    static THREAD: RefCell<Option<(usize, Clock)>> = const { RefCell::new(None) };
}

fn thread_name() -> String {
    std::thread::current()
        .name()
        .map(str::to_string)
        .unwrap_or_else(|| format!("{:?}", std::thread::current().id()))
}

/// Runs `f` with this thread's slot + clock and the global state, both
/// borrowed mutably. Returns `None` during thread teardown (TLS gone) —
/// hooks silently no-op then, which can only lose edges on dying threads.
fn with_thread_state<R>(f: impl FnOnce(usize, &mut Clock, &mut State) -> R) -> Option<R> {
    THREAD
        .try_with(|t| {
            let mut slot = t.borrow_mut();
            let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
            let state = guard.get_or_insert_with(State::default);
            if slot.is_none() {
                let tid = state.threads.len();
                state.threads.push(thread_name());
                let mut clock = vec![0; tid + 1];
                clock[tid] = 1;
                *slot = Some((tid, clock));
            }
            let (tid, clock) = slot.as_mut().expect("thread slot initialized above");
            f(*tid, clock, state)
        })
        .ok()
}

fn fresh_id() -> ObjectId {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

// ---- locks ---------------------------------------------------------------

/// Assigns an id to a new lock instance.
pub fn register_lock() -> ObjectId {
    fresh_id()
}

/// Acquire edge: the acquirer inherits everything the last releaser saw.
pub fn lock_acquire(id: ObjectId) {
    with_thread_state(|_tid, clock, state| {
        if let Some(lc) = state.locks.get(&id) {
            join(clock, lc);
        }
    });
}

/// Release edge: the lock's clock absorbs the releaser's, and the releaser
/// starts a new epoch so later accesses are not ordered by this release.
pub fn lock_release(id: ObjectId) {
    with_thread_state(|tid, clock, state| {
        join(state.locks.entry(id).or_default(), clock);
        clock[tid] += 1;
    });
}

// ---- channels ------------------------------------------------------------

/// Assigns an id to a new channel instance.
pub fn chan_register() -> ObjectId {
    fresh_id()
}

/// Drops a channel's clock queue (called when the channel is torn down).
pub fn chan_unregister(id: ObjectId) {
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(state) = guard.as_mut() {
        state.chans.remove(&id);
    }
}

/// Send edge: push the sender's clock alongside the message. Must be called
/// while holding the channel's queue mutex, right after the enqueue, so the
/// clock FIFO stays parallel to the message FIFO.
pub fn chan_send(id: ObjectId) {
    with_thread_state(|tid, clock, state| {
        state.chans.entry(id).or_default().push_back(clock.clone());
        clock[tid] += 1;
    });
}

/// Receive edge: join the clock pushed with the message just dequeued. Must
/// be called while holding the channel's queue mutex, right after the pop.
pub fn chan_recv(id: ObjectId) {
    with_thread_state(|_tid, clock, state| {
        if let Some(sent) = state.chans.get_mut(&id).and_then(VecDeque::pop_front) {
            join(clock, &sent);
        }
    });
}

// ---- sync points ---------------------------------------------------------

/// Assigns an id to a new fork/join sync point.
pub fn point_register() -> ObjectId {
    fresh_id()
}

/// Drops a sync point's clock.
pub fn point_unregister(id: ObjectId) {
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(state) = guard.as_mut() {
        state.points.remove(&id);
    }
}

/// Publish edge (worker side of a join): the point's clock absorbs this
/// thread's, and the thread starts a new epoch.
pub fn point_publish(id: ObjectId) {
    with_thread_state(|tid, clock, state| {
        join(state.points.entry(id).or_default(), clock);
        clock[tid] += 1;
    });
}

/// Acquire edge (joiner side): inherit everything every publisher saw.
pub fn point_acquire(id: ObjectId) {
    with_thread_state(|_tid, clock, state| {
        if let Some(pc) = state.points.get(&id) {
            join(clock, pc);
        }
    });
}

// ---- shadow memory -------------------------------------------------------

/// Registers a shadow region of `cells` window units under `name`.
pub fn region_register(name: &'static str, cells: usize) -> ObjectId {
    let id = fresh_id();
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    let state = guard.get_or_insert_with(State::default);
    state.regions.insert(
        id,
        RegionState {
            name,
            cells: (0..cells).map(|_| CellState::default()).collect(),
        },
    );
    id
}

/// Drops a region's shadow cells (its window closed).
pub fn region_unregister(id: ObjectId) {
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(state) = guard.as_mut() {
        state.regions.remove(&id);
    }
}

/// Checks and records an access to cells `start..start + len` of a region.
/// Any prior conflicting access (write/write, write/read, read/write) not
/// ordered before this one by happens-before is reported as a race.
pub fn region_access(
    id: ObjectId,
    start: usize,
    len: usize,
    kind: AccessKind,
    site: &'static Location<'static>,
) {
    with_thread_state(|tid, clock, state| {
        let State {
            regions,
            threads,
            reports,
            seen,
            ..
        } = state;
        let Some(region) = regions.get_mut(&id) else {
            return;
        };
        let end = start.saturating_add(len).min(region.cells.len());
        let here = clock.get(tid).copied().unwrap_or(0);
        for cell in start..end {
            let cs = &mut region.cells[cell];
            let mut racy: Option<(usize, u64, &'static Location<'static>, AccessKind)> = None;
            if let Some((wt, we, ws)) = cs.write {
                if wt != tid && !ordered(clock, wt, we) {
                    racy = Some((wt, we, ws, AccessKind::Write));
                }
            }
            if kind == AccessKind::Write && racy.is_none() {
                for &(rt, re, rs) in &cs.reads {
                    if rt != tid && !ordered(clock, rt, re) {
                        racy = Some((rt, re, rs, AccessKind::Read));
                        break;
                    }
                }
            }
            if let Some((pt, _pe, ps, pk)) = racy {
                let prior_site = format!("{}:{}", ps.file(), ps.line());
                let here_site = format!("{}:{}", site.file(), site.line());
                let key = (
                    region.name.to_string(),
                    prior_site.clone(),
                    here_site.clone(),
                );
                if seen.insert(key) {
                    reports.push(RaceReport {
                        region: region.name.to_string(),
                        cell,
                        prior: pk,
                        prior_site,
                        prior_thread: threads.get(pt).cloned().unwrap_or_default(),
                        current: kind,
                        site: here_site,
                        thread: threads.get(tid).cloned().unwrap_or_default(),
                    });
                }
            }
            match kind {
                AccessKind::Write => {
                    cs.write = Some((tid, here, site));
                    cs.reads.clear();
                }
                AccessKind::Read => {
                    if let Some(r) = cs.reads.iter_mut().find(|(rt, _, _)| *rt == tid) {
                        *r = (tid, here, site);
                    } else {
                        cs.reads.push((tid, here, site));
                    }
                }
            }
        }
    });
}

// ---- harness API ---------------------------------------------------------

/// Clears every per-object clock, all shadow regions and pending reports.
/// Thread slots and per-thread clocks persist (clocks only grow, which can
/// only hide cross-test races, never invent one).
pub fn reset() {
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(state) = guard.as_mut() {
        state.locks.clear();
        state.chans.clear();
        state.points.clear();
        state.regions.clear();
        state.reports.clear();
        state.seen.clear();
    }
}

/// Drains and returns all race reports recorded since the last call/reset.
pub fn take_reports() -> Vec<RaceReport> {
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    guard
        .as_mut()
        .map(|s| {
            s.seen.clear();
            std::mem::take(&mut s.reports)
        })
        .unwrap_or_default()
}

/// Number of race reports currently recorded.
pub fn report_count() -> usize {
    let guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().map(|s| s.reports.len()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc() -> &'static Location<'static> {
        Location::caller()
    }

    #[test]
    fn join_and_ordered_are_pointwise() {
        let mut a = vec![1, 0, 3];
        join(&mut a, &vec![0, 5, 1, 2]);
        assert_eq!(a, vec![1, 5, 3, 2]);
        assert!(ordered(&a, 1, 5));
        assert!(!ordered(&a, 1, 6));
        assert!(ordered(&a, 9, 0), "unknown thread at epoch 0 is ordered");
        assert!(!ordered(&a, 9, 1));
    }

    #[test]
    fn same_thread_accesses_never_race() {
        reset();
        let r = region_register("self", 4);
        region_access(r, 0, 4, AccessKind::Write, loc());
        region_access(r, 0, 4, AccessKind::Write, loc());
        region_access(r, 0, 4, AccessKind::Read, loc());
        assert_eq!(report_count(), 0);
        region_unregister(r);
    }

    #[test]
    fn unsynchronized_cross_thread_write_write_races() {
        reset();
        let r = region_register("www", 2);
        region_access(r, 0, 2, AccessKind::Write, loc());
        std::thread::spawn(move || {
            region_access(r, 1, 1, AccessKind::Write, loc());
        })
        .join()
        .expect("no panic");
        let reports = take_reports();
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert_eq!(reports[0].cell, 1);
        assert_eq!(reports[0].prior, AccessKind::Write);
        assert!(reports[0].prior_site.contains("race.rs"));
        region_unregister(r);
    }

    #[test]
    fn lock_edge_orders_the_handoff() {
        reset();
        let r = region_register("locked", 1);
        let l = register_lock();
        // Writer: write under the lock, then release.
        lock_acquire(l);
        region_access(r, 0, 1, AccessKind::Write, loc());
        lock_release(l);
        // Reader thread: acquire the lock first → ordered, no race.
        std::thread::spawn(move || {
            lock_acquire(l);
            region_access(r, 0, 1, AccessKind::Read, loc());
            lock_release(l);
        })
        .join()
        .expect("no panic");
        assert_eq!(take_reports(), vec![]);
        region_unregister(r);
    }

    #[test]
    fn channel_edge_orders_send_before_recv() {
        reset();
        let r = region_register("chan", 1);
        let c = chan_register();
        region_access(r, 0, 1, AccessKind::Write, loc());
        chan_send(c);
        std::thread::spawn(move || {
            chan_recv(c);
            region_access(r, 0, 1, AccessKind::Read, loc());
        })
        .join()
        .expect("no panic");
        assert_eq!(take_reports(), vec![]);
        chan_unregister(c);
        region_unregister(r);
    }

    #[test]
    fn sync_point_orders_publish_before_acquire() {
        reset();
        let r = region_register("point", 1);
        let p = point_register();
        std::thread::spawn(move || {
            region_access(r, 0, 1, AccessKind::Write, loc());
            point_publish(p);
        })
        .join()
        .expect("no panic");
        point_acquire(p);
        region_access(r, 0, 1, AccessKind::Read, loc());
        assert_eq!(take_reports(), vec![]);
        point_unregister(p);
        region_unregister(r);
    }

    #[test]
    fn duplicate_site_pairs_are_deduplicated() {
        reset();
        let r = region_register("dedup", 64);
        let site_a = loc();
        let site_b = loc();
        region_access(r, 0, 64, AccessKind::Write, site_a);
        std::thread::spawn(move || {
            region_access(r, 0, 64, AccessKind::Write, site_b);
        })
        .join()
        .expect("no panic");
        assert_eq!(take_reports().len(), 1, "64 racing cells, one report");
        region_unregister(r);
    }
}
