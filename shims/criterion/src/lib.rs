//! Minimal stand-in for `criterion`, used when the real crate cannot be
//! fetched (offline build environments). Implements enough of the API for
//! this workspace's benches to build and produce useful wall-clock numbers:
//! no statistics, no HTML reports — each `bench_function` prints
//! min/mean/max over `sample_size` timed samples.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (accepted, ignored — every batch here
/// is one routine call).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Benchmark driver (subset of upstream's `Criterion`).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs `f` against a [`Bencher`] and prints a one-line summary.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Per-benchmark measurement harness.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples: Vec<f64>, // seconds per routine call
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples (each possibly
    /// batching several calls so timer resolution does not dominate).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up, and estimate the per-call cost to pick a batch size.
        let warm_until = Instant::now() + self.warm_up_time;
        let mut calls = 0u64;
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            calls += 1;
            if Instant::now() >= warm_until {
                break;
            }
        }
        let per_call = warm_start.elapsed().as_secs_f64() / calls as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_call.max(1e-9)) as u64).clamp(1, 1_000_000);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up call
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed().as_secs_f64());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let n = self.samples.len() as f64;
        let mean = self.samples.iter().sum::<f64>() / n;
        let min = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.samples.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{id:<40} min {} mean {} max {} ({} samples)",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max),
            self.samples.len()
        );
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:8.3} s")
    } else if seconds >= 1e-3 {
        format!("{:8.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:8.3} µs", seconds * 1e6)
    } else {
        format!("{:8.1} ns", seconds * 1e9)
    }
}

/// Declares a group of benchmark functions (both upstream forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default()
            .sample_size(4)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut setups = 0;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            );
        });
        assert_eq!(setups, 5); // 1 warm-up + 4 samples
    }
}
