//! Minimal std-backed stand-in for `crossbeam`, used when the real crate
//! cannot be fetched (offline build environments). Provides the
//! multi-producer **multi-consumer** [`channel`] this workspace relies on
//! (std's `mpsc::Receiver` is not `Clone`, so a shared-queue channel is
//! implemented here directly).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        /// Race-detector identity: the detector keeps a FIFO of sender
        /// vector clocks parallel to `queue` (both mutated under the
        /// `queue` mutex, so the two stay in lockstep).
        #[cfg(feature = "race")]
        race_id: parking_lot::race::ObjectId,
    }

    #[cfg(feature = "race")]
    impl<T> Drop for Inner<T> {
        fn drop(&mut self) {
            parking_lot::race::chan_unregister(self.race_id);
        }
    }

    impl<T> Inner<T> {
        fn disconnected_for_send(&self) -> bool {
            self.receivers.load(Ordering::SeqCst) == 0
        }

        fn disconnected_for_recv(&self) -> bool {
            self.senders.load(Ordering::SeqCst) == 0
        }
    }

    /// The sending half of a channel. Cloning adds a producer.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a channel. Cloning adds a consumer.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent value is handed back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty but senders remain.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// A channel with unbounded buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// A channel holding at most `cap` in-flight messages; sends block while
    /// full. A capacity of zero is rounded up to one (rendezvous semantics
    /// are not needed by this workspace).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            #[cfg(feature = "race")]
            race_id: parking_lot::race::chan_register(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake receivers blocked on an empty queue.
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last receiver: wake senders blocked on a full queue.
                self.inner.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks while the channel is full; fails once all receivers are
        /// dropped (even mid-wait).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if self.inner.disconnected_for_send() {
                    return Err(SendError(value));
                }
                match self.inner.capacity {
                    Some(cap) if queue.len() >= cap => {
                        queue = self
                            .inner
                            .not_full
                            .wait(queue)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            queue.push_back(value);
            // Happens-before edge: the sender's clock rides with the message
            // (recorded under the queue mutex so clock order matches message
            // order). A failed send above establishes no edge.
            #[cfg(feature = "race")]
            parking_lot::race::chan_send(self.inner.race_id);
            drop(queue);
            self.inner.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; fails once the channel is empty
        /// and all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = queue.pop_front() {
                    // Join the clock that rode with this exact message.
                    #[cfg(feature = "race")]
                    parking_lot::race::chan_recv(self.inner.race_id);
                    drop(queue);
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if self.inner.disconnected_for_recv() {
                    return Err(RecvError);
                }
                queue = self
                    .inner
                    .not_empty
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = queue.pop_front() {
                #[cfg(feature = "race")]
                parking_lot::race::chan_recv(self.inner.race_id);
                drop(queue);
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if self.inner.disconnected_for_recv() {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Messages currently buffered.
        pub fn len(&self) -> usize {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cloned_receivers_share_stream() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut got = Vec::new();
            while let Ok(v) = rx1.try_recv() {
                got.push(v);
                if let Ok(v) = rx2.try_recv() {
                    got.push(v);
                }
            }
            got.sort_unstable();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn bounded_blocks_until_consumed() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let h = std::thread::spawn(move || tx.send(2).is_ok());
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert!(h.join().unwrap());
        }

        #[test]
        fn dropping_receiver_unblocks_full_sender() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            let h = std::thread::spawn(move || tx.send(2));
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(rx);
            assert!(h.join().unwrap().is_err());
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(5).is_err());
        }

        #[test]
        fn try_recv_distinguishes_empty_and_disconnected() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
