//! Minimal stand-in for `proptest`, used when the real crate cannot be
//! fetched (offline build environments). Supports the surface this
//! workspace uses: the [`proptest!`] macro with `name in strategy`
//! arguments and an optional `#![proptest_config(..)]`, range/tuple
//! strategies, `prop::collection::{vec, btree_set}`, `any::<T>()` and the
//! `prop_assert*` macros.
//!
//! Failing cases are reported with their case index and seed but are **not
//! shrunk** — rerun with the printed seed to reproduce.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Test-runner configuration (subset of upstream's).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The RNG handed to strategies.
pub struct TestRng {
    rng: SmallRng,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// A generator of random values (upstream's `Strategy`, minus shrinking).
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.start..self.end)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                // Sample the half-open range then occasionally return the
                // endpoint; exact endpoint weight does not matter here.
                if start == end || rng.rng().gen_bool(1.0 / 64.0) {
                    end
                } else {
                    rng.rng().gen_range(start..end)
                }
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Types with a canonical "any value" strategy (upstream's `Arbitrary`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy produced by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Size specification for collection strategies: an exact size or a
/// half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.hi - self.lo <= 1 {
            self.lo
        } else {
            rng.rng().gen_range(self.lo..self.hi)
        }
    }
}

/// The `prop::` namespace (`use proptest::prelude::*` exposes it).
pub mod prop {
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// `Vec` strategy with element strategy `element` and a size drawn
        /// from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.sample(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// `BTreeSet` strategy; sampling stops early if the element domain
        /// is too small to reach the requested size.
        pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy {
                element,
                size: size.into(),
            }
        }

        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = std::collections::BTreeSet<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let want = self.size.sample(rng);
                let mut out = std::collections::BTreeSet::new();
                let mut misses = 0usize;
                while out.len() < want && misses < 1000 {
                    if !out.insert(self.element.sample(rng)) {
                        misses += 1;
                    }
                }
                out
            }
        }
    }
}

/// Everything the `proptest!` macro body needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// FNV-1a, used to derive a per-test base seed from the test name so every
/// property sees a distinct but reproducible stream.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// The `proptest!` block: an optional `#![proptest_config(..)]` followed by
/// `#[test] fn name(arg in strategy, ..) { .. }` items. Each becomes a
/// normal `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let base = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases as u64 {
                let seed = base.wrapping_add(case);
                let mut __rng = $crate::TestRng::new(seed);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest case {case} of {} failed (seed {seed:#x})",
                        stringify!($name)
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 1usize..10, b in -2.0f64..2.0) {
            prop_assert!((1..10).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
        }

        #[test]
        fn vec_of_tuples(v in prop::collection::vec((0u32..5, 0u32..5), 0..20)) {
            prop_assert!(v.len() < 20);
            for (x, y) in v {
                prop_assert!(x < 5 && y < 5);
            }
        }

        #[test]
        fn btree_set_size(s in prop::collection::btree_set((0u8..10, 0u8..10), 3..10)) {
            prop_assert!(s.len() >= 3 && s.len() < 10, "len {}", s.len());
        }

        #[test]
        fn any_bool_takes_both_values(flags in prop::collection::vec(any::<bool>(), 64)) {
            prop_assert_eq!(flags.len(), 64);
        }
    }

    #[test]
    fn exact_size_vec() {
        let mut rng = crate::TestRng::new(1);
        let strat = prop::collection::vec(-2.0f32..2.0, 144);
        assert_eq!(crate::Strategy::sample(&strat, &mut rng).len(), 144);
    }

    #[test]
    fn deterministic_per_seed() {
        let strat = 0u64..1000;
        let a = crate::Strategy::sample(&strat, &mut crate::TestRng::new(9));
        let b = crate::Strategy::sample(&strat, &mut crate::TestRng::new(9));
        assert_eq!(a, b);
    }
}
