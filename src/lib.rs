//! Umbrella crate for the ARGO reproduction workspace.
//!
//! Re-exports every sub-crate so examples and integration tests can use a
//! single dependency. Library users should depend on `argo-core` (the
//! user-facing runtime) or on individual substrate crates directly.

pub use argo_core as core;
pub use argo_engine as engine;
pub use argo_graph as graph;
pub use argo_nn as nn;
pub use argo_platform as platform;
pub use argo_rt as rt;
pub use argo_sample as sample;
pub use argo_tensor as tensor;
pub use argo_tune as tune;
