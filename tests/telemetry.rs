//! End-to-end tests of the telemetry layer: a real auto-tuned training run
//! (and a modeled one) through the full stack — engine + tuner + sinks —
//! producing parseable JSONL with `epoch_end` and `tuner_trial` events,
//! valid Chrome-trace JSON, and a report with per-stage quantiles and the
//! incumbent-best trajectory.

use std::sync::Arc;

use argo::core::{Argo, ArgoOptions};
use argo::engine::{Engine, EngineOptions};
use argo::graph::datasets::{FLICKR, OGBN_PRODUCTS};
use argo::platform::{Library, ModelKind, PerfModel, SamplerKind, Setup, ICE_LAKE_8380H};
use argo::rt::telemetry::names;
use argo::rt::{Json, RunEvent, RunLogger, Source, Telemetry};
use argo::sample::NeighborSampler;

fn tiny_engine(seed: u64) -> Engine {
    let dataset = Arc::new(FLICKR.synthesize(0.008, seed));
    let sampler: Arc<dyn argo::sample::Sampler> = Arc::new(NeighborSampler::new(vec![6, 3]));
    Engine::new(
        dataset,
        sampler,
        EngineOptions {
            hidden: 8,
            num_layers: 2,
            global_batch: 64,
            total_cores: 16,
            seed,
            ..Default::default()
        },
    )
}

#[test]
fn measured_run_produces_full_telemetry() {
    let mut engine = tiny_engine(11);
    let mut argo = Argo::new(ArgoOptions {
        n_search: 3,
        epochs: 5,
        total_cores: 16,
        seed: 11,
    });
    let tel = Telemetry::new();
    let report = argo.train(&mut engine, Some(&tel), |_, _, _| {});

    // --- JSONL: parseable, with epoch_end and tuner_trial events --------
    let jsonl = tel.logger.to_jsonl();
    let parsed = RunLogger::parse_jsonl(&jsonl).expect("JSONL must parse");
    assert!(!parsed.is_empty());
    assert!(parsed.iter().all(|(_, _, s)| *s == Source::Measured));
    let epoch_ends: Vec<_> = parsed
        .iter()
        .filter_map(|(e, _, _)| match e {
            RunEvent::EpochEnd { epoch, record, .. } => Some((*epoch, *record)),
            _ => None,
        })
        .collect();
    assert_eq!(epoch_ends.len(), 5, "one epoch_end per epoch");
    assert_eq!(epoch_ends.last().unwrap().0, 4);
    let trials: Vec<_> = parsed
        .iter()
        .filter_map(|(e, _, _)| match e {
            RunEvent::TunerTrial(t) => Some(*t),
            _ => None,
        })
        .collect();
    assert_eq!(trials.len(), 3, "one tuner_trial per search epoch");
    // Incumbent best matches the report and is non-increasing.
    assert!(trials
        .windows(2)
        .all(|w| w[1].best_epoch_time <= w[0].best_epoch_time));
    assert_eq!(trials.last().unwrap().best_config, report.config_opt);
    // Suggest/observe CPU time is captured.
    assert!(trials
        .iter()
        .all(|t| t.suggest_seconds >= 0.0 && t.observe_seconds >= 0.0));

    // --- Chrome trace: valid JSON array of complete events --------------
    let chrome = tel.trace.to_chrome_json();
    let v = Json::parse(&chrome).expect("chrome trace must be valid JSON");
    let arr = v.as_arr().expect("top-level array");
    assert!(!arr.is_empty());
    for e in arr {
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
        assert!(e.get("ts").and_then(Json::as_f64).is_some());
        assert!(e.get("dur").and_then(Json::as_f64).unwrap() >= 0.0);
    }

    // --- Metrics agree with the structured events ------------------------
    let counters: std::collections::BTreeMap<_, _> = tel.metrics.counters().into_iter().collect();
    assert_eq!(counters[names::EPOCHS_TOTAL], 5);
    assert_eq!(counters[names::TUNER_TRIALS_TOTAL], 3);
    let total_iters: u64 = epoch_ends.iter().map(|(_, r)| r.iterations).sum();
    assert_eq!(counters[names::ITERATIONS_TOTAL], total_iters);

    // EpochStats::sync_time (rank 0) reconciles with the sync histogram,
    // which covers every rank: per-epoch sync_time sums to at most the
    // histogram total, and both are positive.
    let hists: std::collections::BTreeMap<_, _> = tel.metrics.histograms().into_iter().collect();
    let sync = &hists["stage_seconds/sync"];
    let stats_sync: f64 = epoch_ends.iter().map(|(_, r)| r.sync_time).sum();
    assert!(stats_sync > 0.0);
    assert!(
        sync.sum() >= stats_sync * 0.95,
        "{} < {}",
        sync.sum(),
        stats_sync
    );

    // --- Report renders per-stage quantiles and the convergence trace ----
    let text = argo_cli::report::render_report(&parsed, Some(&tel));
    assert!(text.contains("per-stage timings"));
    assert!(text.contains("p50") && text.contains("p95"));
    assert!(text.contains("compute"));
    assert!(text.contains("tuner convergence"));
    assert!(text.contains("selected "));
}

#[test]
fn modeled_run_shares_schema_with_measured() {
    let model = PerfModel::new(Setup {
        platform: ICE_LAKE_8380H,
        library: Library::Dgl,
        sampler: SamplerKind::Neighbor,
        model: ModelKind::Sage,
        dataset: OGBN_PRODUCTS,
    });
    let tel = Telemetry::with_source(Source::Modeled);
    let mut argo = Argo::new(ArgoOptions {
        n_search: 4,
        epochs: 8,
        total_cores: 112,
        seed: 2,
    });
    argo.run_modeled(&model, Some(&tel));
    let parsed = RunLogger::parse_jsonl(&tel.logger.to_jsonl()).unwrap();
    assert!(parsed.iter().all(|(_, _, s)| *s == Source::Modeled));
    // Exactly the same event kinds a measured run emits.
    let mut kinds: Vec<&str> = parsed.iter().map(|(e, _, _)| e.kind()).collect();
    kinds.sort_unstable();
    kinds.dedup();
    assert_eq!(
        kinds,
        vec![
            "config_applied",
            "epoch_end",
            "epoch_start",
            "stage_summary",
            "tuner_trial"
        ]
    );
    // The offline report renders from the file alone.
    let text = argo_cli::report::render_report(&parsed, None);
    assert!(text.contains("8 modeled"));
    assert!(text.contains("tuner convergence"));
}

#[test]
fn cli_flow_writes_and_reads_back_files() {
    // The CLI flow without spawning a process: run → write JSONL → parse →
    // render, exactly what `argo train --metrics-out F` + `argo report
    // --metrics F` do.
    let mut engine = tiny_engine(5);
    let mut argo = Argo::new(ArgoOptions {
        n_search: 2,
        epochs: 3,
        total_cores: 16,
        seed: 5,
    });
    let tel = Telemetry::new();
    argo.train(&mut engine, Some(&tel), |_, _, _| {});

    let dir = std::env::temp_dir();
    let path = dir.join(format!("argo-telemetry-test-{}.jsonl", std::process::id()));
    std::fs::write(&path, tel.logger.to_jsonl()).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let parsed = RunLogger::parse_jsonl(&text).unwrap();
    assert!(parsed.iter().any(|(e, _, _)| e.kind() == "epoch_end"));
    assert!(parsed.iter().any(|(e, _, _)| e.kind() == "tuner_trial"));
    let report = argo_cli::report::render_report(&parsed, None);
    assert!(report.contains("epochs: 3"));
}

#[test]
fn new_event_kinds_round_trip_through_jsonl() {
    // Hand-rolled property test: many pseudo-random instances of the
    // profiler event kinds (critical_path, bytes_summary, bottleneck_check)
    // must survive encode → parse bit-exactly.
    use argo::rt::{BytesRecord, Config};
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 16
    };
    let stages = ["compute", "gather", "sample", "channel_wait", "heap_wait"];
    let tel = Telemetry::new();
    let mut originals = Vec::new();
    for i in 0..64u64 {
        let mut fractions = Vec::new();
        for s in stages.iter().take(1 + (next() % 5) as usize) {
            fractions.push((s.to_string(), (next() % 4096) as f64 / 4096.0));
        }
        let config = Config::new(
            1 + (next() % 8) as usize,
            1 + (next() % 4) as usize,
            1 + (next() % 4) as usize,
        );
        let events = [
            RunEvent::CriticalPath {
                epoch: i,
                fractions,
                spans: next() % (1 << 48),
                dropped: next() % 17,
            },
            RunEvent::BytesSummary {
                epoch: i,
                record: BytesRecord {
                    batches: next() % 1024,
                    metadata_bytes: next() % (1 << 48),
                    cache_bytes: next() % (1 << 48),
                    scratch_allocs: next() % 64,
                },
            },
            RunEvent::BottleneckCheck {
                epoch: i,
                config,
                predicted: stages[(next() % 5) as usize].to_string(),
                measured: stages[(next() % 5) as usize].to_string(),
            },
        ];
        for e in events {
            tel.logger.log(e.clone());
            originals.push(e);
        }
    }
    let parsed = RunLogger::parse_jsonl(&tel.logger.to_jsonl()).expect("JSONL must parse");
    assert_eq!(parsed.len(), originals.len());
    for ((got, _, src), want) in parsed.iter().zip(&originals) {
        assert_eq!(got, want);
        assert_eq!(*src, Source::Measured);
    }
}

#[test]
fn two_worker_pipeline_attribution_is_exact() {
    // Deterministic two-producer/one-consumer fixture over a 10 s horizon:
    //   consumer: compute [0,4], heap/channel wait [4,6], compute [6,9],
    //             sync [9,10]
    //   producer A: gather [4,6]   (active during the consumer's wait →
    //                               the wait is *caused* by gathering)
    //   producer B: pick [0,3]     (concurrent with compute — compute wins)
    // Expected attribution: compute 0.7, gather 0.2, sync 0.1.
    use argo::rt::{critical_path, Role, SpanKind, SpanRecord, CRITICAL_PATH_STAGES};
    let span = |role, kind, batch, start: f64, end: f64| SpanRecord {
        role,
        kind,
        batch,
        start,
        end,
        worker: batch as usize % 2,
    };
    let records = vec![
        span(Role::Consumer, SpanKind::Compute, 0, 0.0, 4.0),
        span(Role::Consumer, SpanKind::DequeueWait, 1, 4.0, 6.0),
        span(Role::Consumer, SpanKind::Compute, 1, 6.0, 9.0),
        span(Role::Consumer, SpanKind::Sync, 1, 9.0, 10.0),
        span(Role::Producer, SpanKind::Gather, 1, 4.0, 6.0),
        span(Role::Producer, SpanKind::Pick, 2, 0.0, 3.0),
    ];
    let fractions = critical_path(&records, 10.0);
    let sum: f64 = fractions.iter().map(|(_, f)| f).sum();
    assert!(
        (sum - 1.0).abs() < 1e-9,
        "fractions must sum to 1, got {sum}"
    );
    let get = |name: &str| {
        fractions
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, f)| *f)
            .unwrap_or(0.0)
    };
    // Binning quantizes at horizon/2048, so allow 1%.
    assert!((get("compute") - 0.7).abs() < 0.01, "{fractions:?}");
    assert!((get("gather") - 0.2).abs() < 0.01, "{fractions:?}");
    assert!((get("sync") - 0.1).abs() < 0.01, "{fractions:?}");
    assert_eq!(get("heap_wait"), 0.0, "the wait was caused by gathering");
    // The known bottleneck wins the argmax — the same reduction the
    // bottleneck audit applies to measured epochs.
    let top = fractions
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(n, _)| *n);
    assert_eq!(top, Some("compute"));
    for (name, _) in &fractions {
        assert!(CRITICAL_PATH_STAGES.contains(name), "unknown stage {name}");
    }
}

#[test]
fn measured_run_emits_critical_path_and_bytes_events() {
    let mut engine = tiny_engine(7);
    let mut argo = Argo::new(ArgoOptions {
        n_search: 2,
        epochs: 3,
        total_cores: 16,
        seed: 7,
    });
    let tel = Telemetry::new();
    argo.train(&mut engine, Some(&tel), |_, _, _| {});
    let parsed = RunLogger::parse_jsonl(&tel.logger.to_jsonl()).unwrap();

    let cps: Vec<_> = parsed
        .iter()
        .filter_map(|(e, _, _)| match e {
            RunEvent::CriticalPath {
                fractions, spans, ..
            } => Some((fractions.clone(), *spans)),
            _ => None,
        })
        .collect();
    assert_eq!(cps.len(), 3, "one critical_path per epoch");
    for (fractions, spans) in &cps {
        assert!(*spans > 0, "the loader and engine must have recorded spans");
        let sum: f64 = fractions.iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-6, "fractions sum to {sum}");
    }

    let bytes: Vec<_> = parsed
        .iter()
        .filter_map(|(e, _, _)| match e {
            RunEvent::BytesSummary { record, .. } => Some(*record),
            _ => None,
        })
        .collect();
    assert_eq!(bytes.len(), 3, "one bytes_summary per epoch");
    for r in &bytes {
        assert!(r.batches > 0);
        assert!(r.metadata_bytes_per_batch() > 0.0);
    }

    let text = argo_cli::report::render_report(&parsed, Some(&tel));
    assert!(text.contains("critical path"));
    assert!(text.contains("bytes/batch"));
    assert!(text.contains("metadata/batch"));
}

#[test]
fn audited_run_emits_bottleneck_checks_and_report_section() {
    use argo::rt::CRITICAL_PATH_STAGES;
    let model = PerfModel::new(Setup {
        platform: ICE_LAKE_8380H,
        library: Library::Dgl,
        sampler: SamplerKind::Neighbor,
        model: ModelKind::Sage,
        dataset: FLICKR,
    });
    let mut engine = tiny_engine(3);
    let mut argo = Argo::new(ArgoOptions {
        n_search: 2,
        epochs: 3,
        total_cores: 16,
        seed: 3,
    });
    let tel = Telemetry::new();
    argo.train_audited(&mut engine, &model, Some(&tel), |_, _, _| {});
    let parsed = RunLogger::parse_jsonl(&tel.logger.to_jsonl()).unwrap();
    let checks: Vec<_> = parsed
        .iter()
        .filter_map(|(e, _, _)| match e {
            RunEvent::BottleneckCheck {
                predicted,
                measured,
                ..
            } => Some((predicted.clone(), measured.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(checks.len(), 2, "one audit per search epoch");
    for (predicted, measured) in &checks {
        assert!(["sample", "gather", "compute", "sync"].contains(&predicted.as_str()));
        assert!(CRITICAL_PATH_STAGES.contains(&measured.as_str()));
    }
    let text = argo_cli::report::render_report(&parsed, Some(&tel));
    assert!(text.contains("bottleneck audit"));
    assert!(text.contains("agreements"));
}

#[test]
fn chrome_json_empty_and_disabled_recorders() {
    use argo::rt::TraceRecorder;
    assert_eq!(TraceRecorder::new().to_chrome_json(), "[]");
    let disabled = TraceRecorder::disabled();
    disabled.record(0, argo::rt::Stage::Compute, 0.0, 1.0);
    assert_eq!(disabled.to_chrome_json(), "[]");
    // Both still parse as valid (empty) JSON arrays.
    assert_eq!(
        Json::parse(&disabled.to_chrome_json())
            .unwrap()
            .as_arr()
            .unwrap()
            .len(),
        0
    );
}
