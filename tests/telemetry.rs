//! End-to-end tests of the telemetry layer: a real auto-tuned training run
//! (and a modeled one) through the full stack — engine + tuner + sinks —
//! producing parseable JSONL with `epoch_end` and `tuner_trial` events,
//! valid Chrome-trace JSON, and a report with per-stage quantiles and the
//! incumbent-best trajectory.

use std::sync::Arc;

use argo::core::{Argo, ArgoOptions};
use argo::engine::{Engine, EngineOptions};
use argo::graph::datasets::{FLICKR, OGBN_PRODUCTS};
use argo::platform::{Library, ModelKind, PerfModel, SamplerKind, Setup, ICE_LAKE_8380H};
use argo::rt::telemetry::names;
use argo::rt::{Json, RunEvent, RunLogger, Source, Telemetry};
use argo::sample::NeighborSampler;

fn tiny_engine(seed: u64) -> Engine {
    let dataset = Arc::new(FLICKR.synthesize(0.008, seed));
    let sampler: Arc<dyn argo::sample::Sampler> = Arc::new(NeighborSampler::new(vec![6, 3]));
    Engine::new(
        dataset,
        sampler,
        EngineOptions {
            hidden: 8,
            num_layers: 2,
            global_batch: 64,
            total_cores: 16,
            seed,
            ..Default::default()
        },
    )
}

#[test]
fn measured_run_produces_full_telemetry() {
    let mut engine = tiny_engine(11);
    let mut argo = Argo::new(ArgoOptions {
        n_search: 3,
        epochs: 5,
        total_cores: 16,
        seed: 11,
    });
    let tel = Telemetry::new();
    let report = argo.train(&mut engine, Some(&tel), |_, _, _| {});

    // --- JSONL: parseable, with epoch_end and tuner_trial events --------
    let jsonl = tel.logger.to_jsonl();
    let parsed = RunLogger::parse_jsonl(&jsonl).expect("JSONL must parse");
    assert!(!parsed.is_empty());
    assert!(parsed.iter().all(|(_, _, s)| *s == Source::Measured));
    let epoch_ends: Vec<_> = parsed
        .iter()
        .filter_map(|(e, _, _)| match e {
            RunEvent::EpochEnd { epoch, record, .. } => Some((*epoch, *record)),
            _ => None,
        })
        .collect();
    assert_eq!(epoch_ends.len(), 5, "one epoch_end per epoch");
    assert_eq!(epoch_ends.last().unwrap().0, 4);
    let trials: Vec<_> = parsed
        .iter()
        .filter_map(|(e, _, _)| match e {
            RunEvent::TunerTrial(t) => Some(*t),
            _ => None,
        })
        .collect();
    assert_eq!(trials.len(), 3, "one tuner_trial per search epoch");
    // Incumbent best matches the report and is non-increasing.
    assert!(trials
        .windows(2)
        .all(|w| w[1].best_epoch_time <= w[0].best_epoch_time));
    assert_eq!(trials.last().unwrap().best_config, report.config_opt);
    // Suggest/observe CPU time is captured.
    assert!(trials
        .iter()
        .all(|t| t.suggest_seconds >= 0.0 && t.observe_seconds >= 0.0));

    // --- Chrome trace: valid JSON array of complete events --------------
    let chrome = tel.trace.to_chrome_json();
    let v = Json::parse(&chrome).expect("chrome trace must be valid JSON");
    let arr = v.as_arr().expect("top-level array");
    assert!(!arr.is_empty());
    for e in arr {
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
        assert!(e.get("ts").and_then(Json::as_f64).is_some());
        assert!(e.get("dur").and_then(Json::as_f64).unwrap() >= 0.0);
    }

    // --- Metrics agree with the structured events ------------------------
    let counters: std::collections::BTreeMap<_, _> = tel.metrics.counters().into_iter().collect();
    assert_eq!(counters[names::EPOCHS_TOTAL], 5);
    assert_eq!(counters[names::TUNER_TRIALS_TOTAL], 3);
    let total_iters: u64 = epoch_ends.iter().map(|(_, r)| r.iterations).sum();
    assert_eq!(counters[names::ITERATIONS_TOTAL], total_iters);

    // EpochStats::sync_time (rank 0) reconciles with the sync histogram,
    // which covers every rank: per-epoch sync_time sums to at most the
    // histogram total, and both are positive.
    let hists: std::collections::BTreeMap<_, _> = tel.metrics.histograms().into_iter().collect();
    let sync = &hists["stage_seconds/sync"];
    let stats_sync: f64 = epoch_ends.iter().map(|(_, r)| r.sync_time).sum();
    assert!(stats_sync > 0.0);
    assert!(
        sync.sum() >= stats_sync * 0.95,
        "{} < {}",
        sync.sum(),
        stats_sync
    );

    // --- Report renders per-stage quantiles and the convergence trace ----
    let text = argo_cli::report::render_report(&parsed, Some(&tel));
    assert!(text.contains("per-stage timings"));
    assert!(text.contains("p50") && text.contains("p95"));
    assert!(text.contains("compute"));
    assert!(text.contains("tuner convergence"));
    assert!(text.contains("selected "));
}

#[test]
fn modeled_run_shares_schema_with_measured() {
    let model = PerfModel::new(Setup {
        platform: ICE_LAKE_8380H,
        library: Library::Dgl,
        sampler: SamplerKind::Neighbor,
        model: ModelKind::Sage,
        dataset: OGBN_PRODUCTS,
    });
    let tel = Telemetry::with_source(Source::Modeled);
    let mut argo = Argo::new(ArgoOptions {
        n_search: 4,
        epochs: 8,
        total_cores: 112,
        seed: 2,
    });
    argo.run_modeled(&model, Some(&tel));
    let parsed = RunLogger::parse_jsonl(&tel.logger.to_jsonl()).unwrap();
    assert!(parsed.iter().all(|(_, _, s)| *s == Source::Modeled));
    // Exactly the same event kinds a measured run emits.
    let mut kinds: Vec<&str> = parsed.iter().map(|(e, _, _)| e.kind()).collect();
    kinds.sort_unstable();
    kinds.dedup();
    assert_eq!(
        kinds,
        vec![
            "config_applied",
            "epoch_end",
            "epoch_start",
            "stage_summary",
            "tuner_trial"
        ]
    );
    // The offline report renders from the file alone.
    let text = argo_cli::report::render_report(&parsed, None);
    assert!(text.contains("8 modeled"));
    assert!(text.contains("tuner convergence"));
}

#[test]
fn cli_flow_writes_and_reads_back_files() {
    // The CLI flow without spawning a process: run → write JSONL → parse →
    // render, exactly what `argo train --metrics-out F` + `argo report
    // --metrics F` do.
    let mut engine = tiny_engine(5);
    let mut argo = Argo::new(ArgoOptions {
        n_search: 2,
        epochs: 3,
        total_cores: 16,
        seed: 5,
    });
    let tel = Telemetry::new();
    argo.train(&mut engine, Some(&tel), |_, _, _| {});

    let dir = std::env::temp_dir();
    let path = dir.join(format!("argo-telemetry-test-{}.jsonl", std::process::id()));
    std::fs::write(&path, tel.logger.to_jsonl()).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let parsed = RunLogger::parse_jsonl(&text).unwrap();
    assert!(parsed.iter().any(|(e, _, _)| e.kind() == "epoch_end"));
    assert!(parsed.iter().any(|(e, _, _)| e.kind() == "tuner_trial"));
    let report = argo_cli::report::render_report(&parsed, None);
    assert!(report.contains("epochs: 3"));
}

#[test]
fn chrome_json_empty_and_disabled_recorders() {
    use argo::rt::TraceRecorder;
    assert_eq!(TraceRecorder::new().to_chrome_json(), "[]");
    let disabled = TraceRecorder::disabled();
    disabled.record(0, argo::rt::Stage::Compute, 0.0, 1.0);
    assert_eq!(disabled.to_chrome_json(), "[]");
    // Both still parse as valid (empty) JSON arrays.
    assert_eq!(
        Json::parse(&disabled.to_chrome_json())
            .unwrap()
            .as_arr()
            .unwrap()
            .len(),
        0
    );
}
