//! End-to-end integration: the full ARGO stack — dataset synthesis, sampling
//! pipeline, multi-process engine, gradient sync, online auto-tuning —
//! trains real models to convergence under every sampler/model pairing.

use std::sync::Arc;

use argo::core::{Argo, ArgoOptions};
use argo::engine::{evaluate_accuracy, Engine, EngineOptions};
use argo::graph::datasets::{Dataset, FLICKR, REDDIT};
use argo::nn::Arch;
use argo::sample::{
    full_graph_batch, ClusterGcnSampler, NeighborSampler, SaintRwSampler, Sampler, ShadowSampler,
};

fn tiny(seed: u64) -> Arc<Dataset> {
    Arc::new(FLICKR.synthesize(0.015, seed))
}

fn train_and_eval(kind: Arch, sampler: Arc<dyn Sampler>, dataset: Arc<Dataset>) -> (f64, f64) {
    let layers = sampler.num_layers();
    let mut engine = Engine::new(
        Arc::clone(&dataset),
        sampler,
        EngineOptions {
            kind,
            hidden: 16,
            num_layers: layers,
            global_batch: 128,
            lr: 5e-3,
            seed: 3,
            total_cores: 8,
            ..Default::default()
        },
    );
    let before = evaluate_accuracy(&engine.model(), &dataset, &dataset.val_nodes);
    let mut runtime = Argo::new(ArgoOptions {
        n_search: 3,
        epochs: 10,
        total_cores: 8,
        seed: 1,
    });
    let report = runtime.train(&mut engine, None, |_, _, _| {});
    assert!(report.total_time > 0.0);
    assert!(report.config_opt.fits(8));
    let after = evaluate_accuracy(&engine.model(), &dataset, &dataset.val_nodes);
    (before, after)
}

#[test]
fn neighbor_sage_learns() {
    let (before, after) = train_and_eval(
        Arch::Sage,
        Arc::new(NeighborSampler::new(vec![8, 4])),
        tiny(1),
    );
    assert!(after > before + 0.25, "SAGE: {before} -> {after}");
}

#[test]
fn neighbor_gcn_learns() {
    let (before, after) = train_and_eval(
        Arch::Gcn,
        Arc::new(NeighborSampler::new(vec![8, 4])),
        tiny(2),
    );
    assert!(after > before + 0.25, "GCN: {before} -> {after}");
}

#[test]
fn shadow_gcn_learns() {
    let (before, after) = train_and_eval(
        Arch::Gcn,
        Arc::new(ShadowSampler::new(vec![6, 3], 2)),
        tiny(3),
    );
    assert!(after > before + 0.25, "ShaDow-GCN: {before} -> {after}");
}

#[test]
fn shadow_sage_learns() {
    let (before, after) = train_and_eval(
        Arch::Sage,
        Arc::new(ShadowSampler::new(vec![6, 3], 2)),
        tiny(4),
    );
    assert!(after > before + 0.25, "ShaDow-SAGE: {before} -> {after}");
}

#[test]
fn gat_learns_end_to_end() {
    // The extension architecture trains through the same engine/runtime.
    let (before, after) = train_and_eval(
        Arch::Gat { heads: 2 },
        Arc::new(NeighborSampler::new(vec![8, 4])),
        tiny(7),
    );
    assert!(after > before + 0.2, "GAT: {before} -> {after}");
}

#[test]
fn saint_rw_sampler_learns() {
    let (before, after) = train_and_eval(Arch::Sage, Arc::new(SaintRwSampler::new(4, 2)), tiny(8));
    assert!(after > before + 0.2, "SAINT-RW: {before} -> {after}");
}

#[test]
fn cluster_gcn_sampler_learns() {
    let dataset = tiny(9);
    let sampler = Arc::new(ClusterGcnSampler::new(&dataset.graph, 16, 2));
    let (before, after) = train_and_eval(Arch::Gcn, sampler, dataset);
    assert!(after > before + 0.2, "ClusterGCN: {before} -> {after}");
}

#[test]
fn minibatch_converges_faster_per_epoch_than_full_graph() {
    // Paper Section II-B: full-graph training updates the model once per
    // epoch and "requires more epochs to converge" than mini-batch training.
    use argo::nn::{Adam, AnyModel, Optimizer};
    let d = tiny(10);
    let epochs = 6;
    // Full-graph: one update per epoch over the whole graph.
    let mut full = AnyModel::build(Arch::Gcn, d.feat_dim(), 16, d.num_classes, 2, 3);
    let mut opt = Adam::new(full.num_params(), 5e-3);
    let batch = full_graph_batch(&d.graph, &d.train_nodes);
    let mut full_loss = 0.0;
    for _ in 0..epochs {
        let stats = full.train_step(&batch, &d.features, &d.labels, None);
        full_loss = stats.loss;
        let (mut p, mut g) = (Vec::new(), Vec::new());
        full.params_flat(&mut p);
        full.grads_flat(&mut g);
        opt.step(&mut p, &g);
        full.set_params_flat(&p);
    }
    // Mini-batch: many updates per epoch via the engine, same epoch count.
    let mut engine = Engine::new(
        Arc::clone(&d),
        Arc::new(NeighborSampler::new(vec![8, 4])),
        EngineOptions {
            kind: Arch::Gcn,
            hidden: 16,
            num_layers: 2,
            global_batch: 64,
            lr: 5e-3,
            seed: 3,
            total_cores: 4,
            ..Default::default()
        },
    );
    let mut mb_loss = f32::INFINITY;
    for _ in 0..epochs {
        mb_loss = engine
            .train_epoch(argo::rt::Config::new(2, 1, 1), None)
            .loss;
    }
    assert!(
        mb_loss < full_loss,
        "after {epochs} epochs, mini-batch loss {mb_loss} should undercut full-graph loss {full_loss}"
    );
}

#[test]
fn three_layer_paper_model_runs() {
    // The paper's exact depth: 3-layer model with fanouts [15, 10, 5].
    let dataset = tiny(5);
    let mut engine = Engine::new(
        Arc::clone(&dataset),
        Arc::new(NeighborSampler::paper_default()),
        EngineOptions {
            hidden: 16,
            num_layers: 3,
            global_batch: 128,
            total_cores: 8,
            ..Default::default()
        },
    );
    let stats = engine.train_epoch(argo::rt::Config::new(2, 1, 2), None);
    assert!(stats.loss.is_finite());
    assert!(stats.edges > 0);
}

#[test]
fn reddit_like_density_works() {
    // Denser synthetic dataset (Reddit-like capped degree) exercises the
    // samplers under heavier neighborhoods.
    let dataset = Arc::new(REDDIT.synthesize(0.004, 6));
    assert!(dataset.graph.avg_degree() > 15.0);
    let mut engine = Engine::new(
        Arc::clone(&dataset),
        Arc::new(NeighborSampler::new(vec![10, 5])),
        EngineOptions {
            hidden: 16,
            num_layers: 2,
            global_batch: 256,
            total_cores: 8,
            ..Default::default()
        },
    );
    let s1 = engine.train_epoch(argo::rt::Config::new(2, 2, 1), None);
    let s2 = engine.train_epoch(argo::rt::Config::new(4, 1, 1), None);
    assert!(
        s2.loss < s1.loss * 1.5,
        "training must not diverge across configs"
    );
}
