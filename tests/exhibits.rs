//! Fast shape-checks of every paper exhibit the benches regenerate, so
//! `cargo test` guards the reproduction (the benches print the full data).

use argo::graph::datasets::{FLICKR, OGBN_PAPERS100M, OGBN_PRODUCTS, REDDIT};
use argo::platform::{
    Library, ModelKind, PerfModel, SamplerKind, Setup, ICE_LAKE_8380H, SAPPHIRE_RAPIDS_6430L,
};
use argo::rt::Config;
use argo::tune::{paper_num_searches, BayesOpt, SearchSpace, Searcher};

fn model(
    library: Library,
    sampler: SamplerKind,
    mk: ModelKind,
    dataset: argo::graph::DatasetSpec,
) -> PerfModel {
    PerfModel::new(Setup {
        platform: ICE_LAKE_8380H,
        library,
        sampler,
        model: mk,
        dataset,
    })
}

/// Figure 1: both libraries saturate by ~16 cores without ARGO.
#[test]
fn fig1_baselines_flatten_past_16_cores() {
    for library in [Library::Dgl, Library::Pyg] {
        let m = model(
            library,
            SamplerKind::Neighbor,
            ModelKind::Sage,
            OGBN_PRODUCTS,
        );
        let gain = m.baseline_epoch_time(16) / m.baseline_epoch_time(112);
        assert!(
            gain < 1.35,
            "{}: 16->112 core gain {gain} should be ~1",
            library.name()
        );
    }
}

/// Figure 6: workload inflates and bandwidth utilization flattens with the
/// process count.
#[test]
fn fig6_workload_and_bandwidth() {
    let m = model(
        Library::Dgl,
        SamplerKind::Neighbor,
        ModelKind::Sage,
        OGBN_PRODUCTS,
    );
    let w = m.setup().workload();
    assert!(w.epoch_edges(8) > w.epoch_edges(1) * 1.05);
    assert!(w.epoch_edges(16) >= w.epoch_edges(8));
    let u = |p| m.bandwidth_utilization(Config::new(p, 2, 6));
    assert!(u(8) > u(1));
    assert!(u(16) / u(8) < 1.2);
}

/// Figure 7: optima differ across setups.
#[test]
fn fig7_optima_vary_across_setups() {
    let mut optima = std::collections::HashSet::new();
    for (s, mk) in [
        (SamplerKind::Neighbor, ModelKind::Sage),
        (SamplerKind::Shadow, ModelKind::Gcn),
    ] {
        for d in [FLICKR, REDDIT, OGBN_PRODUCTS, OGBN_PAPERS100M] {
            let m = model(Library::Dgl, s, mk, d);
            let (cfg, _) = m.argo_best_epoch_time(112);
            assert!((2..=8).contains(&cfg.n_proc));
            optima.insert(cfg);
        }
    }
    assert!(
        optima.len() >= 3,
        "optimal configs should vary across setups"
    );
}

/// Figure 8: ARGO out-scales the baseline past 16 cores on both platforms.
#[test]
fn fig8_argo_scales_past_16_cores() {
    for platform in [ICE_LAKE_8380H, SAPPHIRE_RAPIDS_6430L] {
        let m = PerfModel::new(Setup {
            platform,
            library: Library::Dgl,
            sampler: SamplerKind::Neighbor,
            model: ModelKind::Sage,
            dataset: OGBN_PRODUCTS,
        });
        let cores = platform.total_cores;
        let base_gain = m.baseline_epoch_time(16) / m.baseline_epoch_time(cores);
        let argo_gain = m.argo_best_epoch_time(16).1 / m.argo_best_epoch_time(cores).1;
        assert!(
            argo_gain > base_gain,
            "{}: {argo_gain} !> {base_gain}",
            platform.name
        );
        assert!(argo_gain > 1.25);
    }
}

/// Tables IV/V: on every one of the 32 rows the tuned configuration beats
/// the default, and ShaDow defaults are the worst.
#[test]
fn tables45_default_always_loses() {
    for library in [Library::Dgl, Library::Pyg] {
        for platform in [ICE_LAKE_8380H, SAPPHIRE_RAPIDS_6430L] {
            for (s, mk) in [
                (SamplerKind::Neighbor, ModelKind::Sage),
                (SamplerKind::Shadow, ModelKind::Gcn),
            ] {
                for d in [FLICKR, REDDIT, OGBN_PRODUCTS, OGBN_PAPERS100M] {
                    let m = PerfModel::new(Setup {
                        platform,
                        library,
                        sampler: s,
                        model: mk,
                        dataset: d,
                    });
                    let best = m.argo_best_epoch_time(platform.total_cores).1;
                    let default = m.epoch_time(m.default_config());
                    assert!(best < default, "{} {}", library.name(), m.setup().label());
                }
            }
        }
    }
}

/// Table IV headline: the auto-tuner reaches >=90% of optimal with the
/// paper's 5% budget (checked on two representative rows; the full sweep is
/// in the tune crate's integration tests and the table benches).
#[test]
fn table4_autotuner_within_90_percent() {
    for (s, mk) in [
        (SamplerKind::Neighbor, ModelKind::Sage),
        (SamplerKind::Shadow, ModelKind::Gcn),
    ] {
        let m = model(Library::Dgl, s, mk, OGBN_PRODUCTS);
        let opt = m.argo_best_epoch_time(112).1;
        let budget = paper_num_searches(112, matches!(s, SamplerKind::Shadow));
        let mut bo = BayesOpt::new(SearchSpace::for_cores(112), 11);
        for _ in 0..budget {
            let c = bo.suggest();
            bo.observe(c, m.epoch_time(c));
        }
        let found = bo.best().unwrap().1;
        assert!(
            opt / found >= 0.9,
            "{}: {found} vs optimal {opt}",
            m.setup().label()
        );
    }
}

/// Table VI: search budgets are 5-7% of the space.
#[test]
fn table6_budget_fractions() {
    for cores in [64usize, 112] {
        let space = SearchSpace::for_cores(cores).len();
        for shadow in [false, true] {
            let n = paper_num_searches(cores, shadow);
            let f = n as f64 / space as f64;
            assert!((0.04..0.08).contains(&f));
        }
    }
}

/// Figures 10/11: ShaDow tasks gain more from ARGO than Neighbor tasks, and
/// speedups are in the paper's range (up to ~5-7x).
#[test]
fn fig10_shadow_speedup_dominates() {
    for library in [Library::Dgl, Library::Pyg] {
        let nb = model(library, SamplerKind::Neighbor, ModelKind::Sage, REDDIT);
        let sh = model(library, SamplerKind::Shadow, ModelKind::Gcn, REDDIT);
        let sp = |m: &PerfModel| m.epoch_time(m.default_config()) / m.argo_best_epoch_time(112).1;
        let (sp_nb, sp_sh) = (sp(&nb), sp(&sh));
        assert!(
            sp_sh > sp_nb,
            "{}: shadow {sp_sh} !> neighbor {sp_nb}",
            library.name()
        );
        assert!(
            sp_sh > 2.0 && sp_sh < 12.0,
            "shadow speedup {sp_sh} out of range"
        );
    }
}

/// Section VI-D: DGL is faster than PyG on every task (the table pairs).
#[test]
fn dgl_beats_pyg_on_all_rows() {
    for (s, mk) in [
        (SamplerKind::Neighbor, ModelKind::Sage),
        (SamplerKind::Shadow, ModelKind::Gcn),
    ] {
        for d in [FLICKR, REDDIT, OGBN_PRODUCTS, OGBN_PAPERS100M] {
            let dgl = model(Library::Dgl, s, mk, d).argo_best_epoch_time(112).1;
            let pyg = model(Library::Pyg, s, mk, d).argo_best_epoch_time(112).1;
            assert!(dgl < pyg, "{s:?} {}", d.name);
        }
    }
}
