//! Cross-crate property-based tests (proptest): invariants that must hold
//! for *any* graph, batch, configuration or observation set — the
//! correctness backbone of the reproduction.

use proptest::prelude::*;

use argo::graph::generators::{planted_communities, power_law};
use argo::graph::partition::{bfs_partition, random_partition, split_even};
use argo::graph::{Graph, NodeId};
use argo::rt::{enumerate_space, AllReduce, Config, CoreBinder, SeedSequence};
use argo::sample::{NeighborSampler, SampledBatch, Sampler, ShadowSampler};
use argo::tensor::{Matrix, SparseMatrix};
use argo::tune::acquisition::expected_improvement;
use argo::tune::gp::GaussianProcess;
use argo::tune::SearchSpace;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CSR construction from any edge list preserves the edge multiset.
    #[test]
    fn csr_roundtrip(edges in prop::collection::vec((0u32..40, 0u32..40), 0..200)) {
        let g = Graph::from_edges(40, &edges, false);
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.num_edges(), edges.len());
        let mut want = edges.clone();
        want.sort_unstable();
        let mut got: Vec<(u32, u32)> = Vec::new();
        for v in 0..40u32 {
            for &u in g.neighbors(v) {
                got.push((v, u));
            }
        }
        got.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Undirected construction is symmetric for any edge list.
    #[test]
    fn undirected_is_symmetric(edges in prop::collection::vec((0u32..30, 0u32..30), 1..120)) {
        let g = Graph::from_edges(30, &edges, true);
        for v in 0..30u32 {
            for &u in g.neighbors(v) {
                prop_assert!(g.has_edge(u, v), "missing {u}->{v}");
            }
        }
    }

    /// The reverse of the reverse is the original graph.
    #[test]
    fn reverse_involution(edges in prop::collection::vec((0u32..25, 0u32..25), 0..100)) {
        let g = Graph::from_edges(25, &edges, false);
        prop_assert_eq!(g.reverse().reverse(), g);
    }

    /// Any partition covers all items exactly once with balanced sizes.
    #[test]
    fn partitions_cover_and_balance(n in 1usize..300, parts in 1usize..9, seed in 0u64..50) {
        let items: Vec<NodeId> = (0..n as NodeId).collect();
        for p in [random_partition(&items, parts, seed), split_even(&items, parts)] {
            let mut all: Vec<NodeId> = p.iter().flatten().copied().collect();
            all.sort_unstable();
            prop_assert_eq!(&all, &items);
            let sizes: Vec<usize> = p.iter().map(Vec::len).collect();
            prop_assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        }
    }

    /// BFS partition also covers everything (balance within ±1).
    #[test]
    fn bfs_partition_covers(n in 20usize..200, parts in 1usize..6, seed in 0u64..20) {
        let g = power_law(n, n * 4, 0.8, seed);
        let items: Vec<NodeId> = (0..n as NodeId).collect();
        let p = bfs_partition(&g, &items, parts);
        let mut all: Vec<NodeId> = p.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(&all, &items);
    }

    /// Neighbor sampling on any graph yields valid blocks: fanout bounds,
    /// edges exist in the graph, src prefix equals dst, layers chain.
    #[test]
    fn neighbor_sampler_invariants(
        n in 30usize..150,
        m in 60usize..600,
        f1 in 1usize..8,
        f2 in 1usize..8,
        seed in 0u64..30,
    ) {
        let g = power_law(n, m, 0.8, seed);
        let sampler = NeighborSampler::new(vec![f1, f2]);
        let seeds: Vec<NodeId> = (0..10.min(n) as NodeId).collect();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xABC);
        let SampledBatch::Blocks(mb) = sampler.sample(&g, &seeds, &mut rng) else {
            panic!("neighbor sampler must return blocks");
        };
        prop_assert_eq!(mb.blocks.len(), 2);
        let fanouts = [f1, f2];
        for (l, b) in mb.blocks.iter().enumerate() {
            prop_assert_eq!(&b.src_nodes[..b.dst_nodes.len()], &b.dst_nodes[..]);
            for i in 0..b.adj.rows() {
                let deg = b.adj.indptr()[i + 1] - b.adj.indptr()[i];
                prop_assert!(deg <= fanouts[l]);
                for k in b.adj.indptr()[i]..b.adj.indptr()[i + 1] {
                    let u = b.src_nodes[b.adj.indices()[k] as usize];
                    prop_assert!(g.has_edge(b.dst_nodes[i], u));
                }
            }
        }
        prop_assert_eq!(&mb.blocks[0].dst_nodes, &mb.blocks[1].src_nodes);
        prop_assert_eq!(&mb.blocks[1].dst_nodes, &mb.seeds);
    }

    /// ShaDow sampling returns an induced subgraph whose edges all exist in
    /// the parent graph and whose seeds lead the node list.
    #[test]
    fn shadow_sampler_invariants(
        n in 30usize..150,
        m in 60usize..600,
        seed in 0u64..30,
    ) {
        let g = planted_communities(n.max(32), m, 4, 0.8, seed);
        let sampler = ShadowSampler::new(vec![6, 3], 2);
        let seeds: Vec<NodeId> = (0..8).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        let SampledBatch::Subgraph(sb) = sampler.sample(&g, &seeds, &mut rng) else {
            panic!("shadow sampler must return a subgraph");
        };
        prop_assert_eq!(&sb.nodes[..8], &seeds[..]);
        for i in 0..sb.adj.rows() {
            for k in sb.adj.indptr()[i]..sb.adj.indptr()[i + 1] {
                let u = sb.nodes[sb.adj.indices()[k] as usize];
                prop_assert!(g.has_edge(sb.nodes[i], u));
            }
        }
        // No duplicates.
        let mut ids = sb.nodes.clone();
        ids.sort_unstable();
        let len = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), len);
    }

    /// SpMM against any CSR structure equals the dense product.
    #[test]
    fn spmm_matches_dense(
        rows in 1usize..12,
        cols in 1usize..12,
        inner in 1usize..12,
        mask in prop::collection::vec(any::<bool>(), 144),
        vals in prop::collection::vec(-2.0f32..2.0, 144),
    ) {
        let mut indptr = vec![0usize];
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for i in 0..rows {
            for j in 0..inner {
                let k = i * inner + j;
                if mask[k % mask.len()] {
                    indices.push(j as u32);
                    values.push(vals[k % vals.len()]);
                }
            }
            indptr.push(indices.len());
        }
        let s = SparseMatrix::new(rows, inner, indptr, indices, Some(values));
        let d = Matrix::xavier(inner, cols, 7);
        let got = s.spmm(&d);
        let want = s.to_dense().matmul(&d);
        for (a, b) in got.data().iter().zip(want.data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
        // Transposed SpMM agrees with dense too: (sᵀ d2)
        let d2 = Matrix::xavier(rows, cols, 8);
        let got_t = s.spmm_transpose(&d2);
        let sd = s.to_dense();
        let mut st = Matrix::zeros(inner, rows);
        for i in 0..rows {
            for j in 0..inner {
                st.set(j, i, sd.get(i, j));
            }
        }
        let want_t = st.matmul(&d2);
        for (a, b) in got_t.data().iter().zip(want_t.data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// Matrix multiplication is associative (loose f32 tolerance).
    #[test]
    fn matmul_associative(a_seed in 0u64..50, n in 2usize..8) {
        let a = Matrix::xavier(n, n, a_seed);
        let b = Matrix::xavier(n, n, a_seed + 1);
        let c = Matrix::xavier(n, n, a_seed + 2);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// The all-reduce mean over any group size and values is the arithmetic
    /// mean for every participant.
    #[test]
    fn allreduce_is_mean(n in 1usize..6, dim in 1usize..32, base in -10.0f32..10.0) {
        let ar = std::sync::Arc::new(AllReduce::new(n, dim));
        let results: Vec<Vec<f32>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|r| {
                    let ar = std::sync::Arc::clone(&ar);
                    s.spawn(move || {
                        let mut buf = vec![base + r as f32; dim];
                        ar.reduce_mean(&mut buf);
                        buf
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let expect = base + (0..n).map(|r| r as f32).sum::<f32>() / n as f32;
        for r in results {
            for v in r {
                prop_assert!((v - expect).abs() < 1e-4);
            }
        }
    }

    /// Every enumerated configuration fits its machine; the binder plans it
    /// with disjoint cores.
    #[test]
    fn space_configs_bindable(cores in 4usize..128) {
        let binder = CoreBinder::new(cores);
        for c in enumerate_space(cores) {
            prop_assert!(c.fits(cores));
            let plan = binder.plan(c.n_proc, c.n_samp, c.n_train).expect("fits");
            let mut all: Vec<usize> = plan
                .iter()
                .flat_map(|b| b.sampling.ids().iter().chain(b.training.ids()).copied())
                .collect();
            let len = all.len();
            all.sort_unstable();
            all.dedup();
            prop_assert_eq!(all.len(), len, "overlapping cores in plan for {}", c);
        }
    }

    /// GP posterior mean interpolates noisy-free observations for any
    /// (small) observation set with distinct inputs.
    #[test]
    fn gp_interpolates(pts in prop::collection::btree_set((0u8..10, 0u8..10, 0u8..10), 3..10)) {
        let x: Vec<[f64; 3]> = pts
            .iter()
            .map(|&(a, b, c)| [a as f64 / 10.0, b as f64 / 10.0, c as f64 / 10.0])
            .collect();
        let y: Vec<f64> = x.iter().map(|v| 1.0 + v[0] * 2.0 - v[1] + v[2] * 0.5).collect();
        let gp = GaussianProcess::fit(&x, &y);
        for (xi, yi) in x.iter().zip(&y) {
            let (m, _) = gp.predict(xi);
            prop_assert!((m - yi).abs() < 0.35, "pred {m} vs {yi}");
        }
    }

    /// Expected improvement is non-negative and zero-variance EI equals the
    /// plain improvement.
    #[test]
    fn ei_nonnegative(mean in -5.0f64..5.0, std in 0.0f64..3.0, best in -5.0f64..5.0) {
        let ei = expected_improvement(mean, std, best, 0.0);
        prop_assert!(ei >= 0.0);
        if std == 0.0 {
            prop_assert!((ei - (best - mean).max(0.0)).abs() < 1e-12);
        }
    }

    /// Seed fan-out: distinct coordinates yield distinct seeds (no trivial
    /// collisions in small windows).
    #[test]
    fn seed_sequence_injective_window(root in 0u64..1000, a in 0u64..50, b in 0u64..50) {
        let s = SeedSequence::new(root);
        if a != b {
            prop_assert_ne!(s.seed_for(a, 0), s.seed_for(b, 0));
            prop_assert_ne!(s.seed_for(0, a), s.seed_for(0, b));
            prop_assert_ne!(s.child(a), s.child(b));
        }
    }

    /// SearchSpace::project always returns a member, and members project to
    /// themselves.
    #[test]
    fn project_into_space(cores in 8usize..96, p in -4i64..20, s in -4i64..10, t in -4i64..40) {
        let space = SearchSpace::for_cores(cores);
        let c = space.project(p, s, t);
        prop_assert!(space.contains(c));
    }

    /// Config arithmetic: total cores and fit are consistent.
    #[test]
    fn config_fit_consistency(p in 1usize..16, s in 1usize..8, t in 1usize..32) {
        let c = Config::new(p, s, t);
        prop_assert_eq!(c.total_cores(), p * (s + t));
        prop_assert!(c.fits(c.total_cores()));
        prop_assert!(!c.fits(c.total_cores() - 1));
    }

    /// Edge softmax: rows are probability distributions for any structure
    /// and any logits, and its backward matches the analytic Jacobian
    /// (gradients sum to ~0 within a row under a constant upstream).
    #[test]
    fn edge_softmax_rows_are_distributions(
        rows in 1usize..8,
        cols in 1usize..8,
        mask in prop::collection::vec(any::<bool>(), 64),
        logits in prop::collection::vec(-4.0f32..4.0, 64),
    ) {
        let mut indptr = vec![0usize];
        let mut indices = Vec::new();
        let mut vals = Vec::new();
        for i in 0..rows {
            for j in 0..cols {
                let k = i * cols + j;
                if mask[k % mask.len()] {
                    indices.push(j as u32);
                    vals.push(logits[k % logits.len()]);
                }
            }
            indptr.push(indices.len());
        }
        let s = SparseMatrix::new(rows, cols, indptr, indices, Some(vals));
        let sm = s.row_softmax();
        let v = sm.values().unwrap();
        for i in 0..rows {
            let (lo, hi) = (sm.indptr()[i], sm.indptr()[i + 1]);
            if hi > lo {
                let sum: f32 = v[lo..hi].iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-4, "row {i} sums to {sum}");
                prop_assert!(v[lo..hi].iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)));
            }
        }
        // Constant upstream gradient ⇒ logits gradient ≈ 0 (softmax is
        // invariant to constant shifts).
        let d_alpha = vec![1.0f32; sm.nnz()];
        let de = sm.row_softmax_backward(&d_alpha);
        prop_assert!(de.iter().all(|g| g.abs() < 1e-5));
    }

    /// The pipelined loader yields identical batch contents regardless of
    /// the number of sampler workers, for any batch size.
    #[test]
    fn loader_order_invariant_to_workers(batch_size in 1usize..40, workers in 1usize..5, seed in 0u64..20) {
        use argo::sample::LoaderSpec;
        use argo::rt::SeedSequence;
        use std::sync::Arc;
        let g = Arc::new(power_law(200, 1600, 0.8, seed));
        let sampler: Arc<dyn Sampler> = Arc::new(NeighborSampler::new(vec![4, 3]));
        let seeds: Arc<Vec<NodeId>> = Arc::new((0..60).collect());
        let collect = |n_samp: usize| -> Vec<Vec<NodeId>> {
            LoaderSpec::builder(Arc::clone(&g), Arc::clone(&sampler), Arc::clone(&seeds))
                .batch_size(batch_size)
                .epoch_seeds(SeedSequence::new(seed))
                .n_samp(n_samp)
                .prefetch(2)
                .start()
                .map(|(_, b)| b.batch.input_nodes().to_vec())
                .collect()
        };
        prop_assert_eq!(collect(1), collect(workers));
    }

    /// GAT attention rows are probability distributions on any sampled
    /// batch, via the full model forward (smoke + invariant).
    #[test]
    fn gat_forward_is_finite(seed in 0u64..15, heads in 1usize..4) {
        use argo::nn::Gat;
        let g = planted_communities(120, 900, 3, 0.85, seed);
        let feats = argo::graph::features::community_features(120, 8, 3, 0.3, seed).0;
        let sampler = NeighborSampler::new(vec![4, 3]);
        let mut rng = SmallRng::seed_from_u64(seed);
        let batch = sampler.sample(&g, &[0, 1, 2, 3, 4], &mut rng);
        let gat = Gat::new(8, 4 * heads, 3, 2, heads, seed);
        let out = gat.forward(&batch, &feats, None);
        prop_assert_eq!(out.rows(), 5);
        prop_assert!(out.data().iter().all(|x| x.is_finite()));
    }

    /// Dataset serialization round-trips any synthesized instance.
    #[test]
    fn dataset_io_roundtrip(scale_milli in 3u64..12, seed in 0u64..10) {
        use argo::graph::io::{read_dataset, write_dataset};
        let d = argo::graph::datasets::FLICKR.synthesize(scale_milli as f64 / 1000.0, seed);
        let mut buf = Vec::new();
        write_dataset(&mut buf, &d).unwrap();
        let d2 = read_dataset(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(d.graph, d2.graph);
        prop_assert_eq!(d.labels, d2.labels);
        prop_assert_eq!(d.features.data(), d2.features.data());
    }

    /// NUMA planning never overlaps cores and never splits a process across
    /// sockets, for any geometry where it claims success.
    #[test]
    fn numa_plan_invariants(
        sockets in 1usize..5,
        per_socket in 2usize..24,
        n_proc in 1usize..9,
        n_samp in 1usize..4,
        n_train in 1usize..12,
    ) {
        let total = sockets * per_socket;
        let binder = CoreBinder::new(total);
        if let Some(plan) = binder.plan_numa(sockets, n_proc, n_samp, n_train) {
            let mut all: Vec<usize> = Vec::new();
            for b in &plan {
                let cores: Vec<usize> = b.sampling.ids().iter().chain(b.training.ids()).copied().collect();
                let socks: std::collections::HashSet<usize> =
                    cores.iter().map(|&c| binder.socket_of(c, sockets)).collect();
                prop_assert_eq!(socks.len(), 1, "process straddles sockets");
                prop_assert!(cores.iter().all(|&c| c < total));
                all.extend(cores);
            }
            let n = all.len();
            all.sort_unstable();
            all.dedup();
            prop_assert_eq!(all.len(), n, "overlapping cores");
        }
    }

    /// Merging per-process metric registries into an empty one equals the
    /// global registry that saw every observation directly: counters add,
    /// histogram buckets/counts/sums add, maxes take the max — for any
    /// split of any observation sequence across any number of processes.
    #[test]
    fn merged_per_process_registries_equal_global(
        obs in prop::collection::vec((0usize..4, 0u64..1000), 0..120),
        n_proc in 1usize..5,
    ) {
        use argo::rt::MetricsRegistry;
        let global = MetricsRegistry::new();
        let locals: Vec<MetricsRegistry> =
            (0..n_proc).map(|_| MetricsRegistry::new()).collect();
        for (i, &(which, raw)) in obs.iter().enumerate() {
            let local = &locals[i % n_proc];
            // Mix counters and histograms; values span several buckets.
            let value = raw as f64 * 1e-5;
            match which {
                0 => {
                    global.counter("iters").add(raw);
                    local.counter("iters").add(raw);
                }
                1 => {
                    global.counter("edges").inc();
                    local.counter("edges").inc();
                }
                _ => {
                    let name = if which == 2 { "stage/compute" } else { "stage/sync" };
                    global.time_histogram(name).observe(value);
                    local.time_histogram(name).observe(value);
                }
            }
        }
        let merged = MetricsRegistry::new();
        for local in &locals {
            merged.merge(local);
        }
        prop_assert_eq!(merged.counters(), global.counters());
        let mh = merged.histograms();
        let gh = global.histograms();
        prop_assert_eq!(mh.len(), gh.len());
        for ((mn, m), (gn, g)) in mh.iter().zip(gh.iter()) {
            prop_assert_eq!(mn, gn);
            prop_assert_eq!(m.count(), g.count());
            prop_assert_eq!(m.bucket_counts(), g.bucket_counts());
            prop_assert!((m.sum() - g.sum()).abs() <= 1e-12 * g.sum().abs().max(1.0));
            prop_assert_eq!(m.max(), g.max());
        }
    }
}
