#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from the repository root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (-D clippy::too_many_arguments)"
cargo clippy --workspace --all-targets -- -D clippy::too_many_arguments

echo "==> argo-lint (static analysis: unsafe/SAFETY, no-panic, no-instant, telemetry schema)"
cargo run -q -p argo-check --bin argo-lint

echo "==> cargo test -q -p argo-check --features sanitize (lock-order sanitizer + mini-loom)"
cargo test -q -p argo-check --features sanitize

echo "==> cargo test -q -p argo-check --features race (happens-before race detector: seeded-bug corpus + zero-FP train/serve runs)"
cargo test -q -p argo-check --features race

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> micro_kernels quick perf gate (blocked must not lose to serial; simd must not lose to the tier below)"
ARGO_BENCH_QUICK=1 cargo bench -q -p argo-bench --bench micro_kernels

echo "==> cargo test -q -p argo-tensor with SIMD force-disabled (scalar fallback path)"
ARGO_SIMD=off cargo test -q -p argo-tensor

echo "==> micro_sampling quick perf gate (scratch sampler must not lose to the pre-scratch reference; arena assembly must not lose to legacy; span profiler overhead <= 5%)"
ARGO_BENCH_QUICK=1 cargo bench -q -p argo-bench --bench micro_sampling

echo "==> micro_serving quick perf gate (tuned p99 must not lose to the library default; warm result-cache hit rate > 0.9)"
ARGO_BENCH_QUICK=1 cargo bench -q -p argo-bench --bench micro_serving

echo "==> argo perf-diff (speedup ratios of the quick run vs committed BENCH_*.json, 15% tolerance)"
cargo run -q -p argo-cli --bin argo -- perf-diff --quick true

echo "==> cargo test -q -p argo-sample"
cargo test -q -p argo-sample

echo "==> cargo test -q -p argo-sample with SIMD force-disabled (arena assembly + gather on the scalar path)"
ARGO_SIMD=off cargo test -q -p argo-sample

echo "==> cargo test -q -p argo-serve"
cargo test -q -p argo-serve

echo "==> cargo test -q"
cargo test --workspace -q

echo "CI OK"
