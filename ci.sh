#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from the repository root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (-D clippy::too_many_arguments)"
cargo clippy --workspace --all-targets -- -D clippy::too_many_arguments

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test -q -p argo-sample"
cargo test -q -p argo-sample

echo "==> cargo test -q"
cargo test --workspace -q

echo "CI OK"
