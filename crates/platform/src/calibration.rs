//! The paper's published evaluation numbers, as data.
//!
//! Tables IV/V report, per (platform, library, sampler-model, dataset), the
//! epoch time of the exhaustive optimum and the default setup's normalized
//! speed. These constants are the calibration targets of [`crate::perf`]
//! and let tests and benches compute model-vs-paper ratios without
//! hard-coding numbers in multiple places.

use argo_graph::datasets::{DatasetSpec, FLICKR, OGBN_PAPERS100M, OGBN_PRODUCTS, REDDIT};

use crate::library::Library;
use crate::perf::{PerfModel, Setup};
use crate::spec::{PlatformSpec, ICE_LAKE_8380H, SAPPHIRE_RAPIDS_6430L};
use crate::workload::{ModelKind, SamplerKind};

/// One row of Table IV/V.
#[derive(Clone, Copy, Debug)]
pub struct PaperRow {
    /// Platform of the row.
    pub platform: PlatformSpec,
    /// Library (Table IV = DGL, Table V = PyG).
    pub library: Library,
    /// Sampler of the task.
    pub sampler: SamplerKind,
    /// Model of the task.
    pub model: ModelKind,
    /// Dataset of the task.
    pub dataset: DatasetSpec,
    /// Exhaustive-optimal epoch time in seconds (`None` where the paper
    /// could not run the exhaustive search — PyG papers100M).
    pub exhaustive_s: Option<f64>,
    /// Default setup's speed normalized to the optimum (Table IV/V "(x)").
    pub default_x: f64,
    /// Auto-tuner's normalized speed.
    pub autotuner_x: f64,
}

impl PaperRow {
    /// The modeled setup for this row.
    pub fn setup(&self) -> Setup {
        Setup {
            platform: self.platform,
            library: self.library,
            sampler: self.sampler,
            model: self.model,
            dataset: self.dataset,
        }
    }

    /// Our model's optimal epoch time for this row.
    pub fn modeled_optimal(&self) -> f64 {
        PerfModel::new(self.setup())
            .argo_best_epoch_time(self.platform.total_cores)
            .1
    }

    /// Ratio modeled/paper for the exhaustive optimum (None when the paper
    /// has no exhaustive number).
    pub fn optimal_ratio(&self) -> Option<f64> {
        self.exhaustive_s.map(|p| self.modeled_optimal() / p)
    }
}

macro_rules! row {
    ($plat:expr, $lib:expr, $samp:expr, $model:expr, $ds:expr, $ex:expr, $def:expr, $at:expr) => {
        PaperRow {
            platform: $plat,
            library: $lib,
            sampler: $samp,
            model: $model,
            dataset: $ds,
            exhaustive_s: $ex,
            default_x: $def,
            autotuner_x: $at,
        }
    };
}

/// Table IV (DGL), all 16 rows in paper order.
pub fn table4_dgl() -> Vec<PaperRow> {
    use Library::Dgl as L;
    use ModelKind::{Gcn, Sage};
    use SamplerKind::{Neighbor as N, Shadow as S};
    let il = ICE_LAKE_8380H;
    let spr = SAPPHIRE_RAPIDS_6430L;
    vec![
        row!(il, L, N, Sage, FLICKR, Some(1.98), 0.93, 1.00),
        row!(il, L, N, Sage, REDDIT, Some(13.83), 0.81, 0.97),
        row!(il, L, N, Sage, OGBN_PRODUCTS, Some(11.19), 0.54, 0.96),
        row!(il, L, N, Sage, OGBN_PAPERS100M, Some(115.4), 0.75, 0.99),
        row!(il, L, S, Gcn, FLICKR, Some(1.34), 0.73, 0.96),
        row!(il, L, S, Gcn, REDDIT, Some(32.68), 0.16, 0.93),
        row!(il, L, S, Gcn, OGBN_PRODUCTS, Some(14.68), 0.29, 0.93),
        row!(il, L, S, Gcn, OGBN_PAPERS100M, Some(107.8), 0.62, 0.97),
        row!(spr, L, N, Sage, FLICKR, Some(1.81), 0.94, 0.96),
        row!(spr, L, N, Sage, REDDIT, Some(11.25), 0.79, 1.00),
        row!(spr, L, N, Sage, OGBN_PRODUCTS, Some(7.40), 0.48, 0.94),
        row!(spr, L, N, Sage, OGBN_PAPERS100M, Some(41.48), 0.61, 0.99),
        row!(spr, L, S, Gcn, FLICKR, Some(1.28), 0.73, 1.00),
        row!(spr, L, S, Gcn, REDDIT, Some(32.12), 0.23, 0.96),
        row!(spr, L, S, Gcn, OGBN_PRODUCTS, Some(11.42), 0.23, 0.90),
        row!(spr, L, S, Gcn, OGBN_PAPERS100M, Some(54.56), 0.49, 0.96),
    ]
}

/// Table V (PyG), all 16 rows in paper order.
pub fn table5_pyg() -> Vec<PaperRow> {
    use Library::Pyg as L;
    use ModelKind::{Gcn, Sage};
    use SamplerKind::{Neighbor as N, Shadow as S};
    let il = ICE_LAKE_8380H;
    let spr = SAPPHIRE_RAPIDS_6430L;
    vec![
        row!(il, L, N, Sage, FLICKR, Some(5.46), 1.00, 0.90),
        row!(il, L, N, Sage, REDDIT, Some(41.83), 0.78, 1.00),
        row!(il, L, N, Sage, OGBN_PRODUCTS, Some(161.4), 0.87, 0.97),
        row!(il, L, N, Sage, OGBN_PAPERS100M, None, 0.82, 1.00),
        row!(il, L, S, Gcn, FLICKR, Some(9.48), 0.33, 0.96),
        row!(il, L, S, Gcn, REDDIT, Some(40.75), 0.23, 0.98),
        row!(il, L, S, Gcn, OGBN_PRODUCTS, Some(71.94), 0.19, 0.99),
        row!(il, L, S, Gcn, OGBN_PAPERS100M, None, 0.94, 1.00),
        row!(spr, L, N, Sage, FLICKR, Some(5.67), 0.92, 0.97),
        row!(spr, L, N, Sage, REDDIT, Some(47.36), 0.87, 1.00),
        row!(spr, L, N, Sage, OGBN_PRODUCTS, Some(117.9), 0.76, 0.95),
        row!(spr, L, N, Sage, OGBN_PAPERS100M, None, 0.87, 1.00),
        row!(spr, L, S, Gcn, FLICKR, Some(8.49), 0.30, 1.00),
        row!(spr, L, S, Gcn, REDDIT, Some(36.41), 0.21, 1.00),
        row!(spr, L, S, Gcn, OGBN_PRODUCTS, Some(64.52), 0.20, 1.00),
        row!(spr, L, S, Gcn, OGBN_PAPERS100M, None, 0.81, 1.00),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_rows_each() {
        assert_eq!(table4_dgl().len(), 16);
        assert_eq!(table5_pyg().len(), 16);
    }

    #[test]
    fn paper_autotuner_is_at_least_90_percent_everywhere() {
        // Sanity of the transcription: the paper's headline claim holds in
        // its own table.
        for r in table4_dgl().into_iter().chain(table5_pyg()) {
            assert!(r.autotuner_x >= 0.90, "{:?}", r.dataset.name);
            assert!(r.default_x <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn model_within_calibration_band_on_dgl() {
        // Every DGL row's modeled optimum is within 0.2–5× of the paper —
        // the repo-wide calibration contract (EXPERIMENTS.md).
        for r in table4_dgl() {
            let ratio = r.optimal_ratio().unwrap();
            assert!(
                (0.2..5.0).contains(&ratio),
                "{} {}: ratio {ratio}",
                r.library.name(),
                r.dataset.name
            );
        }
    }

    #[test]
    fn pyg_products_is_the_known_outlier() {
        // Table V's PyG/products row is documented as the one cell our cost
        // profile does not chase (EXPERIMENTS.md).
        let rows = table5_pyg();
        let products_il = &rows[2];
        let ratio = products_il.optimal_ratio().unwrap();
        assert!(
            ratio < 0.5,
            "outlier expected to stay under-modeled, got {ratio}"
        );
        // All other exhaustive PyG rows stay within the band.
        for (i, r) in rows.iter().enumerate() {
            if i == 2 || i == 10 {
                continue; // the two PyG-products rows
            }
            if let Some(ratio) = r.optimal_ratio() {
                assert!(
                    (0.2..5.0).contains(&ratio),
                    "row {i} {}: ratio {ratio}",
                    r.dataset.name
                );
            }
        }
    }
}
