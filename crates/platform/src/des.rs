//! Discrete-event simulation of the ARGO multi-process pipeline.
//!
//! The analytic [`crate::perf::PerfModel`] predicts epoch times with closed
//! formulas; this module *executes* the schedule instead: per process, a
//! pool of sampler workers produces batches into a bounded prefetch queue, a
//! trainer drains it — each batch is a memory-bound **gather** on a
//! processor-shared memory resource followed by a CPU-bound **compute** —
//! and every iteration ends in a synchronous all-reduce barrier across
//! processes. Exactly the Figure 2/4 structure, with queueing and
//! contention emerging from the event dynamics rather than from formulas.
//!
//! Used to cross-validate the analytic model (see the `des_validation`
//! bench) and to generate schedule traces at paper scale.

use argo_rt::{Config, Stage, TraceEvent};

use crate::perf::PerfModel;

/// One memory job in the processor-shared memory resource.
#[derive(Clone, Copy, Debug)]
struct MemJob {
    /// Remaining bytes to transfer.
    remaining: f64,
    /// Process waiting on this job.
    process: usize,
    /// When the job started (for tracing).
    started: f64,
}

/// Per-process pipeline state.
#[derive(Clone, Copy, Debug, PartialEq)]
enum ProcState {
    /// Waiting for a sampled batch of the current iteration.
    AwaitBatch,
    /// Gather in flight on the memory resource.
    Gathering,
    /// Compute phase running until the stored time.
    Computing(f64),
    /// Finished this iteration's work; waiting at the barrier.
    AtBarrier,
    /// All iterations done.
    Done,
}

/// Result of one simulated epoch.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// Simulated epoch time in seconds.
    pub epoch_time: f64,
    /// Fraction of the epoch during which the memory resource was busy.
    pub memory_busy_fraction: f64,
    /// Mean number of concurrent memory jobs while busy.
    pub mean_memory_concurrency: f64,
    /// Schedule trace (sample/gather/compute/sync intervals per process).
    pub trace: Vec<TraceEvent>,
}

/// Discrete-event simulator configured from the same task description as
/// the analytic model.
pub struct PipelineSim<'a> {
    model: &'a PerfModel,
    /// Cap on simulated iterations (the rest of the epoch is extrapolated —
    /// the pipeline reaches steady state after a few iterations).
    max_iterations: usize,
    /// Prefetch queue depth per process.
    prefetch: usize,
}

impl<'a> PipelineSim<'a> {
    /// A simulator over the same setup as `model`.
    pub fn new(model: &'a PerfModel) -> Self {
        Self {
            model,
            max_iterations: 24,
            prefetch: 3,
        }
    }

    /// Sets the per-process prefetch depth.
    pub fn with_prefetch(mut self, prefetch: usize) -> Self {
        self.prefetch = prefetch.max(1);
        self
    }

    /// Simulates one epoch under `config`.
    pub fn simulate(&self, config: Config) -> SimOutcome {
        let m = self.model;
        let setup = m.setup();
        let w = setup.workload();
        let iters_total = w.iterations_per_epoch().round().max(1.0) as usize;
        let iters = iters_total.min(self.max_iterations);
        let p = config.n_proc;

        // Per-batch (per-process, per-iteration) primitive durations derived
        // from the same calibrated quantities the analytic model uses.
        let sample_batch = m.sampling_time(config); // already per process
        let gather_bytes_total = {
            // gather_time() = bytes / achievable_bw → recover bytes.
            m.gather_time(config) * m.achievable_bandwidth(config) * 1e9
        };
        let gather_bytes = gather_bytes_total / p as f64;
        let bw = m.achievable_bandwidth(config) * 1e9; // bytes/s, aggregate
        let compute_batch = m.compute_time(config); // per process
        let sync_cost = setup.library.profile().sync_cost_per_proc * p as f64;

        // Event-driven state.
        let mut now = 0.0f64;
        let mut trace: Vec<TraceEvent> = Vec::new();
        // Sampler: per process, count of batches ready and the completion
        // time of the batch currently being produced (single logical
        // sampler whose rate already includes the worker parallelism).
        let mut ready: Vec<usize> = vec![1; p]; // first batch pre-sampled at t=0 cost
        let mut sampler_busy_until: Vec<Option<f64>> = (0..p)
            .map(|_| Some(sample_batch)) // producing batch #2
            .collect();
        let mut sampled_count: Vec<usize> = vec![2; p]; // 1 ready + 1 in flight
        let mut state: Vec<ProcState> = vec![ProcState::AwaitBatch; p];
        let mut iter_done: Vec<usize> = vec![0; p];
        let mut mem_jobs: Vec<MemJob> = Vec::new();
        let mut mem_busy_time = 0.0f64;
        let mut mem_conc_integral = 0.0f64;

        let advance_memory = |jobs: &mut Vec<MemJob>, dt: f64| {
            if jobs.is_empty() || dt <= 0.0 {
                return;
            }
            let rate_each = bw / jobs.len() as f64;
            for j in jobs.iter_mut() {
                j.remaining -= rate_each * dt;
            }
        };

        let mut guard = 0usize;
        loop {
            guard += 1;
            assert!(
                guard < 1_000_000,
                "DES livelock: now={now}, states={state:?}, ready={ready:?}, sampler={sampler_busy_until:?}, mem_jobs={}, iter_done={iter_done:?}",
                mem_jobs.len()
            );
            // Dispatch ready work first: processes awaiting a batch start
            // their gather as soon as one is queued (also covers t = 0 and
            // post-barrier release).
            for rank in 0..p {
                if state[rank] == ProcState::AwaitBatch && ready[rank] > 0 {
                    ready[rank] -= 1;
                    if sampler_busy_until[rank].is_none() && sampled_count[rank] < iters {
                        sampler_busy_until[rank] = Some(now + sample_batch);
                        sampled_count[rank] += 1;
                    }
                    mem_jobs.push(MemJob {
                        remaining: gather_bytes,
                        process: rank,
                        started: now,
                    });
                    state[rank] = ProcState::Gathering;
                }
            }
            // Barrier: when every live process arrived, apply the sync cost
            // and release them into the next iteration.
            if state
                .iter()
                .all(|s| matches!(s, ProcState::AtBarrier | ProcState::Done))
                && state.contains(&ProcState::AtBarrier)
            {
                let sync_end = now + sync_cost;
                for rank in 0..p {
                    if state[rank] == ProcState::AtBarrier {
                        trace.push(TraceEvent {
                            process: rank,
                            stage: Stage::Sync,
                            start: now,
                            end: sync_end,
                        });
                        iter_done[rank] += 1;
                        state[rank] = if iter_done[rank] >= iters {
                            ProcState::Done
                        } else {
                            ProcState::AwaitBatch
                        };
                    }
                }
                now = sync_end;
                continue; // released processes dispatch at the loop top
            }
            if state.iter().all(|s| *s == ProcState::Done) {
                break;
            }
            // Next event time: sampler completions, memory completions,
            // compute completions.
            let mut t_next = f64::INFINITY;
            for b in sampler_busy_until.iter().flatten() {
                t_next = t_next.min(*b);
            }
            if !mem_jobs.is_empty() {
                let rate_each = bw / mem_jobs.len() as f64;
                for j in &mem_jobs {
                    t_next = t_next.min(now + j.remaining.max(0.0) / rate_each);
                }
            }
            for s in &state {
                if let ProcState::Computing(t) = s {
                    t_next = t_next.min(*t);
                }
            }
            assert!(
                t_next.is_finite(),
                "deadlock: no pending events (states {state:?})"
            );
            // Advance time and shared resources.
            let dt = (t_next - now).max(0.0);
            if !mem_jobs.is_empty() {
                mem_busy_time += dt;
                mem_conc_integral += dt * mem_jobs.len() as f64;
            }
            advance_memory(&mut mem_jobs, dt);
            now = t_next;

            // Sampler completions → batch ready, maybe start the next one.
            for rank in 0..p {
                if let Some(t) = sampler_busy_until[rank] {
                    if t <= now + 1e-15 {
                        ready[rank] += 1;
                        trace.push(TraceEvent {
                            process: rank,
                            stage: Stage::Sample,
                            start: t - sample_batch,
                            end: t,
                        });
                        if sampled_count[rank] < iters && ready[rank] < self.prefetch {
                            sampler_busy_until[rank] = Some(now + sample_batch);
                            sampled_count[rank] += 1;
                        } else {
                            sampler_busy_until[rank] = None;
                        }
                    }
                }
            }
            // Memory completions → enter compute.
            let mut finished: Vec<usize> = Vec::new();
            mem_jobs.retain(|j| {
                // Completion threshold of one byte: at memory-system rates
                // that is ~1e-11 s of error, while a bytes-scale epsilon
                // can strand a job whose remaining time underflows f64
                // (now + 1e-17 == now), livelocking the simulation.
                if j.remaining <= 1.0 {
                    finished.push(j.process);
                    trace.push(TraceEvent {
                        process: j.process,
                        stage: Stage::Gather,
                        start: j.started,
                        end: now,
                    });
                    false
                } else {
                    true
                }
            });
            for rank in finished {
                state[rank] = ProcState::Computing(now + compute_batch);
            }
            // Compute completions → barrier.
            #[allow(clippy::needless_range_loop)] // `state[rank]` is also written
            for rank in 0..p {
                if let ProcState::Computing(t) = state[rank] {
                    if t <= now + 1e-15 {
                        trace.push(TraceEvent {
                            process: rank,
                            stage: Stage::Compute,
                            start: t - compute_batch,
                            end: t,
                        });
                        state[rank] = ProcState::AtBarrier;
                    }
                }
            }
        }

        // Extrapolate the simulated steady-state iteration time to the full
        // epoch, then add the per-epoch launch/partition overheads that the
        // analytic model also charges.
        let per_iter = now / iters as f64;
        let overheads = {
            // epoch_time = iters_total·iteration_time + overheads ⇒ recover.
            let analytic = m.epoch_time(config);
            analytic - w.iterations_per_epoch() * m.iteration_time(config)
        };
        let epoch_time = per_iter * iters_total as f64 + overheads.max(0.0);
        SimOutcome {
            epoch_time,
            memory_busy_fraction: (mem_busy_time / now).clamp(0.0, 1.0),
            mean_memory_concurrency: if mem_busy_time > 0.0 {
                mem_conc_integral / mem_busy_time
            } else {
                0.0
            },
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::Library;
    use crate::perf::Setup;
    use crate::spec::ICE_LAKE_8380H;
    use crate::workload::{ModelKind, SamplerKind};
    use argo_graph::datasets::{OGBN_PRODUCTS, REDDIT};
    use argo_rt::enumerate_space;

    fn model(sampler: SamplerKind, mk: ModelKind, ds: argo_graph::DatasetSpec) -> PerfModel {
        PerfModel::new(Setup {
            platform: ICE_LAKE_8380H,
            library: Library::Dgl,
            sampler,
            model: mk,
            dataset: ds,
        })
    }

    #[test]
    fn simulation_terminates_and_is_positive() {
        let m = model(SamplerKind::Neighbor, ModelKind::Sage, OGBN_PRODUCTS);
        let sim = PipelineSim::new(&m);
        for cfg in enumerate_space(112).iter().step_by(61) {
            let out = sim.simulate(*cfg);
            assert!(out.epoch_time.is_finite() && out.epoch_time > 0.0, "{cfg}");
            assert!((0.0..=1.0).contains(&out.memory_busy_fraction));
        }
    }

    #[test]
    fn trace_contains_all_stages_for_all_processes() {
        let m = model(SamplerKind::Neighbor, ModelKind::Sage, REDDIT);
        let cfg = Config::new(4, 2, 6);
        let out = PipelineSim::new(&m).simulate(cfg);
        for rank in 0..4 {
            for stage in [Stage::Sample, Stage::Gather, Stage::Compute, Stage::Sync] {
                assert!(
                    out.trace
                        .iter()
                        .any(|e| e.process == rank && e.stage == stage),
                    "missing {stage:?} for process {rank}"
                );
            }
        }
        // Intervals are well-formed.
        assert!(out.trace.iter().all(|e| e.end >= e.start - 1e-12));
    }

    #[test]
    fn des_correlates_with_analytic_model() {
        // The executable schedule and the closed-form model must tell the
        // same story: strongly correlated epoch times over the space, and
        // the analytic optimum lands near the DES optimum.
        let m = model(SamplerKind::Neighbor, ModelKind::Sage, OGBN_PRODUCTS);
        let sim = PipelineSim::new(&m);
        let configs: Vec<Config> = enumerate_space(112).into_iter().step_by(17).collect();
        let analytic: Vec<f64> = configs.iter().map(|&c| m.epoch_time(c).ln()).collect();
        let des: Vec<f64> = configs
            .iter()
            .map(|&c| sim.simulate(c).epoch_time.ln())
            .collect();
        let n = configs.len() as f64;
        let (ma, md) = (
            analytic.iter().sum::<f64>() / n,
            des.iter().sum::<f64>() / n,
        );
        let cov: f64 = analytic
            .iter()
            .zip(&des)
            .map(|(a, d)| (a - ma) * (d - md))
            .sum();
        let va: f64 = analytic.iter().map(|a| (a - ma).powi(2)).sum();
        let vd: f64 = des.iter().map(|d| (d - md).powi(2)).sum();
        let r = cov / (va.sqrt() * vd.sqrt()).max(1e-12);
        assert!(r > 0.8, "analytic/DES correlation too weak: {r}");

        let best_analytic = configs
            .iter()
            .zip(&analytic)
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let des_at_analytic_best = sim.simulate(*best_analytic).epoch_time;
        let des_min = des.iter().copied().fold(f64::INFINITY, f64::min).exp();
        assert!(
            des_at_analytic_best <= des_min * 1.3,
            "analytic optimum is poor under DES: {des_at_analytic_best} vs {des_min}"
        );
    }

    #[test]
    fn memory_concurrency_grows_with_processes() {
        let m = model(SamplerKind::Neighbor, ModelKind::Sage, REDDIT);
        let sim = PipelineSim::new(&m);
        let c2 = sim.simulate(Config::new(2, 1, 6)).mean_memory_concurrency;
        let c8 = sim.simulate(Config::new(8, 1, 6)).mean_memory_concurrency;
        assert!(
            c8 > c2,
            "more processes should overlap more gathers: {c2} vs {c8}"
        );
    }

    #[test]
    fn deeper_prefetch_never_slows_the_pipeline() {
        let m = model(SamplerKind::Shadow, ModelKind::Gcn, REDDIT);
        let cfg = Config::new(4, 1, 6);
        let shallow = PipelineSim::new(&m)
            .with_prefetch(1)
            .simulate(cfg)
            .epoch_time;
        let deep = PipelineSim::new(&m)
            .with_prefetch(4)
            .simulate(cfg)
            .epoch_time;
        assert!(
            deep <= shallow * 1.001,
            "prefetch 4 ({deep}) vs 1 ({shallow})"
        );
    }
}
