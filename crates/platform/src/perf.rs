//! The epoch-time performance model.
//!
//! [`PerfModel::epoch_time`] predicts the wall-clock epoch time of one
//! (platform, library, sampler, model, dataset) *task* under a given ARGO
//! [`Config`], from the mechanisms the paper identifies in Section V-A:
//!
//! 1. **Pipelined sampling vs training** — libraries overlap the two stages;
//!    the iteration takes the max of the two (Section V-A2).
//! 2. **Gather/compute interleaving across processes** — within the training
//!    stage, the memory-bound feature gather and the compute-bound kernels
//!    alternate; a single process serializes them (Figure 2-A) while `p`
//!    staggered processes overlap them (Figure 2-B):
//!    `t = max(G, C) + min(G, C)/p`.
//! 3. **Memory-bandwidth roofline** — gather traffic flows at
//!    `min(effective peak, streams × per-core-bw)`, where the stream count
//!    grows with processes and training cores; the 4-socket machine's
//!    UPI/NUMA ceiling caps the effective peak (Section IX).
//! 4. **Amdahl limits** — the sampler and the sparse training kernels each
//!    have a library-specific parallel fraction; ShaDow's is tiny, which is
//!    why only multi-processing (not more sampling cores) speeds it up.
//! 5. **Workload inflation** — more processes ⇒ smaller per-process batches
//!    ⇒ fewer shared neighbors ⇒ more edges and more gather bytes
//!    (Figure 5/6), modeled in [`crate::workload`].
//! 6. **Synchronization and launch overheads** — gradient all-reduce cost
//!    grows with the process count; re-partitioning on process-count changes
//!    adds a per-epoch cost (Section V-A1).

use argo_rt::telemetry::names;
use argo_rt::{
    enumerate_space, Config, EpochRecord, RunEvent, Stage, StageSummaryRecord, Telemetry,
};

use crate::library::Library;
use crate::spec::PlatformSpec;
use crate::workload::{ModelKind, SamplerKind, WorkloadModel};

/// One evaluation task: everything that determines the design-space surface
/// except the configuration itself (one subplot of Figure 7).
#[derive(Clone, Copy, Debug)]
pub struct Setup {
    /// Hardware platform.
    pub platform: PlatformSpec,
    /// GNN library backend.
    pub library: Library,
    /// Sampling algorithm.
    pub sampler: SamplerKind,
    /// GNN model.
    pub model: ModelKind,
    /// Dataset statistics.
    pub dataset: argo_graph::DatasetSpec,
}

impl Setup {
    /// The paper's task label, e.g. `"Neighbor-SAGE / ogbn-products"`.
    pub fn label(&self) -> String {
        format!(
            "{}-{} / {}",
            self.sampler.name(),
            self.model.name(),
            self.dataset.name
        )
    }

    /// The workload model of this task (batch 1024, hidden 128).
    pub fn workload(&self) -> WorkloadModel {
        WorkloadModel::paper(self.dataset, self.sampler, self.model)
    }
}

/// Stream count cap per process: coarse-grained library scheduling cannot
/// keep more than this many cores of one process streaming memory at once.
const STREAMS_CAP_PER_PROC: f64 = 8.0;

/// Extra memory traffic beyond the raw feature gather (SpMM re-reads,
/// intermediate writes), as a multiplier on gather bytes.
const MEM_AMPLIFICATION: f64 = 2.2;

/// Per-epoch process-launch cost in seconds per process (fork, dataloader
/// spin-up).
const LAUNCH_COST_PER_PROC: f64 = 0.012;

/// Per-epoch data-partitioning cost in seconds per training node, growing
/// mildly with process count (Section V-A1: "increased workload of graph
/// partitioning").
const PARTITION_COST_PER_NODE: f64 = 18e-9;

/// The deterministic epoch-time model.
#[derive(Clone, Copy, Debug)]
pub struct PerfModel {
    setup: Setup,
}

/// Builder for [`PerfModel`] — the same `builder()` + `with_*` shape as
/// `EngineOptions`/`ArgoOptions`, starting from the paper's most common
/// task (Ice Lake, DGL, Neighbor-SAGE on Flickr) so callers override only
/// what differs.
#[derive(Clone, Copy, Debug)]
pub struct PerfModelBuilder {
    setup: Setup,
}

impl PerfModelBuilder {
    /// Hardware platform (default [`crate::spec::ICE_LAKE_8380H`]).
    pub fn with_platform(mut self, platform: PlatformSpec) -> Self {
        self.setup.platform = platform;
        self
    }

    /// Library backend (default [`Library::Dgl`]).
    pub fn with_library(mut self, library: Library) -> Self {
        self.setup.library = library;
        self
    }

    /// Sampling algorithm (default [`SamplerKind::Neighbor`]).
    pub fn with_sampler(mut self, sampler: SamplerKind) -> Self {
        self.setup.sampler = sampler;
        self
    }

    /// GNN model (default [`ModelKind::Sage`]).
    pub fn with_model(mut self, model: ModelKind) -> Self {
        self.setup.model = model;
        self
    }

    /// Dataset statistics (default Flickr).
    pub fn with_dataset(mut self, dataset: argo_graph::DatasetSpec) -> Self {
        self.setup.dataset = dataset;
        self
    }

    /// Finalizes the model.
    pub fn build(self) -> PerfModel {
        PerfModel::new(self.setup)
    }
}

impl PerfModel {
    /// A model for `setup`.
    pub fn new(setup: Setup) -> Self {
        Self { setup }
    }

    /// Starts a builder from the paper's default task; override fields with
    /// the `with_*` methods and finish with [`PerfModelBuilder::build`].
    pub fn builder() -> PerfModelBuilder {
        PerfModelBuilder {
            setup: Setup {
                platform: crate::spec::ICE_LAKE_8380H,
                library: Library::Dgl,
                sampler: SamplerKind::Neighbor,
                model: ModelKind::Sage,
                dataset: argo_graph::datasets::FLICKR,
            },
        }
    }

    /// The task being modeled.
    pub fn setup(&self) -> &Setup {
        &self.setup
    }

    /// Amdahl speedup of `cores` cores with parallel fraction `f`.
    fn amdahl(cores: usize, f: f64) -> f64 {
        1.0 / ((1.0 - f) + f / cores as f64)
    }

    /// Cache/TLB-miss penalty of graph traversal: CSR structures far larger
    /// than the LLC make every neighbor access a memory round-trip. Grows
    /// with graph size; ≈1 for Flickr, ≈2.6 for ogbn-products, ≈5.6 for
    /// ogbn-papers100M.
    fn sampler_size_penalty(&self) -> f64 {
        let n = self.setup.dataset.num_nodes as f64;
        let x = (n / 1e5).log10().max(0.0);
        let full = (1.0 + 0.45 * x).powi(2);
        match self.setup.sampler {
            // Layer-wise sampling hops across the whole CSR.
            SamplerKind::Neighbor => full,
            // ShaDow walks localized subgraphs with much better locality.
            SamplerKind::Shadow => full.sqrt(),
        }
    }

    /// Locality factor of feature gathering: random row gathers from a
    /// feature table much larger than the LLC achieve only a fraction of the
    /// streaming bandwidth.
    fn gather_locality(&self) -> f64 {
        let table_bytes = self.setup.dataset.num_nodes as f64 * self.setup.dataset.f0 as f64 * 4.0;
        let llc_bytes = self.setup.platform.llc_mb * 1e6;
        1.0 / (1.0 + 0.8 * (table_bytes / llc_bytes).max(1.0).log10())
    }

    /// Wall-clock duration of the *sampling* stage of one iteration
    /// (per process; processes run concurrently).
    pub fn sampling_time(&self, config: Config) -> f64 {
        let w = self.setup.workload().iteration(config.n_proc);
        let prof = self.setup.library.profile();
        let per_proc_visits = w.sampler_edge_visits / config.n_proc as f64;
        let cpu = per_proc_visits
            * prof.sampler_cost_per_edge(self.setup.sampler)
            * self.sampler_size_penalty()
            / self.setup.platform.core_speed_factor;
        let speedup = Self::amdahl(
            config.n_samp,
            prof.sampler_parallel_fraction(self.setup.sampler),
        );
        // Mild contention penalty for piling cores onto a serial sampler
        // (Section V-A2: extra sampling cores can even slow things down).
        let contention = 1.0
            + 0.015
                * (config.n_samp.saturating_sub(1) as f64)
                * (1.0 - prof.sampler_parallel_fraction(self.setup.sampler));
        cpu / speedup * contention
    }

    /// Expected hit rate of the cross-batch feature cache under `config`
    /// (0 when `config.cache_rows == 0`, i.e. cache disabled).
    ///
    /// Hit rates on power-law neighbor distributions grow sublinearly in
    /// cache coverage: a small cache already captures the hub nodes that
    /// dominate re-gathers, while the long tail needs disproportionally more
    /// rows. Modeled as `coverage^0.35`, capped below 1 (cold misses).
    pub fn cache_hit_rate(&self, config: Config) -> f64 {
        if config.cache_rows == 0 {
            return 0.0;
        }
        let coverage = (config.cache_rows as f64 / self.setup.dataset.num_nodes as f64).min(1.0);
        coverage.powf(0.35).min(0.95)
    }

    /// Wall-clock duration of the memory-bound phase of one iteration
    /// (global across processes — they share the memory system): feature
    /// gathering plus the library's scatter/message traffic. Cache hits
    /// skip the feature-table traffic, so the gather term scales by the
    /// expected miss rate.
    pub fn gather_time(&self, config: Config) -> f64 {
        let w = self.setup.workload().iteration(config.n_proc);
        let prof = self.setup.library.profile();
        let d = self.setup.dataset;
        // Mean feature width of aggregated messages over the three layers.
        let f_avg = (d.f0 as f64 + 2.0 * 128.0) / 3.0;
        let scatter_bytes = w.edges * f_avg * 4.0 * prof.scatter_traffic_factor;
        let miss_rate = 1.0 - self.cache_hit_rate(config);
        let bytes = w.gather_bytes * MEM_AMPLIFICATION * miss_rate + scatter_bytes;
        bytes / 1e9 / self.achievable_bandwidth(config)
    }

    /// Achievable memory bandwidth in GB/s under `config`, including the
    /// dataset's gather-locality penalty.
    pub fn achievable_bandwidth(&self, config: Config) -> f64 {
        let plat = &self.setup.platform;
        let prof = self.setup.library.profile();
        let streams = config.n_proc as f64 * (config.n_train as f64).min(STREAMS_CAP_PER_PROC);
        (streams * plat.per_core_bw_gbs * prof.gather_efficiency).min(plat.effective_bw_gbs())
            * self.gather_locality()
    }

    /// Fraction of the platform's peak bandwidth the configuration utilizes
    /// (the Figure 6 bandwidth curve).
    pub fn bandwidth_utilization(&self, config: Config) -> f64 {
        self.achievable_bandwidth(config) / self.setup.platform.peak_bw_gbs
    }

    /// Epoch time under a **NUMA-aware** deployment (the paper's Section IX
    /// future work): processes are pinned socket-locally
    /// ([`argo_rt::CoreBinder::plan_numa`]) and their feature shards are
    /// allocated on the local node, so the fraction of remote (UPI) accesses
    /// drops from the >50% the paper profiled to the residual share of
    /// neighbors living in other processes' shards.
    ///
    /// Modeled as a recovery of the platform's NUMA bandwidth penalty:
    /// `numa_bw_factor` is blended toward 1.0 when the configuration admits
    /// a socket-local plan; otherwise the time equals the plain
    /// [`PerfModel::epoch_time`].
    pub fn epoch_time_numa_aware(&self, config: Config) -> f64 {
        let plat = &self.setup.platform;
        let binder = argo_rt::CoreBinder::new(plat.total_cores);
        let local_plan_exists = binder
            .plan_numa(
                plat.sockets.max(1),
                config.n_proc,
                config.n_samp,
                config.n_train,
            )
            .is_some();
        if !local_plan_exists {
            return self.epoch_time(config);
        }
        // Remote traffic falls to ~35% of the non-aware deployment's,
        // recovering both aggregate bandwidth (UPI ceiling) and per-access
        // latency (local DDR instead of remote hops).
        const REMOTE_REDUCTION: f64 = 0.65;
        let recovered = plat.numa_bw_factor + (1.0 - plat.numa_bw_factor) * REMOTE_REDUCTION;
        let mut improved = *self;
        improved.setup.platform.numa_bw_factor = recovered;
        improved.setup.platform.per_core_bw_gbs =
            plat.per_core_bw_gbs * (1.0 + 0.12 * (1.0 - plat.numa_bw_factor));
        improved.epoch_time(config)
    }

    /// Wall-clock duration of the compute phase of one iteration, per
    /// process.
    pub fn compute_time(&self, config: Config) -> f64 {
        let w = self.setup.workload().iteration(config.n_proc);
        let prof = self.setup.library.profile();
        let per_proc_flops = w.flops / config.n_proc as f64;
        let cpu =
            per_proc_flops / (prof.gflops_per_core * 1e9 * self.setup.platform.core_speed_factor);
        cpu / Self::amdahl(config.n_train, prof.train_parallel_fraction)
            + prof.per_batch_overhead / self.setup.platform.core_speed_factor
    }

    /// Wall-clock time of one synchronized iteration under `config`.
    pub fn iteration_time(&self, config: Config) -> f64 {
        let prof = self.setup.library.profile();
        let g = self.gather_time(config);
        let c = self.compute_time(config);
        // Gather/compute interleaving across staggered processes (Figure 2).
        let train = g.max(c) + g.min(c) / config.n_proc as f64;
        let sample = self.sampling_time(config);
        let sync = prof.sync_cost_per_proc * config.n_proc as f64;
        sample.max(train) + sync
    }

    /// Modeled epoch time in seconds — the auto-tuner's objective function.
    pub fn epoch_time(&self, config: Config) -> f64 {
        assert!(
            config.fits(self.setup.platform.total_cores),
            "{config} exceeds {} cores",
            self.setup.platform.total_cores
        );
        let w = self.setup.workload();
        let iters = w.iterations_per_epoch();
        let launch = LAUNCH_COST_PER_PROC * config.n_proc as f64;
        let partition =
            PARTITION_COST_PER_NODE * w.train_nodes() * (1.0 + 0.2 * (config.n_proc as f64 - 1.0));
        iters * self.iteration_time(config) + launch + partition
    }

    /// Epoch time with small multiplicative measurement noise (deterministic
    /// in `seed`) — used where the paper averages five runs and reports a
    /// standard deviation.
    pub fn epoch_time_noisy(&self, config: Config, seed: u64) -> f64 {
        let t = self.epoch_time(config);
        // Two splitmix draws → Box-Muller standard normal.
        let u1 = (splitmix(seed ^ hash_config(config)) as f64 / u64::MAX as f64).clamp(1e-12, 1.0);
        let u2 = splitmix(seed.wrapping_add(0x9E37) ^ hash_config(config)) as f64 / u64::MAX as f64;
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        t * (1.0 + 0.015 * z).max(0.8)
    }

    /// The library's official "default" CPU setup (paper Section VI-D):
    /// a single training process with four sampling workers and all
    /// remaining cores for training.
    pub fn default_config(&self) -> Config {
        let cores = self.setup.platform.total_cores;
        let n_samp = 4.min(cores.saturating_sub(1)).max(1);
        Config::new(1, n_samp, (cores - n_samp).max(1))
    }

    /// Epoch time of the baseline library (default config) when restricted
    /// to `cores` cores — the Figure 1/8 scalability curves.
    pub fn baseline_epoch_time(&self, cores: usize) -> f64 {
        assert!(cores >= 2);
        let n_samp = 4.min(cores - 1).max(1);
        let cfg = Config::new(1, n_samp, cores - n_samp);
        let mut restricted = *self;
        restricted.setup.platform.total_cores = cores;
        restricted.epoch_time(cfg)
    }

    /// Best epoch time ARGO can reach with `cores` cores (exhaustive over
    /// the restricted space) — the Figure 8 "with ARGO" curves.
    pub fn argo_best_epoch_time(&self, cores: usize) -> (Config, f64) {
        let mut restricted = *self;
        restricted.setup.platform.total_cores = cores;
        let mut best: Option<(Config, f64)> = None;
        for config in enumerate_space(cores) {
            let t = restricted.epoch_time(config);
            if best.is_none_or(|(_, bt)| t < bt) {
                best = Some((config, t));
            }
        }
        best.expect("non-empty space")
    }

    /// The stage the model predicts to be the binding constraint under
    /// `config`: the largest of the per-iteration sample/gather/compute/sync
    /// durations, by the same stage labels the span profiler's
    /// critical-path attribution uses — so a measured run can be audited
    /// against the model's prediction (`argo report`'s bottleneck audit).
    pub fn predicted_bottleneck(&self, config: Config) -> &'static str {
        let prof = self.setup.library.profile();
        let candidates = [
            ("sample", self.sampling_time(config)),
            ("gather", self.gather_time(config)),
            ("compute", self.compute_time(config)),
            ("sync", prof.sync_cost_per_proc * config.n_proc as f64),
        ];
        let mut best = candidates[0];
        for c in &candidates[1..] {
            if c.1 > best.1 {
                best = *c;
            }
        }
        best.0
    }

    /// Per-stage (sample, gather, compute) durations of serving one
    /// micro-batch of `requests` single-seed queries under `config`.
    ///
    /// A serving micro-batch is a scaled-down training iteration: the same
    /// sample → gather → compute pipeline over `requests` seeds instead of
    /// the workload's global batch, executed by one process (queries are
    /// never sharded across processes the way training batches are). Work
    /// terms scale by the seed ratio. The library's per-batch dataloader
    /// launch (`per_batch_overhead`, tens of milliseconds of Python re-entry)
    /// is *not* paid: the serving runtime executes the pipeline in-process,
    /// so each micro-batch only pays the library's dispatch/sync floor
    /// (`sync_cost_per_proc`) — the fixed term micro-batching amortizes.
    fn serve_stage_seconds(&self, config: Config, requests: usize) -> (f64, f64, f64) {
        let prof = self.setup.library.profile();
        let single = Config::new(1, config.n_samp.max(1), config.n_train.max(1))
            .with_cache_rows(config.cache_rows);
        let scale = requests.max(1) as f64 / self.setup.workload().global_batch as f64;
        let sample = self.sampling_time(single) * scale;
        // In-batch neighbor sharing (the Figure 5 effect) vanishes at
        // micro-batch sizes: a 1024-seed training batch dedups hub
        // neighbors across seeds before gathering, a handful of serving
        // seeds cannot — so per-seed gather traffic *rises* as the batch
        // shrinks. Power-law neighborhoods give a power-law penalty; the
        // cross-batch feature cache (`config.cache_rows`, already inside
        // `gather_time`'s miss rate) is the serving-side answer.
        let dedup_penalty =
            (self.setup.workload().global_batch as f64 / requests.max(1) as f64).powf(0.3);
        let gather = self.gather_time(single) * scale * dedup_penalty;
        let train_overhead = prof.per_batch_overhead / self.setup.platform.core_speed_factor;
        let dispatch = prof.sync_cost_per_proc / self.setup.platform.core_speed_factor;
        let compute = (self.compute_time(single) - train_overhead) * scale + dispatch;
        (sample, gather, compute)
    }

    /// Modeled wall-clock seconds to execute one serving micro-batch of
    /// `requests` queries under `config` — the service-time model a
    /// [`argo-tune` serve objective] plugs in to turn the p99 simulation
    /// into a pure function of the configuration.
    pub fn predicted_request_seconds(&self, config: Config, requests: usize) -> f64 {
        let (sample, gather, compute) = self.serve_stage_seconds(config, requests);
        sample + gather + compute
    }

    /// The serving stage the model predicts to dominate a micro-batch of
    /// `requests` queries under `config` — same stage labels as
    /// [`PerfModel::predicted_bottleneck`] minus `sync` (a single serving
    /// process has no inter-process barrier).
    pub fn predicted_serve_bottleneck(&self, config: Config, requests: usize) -> &'static str {
        let (sample, gather, compute) = self.serve_stage_seconds(config, requests);
        let candidates = [("sample", sample), ("gather", gather), ("compute", compute)];
        let mut best = candidates[0];
        for c in &candidates[1..] {
            if c.1 > best.1 {
                best = *c;
            }
        }
        best.0
    }

    /// Emits the modeled telemetry of one epoch under `config` — the same
    /// event schema and metric names a measured [`argo_engine`] epoch
    /// produces, so real and modeled runs are directly comparable. Pass a
    /// [`Telemetry`] built with `Source::Modeled` so consumers can tell the
    /// provenance apart. Returns the modeled epoch time.
    pub fn record_epoch(&self, telemetry: &Telemetry, epoch: u64, config: Config) -> f64 {
        let epoch_time = self.epoch_time(config);
        let w = self.setup.workload();
        let iters = w.iterations_per_epoch().round().max(1.0);
        let prof = self.setup.library.profile();
        // Per-iteration modeled stage durations (sample/gather/compute are
        // concurrent across stages; sync is serial per iteration).
        let per_iter = [
            (Stage::Sample, self.sampling_time(config)),
            (Stage::Gather, self.gather_time(config)),
            (Stage::Compute, self.compute_time(config)),
            (Stage::Sync, prof.sync_cost_per_proc * config.n_proc as f64),
        ];

        telemetry.logger.log(RunEvent::EpochStart { epoch, config });
        if telemetry.metrics.is_enabled() {
            for (stage, t) in per_iter {
                telemetry
                    .metrics
                    .time_histogram(&Telemetry::stage_histogram_name(stage))
                    .observe(t);
            }
            telemetry
                .metrics
                .time_histogram(names::EPOCH_SECONDS)
                .observe(epoch_time);
            telemetry.metrics.counter(names::EPOCHS_TOTAL).inc();
            telemetry
                .metrics
                .counter(names::ITERATIONS_TOTAL)
                .add(iters as u64);
            telemetry
                .metrics
                .counter(names::MINIBATCHES_TOTAL)
                .add(iters as u64 * config.n_proc as u64);
            telemetry
                .metrics
                .counter(names::EDGES_TOTAL)
                .add(w.epoch_edges(config.n_proc) as u64);
        }
        for (stage, t) in per_iter {
            telemetry.logger.log(RunEvent::StageSummary {
                epoch,
                summary: StageSummaryRecord {
                    stage: stage.label().to_string(),
                    seconds: t * iters,
                    count: iters as u64,
                },
            });
        }
        telemetry.logger.log(RunEvent::EpochEnd {
            epoch,
            config,
            record: EpochRecord {
                epoch_time,
                // The performance model predicts time, not convergence.
                loss: 0.0,
                train_accuracy: 0.0,
                iterations: iters as u64,
                minibatches: iters as u64 * config.n_proc as u64,
                edges: w.epoch_edges(config.n_proc) as u64,
                sync_time: prof.sync_cost_per_proc * config.n_proc as f64 * iters,
            },
        });
        epoch_time
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn hash_config(c: Config) -> u64 {
    let mut h = splitmix((c.n_proc as u64) << 32 | (c.n_samp as u64) << 16 | c.n_train as u64);
    if c.cache_rows > 0 {
        h ^= splitmix(c.cache_rows as u64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ICE_LAKE_8380H, SAPPHIRE_RAPIDS_6430L};
    use argo_graph::datasets::{FLICKR, OGBN_PAPERS100M, OGBN_PRODUCTS, REDDIT};

    fn setup(
        platform: PlatformSpec,
        library: Library,
        sampler: SamplerKind,
        model: ModelKind,
        dataset: argo_graph::DatasetSpec,
    ) -> PerfModel {
        PerfModel::new(Setup {
            platform,
            library,
            sampler,
            model,
            dataset,
        })
    }

    fn products_dgl_il() -> PerfModel {
        setup(
            ICE_LAKE_8380H,
            Library::Dgl,
            SamplerKind::Neighbor,
            ModelKind::Sage,
            OGBN_PRODUCTS,
        )
    }

    #[test]
    fn record_epoch_shares_measured_schema() {
        use argo_rt::Source;
        let model = products_dgl_il();
        let tel = Telemetry::with_source(Source::Modeled);
        let config = model.default_config();
        let t = model.record_epoch(&tel, 0, config);
        assert!((t - model.epoch_time(config)).abs() < 1e-12);

        // Events round-trip through JSONL with the modeled tag.
        let parsed = argo_rt::RunLogger::parse_jsonl(&tel.logger.to_jsonl()).unwrap();
        assert_eq!(parsed.len(), 6); // start + 4 stage summaries + end
        assert!(parsed.iter().all(|(_, _, s)| *s == Source::Modeled));
        match &parsed.last().unwrap().0 {
            RunEvent::EpochEnd { record, .. } => {
                assert!((record.epoch_time - t).abs() < 1e-12);
                assert!(record.iterations > 0);
                assert!(record.sync_time > 0.0 && record.sync_time < t);
            }
            other => panic!("expected epoch_end, got {other:?}"),
        }

        // Metric names match the engine's.
        let names_seen: Vec<String> = tel
            .metrics
            .histograms()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert!(names_seen.contains(&Telemetry::stage_histogram_name(Stage::Gather)));
        assert!(names_seen.contains(&names::EPOCH_SECONDS.to_string()));
    }

    #[test]
    fn space_sizes_near_paper() {
        assert_eq!(enumerate_space(112).len(), 694);
        assert_eq!(enumerate_space(64).len(), 362);
        // All enumerated configs fit.
        for cores in [64, 112] {
            for c in enumerate_space(cores) {
                assert!(c.fits(cores), "{c} does not fit {cores}");
            }
        }
    }

    #[test]
    fn epoch_time_positive_and_finite_everywhere() {
        for platform in [ICE_LAKE_8380H, SAPPHIRE_RAPIDS_6430L] {
            for library in [Library::Dgl, Library::Pyg] {
                for (sampler, model) in [
                    (SamplerKind::Neighbor, ModelKind::Sage),
                    (SamplerKind::Shadow, ModelKind::Gcn),
                ] {
                    for dataset in [FLICKR, REDDIT, OGBN_PRODUCTS, OGBN_PAPERS100M] {
                        let m = setup(platform, library, sampler, model, dataset);
                        for c in enumerate_space(platform.total_cores).iter().step_by(37) {
                            let t = m.epoch_time(*c);
                            assert!(t.is_finite() && t > 0.0, "{} {c}", m.setup().label());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn cache_reduces_modeled_gather_time() {
        let m = setup(
            ICE_LAKE_8380H,
            Library::Dgl,
            SamplerKind::Neighbor,
            ModelKind::Sage,
            OGBN_PRODUCTS,
        );
        let c = Config::new(4, 2, 8);
        assert_eq!(m.cache_hit_rate(c), 0.0);
        let base = m.gather_time(c);
        let mut prev_rate = 0.0;
        let mut prev_time = base;
        for rows in [1 << 16, 1 << 20, 1 << 22] {
            let cc = c.with_cache_rows(rows);
            let rate = m.cache_hit_rate(cc);
            let t = m.gather_time(cc);
            assert!(rate > prev_rate, "hit rate monotone in capacity");
            assert!(rate <= 0.95);
            assert!(t < prev_time, "gather time shrinks as the cache grows");
            assert!(t > 0.0, "scatter traffic keeps the term positive");
            prev_rate = rate;
            prev_time = t;
        }
        // Cache capacity is part of the modeled config identity.
        assert_ne!(hash_config(c), hash_config(c.with_cache_rows(1 << 20)));
        assert!(m.epoch_time(c.with_cache_rows(1 << 22)) < m.epoch_time(c));
    }

    #[test]
    fn default_is_slower_than_tuned() {
        // Table IV: the default setup is sub-optimal on every task.
        for library in [Library::Dgl, Library::Pyg] {
            for (sampler, model) in [
                (SamplerKind::Neighbor, ModelKind::Sage),
                (SamplerKind::Shadow, ModelKind::Gcn),
            ] {
                let m = setup(ICE_LAKE_8380H, library, sampler, model, OGBN_PRODUCTS);
                let default = m.epoch_time(m.default_config());
                let (_, best) = m.argo_best_epoch_time(112);
                assert!(
                    best < default,
                    "{}: tuned {best} !< default {default}",
                    m.setup().label()
                );
            }
        }
    }

    #[test]
    fn shadow_speedup_exceeds_neighbor_speedup() {
        // Section VI-E: ShaDow benefits more from ARGO because only
        // multi-processing parallelizes its sampler.
        let nb = setup(
            ICE_LAKE_8380H,
            Library::Dgl,
            SamplerKind::Neighbor,
            ModelKind::Sage,
            OGBN_PRODUCTS,
        );
        let sh = setup(
            ICE_LAKE_8380H,
            Library::Dgl,
            SamplerKind::Shadow,
            ModelKind::Gcn,
            OGBN_PRODUCTS,
        );
        let sp_nb = nb.epoch_time(nb.default_config()) / nb.argo_best_epoch_time(112).1;
        let sp_sh = sh.epoch_time(sh.default_config()) / sh.argo_best_epoch_time(112).1;
        assert!(
            sp_sh > sp_nb,
            "shadow speedup {sp_sh} should exceed neighbor speedup {sp_nb}"
        );
        assert!(sp_sh > 2.0, "shadow speedup {sp_sh} too small");
    }

    #[test]
    fn baseline_scaling_saturates_early() {
        // Figure 1/8: the baseline stops scaling around 16 cores.
        let m = products_dgl_il();
        let t4 = m.baseline_epoch_time(4);
        let t16 = m.baseline_epoch_time(16);
        let t112 = m.baseline_epoch_time(112);
        assert!(t16 < t4, "some speedup to 16 cores");
        let gain_late = t16 / t112;
        assert!(
            gain_late < 1.35,
            "baseline gained {gain_late}x from 16→112 cores; should be nearly flat"
        );
        // ARGO keeps scaling past 16 cores (the paper's curves also flatten
        // near 64 cores on the 4-socket machine due to the UPI ceiling).
        let (_, a16) = m.argo_best_epoch_time(16);
        let (_, a112) = m.argo_best_epoch_time(112);
        assert!(
            a16 / a112 > 1.3,
            "ARGO should keep scaling: 16-core {a16}, 112-core {a112}"
        );
        assert!(
            a16 / a112 > t16 / t112 * 1.15,
            "ARGO must out-scale the baseline past 16 cores"
        );
    }

    #[test]
    fn optimal_process_count_is_plural_but_bounded() {
        // Figure 7: optima lie between 2 and 8 processes.
        let m = products_dgl_il();
        let (best, _) = m.argo_best_epoch_time(112);
        assert!(best.n_proc >= 2 && best.n_proc <= 8, "{best}");
    }

    #[test]
    fn bandwidth_utilization_flattens_with_processes() {
        // Figure 6: bandwidth rises with the process count and flattens.
        let m = products_dgl_il();
        let u = |p: usize| m.bandwidth_utilization(Config::new(p, 2, 6));
        assert!(u(2) > u(1) * 1.5);
        assert!(u(8) >= u(4));
        let late_gain = u(16) / u(8);
        assert!(late_gain < 1.2, "bandwidth should flatten: {late_gain}");
        assert!(u(16) <= 1.0);
    }

    #[test]
    fn noisy_times_center_on_truth() {
        let m = products_dgl_il();
        let c = Config::new(4, 2, 8);
        let t = m.epoch_time(c);
        let mean: f64 = (0..200).map(|s| m.epoch_time_noisy(c, s)).sum::<f64>() / 200.0;
        assert!((mean - t).abs() / t < 0.01, "noisy mean {mean} vs {t}");
    }

    #[test]
    fn pyg_is_slower_than_dgl() {
        for dataset in [REDDIT, OGBN_PRODUCTS] {
            let d = setup(
                ICE_LAKE_8380H,
                Library::Dgl,
                SamplerKind::Neighbor,
                ModelKind::Sage,
                dataset,
            );
            let p = setup(
                ICE_LAKE_8380H,
                Library::Pyg,
                SamplerKind::Neighbor,
                ModelKind::Sage,
                dataset,
            );
            assert!(
                p.argo_best_epoch_time(112).1 > d.argo_best_epoch_time(112).1,
                "{}",
                dataset.name
            );
        }
    }

    #[test]
    fn epoch_times_within_factor_of_paper() {
        // Order-of-magnitude calibration against Table IV (DGL, Ice Lake,
        // exhaustive-optimal epoch times).
        let cases = [
            (SamplerKind::Neighbor, ModelKind::Sage, FLICKR, 1.98),
            (SamplerKind::Neighbor, ModelKind::Sage, REDDIT, 13.83),
            (SamplerKind::Neighbor, ModelKind::Sage, OGBN_PRODUCTS, 11.19),
            (
                SamplerKind::Neighbor,
                ModelKind::Sage,
                OGBN_PAPERS100M,
                115.4,
            ),
            (SamplerKind::Shadow, ModelKind::Gcn, FLICKR, 1.34),
            (SamplerKind::Shadow, ModelKind::Gcn, REDDIT, 32.68),
            (SamplerKind::Shadow, ModelKind::Gcn, OGBN_PRODUCTS, 14.68),
            (SamplerKind::Shadow, ModelKind::Gcn, OGBN_PAPERS100M, 107.8),
        ];
        for (sampler, model, dataset, paper) in cases {
            let m = setup(ICE_LAKE_8380H, Library::Dgl, sampler, model, dataset);
            let (_, ours) = m.argo_best_epoch_time(112);
            let ratio = ours / paper;
            assert!(
                (0.2..5.0).contains(&ratio),
                "{}: modeled {ours:.2}s vs paper {paper}s (ratio {ratio:.2})",
                m.setup().label()
            );
        }
    }

    #[test]
    fn numa_aware_helps_most_on_the_4_socket_machine() {
        // Section IX: the Ice Lake's UPI ceiling is the bigger bottleneck,
        // so NUMA-aware placement recovers more there. Scan tasks and
        // configurations: awareness must never hurt, must help on some
        // bandwidth-bound point, and must help the 4-socket machine most.
        let max_gain = |platform: PlatformSpec| -> f64 {
            let mut best: f64 = 1.0;
            for (sampler, model) in [
                (SamplerKind::Neighbor, ModelKind::Sage),
                (SamplerKind::Shadow, ModelKind::Gcn),
            ] {
                for dataset in [REDDIT, OGBN_PRODUCTS, OGBN_PAPERS100M] {
                    let m = setup(platform, Library::Pyg, sampler, model, dataset);
                    for cfg in enumerate_space(platform.total_cores).iter().step_by(7) {
                        let g = m.epoch_time(*cfg) / m.epoch_time_numa_aware(*cfg);
                        assert!(g >= 1.0 - 1e-12, "NUMA awareness hurt at {cfg}: {g}");
                        best = best.max(g);
                    }
                }
            }
            best
        };
        let il = max_gain(ICE_LAKE_8380H);
        let spr = max_gain(SAPPHIRE_RAPIDS_6430L);
        assert!(
            il >= spr,
            "4-socket gain {il} should be >= 2-socket gain {spr}"
        );
        // In this calibration, per-batch framework overheads dominate the
        // gather phase, so the recovered bandwidth yields a measurable but
        // modest gain (the ablation bench reports the full sweep).
        assert!(
            il > 1.004,
            "Ice Lake should see a visible gain somewhere, got {il}"
        );
    }

    #[test]
    fn numa_aware_falls_back_when_no_local_plan() {
        // A process larger than a socket cannot be socket-local.
        let m = products_dgl_il();
        let cfg = Config::new(2, 4, 40); // 44 cores/process > 28-core socket
        assert_eq!(m.epoch_time_numa_aware(cfg), m.epoch_time(cfg));
    }

    #[test]
    #[should_panic]
    fn oversized_config_panics() {
        let m = products_dgl_il();
        m.epoch_time(Config::new(16, 4, 4)); // 128 > 112 cores
    }

    #[test]
    fn predicted_bottleneck_is_the_slowest_stage() {
        let m = products_dgl_il();
        let c = Config::new(2, 2, 4);
        let prof = m.setup().library.profile();
        let mut times = [
            ("sample", m.sampling_time(c)),
            ("gather", m.gather_time(c)),
            ("compute", m.compute_time(c)),
            ("sync", prof.sync_cost_per_proc * c.n_proc as f64),
        ];
        times.sort_by(|a, b| b.1.total_cmp(&a.1));
        let predicted = m.predicted_bottleneck(c);
        assert_eq!(predicted, times[0].0);
        // The label vocabulary matches the span profiler's, so measured
        // critical-path attribution can be compared against the prediction.
        assert!(argo_rt::CRITICAL_PATH_STAGES.contains(&predicted));
    }

    #[test]
    fn predicted_bottleneck_tracks_the_config() {
        // Piling processes on shifts the prediction toward sync-dominated
        // or memory-bound regimes, never toward a fixed answer: at minimum
        // the function is total over the search space.
        let m = products_dgl_il();
        for config in enumerate_space(16) {
            let b = m.predicted_bottleneck(config);
            assert!(["sample", "gather", "compute", "sync"].contains(&b));
        }
    }

    #[test]
    fn builder_defaults_match_the_paper_task_and_overrides_stick() {
        // The zero-argument builder is the Neighbor-SAGE / Flickr / DGL /
        // Ice Lake task verbatim.
        let built = PerfModel::builder().build();
        let explicit = setup(
            ICE_LAKE_8380H,
            Library::Dgl,
            SamplerKind::Neighbor,
            ModelKind::Sage,
            FLICKR,
        );
        assert_eq!(built.setup().label(), explicit.setup().label());
        let c = built.default_config();
        assert_eq!(built.epoch_time(c), explicit.epoch_time(c));

        // Every with_* override lands, producing the same model as new(Setup).
        let overridden = PerfModel::builder()
            .with_platform(SAPPHIRE_RAPIDS_6430L)
            .with_library(Library::Pyg)
            .with_sampler(SamplerKind::Shadow)
            .with_model(ModelKind::Gcn)
            .with_dataset(REDDIT)
            .build();
        let expect = setup(
            SAPPHIRE_RAPIDS_6430L,
            Library::Pyg,
            SamplerKind::Shadow,
            ModelKind::Gcn,
            REDDIT,
        );
        assert_eq!(overridden.setup().label(), expect.setup().label());
        let c = overridden.default_config();
        assert_eq!(overridden.epoch_time(c), expect.epoch_time(c));
    }

    #[test]
    fn request_seconds_grow_with_batch_and_shrink_with_cores() {
        let m = PerfModel::builder().build();
        let c = Config::new(1, 2, 2);
        let one = m.predicted_request_seconds(c, 1);
        let eight = m.predicted_request_seconds(c, 8);
        let sixty_four = m.predicted_request_seconds(c, 64);
        assert!(one > 0.0);
        assert!(
            one < eight && eight < sixty_four,
            "{one} {eight} {sixty_four}"
        );
        // Micro-batching amortizes the fixed launch overhead: 8 requests in
        // one batch are cheaper than 8 batches of 1.
        assert!(eight < 8.0 * one);

        // More cores shorten the same micro-batch.
        let wide = Config::new(1, 8, 8);
        assert!(m.predicted_request_seconds(wide, 8) < eight);
    }

    #[test]
    fn serve_bottleneck_is_a_training_stage_minus_sync() {
        let m = products_dgl_il();
        for config in enumerate_space(16) {
            for requests in [1usize, 8, 64] {
                let b = m.predicted_serve_bottleneck(config, requests);
                assert!(["sample", "gather", "compute"].contains(&b));
            }
        }
        // Tiny batches are overhead-(compute-)dominated on this task.
        assert_eq!(
            m.predicted_serve_bottleneck(Config::new(1, 4, 4), 1),
            "compute"
        );
    }
}
