//! Cost profiles of the two GNN libraries the paper evaluates.
//!
//! The profiles capture the *relative* behaviours Tables IV/V exhibit:
//! DGL's SpMM/SDDMM backend is substantially faster than PyG's scatter-based
//! kernels on CPU, PyG's neighbor sampler is far slower on large graphs, and
//! both libraries' ShaDow implementations are poorly parallelized inside a
//! single process (the paper attributes ARGO's biggest wins, up to 5.06×, to
//! exactly that — Section VI-E).

use crate::workload::SamplerKind;

/// Which library a run models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Library {
    /// Deep Graph Library (SpMM/SDDMM backend).
    Dgl,
    /// PyTorch-Geometric (message-passing/scatter backend).
    Pyg,
}

impl Library {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Library::Dgl => "DGL",
            Library::Pyg => "PyG",
        }
    }

    /// The calibrated cost profile.
    pub fn profile(&self) -> LibraryProfile {
        match self {
            Library::Dgl => DGL_PROFILE,
            Library::Pyg => PYG_PROFILE,
        }
    }
}

/// Calibrated cost coefficients of a GNN library backend.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LibraryProfile {
    /// Effective f32 GFLOP/s a single training core achieves on the GNN
    /// kernel mix (SpMM + GEMM). DGL's fused kernels are faster.
    pub gflops_per_core: f64,
    /// Amdahl parallel fraction of the model-propagation stage (sparse
    /// kernels have limited scalability — Section V-A2).
    pub train_parallel_fraction: f64,
    /// Effective fraction of the machine's streaming bandwidth the library's
    /// feature gather (`index_select`) achieves per core-stream.
    pub gather_efficiency: f64,
    /// Seconds to sample one edge with the Neighbor sampler.
    pub neighbor_cost_per_edge: f64,
    /// Amdahl parallel fraction of the Neighbor sampler across sampling
    /// cores ("already well-parallelized", Section VI-E).
    pub neighbor_parallel_fraction: f64,
    /// Seconds of work per *induced edge* for the ShaDow sampler (dominated
    /// by localized-subgraph construction).
    pub shadow_cost_per_edge: f64,
    /// Amdahl parallel fraction of the ShaDow sampler ("sub-optimal with a
    /// limited degree of parallelism", Section VI-E).
    pub shadow_parallel_fraction: f64,
    /// Fixed framework overhead per mini-batch per process, in seconds
    /// (Python dispatch, block construction, autograd bookkeeping). This
    /// floor dominates small datasets: Table IV's Flickr optimum (1.98 s /
    /// ~44 iterations ≈ 45 ms/iter) is almost pure overhead.
    pub per_batch_overhead: f64,
    /// Extra random-access memory traffic per aggregated edge-feature, as a
    /// multiplier on `edges × f̄ × 4` bytes. DGL's fused SpMM touches little
    /// beyond the operands; PyG's scatter-based message passing materializes
    /// per-edge messages.
    pub scatter_traffic_factor: f64,
    /// Per-iteration synchronization cost coefficient (seconds per process).
    pub sync_cost_per_proc: f64,
}

impl LibraryProfile {
    /// Sampler cost per edge for `kind`.
    pub fn sampler_cost_per_edge(&self, kind: SamplerKind) -> f64 {
        match kind {
            SamplerKind::Neighbor => self.neighbor_cost_per_edge,
            SamplerKind::Shadow => self.shadow_cost_per_edge,
        }
    }

    /// Sampler Amdahl parallel fraction for `kind`.
    pub fn sampler_parallel_fraction(&self, kind: SamplerKind) -> f64 {
        match kind {
            SamplerKind::Neighbor => self.neighbor_parallel_fraction,
            SamplerKind::Shadow => self.shadow_parallel_fraction,
        }
    }
}

/// DGL v1.1-like backend.
pub const DGL_PROFILE: LibraryProfile = LibraryProfile {
    gflops_per_core: 50.0,
    train_parallel_fraction: 0.94,
    gather_efficiency: 0.55,
    neighbor_cost_per_edge: 110e-9,
    neighbor_parallel_fraction: 0.95,
    shadow_cost_per_edge: 260e-9,
    shadow_parallel_fraction: 0.12,
    per_batch_overhead: 28.0e-3,
    scatter_traffic_factor: 0.3,
    sync_cost_per_proc: 0.45e-3,
};

/// PyG v2.0.3-like backend.
pub const PYG_PROFILE: LibraryProfile = LibraryProfile {
    gflops_per_core: 18.0,
    train_parallel_fraction: 0.90,
    gather_efficiency: 0.45,
    neighbor_cost_per_edge: 900e-9,
    neighbor_parallel_fraction: 0.88,
    shadow_cost_per_edge: 520e-9,
    shadow_parallel_fraction: 0.12,
    per_batch_overhead: 95.0e-3,
    scatter_traffic_factor: 1.4,
    sync_cost_per_proc: 0.6e-3,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgl_is_faster_everywhere() {
        let d = Library::Dgl.profile();
        let p = Library::Pyg.profile();
        assert!(d.gflops_per_core > p.gflops_per_core);
        assert!(d.neighbor_cost_per_edge < p.neighbor_cost_per_edge);
        assert!(d.per_batch_overhead < p.per_batch_overhead);
    }

    #[test]
    fn shadow_is_poorly_parallelized_in_both() {
        for lib in [Library::Dgl, Library::Pyg] {
            let pr = lib.profile();
            assert!(
                pr.sampler_parallel_fraction(SamplerKind::Shadow)
                    < pr.sampler_parallel_fraction(SamplerKind::Neighbor) / 2.0,
                "{}: ShaDow should parallelize far worse than Neighbor",
                lib.name()
            );
        }
    }

    #[test]
    fn accessors_dispatch() {
        let d = DGL_PROFILE;
        assert_eq!(
            d.sampler_cost_per_edge(SamplerKind::Neighbor),
            d.neighbor_cost_per_edge
        );
        assert_eq!(
            d.sampler_cost_per_edge(SamplerKind::Shadow),
            d.shadow_cost_per_edge
        );
    }

    #[test]
    fn names() {
        assert_eq!(Library::Dgl.name(), "DGL");
        assert_eq!(Library::Pyg.name(), "PyG");
    }
}
