//! Platform specifications (paper Table II).

/// A multi-core CPU platform.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlatformSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Number of sockets.
    pub sockets: usize,
    /// Total physical cores.
    pub total_cores: usize,
    /// Base frequency in GHz.
    pub freq_ghz: f64,
    /// Last-level cache in MB (aggregate).
    pub llc_mb: f64,
    /// Memory size in GB.
    pub memory_gb: f64,
    /// Peak memory bandwidth in GB/s (aggregate across sockets).
    pub peak_bw_gbs: f64,
    /// Fraction of the peak bandwidth that survives cross-socket (UPI)
    /// traffic. The paper's profiling found >50% of accesses remote on the
    /// 4-socket Ice Lake, capping useful bandwidth (Section IX).
    pub numa_bw_factor: f64,
    /// Achievable streaming bandwidth of a single core in GB/s (how many
    /// cores it takes to saturate the memory system).
    pub per_core_bw_gbs: f64,
    /// Relative single-core speed on the GNN software stack (IPC ×
    /// effective frequency, normalized to the Ice Lake 8380H). Sapphire
    /// Rapids clocks lower but its Golden Cove cores + DDR5 run this
    /// workload faster per core (Tables IV/V).
    pub core_speed_factor: f64,
}

/// Intel Xeon 8380H, 4 sockets × 28 cores (paper Table II).
pub const ICE_LAKE_8380H: PlatformSpec = PlatformSpec {
    name: "Intel Ice Lake Xeon 8380H",
    sockets: 4,
    total_cores: 112,
    freq_ghz: 2.9,
    llc_mb: 154.0,
    memory_gb: 384.0,
    peak_bw_gbs: 275.0,
    numa_bw_factor: 0.68,
    per_core_bw_gbs: 11.0,
    core_speed_factor: 1.0,
};

/// Intel Xeon 6430L, 2 sockets × 32 cores (paper Table II).
pub const SAPPHIRE_RAPIDS_6430L: PlatformSpec = PlatformSpec {
    name: "Intel Sapphire Rapids Xeon 6430L",
    sockets: 2,
    total_cores: 64,
    freq_ghz: 2.1,
    llc_mb: 120.0,
    memory_gb: 1024.0,
    peak_bw_gbs: 563.0,
    numa_bw_factor: 0.85,
    per_core_bw_gbs: 14.0,
    core_speed_factor: 1.12,
};

impl PlatformSpec {
    /// Cores per socket.
    pub fn cores_per_socket(&self) -> usize {
        self.total_cores / self.sockets
    }

    /// Usable aggregate bandwidth once the NUMA penalty is applied.
    pub fn effective_bw_gbs(&self) -> f64 {
        self.peak_bw_gbs * self.numa_bw_factor
    }

    /// A spec describing the *host* this process runs on (core count and a
    /// conservative generic bandwidth estimate) — used when ARGO runs in
    /// measured mode on real hardware.
    pub fn detect_host() -> PlatformSpec {
        let cores = argo_rt::num_available_cores();
        PlatformSpec {
            name: "host",
            sockets: 1,
            total_cores: cores,
            freq_ghz: 2.5,
            llc_mb: 32.0,
            memory_gb: 16.0,
            peak_bw_gbs: 25.0 * (cores as f64).min(4.0),
            numa_bw_factor: 1.0,
            per_core_bw_gbs: 12.0,
            core_speed_factor: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_verbatim() {
        assert_eq!(ICE_LAKE_8380H.sockets, 4);
        assert_eq!(ICE_LAKE_8380H.total_cores, 112);
        assert!((ICE_LAKE_8380H.freq_ghz - 2.9).abs() < 1e-9);
        assert!((ICE_LAKE_8380H.llc_mb - 154.0).abs() < 1e-9);
        assert!((ICE_LAKE_8380H.memory_gb - 384.0).abs() < 1e-9);
        assert!((ICE_LAKE_8380H.peak_bw_gbs - 275.0).abs() < 1e-9);
        assert_eq!(SAPPHIRE_RAPIDS_6430L.sockets, 2);
        assert_eq!(SAPPHIRE_RAPIDS_6430L.total_cores, 64);
        assert!((SAPPHIRE_RAPIDS_6430L.freq_ghz - 2.1).abs() < 1e-9);
        assert!((SAPPHIRE_RAPIDS_6430L.peak_bw_gbs - 563.0).abs() < 1e-9);
    }

    #[test]
    fn cores_per_socket() {
        assert_eq!(ICE_LAKE_8380H.cores_per_socket(), 28);
        assert_eq!(SAPPHIRE_RAPIDS_6430L.cores_per_socket(), 32);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // intentional paper-value checks
    fn spr_has_more_bandwidth_but_fewer_cores() {
        // The platform contrast the paper exploits.
        assert!(SAPPHIRE_RAPIDS_6430L.peak_bw_gbs > ICE_LAKE_8380H.peak_bw_gbs);
        assert!(SAPPHIRE_RAPIDS_6430L.total_cores < ICE_LAKE_8380H.total_cores);
        // 4-socket NUMA penalty is harsher.
        assert!(ICE_LAKE_8380H.numa_bw_factor < SAPPHIRE_RAPIDS_6430L.numa_bw_factor);
    }

    #[test]
    fn host_detection_is_sane() {
        let h = PlatformSpec::detect_host();
        assert!(h.total_cores >= 1);
        assert!(h.peak_bw_gbs > 0.0);
    }
}
