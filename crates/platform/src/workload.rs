//! Analytic per-iteration workload model.
//!
//! Models what one *global* training iteration (all processes, one
//! synchronized step) costs in sampled edges, unique gathered input nodes
//! and FLOPs, as a function of the per-process batch size — including the
//! paper's key observation (Figure 5/6) that splitting a batch reduces
//! neighbor sharing and therefore *inflates* total workload.

use argo_graph::DatasetSpec;

/// Which sampling algorithm is modeled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SamplerKind {
    /// Layer-wise neighbor sampling, fanouts `[15, 10, 5]`.
    Neighbor,
    /// ShaDow localized subgraphs, fanouts `[10, 5]`.
    Shadow,
}

impl SamplerKind {
    /// Display name as in the paper's task labels.
    pub fn name(&self) -> &'static str {
        match self {
            SamplerKind::Neighbor => "Neighbor",
            SamplerKind::Shadow => "ShaDow",
        }
    }

    /// The paper's fanout configuration for this sampler.
    pub fn fanouts(&self) -> &'static [usize] {
        match self {
            SamplerKind::Neighbor => &[15, 10, 5],
            SamplerKind::Shadow => &[10, 5],
        }
    }
}

/// Which GNN model is modeled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// GCN (Eq. 1).
    Gcn,
    /// GraphSAGE (Eq. 2) — concat doubles every layer's GEMM fan-in.
    Sage,
}

impl ModelKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Gcn => "GCN",
            ModelKind::Sage => "SAGE",
        }
    }
}

/// Workload of one global iteration (summed over all processes).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterationWorkload {
    /// Sampled edges across all processes and layers.
    pub edges: f64,
    /// Unique input nodes whose features are gathered.
    pub input_nodes: f64,
    /// Bytes moved by feature gathering (`input_nodes × f0 × 4`).
    pub gather_bytes: f64,
    /// Model-propagation FLOPs (forward + backward).
    pub flops: f64,
    /// Sampler work in "edge visits" (ShaDow additionally scans the induced
    /// subgraph).
    pub sampler_edge_visits: f64,
}

/// Expected number of distinct values when drawing `k` times uniformly from
/// a pool of `pool` candidates (with replacement): `pool·(1 − e^{−k/pool})`.
pub fn expected_unique(k: f64, pool: f64) -> f64 {
    if pool <= 0.0 || k <= 0.0 {
        return 0.0;
    }
    pool * (1.0 - (-k / pool).exp())
}

/// Fraction of neighbor draws that land on the graph's *hub* nodes. Real
/// social/co-purchase graphs are heavy-tailed: a small hot set of high-degree
/// nodes is hit by a large share of all neighbor draws. Hubs dedup strongly
/// within a large batch but are re-fetched by every process when the batch is
/// split — this is the mechanism behind Figure 5/6's workload inflation.
const HUB_DRAW_FRACTION: f64 = 0.45;

/// Hub-set size as a fraction of the graph.
const HUB_SET_FRACTION: f64 = 0.012;

/// Expected unique neighbors from `k` draws over a heavy-tailed graph with
/// `n` nodes when the cold-candidate pool has size `pool`.
pub fn expected_unique_heavy(k: f64, pool: f64, n: f64) -> f64 {
    if k <= 0.0 {
        return 0.0;
    }
    let hot = HUB_DRAW_FRACTION * k;
    let cold = k - hot;
    let hub_set = (HUB_SET_FRACTION * n).max(1.0);
    expected_unique(hot, hub_set.min(pool)) + expected_unique(cold, pool)
}

/// Analytic workload model for one (dataset, sampler, model) task.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadModel {
    /// The dataset being trained.
    pub dataset: DatasetSpec,
    /// Sampling algorithm.
    pub sampler: SamplerKind,
    /// GNN model.
    pub model: ModelKind,
    /// Global mini-batch size `b` (the paper's experiments use 1024).
    pub global_batch: usize,
    /// Hidden feature dimension (128 in the paper).
    pub hidden: usize,
}

impl WorkloadModel {
    /// A model for the paper's standard setup (batch 1024, hidden 128).
    pub fn paper(dataset: DatasetSpec, sampler: SamplerKind, model: ModelKind) -> Self {
        Self {
            dataset,
            sampler,
            model,
            global_batch: 1024,
            hidden: 128,
        }
    }

    /// Training-target count of the dataset.
    pub fn train_nodes(&self) -> f64 {
        self.dataset.num_nodes as f64 * self.dataset.train_fraction()
    }

    /// Synchronized iterations per epoch (identical for every process count,
    /// because the Multi-Process Engine divides the batch by `n_proc`).
    pub fn iterations_per_epoch(&self) -> f64 {
        (self.train_nodes() / self.global_batch as f64).max(1.0)
    }

    /// Per-layer frontier expansion for neighbor sampling with per-process
    /// batch `b`: returns `(frontier_sizes, edge_counts)` ordered output →
    /// input layer.
    fn neighbor_expansion(&self, b: f64) -> (Vec<f64>, Vec<f64>) {
        let d = self.dataset;
        let avg_deg = d.avg_degree();
        let n = d.num_nodes as f64;
        let mut frontier = b;
        let mut frontiers = vec![b];
        let mut edges = Vec::new();
        // fanouts ordered input→output; expansion walks output→input.
        for &fanout in self.sampler.fanouts().iter().rev() {
            let eff_fanout = (fanout as f64).min(avg_deg * 0.92 + 0.5);
            let k = frontier * eff_fanout;
            edges.push(k);
            // Cold candidate pool: the union of the frontier's
            // non-hub neighborhoods, capped by the graph size.
            let pool = (frontier * avg_deg).min(n);
            frontier = expected_unique_heavy(k, pool, n).max(frontier);
            frontiers.push(frontier);
        }
        (frontiers, edges)
    }

    /// ShaDow localized-subgraph size per process batch `b`: returns
    /// `(subgraph_nodes, induced_edges)`.
    fn shadow_subgraph(&self, b: f64) -> (f64, f64) {
        let d = self.dataset;
        let avg_deg = d.avg_degree();
        let n = d.num_nodes as f64;
        let mut nodes = b;
        let mut frontier = b;
        for &fanout in self.sampler.fanouts() {
            let eff_fanout = (fanout as f64).min(avg_deg * 0.92 + 0.5);
            let k = frontier * eff_fanout;
            let pool = (frontier * avg_deg).min(n);
            let new = expected_unique_heavy(k, pool, n);
            frontier = new;
            nodes += new;
        }
        // Induced edges: every subgraph node keeps the fraction of its
        // neighbors that landed in the subgraph, but at least the sampled
        // tree edges. Denser graphs (Reddit) induce far more edges.
        let density_edges = nodes * avg_deg * (nodes / n).min(1.0);
        let tree_edges = (nodes - b) * 2.0; // undirected
        let induced = density_edges.max(tree_edges) + nodes; // + self-ish slack
        (nodes, induced)
    }

    /// The workload of one global iteration when `n_proc` processes each
    /// train on a `global_batch / n_proc` mini-batch.
    pub fn iteration(&self, n_proc: usize) -> IterationWorkload {
        assert!(n_proc > 0);
        let np = n_proc as f64;
        let b = (self.global_batch as f64 / np).max(1.0);
        let d = self.dataset;
        let f0 = d.f0 as f64;
        let f1 = self.hidden as f64;
        let f2 = d.f2 as f64;
        let sage = matches!(self.model, ModelKind::Sage);
        let cdim = if sage { 2.0 } else { 1.0 };
        match self.sampler {
            SamplerKind::Neighbor => {
                let (frontiers, edges) = self.neighbor_expansion(b);
                // frontiers: [b, n1, n2, n3] output→input; edges likewise.
                let total_edges: f64 = edges.iter().sum::<f64>() * np;
                let input_nodes = frontiers.last().copied().unwrap_or(b) * np;
                // Forward FLOPs per layer: aggregation (2 MACs per edge per
                // feature) + GEMM (2·rows·in·out); backward ≈ 2× forward.
                // Layers ordered output→input: dims out layer f1→f2 … input
                // f0→f1.
                let dims: Vec<(f64, f64)> = match self.sampler.fanouts().len() {
                    3 => vec![(f1, f2), (f1, f1), (f0, f1)],
                    n => {
                        let mut v = vec![(f1, f2)];
                        for _ in 1..n.saturating_sub(1) {
                            v.push((f1, f1));
                        }
                        v.push((f0, f1));
                        v
                    }
                };
                let mut flops = 0.0;
                for (l, (fin, fout)) in dims.iter().enumerate() {
                    let e = edges[l];
                    let rows = frontiers[l];
                    flops += 2.0 * e * fin; // aggregation
                    flops += 2.0 * rows * (cdim * fin) * fout; // update GEMM
                }
                flops *= 3.0 * np; // fwd + bwd ≈ 3× fwd
                IterationWorkload {
                    edges: total_edges,
                    input_nodes,
                    gather_bytes: input_nodes * f0 * 4.0,
                    flops,
                    sampler_edge_visits: total_edges,
                }
            }
            SamplerKind::Shadow => {
                let (nodes, induced) = self.shadow_subgraph(b);
                let layers = 3.0; // paper: 3-layer model on the subgraph
                let total_edges = induced * layers * np;
                let input_nodes = nodes * np;
                let mut flops = 0.0;
                // Layer dims f0→f1, f1→f1, f1→f2, all over `nodes` rows.
                for (fin, fout) in [(f0, f1), (f1, f1), (f1, f2)] {
                    flops += 2.0 * induced * fin;
                    flops += 2.0 * nodes * (cdim * fin) * fout;
                }
                flops *= 3.0 * np;
                // ShaDow's sampler must scan each subgraph node's full
                // neighborhood to build the induced adjacency.
                let sampler_visits = (nodes * d.avg_degree() + induced) * np;
                IterationWorkload {
                    edges: total_edges,
                    input_nodes,
                    gather_bytes: input_nodes * f0 * 4.0,
                    flops,
                    sampler_edge_visits: sampler_visits,
                }
            }
        }
    }

    /// Total sampled edges per epoch (the Figure-6 workload curve).
    pub fn epoch_edges(&self, n_proc: usize) -> f64 {
        self.iteration(n_proc).edges * self.iterations_per_epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_graph::datasets::{FLICKR, OGBN_PAPERS100M, OGBN_PRODUCTS, REDDIT};

    #[test]
    fn expected_unique_behaviour() {
        // Few draws from a big pool: nearly all unique.
        assert!((expected_unique(10.0, 1e9) - 10.0).abs() < 1e-3);
        // Many draws from a small pool: saturates at the pool.
        assert!((expected_unique(1e9, 100.0) - 100.0).abs() < 1e-6);
        // Monotone in k.
        assert!(expected_unique(50.0, 100.0) < expected_unique(80.0, 100.0));
        assert_eq!(expected_unique(0.0, 10.0), 0.0);
    }

    #[test]
    fn workload_grows_with_process_count() {
        // Figure 6: splitting the batch inflates total edges.
        for sampler in [SamplerKind::Neighbor, SamplerKind::Shadow] {
            let w = WorkloadModel::paper(OGBN_PRODUCTS, sampler, ModelKind::Sage);
            let e1 = w.iteration(1).edges;
            let e8 = w.iteration(8).edges;
            let e16 = w.iteration(16).edges;
            assert!(e8 > e1, "{sampler:?}: {e8} !> {e1}");
            assert!(e16 >= e8);
            // The inflation is bounded (sub-linear, not n×).
            assert!(e16 < e1 * 8.0);
        }
    }

    #[test]
    fn iterations_independent_of_nproc() {
        let w = WorkloadModel::paper(REDDIT, SamplerKind::Neighbor, ModelKind::Sage);
        // Semantics preservation: iterations depend only on b, not n_proc.
        assert!((w.iterations_per_epoch() - w.train_nodes() / 1024.0).abs() < 1e-9);
    }

    #[test]
    fn sage_costs_more_flops_than_gcn() {
        let s = WorkloadModel::paper(REDDIT, SamplerKind::Neighbor, ModelKind::Sage);
        let g = WorkloadModel::paper(REDDIT, SamplerKind::Neighbor, ModelKind::Gcn);
        assert!(s.iteration(4).flops > g.iteration(4).flops);
    }

    #[test]
    fn larger_datasets_have_more_gather_traffic() {
        let small = WorkloadModel::paper(FLICKR, SamplerKind::Neighbor, ModelKind::Sage);
        let big = WorkloadModel::paper(OGBN_PAPERS100M, SamplerKind::Neighbor, ModelKind::Sage);
        // Per-iteration gather with equal batch: papers100M has less dedup
        // (huge pool) so ≥ Flickr's.
        assert!(big.iteration(1).gather_bytes >= small.iteration(1).gather_bytes);
        // Per-epoch: papers100M dwarfs Flickr via iteration count.
        assert!(
            big.epoch_edges(1) > 20.0 * small.epoch_edges(1),
            "epoch workload should scale with dataset size"
        );
    }

    #[test]
    fn shadow_sampler_visits_exceed_its_edges_on_dense_graphs() {
        let w = WorkloadModel::paper(REDDIT, SamplerKind::Shadow, ModelKind::Gcn);
        let it = w.iteration(1);
        // Building the induced subgraph scans full neighborhoods: on Reddit
        // (avg degree ~50) that is expensive.
        assert!(it.sampler_edge_visits > it.input_nodes * 20.0);
    }

    #[test]
    fn fanouts_match_paper() {
        assert_eq!(SamplerKind::Neighbor.fanouts(), &[15, 10, 5]);
        assert_eq!(SamplerKind::Shadow.fanouts(), &[10, 5]);
    }

    #[test]
    fn all_quantities_finite_and_positive() {
        for d in [FLICKR, REDDIT, OGBN_PRODUCTS, OGBN_PAPERS100M] {
            for s in [SamplerKind::Neighbor, SamplerKind::Shadow] {
                for m in [ModelKind::Gcn, ModelKind::Sage] {
                    let w = WorkloadModel::paper(d, s, m);
                    for np in [1, 2, 4, 8, 16] {
                        let it = w.iteration(np);
                        for v in [
                            it.edges,
                            it.input_nodes,
                            it.gather_bytes,
                            it.flops,
                            it.sampler_edge_visits,
                        ] {
                            assert!(v.is_finite() && v > 0.0, "{d:?} {s:?} {m:?} np={np}");
                        }
                    }
                }
            }
        }
    }
}
