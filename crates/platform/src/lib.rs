//! # argo-platform — multi-core platform specs and the epoch-time model
//!
//! The paper evaluates ARGO on a 4-socket Ice Lake (112 cores) and a
//! 2-socket Sapphire Rapids (64 cores) training OGB-scale datasets under
//! PyTorch-based DGL/PyG. None of that hardware or software exists in this
//! environment, so this crate supplies the *modeled* execution substrate:
//!
//! * [`PlatformSpec`] — the two paper platforms (Table II) plus host
//!   detection;
//! * [`LibraryProfile`] — cost coefficients for a DGL-like and a PyG-like
//!   backend (kernel efficiency, sampler cost and parallelizability,
//!   per-batch framework overhead);
//! * [`WorkloadModel`] — analytic per-iteration workload (sampled edges,
//!   unique input nodes, FLOPs) including the shared-neighbor dedup effect
//!   that makes workload grow with the process count (Figures 5–6);
//! * [`PerfModel`] — the epoch-time simulator: pipelined sampling/training,
//!   gather/compute interleaving across processes (Figure 2), a memory-
//!   bandwidth roofline with a NUMA/UPI ceiling, Amdahl limits per sampler
//!   implementation, and synchronization overhead. It exposes exactly the
//!   objective function `epoch_time(config)` the auto-tuner optimizes.
//!
//! The mechanisms are the ones the paper itself identifies in Section V-A;
//! the coefficients are calibrated against Tables II–V so that the *shape*
//! of every exhibit (who wins, by what factor, where curves flatten)
//! reproduces.

pub mod calibration;
pub mod des;
pub mod library;
pub mod perf;
pub mod spec;
pub mod workload;

pub use calibration::{table4_dgl, table5_pyg, PaperRow};
pub use des::{PipelineSim, SimOutcome};
pub use library::{Library, LibraryProfile};
pub use perf::{PerfModel, Setup};
pub use spec::{PlatformSpec, ICE_LAKE_8380H, SAPPHIRE_RAPIDS_6430L};
pub use workload::{IterationWorkload, ModelKind, SamplerKind, WorkloadModel};
