//! Calibration dashboard: prints modeled epoch times next to the paper's
//! Table IV/V values plus the Figure 1/8 scaling curves, so the platform
//! model's coefficients can be tuned against the published numbers. The
//! paper rows come from `argo_platform::calibration` (one source of truth,
//! shared with the table benches); setups are built with
//! `PerfModel::builder()`.

use argo_graph::datasets::OGBN_PRODUCTS;
use argo_platform::{table4_dgl, table5_pyg, Library, ModelKind, PerfModel, SamplerKind};
use argo_rt::Config;

fn main() {
    println!(
        "{:<26} {:<34} {:>9} {:>9} {:>6} | {:>7} {:>7} | best",
        "platform", "task", "paper(s)", "model(s)", "ratio", "pap d\u{d7}", "mod d\u{d7}"
    );
    for row in table4_dgl().into_iter().chain(table5_pyg()) {
        let m = PerfModel::new(row.setup());
        let (best, t) = m.argo_best_epoch_time(row.platform.total_cores);
        let def = m.epoch_time(m.default_config());
        let paper = row
            .exhaustive_s
            .map_or_else(|| "      --".into(), |s| format!("{s:>8.2}"));
        let ratio = row
            .exhaustive_s
            .map_or_else(|| "    --".into(), |s| format!("{:>6.2}", t / s));
        println!(
            "{:<26} {:<34} {paper:>9} {t:>9.2} {ratio:>6} | {:>7.2} {:>7.2} | {best}",
            row.platform.name,
            m.setup().label(),
            row.default_x,
            def / t,
        );
    }

    // Figure 1/8 baseline scaling (DGL Neighbor-SAGE products, Ice Lake).
    let m = PerfModel::builder()
        .with_library(Library::Dgl)
        .with_sampler(SamplerKind::Neighbor)
        .with_model(ModelKind::Sage)
        .with_dataset(OGBN_PRODUCTS)
        .build();
    println!("\nbaseline scaling (normalized to 4 cores): cores -> speedup (paper: flat after 16)");
    let t4 = m.baseline_epoch_time(4);
    for cores in [4usize, 8, 16, 32, 64, 112] {
        let (bc, ta) = m.argo_best_epoch_time(cores);
        println!(
            "  {:>3} cores: baseline {:>5.2}x  argo {:>5.2}x  (argo best {})",
            cores,
            t4 / m.baseline_epoch_time(cores),
            t4 / ta,
            bc
        );
    }

    // Serving terms: per-request latency vs micro-batch size on a 16-core
    // slice, with and without the feature cache (see DESIGN.md §12).
    let m = PerfModel::builder().build(); // Neighbor-SAGE / Flickr / DGL
    let plain = Config::new(1, 4, 12);
    let cached = plain.with_cache_rows(m.setup().dataset.num_nodes);
    println!("\nserving (16-core slice): batch -> predicted ms/request, bottleneck");
    for batch in [1usize, 4, 8, 32] {
        println!(
            "  batch {batch:>3}: plain {:>7.3} ms ({:<7}) cached {:>7.3} ms ({})",
            m.predicted_request_seconds(plain, batch) / batch as f64 * 1e3,
            m.predicted_serve_bottleneck(plain, batch),
            m.predicted_request_seconds(cached, batch) / batch as f64 * 1e3,
            m.predicted_serve_bottleneck(cached, batch),
        );
    }
}
