//! Calibration dashboard: prints modeled epoch times next to the paper's
//! Table IV/V values plus the Figure 1/8 scaling curves, so the platform
//! model's coefficients can be tuned against the published numbers.

use argo_graph::datasets::{FLICKR, OGBN_PAPERS100M, OGBN_PRODUCTS, REDDIT};
use argo_platform::{
    Library, ModelKind, PerfModel, SamplerKind, Setup, ICE_LAKE_8380H, SAPPHIRE_RAPIDS_6430L,
};

fn main() {
    // (platform, lib, sampler, model, dataset, paper_exhaustive, paper_default_x)
    let rows = [
        (
            "IL ",
            Library::Dgl,
            SamplerKind::Neighbor,
            ModelKind::Sage,
            FLICKR,
            1.98,
            0.93,
        ),
        (
            "IL ",
            Library::Dgl,
            SamplerKind::Neighbor,
            ModelKind::Sage,
            REDDIT,
            13.83,
            0.81,
        ),
        (
            "IL ",
            Library::Dgl,
            SamplerKind::Neighbor,
            ModelKind::Sage,
            OGBN_PRODUCTS,
            11.19,
            0.54,
        ),
        (
            "IL ",
            Library::Dgl,
            SamplerKind::Neighbor,
            ModelKind::Sage,
            OGBN_PAPERS100M,
            115.4,
            0.75,
        ),
        (
            "IL ",
            Library::Dgl,
            SamplerKind::Shadow,
            ModelKind::Gcn,
            FLICKR,
            1.34,
            0.73,
        ),
        (
            "IL ",
            Library::Dgl,
            SamplerKind::Shadow,
            ModelKind::Gcn,
            REDDIT,
            32.68,
            0.16,
        ),
        (
            "IL ",
            Library::Dgl,
            SamplerKind::Shadow,
            ModelKind::Gcn,
            OGBN_PRODUCTS,
            14.68,
            0.29,
        ),
        (
            "IL ",
            Library::Dgl,
            SamplerKind::Shadow,
            ModelKind::Gcn,
            OGBN_PAPERS100M,
            107.8,
            0.62,
        ),
        (
            "SPR",
            Library::Dgl,
            SamplerKind::Neighbor,
            ModelKind::Sage,
            FLICKR,
            1.81,
            0.94,
        ),
        (
            "SPR",
            Library::Dgl,
            SamplerKind::Neighbor,
            ModelKind::Sage,
            REDDIT,
            11.25,
            0.79,
        ),
        (
            "SPR",
            Library::Dgl,
            SamplerKind::Neighbor,
            ModelKind::Sage,
            OGBN_PRODUCTS,
            7.40,
            0.48,
        ),
        (
            "SPR",
            Library::Dgl,
            SamplerKind::Neighbor,
            ModelKind::Sage,
            OGBN_PAPERS100M,
            41.48,
            0.61,
        ),
        (
            "SPR",
            Library::Dgl,
            SamplerKind::Shadow,
            ModelKind::Gcn,
            FLICKR,
            1.28,
            0.73,
        ),
        (
            "SPR",
            Library::Dgl,
            SamplerKind::Shadow,
            ModelKind::Gcn,
            REDDIT,
            32.12,
            0.23,
        ),
        (
            "SPR",
            Library::Dgl,
            SamplerKind::Shadow,
            ModelKind::Gcn,
            OGBN_PRODUCTS,
            11.42,
            0.23,
        ),
        (
            "SPR",
            Library::Dgl,
            SamplerKind::Shadow,
            ModelKind::Gcn,
            OGBN_PAPERS100M,
            54.56,
            0.49,
        ),
        (
            "IL ",
            Library::Pyg,
            SamplerKind::Neighbor,
            ModelKind::Sage,
            FLICKR,
            5.46,
            1.00,
        ),
        (
            "IL ",
            Library::Pyg,
            SamplerKind::Neighbor,
            ModelKind::Sage,
            REDDIT,
            41.83,
            0.78,
        ),
        (
            "IL ",
            Library::Pyg,
            SamplerKind::Neighbor,
            ModelKind::Sage,
            OGBN_PRODUCTS,
            161.4,
            0.87,
        ),
        (
            "IL ",
            Library::Pyg,
            SamplerKind::Neighbor,
            ModelKind::Sage,
            OGBN_PAPERS100M,
            321.8,
            0.82,
        ),
        (
            "IL ",
            Library::Pyg,
            SamplerKind::Shadow,
            ModelKind::Gcn,
            FLICKR,
            9.48,
            0.33,
        ),
        (
            "IL ",
            Library::Pyg,
            SamplerKind::Shadow,
            ModelKind::Gcn,
            REDDIT,
            40.75,
            0.23,
        ),
        (
            "IL ",
            Library::Pyg,
            SamplerKind::Shadow,
            ModelKind::Gcn,
            OGBN_PRODUCTS,
            71.94,
            0.19,
        ),
        (
            "IL ",
            Library::Pyg,
            SamplerKind::Shadow,
            ModelKind::Gcn,
            OGBN_PAPERS100M,
            315.5,
            0.94,
        ),
        (
            "SPR",
            Library::Pyg,
            SamplerKind::Neighbor,
            ModelKind::Sage,
            FLICKR,
            5.67,
            0.92,
        ),
        (
            "SPR",
            Library::Pyg,
            SamplerKind::Neighbor,
            ModelKind::Sage,
            REDDIT,
            47.36,
            0.87,
        ),
        (
            "SPR",
            Library::Pyg,
            SamplerKind::Neighbor,
            ModelKind::Sage,
            OGBN_PRODUCTS,
            117.9,
            0.76,
        ),
        (
            "SPR",
            Library::Pyg,
            SamplerKind::Neighbor,
            ModelKind::Sage,
            OGBN_PAPERS100M,
            256.4,
            0.87,
        ),
        (
            "SPR",
            Library::Pyg,
            SamplerKind::Shadow,
            ModelKind::Gcn,
            FLICKR,
            8.49,
            0.30,
        ),
        (
            "SPR",
            Library::Pyg,
            SamplerKind::Shadow,
            ModelKind::Gcn,
            REDDIT,
            36.41,
            0.21,
        ),
        (
            "SPR",
            Library::Pyg,
            SamplerKind::Shadow,
            ModelKind::Gcn,
            OGBN_PRODUCTS,
            64.52,
            0.20,
        ),
        (
            "SPR",
            Library::Pyg,
            SamplerKind::Shadow,
            ModelKind::Gcn,
            OGBN_PAPERS100M,
            191.2,
            0.81,
        ),
    ];
    println!(
        "{:<4} {:<4} {:<9} {:<5} {:<16} {:>9} {:>9} {:>6} | {:>7} {:>7} {:>6} | best-config",
        "plat",
        "lib",
        "sampler",
        "model",
        "dataset",
        "paper(s)",
        "model(s)",
        "ratio",
        "pap d×",
        "mod d×",
        ""
    );
    for (plat, lib, sampler, model, dataset, paper, paper_dx) in rows {
        let platform = if plat == "IL " {
            ICE_LAKE_8380H
        } else {
            SAPPHIRE_RAPIDS_6430L
        };
        let m = PerfModel::new(Setup {
            platform,
            library: lib,
            sampler,
            model,
            dataset,
        });
        let (best, t) = m.argo_best_epoch_time(platform.total_cores);
        let def = m.epoch_time(m.default_config());
        println!(
            "{:<4} {:<4} {:<9} {:<5} {:<16} {:>9.2} {:>9.2} {:>6.2} | {:>7.2} {:>7.2} {:>6} | {}",
            plat,
            lib.name(),
            sampler.name(),
            model.name(),
            dataset.name,
            paper,
            t,
            t / paper,
            paper_dx,
            t / def,
            "",
            best
        );
    }
    // Figure 1/8 baseline scaling (DGL Neighbor-SAGE products, Ice Lake).
    let m = PerfModel::new(Setup {
        platform: ICE_LAKE_8380H,
        library: Library::Dgl,
        sampler: SamplerKind::Neighbor,
        model: ModelKind::Sage,
        dataset: OGBN_PRODUCTS,
    });
    println!("\nbaseline scaling (normalized to 4 cores): cores -> speedup (paper: flat after 16)");
    let t4 = m.baseline_epoch_time(4);
    for cores in [4usize, 8, 16, 32, 64, 112] {
        let (bc, ta) = m.argo_best_epoch_time(cores);
        println!(
            "  {:>3} cores: baseline {:>5.2}x  argo {:>5.2}x  (argo best {})",
            cores,
            t4 / m.baseline_epoch_time(cores),
            t4 / ta,
            bc
        );
    }
}
