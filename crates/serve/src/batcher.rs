//! The deadline-driven micro-batcher.
//!
//! Online queries arrive one at a time; executing each alone wastes the
//! sampler and GEMM throughput the training path already paid to build.
//! The batcher admits requests until either `max_batch` queries are pending
//! (flush reason [`FlushReason::Full`]) or the *oldest* pending admit has
//! aged past `deadline_us` (reason [`FlushReason::Deadline`]) — whichever
//! comes first, bounding both batch occupancy and worst-case queueing
//! delay. All decisions are pure functions of caller-supplied microsecond
//! timestamps (see [`crate::clock::Clock`]), so every admission edge is
//! deterministic and unit-tested below.

use std::collections::VecDeque;

use argo_core::Error;
use argo_graph::NodeId;
use argo_rt::racecheck;

/// Why a micro-batch left the queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushReason {
    /// `max_batch` requests were pending.
    Full,
    /// The oldest pending request reached its deadline.
    Deadline,
    /// The caller drained the queue (session shutdown).
    Drain,
}

impl FlushReason {
    /// Wire label used in `serve_batch` events.
    pub fn label(&self) -> &'static str {
        match self {
            FlushReason::Full => "full",
            FlushReason::Deadline => "deadline",
            FlushReason::Drain => "drain",
        }
    }
}

/// One admitted request waiting for its micro-batch.
#[derive(Clone, Debug, PartialEq)]
pub struct Admitted {
    /// Session-unique id, assigned in admission order.
    pub id: u64,
    /// Seed nodes of the query, in the caller's order.
    pub seeds: Vec<NodeId>,
    /// Clock reading at admission (microseconds).
    pub admitted_us: u64,
}

/// A flushed group of requests, ready to execute together.
#[derive(Clone, Debug, PartialEq)]
pub struct MicroBatch {
    /// Session-unique micro-batch id.
    pub id: u64,
    /// What triggered the flush.
    pub reason: FlushReason,
    /// Clock reading at flush (microseconds).
    pub flushed_us: u64,
    /// The requests, oldest first.
    pub requests: Vec<Admitted>,
}

/// Deadline/batch-size admission control. Owns no threads and reads no
/// clock — the session (or a test) feeds it timestamps.
pub struct MicroBatcher {
    max_batch: usize,
    deadline_us: u64,
    queue_cap: usize,
    pending: VecDeque<Admitted>,
    next_request: u64,
    next_batch: u64,
    /// Shadow cells over queue positions (`id % queue_cap`): admission
    /// writes, flushing reads, so a second driver pushing/draining the
    /// queue concurrently would surface as a reported race rather than a
    /// silently reordered batch.
    shadow: racecheck::Region,
}

impl MicroBatcher {
    /// `max_batch` is clamped to at least 1. `deadline_us == 0` means every
    /// admit flushes immediately (pure latency mode); `queue_cap` bounds
    /// pending requests beyond which admission fails with
    /// [`Error::QueueFull`].
    pub fn new(max_batch: usize, deadline_us: u64, queue_cap: usize) -> Self {
        let queue_cap = queue_cap.max(1);
        Self {
            max_batch: max_batch.max(1),
            deadline_us,
            queue_cap,
            pending: VecDeque::new(),
            next_request: 0,
            next_batch: 0,
            shadow: racecheck::region("serve.batcher.pending", queue_cap),
        }
    }

    /// Requests currently queued.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Clock reading at which the oldest pending request must flush, or
    /// `None` when the queue is empty. The session sleeps/polls until this.
    pub fn next_deadline_us(&self) -> Option<u64> {
        self.pending
            .front()
            .map(|r| r.admitted_us.saturating_add(self.deadline_us))
    }

    /// Admits one request at clock reading `now_us`. Returns the assigned
    /// request id plus a micro-batch if this admission triggered a flush:
    /// the queue reaching `max_batch` flushes as [`FlushReason::Full`]; a
    /// zero deadline flushes the request alone as [`FlushReason::Deadline`].
    pub fn admit(
        &mut self,
        seeds: Vec<NodeId>,
        now_us: u64,
    ) -> Result<(u64, Option<MicroBatch>), Error> {
        if self.pending.len() >= self.queue_cap {
            return Err(Error::QueueFull(format!(
                "{} requests pending (cap {})",
                self.pending.len(),
                self.queue_cap
            )));
        }
        let id = self.next_request;
        self.next_request += 1;
        racecheck::write(&self.shadow, (id % self.queue_cap as u64) as usize, 1);
        self.pending.push_back(Admitted {
            id,
            seeds,
            admitted_us: now_us,
        });
        let batch = if self.pending.len() >= self.max_batch {
            self.flush(now_us, FlushReason::Full)
        } else if self.deadline_us == 0 {
            self.flush(now_us, FlushReason::Deadline)
        } else {
            None
        };
        Ok((id, batch))
    }

    /// Flushes the queue if the oldest pending request's deadline has
    /// passed at `now_us`. Call this on every clock tick (or at
    /// `next_deadline_us`).
    pub fn poll(&mut self, now_us: u64) -> Option<MicroBatch> {
        match self.next_deadline_us() {
            Some(at) if now_us >= at => self.flush(now_us, FlushReason::Deadline),
            _ => None,
        }
    }

    /// Unconditionally flushes up to `max_batch` pending requests.
    pub fn flush(&mut self, now_us: u64, reason: FlushReason) -> Option<MicroBatch> {
        if self.pending.is_empty() {
            return None;
        }
        let take = self.pending.len().min(self.max_batch);
        let requests: Vec<Admitted> = self.pending.drain(..take).collect();
        for r in &requests {
            racecheck::read(&self.shadow, (r.id % self.queue_cap as u64) as usize, 1);
        }
        let id = self.next_batch;
        self.next_batch += 1;
        Some(MicroBatch {
            id,
            reason,
            flushed_us: now_us,
            requests,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeds(n: u32) -> Vec<NodeId> {
        (0..n).collect()
    }

    #[test]
    fn single_request_waits_for_its_deadline() {
        let mut b = MicroBatcher::new(4, 1_000, 64);
        let (id, batch) = b.admit(seeds(2), 100).unwrap();
        assert_eq!(id, 0);
        assert!(batch.is_none(), "one request below max_batch must queue");
        assert_eq!(b.next_deadline_us(), Some(1_100));
        // One tick early: nothing.
        assert!(b.poll(1_099).is_none());
        // On the deadline: flush.
        let flushed = b.poll(1_100).expect("deadline reached");
        assert_eq!(flushed.reason, FlushReason::Deadline);
        assert_eq!(flushed.flushed_us, 1_100);
        assert_eq!(flushed.requests.len(), 1);
        assert_eq!(flushed.requests[0].id, 0);
        assert_eq!(b.pending(), 0);
        assert!(b.poll(2_000).is_none(), "empty queue never flushes");
    }

    #[test]
    fn zero_deadline_flushes_every_admit_alone() {
        let mut b = MicroBatcher::new(8, 0, 64);
        for i in 0..3u64 {
            let (id, batch) = b.admit(seeds(1), i * 10).unwrap();
            assert_eq!(id, i);
            let batch = batch.expect("zero deadline flushes immediately");
            assert_eq!(batch.reason, FlushReason::Deadline);
            assert_eq!(batch.requests.len(), 1);
            assert_eq!(batch.id, i);
        }
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn filling_max_batch_flushes_full() {
        let mut b = MicroBatcher::new(3, 10_000, 64);
        assert!(b.admit(seeds(1), 0).unwrap().1.is_none());
        assert!(b.admit(seeds(1), 1).unwrap().1.is_none());
        let batch = b.admit(seeds(1), 2).unwrap().1.expect("third fills");
        assert_eq!(batch.reason, FlushReason::Full);
        assert_eq!(batch.requests.len(), 3);
        assert_eq!(
            batch.requests.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn burst_larger_than_max_batch_splits() {
        let mut b = MicroBatcher::new(4, 10_000, 64);
        let mut flushed = Vec::new();
        for i in 0..10 {
            if let (_, Some(batch)) = b.admit(seeds(1), i).unwrap() {
                flushed.push(batch);
            }
        }
        // 10 admits, max_batch 4 → two Full flushes, two still pending.
        assert_eq!(flushed.len(), 2);
        assert!(flushed.iter().all(|f| f.reason == FlushReason::Full));
        assert!(flushed.iter().all(|f| f.requests.len() == 4));
        assert_eq!(b.pending(), 2);
        // The stragglers flush by deadline, preserving admission order.
        let tail = b.poll(u64::MAX).expect("stragglers age out");
        assert_eq!(
            tail.requests.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![8, 9]
        );
        // Batch ids are sequential across flush reasons.
        assert_eq!(tail.id, 2);
    }

    #[test]
    fn queue_cap_rejects_with_queue_full() {
        let mut b = MicroBatcher::new(64, 10_000, 2);
        b.admit(seeds(1), 0).unwrap();
        b.admit(seeds(1), 0).unwrap();
        match b.admit(seeds(1), 0) {
            Err(Error::QueueFull(_)) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        // Draining makes room again.
        assert!(b.flush(5, FlushReason::Drain).is_some());
        assert!(b.admit(seeds(1), 6).is_ok());
    }

    #[test]
    fn deadline_is_keyed_to_the_oldest_admit() {
        let mut b = MicroBatcher::new(8, 1_000, 64);
        b.admit(seeds(1), 0).unwrap();
        b.admit(seeds(1), 900).unwrap();
        // The *first* request's deadline governs, not the newest.
        let batch = b.poll(1_000).expect("oldest admit aged out");
        assert_eq!(batch.requests.len(), 2);
        assert_eq!(batch.reason, FlushReason::Deadline);
    }

    #[test]
    fn max_batch_zero_is_clamped_to_one() {
        let mut b = MicroBatcher::new(0, 10_000, 64);
        let (_, batch) = b.admit(seeds(1), 0).unwrap();
        assert_eq!(
            batch.expect("cap 1 flushes at once").reason,
            FlushReason::Full
        );
    }
}
