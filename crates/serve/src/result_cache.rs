//! Layered serving result cache.
//!
//! PR-5's counter-based `StreamRng` made sampling a pure function of
//! `(stream root, layer, row)` — so with the stream root derived from the
//! query itself, the *entire* serving response (sampled subgraph → gather →
//! forward pass) is a pure function of `(seed list, config epoch)`. That is
//! the cache key: identical repeated queries skip sampling and compute
//! entirely, and any configuration change bumps the epoch so stale entries
//! can never be served.
//!
//! Eviction reuses the CLOCK second-chance design of the feature cache
//! (PR 2): each entry carries a small frequency counter, a sweeping hand
//! decrements until it finds a zero, and repeated hits saturate at
//! [`MAX_FREQ`] so one-hit wonders leave before hot queries do.

use std::collections::HashMap;
use std::sync::Arc;

use argo_graph::NodeId;
use argo_rt::racecheck;
use argo_tensor::Matrix;

/// Hit saturation for the CLOCK counters (matches the feature cache).
const MAX_FREQ: u8 = 3;

/// Cumulative cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to execute.
    pub misses: u64,
    /// Entries displaced by CLOCK eviction.
    pub evictions: u64,
    /// Entries currently resident.
    pub resident: u64,
    /// Configured capacity in entries.
    pub capacity: u64,
}

impl ResultCacheStats {
    /// Fraction of lookups served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let n = self.hits + self.misses;
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }
}

struct Entry {
    hash: u64,
    /// Exact key, verified on every hit so hash collisions can never serve
    /// the wrong response.
    seeds: Vec<NodeId>,
    epoch: u64,
    logits: Arc<Matrix>,
    freq: u8,
}

/// Fixed-capacity CLOCK cache mapping `(seed list, config epoch)` to the
/// finished response logits. Single-writer, like the session that owns it.
pub struct ResultCache {
    slots: Vec<Option<Entry>>,
    /// hash → slot index. Collisions fall back to miss (verified exactly).
    index: HashMap<u64, usize>,
    hand: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Shadow cells (one per slot) verifying the single-writer claim above:
    /// every slot mutation is a shadow write, every hit a shadow read, so a
    /// second concurrent writer would surface as a reported race.
    shadow: racecheck::Region,
}

fn mix(h: u64, v: u64) -> u64 {
    // SplitMix64 finalizer over a running fold — same mixer family as the
    // sampler's StreamRng, cheap and well-distributed.
    let mut z = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Key hash over the *ordered* seed list and the config epoch. Order
/// matters by design: a seed's RNG stream is keyed by its row position, so
/// `[3, 5]` and `[5, 3]` are genuinely different queries.
pub fn key_hash(seeds: &[NodeId], epoch: u64) -> u64 {
    let mut h = mix(0x5EED_CAFE, epoch);
    for &s in seeds {
        h = mix(h, s as u64);
    }
    h
}

impl ResultCache {
    /// A cache holding up to `capacity` responses (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity).map(|_| None).collect(),
            index: HashMap::with_capacity(capacity),
            hand: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            shadow: racecheck::region("serve.result_cache.slots", capacity),
        }
    }

    /// Looks up a response. A hit refreshes the entry's CLOCK counter.
    pub fn get(&mut self, seeds: &[NodeId], epoch: u64) -> Option<Arc<Matrix>> {
        let hash = key_hash(seeds, epoch);
        if let Some(&slot) = self.index.get(&hash) {
            if let Some(e) = self.slots[slot].as_mut() {
                if e.hash == hash && e.epoch == epoch && e.seeds == seeds {
                    racecheck::read(&self.shadow, slot, 1);
                    e.freq = (e.freq + 1).min(MAX_FREQ);
                    self.hits += 1;
                    return Some(Arc::clone(&e.logits));
                }
            }
        }
        self.misses += 1;
        None
    }

    /// Inserts a finished response, evicting by CLOCK if full.
    pub fn insert(&mut self, seeds: Vec<NodeId>, epoch: u64, logits: Arc<Matrix>) {
        let hash = key_hash(&seeds, epoch);
        if let Some(&slot) = self.index.get(&hash) {
            // Same key raced a concurrent... no: single-writer; an existing
            // entry under this hash is simply replaced in place.
            racecheck::write(&self.shadow, slot, 1);
            self.slots[slot] = Some(Entry {
                hash,
                seeds,
                epoch,
                logits,
                freq: 1,
            });
            return;
        }
        let slot = self.find_victim();
        racecheck::write(&self.shadow, slot, 1);
        if let Some(old) = self.slots[slot].take() {
            self.index.remove(&old.hash);
            self.evictions += 1;
        }
        self.index.insert(hash, slot);
        self.slots[slot] = Some(Entry {
            hash,
            seeds,
            epoch,
            logits,
            freq: 1,
        });
    }

    /// CLOCK sweep: decrement frequencies until an empty or zero-frequency
    /// slot comes under the hand.
    fn find_victim(&mut self) -> usize {
        loop {
            let slot = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            match self.slots[slot].as_mut() {
                None => return slot,
                Some(e) if e.freq == 0 => return slot,
                Some(e) => e.freq -= 1,
            }
        }
    }

    /// Cumulative counters.
    pub fn stats(&self) -> ResultCacheStats {
        ResultCacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            resident: self.slots.iter().filter(|s| s.is_some()).count() as u64,
            capacity: self.slots.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits(v: f32) -> Arc<Matrix> {
        Arc::new(Matrix::from_vec(1, 2, vec![v, -v]))
    }

    #[test]
    fn hit_returns_the_exact_inserted_response() {
        let mut c = ResultCache::new(4);
        assert!(c.get(&[1, 2, 3], 0).is_none());
        c.insert(vec![1, 2, 3], 0, logits(0.5));
        let got = c.get(&[1, 2, 3], 0).expect("hit");
        assert_eq!(got.data(), &[0.5, -0.5]);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.resident), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn seed_order_and_epoch_are_part_of_the_key() {
        let mut c = ResultCache::new(4);
        c.insert(vec![3, 5], 0, logits(1.0));
        assert!(c.get(&[5, 3], 0).is_none(), "order is significant");
        assert!(c.get(&[3, 5], 1).is_none(), "epoch bump invalidates");
        assert!(c.get(&[3, 5], 0).is_some());
    }

    #[test]
    fn clock_eviction_prefers_cold_entries() {
        let mut c = ResultCache::new(2);
        c.insert(vec![1], 0, logits(1.0));
        c.insert(vec![2], 0, logits(2.0));
        // Heat up seed [1]; insertions then displace the cold [2].
        for _ in 0..3 {
            assert!(c.get(&[1], 0).is_some());
        }
        c.insert(vec![3], 0, logits(3.0));
        assert!(c.get(&[1], 0).is_some(), "hot entry survived");
        assert!(c.get(&[3], 0).is_some(), "new entry resident");
        assert!(c.get(&[2], 0).is_none(), "cold entry evicted");
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let mut c = ResultCache::new(2);
        c.insert(vec![7], 4, logits(1.0));
        c.insert(vec![7], 4, logits(9.0));
        assert_eq!(c.get(&[7], 4).unwrap().data(), &[9.0, -9.0]);
        assert_eq!(c.stats().resident, 1);
    }
}
