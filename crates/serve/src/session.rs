//! The serving session: admission → micro-batch → execute → respond.
//!
//! [`ServeSession`] is the online counterpart of the training engine. A
//! caller submits "embed/classify these seed nodes" queries; the session
//! queues them in the deadline [`MicroBatcher`](crate::batcher::MicroBatcher),
//! and executes each flushed micro-batch over the same zero-allocation
//! sampler, feature cache and forward kernels the training path uses.
//!
//! Requests inside a micro-batch execute *individually*, on purpose: the
//! counter-based sampler keys a row's RNG stream off its position in the
//! seed list, so merging queries into one combined seed list would change
//! what every request samples. Keeping each request a pure function of
//! `(its own seed list, config epoch)` is what makes the layered
//! [`ResultCache`](crate::result_cache::ResultCache) sound — a cached
//! response is bitwise identical to re-executing the query. The micro-batch
//! instead amortizes everything around the math: one clock read, one
//! scratch arena, one telemetry flush, one warm thread pool.
//!
//! All timing flows through the [`Clock`](crate::clock::Clock) abstraction;
//! this file never reads the wall clock directly, so every admission and
//! deadline decision is deterministic under [`ManualClock`](crate::clock::ManualClock).

use std::sync::Arc;

use argo_core::Error;
use argo_engine::Engine;
use argo_graph::{Dataset, NodeId};
use argo_nn::{AnyModel, QuantizedGnn};
use argo_rt::racecheck;
use argo_rt::telemetry::names;
use argo_rt::{
    Config, Role, RunEvent, SeedSequence, ServeBatchRecord, ServeRequestRecord, SpanDrain,
    SpanKind, SpanProfiler, Telemetry, ThreadPool, WorkerRing,
};
use argo_sample::{CacheStats, FeatureCache, Normalization, SampleRun, Sampler, SamplerScratch};
use argo_tensor::{Matrix, QuantKind};

use crate::batcher::{Admitted, FlushReason, MicroBatch, MicroBatcher};
use crate::clock::{Clock, WallClock};
use crate::result_cache::{key_hash, ResultCache, ResultCacheStats};

const US_PER_SEC: f64 = 1e6;

/// One finished query.
#[derive(Clone, Debug)]
pub struct ServeResponse {
    /// Request id assigned at admission.
    pub request: u64,
    /// Micro-batch the request executed in.
    pub batch: u64,
    /// Logits over the request's seed nodes (`seeds.len() x num_classes`).
    /// Shared with the result cache, hence the `Arc`.
    pub logits: Arc<Matrix>,
    /// Seconds spent queued in the micro-batcher.
    pub queue_seconds: f64,
    /// End-to-end seconds from admission to completion.
    pub latency_seconds: f64,
    /// Whether the response came from the result cache.
    pub cache_hit: bool,
}

/// What one [`ServeSession::submit`] produced: the admitted request's id,
/// plus any responses completed by a flush this admission triggered.
#[derive(Debug, Default)]
pub struct Submitted {
    /// Id of the request just admitted.
    pub request: u64,
    /// Responses (or per-request failures) from an immediate flush; empty
    /// when the request merely queued.
    pub completed: Vec<Result<ServeResponse, Error>>,
}

/// Everything a [`ServeSession`] needs, assembled via
/// [`ServeSpec::builder`] (mirroring `LoaderSpec::builder`).
pub struct ServeSpec {
    dataset: Arc<Dataset>,
    sampler: Arc<dyn Sampler>,
    model: AnyModel,
    max_batch: usize,
    deadline_us: u64,
    queue_cap: usize,
    feature_cache_rows: usize,
    result_cache_entries: usize,
    normalization: Normalization,
    seed: u64,
    cores: usize,
    shed_after_us: Option<u64>,
    quantization: Option<QuantKind>,
    clock: Arc<dyn Clock>,
}

impl ServeSpec {
    /// Starts a builder over the given dataset, sampler and model (the
    /// model carries whatever parameters it was built with — pass
    /// `Engine::model()` to serve the current training checkpoint).
    pub fn builder(
        dataset: Arc<Dataset>,
        sampler: Arc<dyn Sampler>,
        model: AnyModel,
    ) -> ServeSpecBuilder {
        ServeSpecBuilder {
            spec: ServeSpec {
                dataset,
                sampler,
                model,
                max_batch: 8,
                deadline_us: 1_000,
                queue_cap: 1_024,
                feature_cache_rows: 0,
                result_cache_entries: 0,
                normalization: Normalization::None,
                seed: 0,
                cores: 0,
                shed_after_us: None,
                quantization: None,
                clock: Arc::new(WallClock::new()),
            },
        }
    }

    /// A builder pre-wired to a training session: shares its dataset and
    /// sampler, snapshots its current model parameters, and inherits its
    /// seed and the architecture's adjacency normalization so serving
    /// batches match what the model was trained on.
    pub fn from_engine(engine: &Engine) -> ServeSpecBuilder {
        let opts = engine.options();
        let seed = opts.seed;
        let norm = opts.kind.normalization();
        ServeSpec::builder(
            Arc::clone(engine.dataset()),
            Arc::clone(engine.sampler()),
            engine.model(),
        )
        .seed(seed)
        .normalization(norm)
    }
}

/// Builder for [`ServeSpec`] — bare field methods plus `build`/`start`,
/// the same shape as `LoaderSpecBuilder`.
pub struct ServeSpecBuilder {
    spec: ServeSpec,
}

impl ServeSpecBuilder {
    /// Flush a micro-batch once this many requests are pending (default 8).
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.spec.max_batch = max_batch;
        self
    }

    /// Flush once the oldest pending request is this old, in microseconds
    /// (default 1000; 0 = flush every admit immediately).
    pub fn deadline_us(mut self, deadline_us: u64) -> Self {
        self.spec.deadline_us = deadline_us;
        self
    }

    /// Reject admissions beyond this many pending requests (default 1024).
    pub fn queue_cap(mut self, queue_cap: usize) -> Self {
        self.spec.queue_cap = queue_cap;
        self
    }

    /// Rows of the feature cache fronting the gather stage (default 0 =
    /// gather straight from DRAM).
    pub fn feature_cache_rows(mut self, rows: usize) -> Self {
        self.spec.feature_cache_rows = rows;
        self
    }

    /// Entries of the layered result cache (default 0 = off). Repeated
    /// identical queries under the same config epoch are answered without
    /// sampling or compute.
    pub fn result_cache_entries(mut self, entries: usize) -> Self {
        self.spec.result_cache_entries = entries;
        self
    }

    /// Adjacency normalization fused into sampled batches (default `None`).
    pub fn normalization(mut self, normalization: Normalization) -> Self {
        self.spec.normalization = normalization;
        self
    }

    /// Root seed of the per-request RNG streams (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Worker threads for within-request parallel sampling and compute
    /// (default 0 = serial; batch content is identical either way).
    pub fn cores(mut self, cores: usize) -> Self {
        self.spec.cores = cores;
        self
    }

    /// Shed requests that queued longer than this many microseconds: they
    /// fail with [`Error::DeadlineExceeded`] instead of executing (default:
    /// never shed).
    pub fn shed_after_us(mut self, shed_after_us: u64) -> Self {
        self.spec.shed_after_us = Some(shed_after_us);
        self
    }

    /// Serve from post-training-quantized weights (default: full f32).
    /// The session quantizes the model's trained f32 weights once at
    /// start-up and routes every forward pass through the quantized
    /// kernels; responses stay within the documented accuracy delta of
    /// f32 (see `argo_nn::quant`). GAT has no quantized form yet, so a
    /// GAT model silently serves f32 — check
    /// [`ServeSession::active_quantization`] for what actually took
    /// effect.
    pub fn quantization(mut self, quant: QuantKind) -> Self {
        self.spec.quantization = Some(quant);
        self
    }

    /// Clock driving admission and latency accounting (default
    /// [`WallClock`]; tests inject [`crate::clock::ManualClock`]).
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.spec.clock = clock;
        self
    }

    /// Finalizes the spec.
    pub fn build(self) -> ServeSpec {
        self.spec
    }

    /// Builds the spec and starts a session.
    pub fn start(self) -> ServeSession {
        ServeSession::start(self.build())
    }
}

/// An online inference session. Single-driver: one caller thread submits,
/// polls and drains (concurrency lives inside the pool, as in training).
pub struct ServeSession {
    dataset: Arc<Dataset>,
    sampler: Arc<dyn Sampler>,
    model: AnyModel,
    /// Quantized twin of `model`, built once at start-up when the spec
    /// asked for it; `run_query` routes through it when present.
    quantized: Option<QuantizedGnn>,
    normalization: Normalization,
    seed: u64,
    shed_after_us: Option<u64>,
    clock: Arc<dyn Clock>,
    batcher: MicroBatcher,
    pool: Option<ThreadPool>,
    scratch: SamplerScratch,
    feature_cache: Option<FeatureCache>,
    result_cache: Option<ResultCache>,
    profiler: SpanProfiler,
    ring: Arc<WorkerRing>,
    /// Bumped by [`ServeSession::apply_config`]; part of every result-cache
    /// key and RNG stream root, so a reconfiguration atomically invalidates
    /// all cached responses.
    config_epoch: u64,
}

impl ServeSession {
    /// Starts a session from a finalized spec.
    pub fn start(spec: ServeSpec) -> Self {
        let ServeSpec {
            dataset,
            sampler,
            model,
            max_batch,
            deadline_us,
            queue_cap,
            feature_cache_rows,
            result_cache_entries,
            normalization,
            seed,
            cores,
            shed_after_us,
            quantization,
            clock,
        } = spec;
        // GAT has no quantized form; it keeps serving f32 (the getter
        // `active_quantization` reports what actually took effect).
        let quantized = match (&model, quantization) {
            (AnyModel::Gnn(g), Some(q)) => Some(g.quantize(q)),
            _ => None,
        };
        let pool = if cores > 1 {
            Some(ThreadPool::new("serve", cores))
        } else {
            None
        };
        let feature_cache = if feature_cache_rows > 0 {
            Some(FeatureCache::new(feature_cache_rows, dataset.feat_dim()))
        } else {
            None
        };
        let result_cache = if result_cache_entries > 0 {
            Some(ResultCache::new(result_cache_entries))
        } else {
            None
        };
        let profiler = SpanProfiler::new();
        let ring = profiler.ring(Role::Consumer);
        Self {
            dataset,
            sampler,
            model,
            quantized,
            normalization,
            seed,
            shed_after_us,
            clock,
            batcher: MicroBatcher::new(max_batch, deadline_us, queue_cap),
            pool,
            scratch: SamplerScratch::new(),
            feature_cache,
            result_cache,
            profiler,
            ring,
            config_epoch: 0,
        }
    }

    /// Submits one query. Validates the seeds, admits the request, and — if
    /// the admission filled the batch or the deadline is zero — executes the
    /// flushed micro-batch inline, returning its responses in
    /// [`Submitted::completed`].
    ///
    /// Outer errors reject the *admission*: [`Error::InvalidArgument`] for
    /// an empty seed list, [`Error::UnknownSeedNode`] for out-of-graph ids,
    /// [`Error::QueueFull`] at capacity. Per-request failures of an
    /// executed batch (e.g. [`Error::DeadlineExceeded`] sheds) come back
    /// inside `completed`.
    pub fn submit(
        &mut self,
        seeds: Vec<NodeId>,
        telemetry: Option<&Telemetry>,
    ) -> Result<Submitted, Error> {
        if seeds.is_empty() {
            return Err(Error::InvalidArgument(
                "serve query needs at least one seed node".to_string(),
            ));
        }
        let num_nodes = self.dataset.graph.num_nodes() as u64;
        for &s in &seeds {
            if u64::from(s) >= num_nodes {
                return Err(Error::UnknownSeedNode(format!(
                    "node {s} out of range (graph has {num_nodes} nodes)"
                )));
            }
        }
        let now = self.clock.now_us();
        let (request, flushed) = self.batcher.admit(seeds, now)?;
        let completed = match flushed {
            Some(batch) => self.execute_batch(batch, telemetry),
            None => Vec::new(),
        };
        Ok(Submitted { request, completed })
    }

    /// Executes a micro-batch if the oldest pending request's deadline has
    /// passed. Call at (or after) [`ServeSession::next_deadline_us`].
    pub fn poll(&mut self, telemetry: Option<&Telemetry>) -> Vec<Result<ServeResponse, Error>> {
        let now = self.clock.now_us();
        match self.batcher.poll(now) {
            Some(batch) => self.execute_batch(batch, telemetry),
            None => Vec::new(),
        }
    }

    /// Flushes and executes everything still pending (session shutdown).
    pub fn drain(&mut self, telemetry: Option<&Telemetry>) -> Vec<Result<ServeResponse, Error>> {
        let mut out = Vec::new();
        loop {
            let now = self.clock.now_us();
            match self.batcher.flush(now, FlushReason::Drain) {
                Some(batch) => out.extend(self.execute_batch(batch, telemetry)),
                None => {
                    // Session teardown is the serving analogue of epoch end:
                    // publish runtime-checker verdicts so a race found while
                    // serving lands in the report's metric snapshot.
                    if let Some(t) = telemetry {
                        racecheck::publish_verdicts(&t.metrics);
                    }
                    return out;
                }
            }
        }
    }

    /// Adopts a tuner-chosen configuration: `n_samp` resizes the worker
    /// pool, `cache_rows` resizes the feature cache, and the config epoch
    /// is bumped — which invalidates every cached response, since results
    /// are only reusable under the configuration that produced them.
    pub fn apply_config(&mut self, config: Config) {
        let cores = config.n_samp;
        let pool_size = self.pool.as_ref().map_or(0, ThreadPool::size);
        if cores != pool_size {
            self.pool = if cores > 1 {
                Some(ThreadPool::new("serve", cores))
            } else {
                None
            };
        }
        let cache_rows = self
            .feature_cache
            .as_ref()
            .map_or(0, FeatureCache::capacity_rows);
        if config.cache_rows != cache_rows {
            self.feature_cache = if config.cache_rows > 0 {
                Some(FeatureCache::new(
                    config.cache_rows,
                    self.dataset.feat_dim(),
                ))
            } else {
                None
            };
        }
        self.config_epoch += 1;
    }

    /// The current configuration epoch (bumps on every
    /// [`ServeSession::apply_config`]).
    pub fn config_epoch(&self) -> u64 {
        self.config_epoch
    }

    /// The weight-quantization scheme forward passes actually run under,
    /// or `None` when serving full f32 (either because the spec never
    /// asked for quantization, or because the architecture has no
    /// quantized form — GAT).
    pub fn active_quantization(&self) -> Option<QuantKind> {
        self.quantized.as_ref().map(QuantizedGnn::quant_kind)
    }

    /// Requests currently queued.
    pub fn pending(&self) -> usize {
        self.batcher.pending()
    }

    /// Clock reading at which the oldest pending request must flush.
    pub fn next_deadline_us(&self) -> Option<u64> {
        self.batcher.next_deadline_us()
    }

    /// Result-cache counters, when the cache is enabled.
    pub fn result_cache_stats(&self) -> Option<ResultCacheStats> {
        self.result_cache.as_ref().map(ResultCache::stats)
    }

    /// Feature-cache counters, when the cache is enabled.
    pub fn feature_cache_stats(&self) -> Option<CacheStats> {
        self.feature_cache.as_ref().map(FeatureCache::stats)
    }

    /// Collects the `serve_queue`/`serve_exec` spans recorded so far (for
    /// `argo report` and tests).
    pub fn drain_spans(&self) -> SpanDrain {
        self.profiler.drain()
    }

    fn execute_batch(
        &mut self,
        batch: MicroBatch,
        telemetry: Option<&Telemetry>,
    ) -> Vec<Result<ServeResponse, Error>> {
        let exec_start_us = batch.flushed_us;
        let mut out = Vec::with_capacity(batch.requests.len());
        for req in &batch.requests {
            out.push(self.execute_request(req, batch.id, batch.flushed_us, telemetry));
        }
        let exec_end_us = self.clock.now_us().max(exec_start_us);
        let exec_seconds = (exec_end_us - exec_start_us) as f64 / US_PER_SEC;
        // Interval endpoints come from the serving clock, not ring.now():
        // push() exists exactly for spans measured elsewhere.
        self.ring.push(
            SpanKind::ServeExec,
            batch.id,
            exec_start_us as f64 / US_PER_SEC,
            exec_end_us as f64 / US_PER_SEC,
        );
        if let Some(t) = telemetry {
            t.metrics.counter(names::SERVE_BATCHES_TOTAL).inc();
            t.logger.log(RunEvent::ServeBatch {
                record: ServeBatchRecord {
                    batch: batch.id,
                    requests: batch.requests.len() as u64,
                    flush: batch.reason.label().to_string(),
                    exec_seconds,
                },
            });
        }
        out
    }

    fn execute_request(
        &mut self,
        req: &Admitted,
        batch_id: u64,
        flushed_us: u64,
        telemetry: Option<&Telemetry>,
    ) -> Result<ServeResponse, Error> {
        let queue_us = flushed_us.saturating_sub(req.admitted_us);
        self.ring.push(
            SpanKind::ServeQueue,
            req.id,
            req.admitted_us as f64 / US_PER_SEC,
            flushed_us as f64 / US_PER_SEC,
        );
        if let Some(limit) = self.shed_after_us {
            if queue_us > limit {
                return Err(Error::DeadlineExceeded(format!(
                    "request {} queued {queue_us}us (shed after {limit}us)",
                    req.id
                )));
            }
        }
        let mut cache_hit = true;
        let logits = match self
            .result_cache
            .as_mut()
            .and_then(|c| c.get(&req.seeds, self.config_epoch))
        {
            Some(cached) => cached,
            None => {
                cache_hit = false;
                let computed = Arc::new(self.run_query(&req.seeds));
                if let Some(c) = self.result_cache.as_mut() {
                    c.insert(req.seeds.clone(), self.config_epoch, Arc::clone(&computed));
                }
                computed
            }
        };
        let done_us = self.clock.now_us().max(flushed_us);
        let queue_seconds = queue_us as f64 / US_PER_SEC;
        let latency_seconds = done_us.saturating_sub(req.admitted_us) as f64 / US_PER_SEC;
        if let Some(t) = telemetry {
            t.metrics.counter(names::SERVE_REQUESTS_TOTAL).inc();
            t.metrics
                .time_histogram(names::SERVE_REQUEST_SECONDS)
                .observe(latency_seconds);
            if self.result_cache.is_some() {
                if cache_hit {
                    t.metrics.counter(names::SERVE_RESULT_HITS_TOTAL).inc();
                } else {
                    t.metrics.counter(names::SERVE_RESULT_MISSES_TOTAL).inc();
                }
            }
            if let Some(stats) = self.result_cache_stats() {
                t.metrics
                    .gauge(names::SERVE_RESULT_HIT_RATE)
                    .set(stats.hit_rate());
            }
            t.logger.log(RunEvent::ServeRequest {
                record: ServeRequestRecord {
                    request: req.id,
                    batch: batch_id,
                    seeds: req.seeds.len() as u64,
                    queue_seconds,
                    latency_seconds,
                    cache_hit,
                },
            });
        }
        Ok(ServeResponse {
            request: req.id,
            batch: batch_id,
            logits,
            queue_seconds,
            latency_seconds,
            cache_hit,
        })
    }

    /// Samples, gathers and runs the forward pass for one query. The RNG
    /// stream root folds the session seed, config epoch and the seed list
    /// itself, so the response is a pure function of the cache key — which
    /// is exactly what makes cached responses bitwise-identical to
    /// recomputed ones.
    fn run_query(&mut self, seeds: &[NodeId]) -> Matrix {
        let stream = SeedSequence::new(
            key_hash(seeds, self.config_epoch) ^ self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let run = SampleRun::new(stream, &mut self.scratch)
            .with_norm(self.normalization)
            .with_pool(self.pool.as_ref());
        // Borrowed view over the sampler's batch arena: the adjacency never
        // leaves scratch, the forward pass aggregates straight out of it.
        let batch = self.sampler.sample_into(&self.dataset.graph, seeds, run);
        let ids = batch.input_nodes();
        let rows = match self.feature_cache.as_ref() {
            Some(cache) => cache.gather_rows(&self.dataset.features, ids),
            None => self.dataset.features.gather(ids).data().to_vec(),
        };
        let input = Matrix::from_vec(ids.len(), self.dataset.features.dim(), rows);
        match self.quantized.as_ref() {
            Some(qm) => qm.forward_gathered_view(&batch, input, self.pool.as_ref()),
            None => self
                .model
                .forward_gathered_view(&batch, input, self.pool.as_ref()),
        }
    }
}
