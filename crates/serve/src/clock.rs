//! The serving clock abstraction.
//!
//! Every timestamp the serving path consumes — request admission, deadline
//! expiry, batch execution cost — comes through [`Clock`], so the
//! micro-batcher's admission logic is a pure function of clock readings and
//! can be unit-tested deterministically with [`ManualClock`]. Production
//! sessions use [`WallClock`]; this file is the *only* place in the serving
//! path allowed to read `Instant::now` (enforced by the argo-lint
//! `no-instant` rule).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotone microsecond clock driving admission and deadline decisions.
pub trait Clock: Send + Sync {
    /// Microseconds since the clock's origin.
    fn now_us(&self) -> u64;
}

/// Real time, anchored at construction.
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// A clock that only moves when told to — the deterministic test double
/// that makes deadline/batch-size admission edges unit-testable.
#[derive(Default)]
pub struct ManualClock {
    us: AtomicU64,
}

impl ManualClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `us` microseconds.
    pub fn advance_us(&self, us: u64) {
        self.us.fetch_add(us, Ordering::Relaxed);
    }

    /// Jumps the clock to an absolute reading (must not move backwards for
    /// the batcher's invariants to hold; not checked here).
    pub fn set_us(&self, us: u64) {
        self.us.store(us, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.us.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_when_told() {
        let c = ManualClock::new();
        assert_eq!(c.now_us(), 0);
        c.advance_us(250);
        assert_eq!(c.now_us(), 250);
        c.set_us(1_000_000);
        assert_eq!(c.now_us(), 1_000_000);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }
}
