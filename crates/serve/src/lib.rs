//! # argo-serve — online GNN inference serving
//!
//! ARGO's training runtime (the paper's contribution) tunes core allocation
//! offline, once per training run. Serving flips the problem online: queries
//! for "embed/classify these seed nodes" arrive continuously, and the
//! latency target is a *tail* (p99), not epoch throughput. This crate
//! reuses the training substrate — the zero-allocation samplers, the CLOCK
//! feature cache, the blocked forward kernels — behind a request loop built
//! from three pieces:
//!
//! * [`MicroBatcher`] — deadline-driven admission: requests queue until
//!   either `max_batch` are pending or the oldest has aged `deadline_us`,
//!   bounding both batch occupancy and worst-case queueing delay. All
//!   decisions are pure functions of [`Clock`] readings, so admission edges
//!   are deterministic and unit-testable via [`ManualClock`].
//! * [`ResultCache`] — a layered response cache keyed by
//!   `(seed list, config epoch)`. The counter-based sampler makes every
//!   response a pure function of that key, so a cached response is
//!   *bitwise identical* to re-executing the query (property-tested).
//! * [`ServeSession`] — ties them together: validates and admits queries,
//!   executes flushed micro-batches over the shared sampler/cache/model
//!   stack, and reports per-request telemetry (`serve_request` /
//!   `serve_batch` events, request-latency histograms, `serve_queue` /
//!   `serve_exec` spans) through the same `Option<&Telemetry>` surface as
//!   every other ARGO entry point.
//!
//! Sessions are built with [`ServeSpec::builder`] (or
//! [`ServeSpec::from_engine`] to serve a training checkpoint in place), the
//! same builder shape as the pipelined loader's `LoaderSpec`. The `argo-tune`
//! crate pairs this with a `ServeObjective` that retargets the paper's
//! auto-tuner from epoch time to p99 latency under an open-loop arrival
//! model.

pub mod batcher;
pub mod clock;
pub mod result_cache;
pub mod session;

pub use batcher::{Admitted, FlushReason, MicroBatch, MicroBatcher};
pub use clock::{Clock, ManualClock, WallClock};
pub use result_cache::{ResultCache, ResultCacheStats};
pub use session::{ServeResponse, ServeSession, ServeSpec, ServeSpecBuilder, Submitted};
