//! Integration tests for the serving session: admission errors, config
//! epochs, telemetry, and the bitwise cached == uncached property.

use std::sync::Arc;

use argo_core::Error;
use argo_graph::datasets::{Dataset, FLICKR};
use argo_graph::NodeId;
use argo_nn::{AnyModel, Arch};
use argo_rt::telemetry::names;
use argo_rt::{RunEvent, SpanKind, Telemetry};
use argo_sample::{NeighborSampler, Normalization, Sampler};
use argo_serve::{FlushReason, ManualClock, ServeSession, ServeSpec};
use proptest::prelude::*;

fn tiny() -> Arc<Dataset> {
    Arc::new(FLICKR.synthesize(0.003, 77))
}

fn neighbor() -> Arc<dyn Sampler> {
    Arc::new(NeighborSampler::new(vec![6, 3]))
}

fn model(d: &Dataset) -> AnyModel {
    AnyModel::build(Arch::Sage, d.feat_dim(), 8, d.num_classes, 2, 5)
}

/// A session with a manual clock, immediate flushing and both caches on.
fn session(d: &Arc<Dataset>, clock: &Arc<ManualClock>) -> ServeSession {
    ServeSpec::builder(Arc::clone(d), neighbor(), model(d))
        .deadline_us(0)
        .result_cache_entries(32)
        .feature_cache_rows(256)
        .normalization(Normalization::Mean)
        .seed(11)
        .clock(Arc::clone(clock) as Arc<dyn argo_serve::Clock>)
        .start()
}

#[test]
fn empty_and_unknown_seeds_are_rejected_at_admission() {
    let d = tiny();
    let clock = Arc::new(ManualClock::new());
    let mut s = session(&d, &clock);
    match s.submit(vec![], None) {
        Err(Error::InvalidArgument(_)) => {}
        other => panic!("expected InvalidArgument, got {other:?}"),
    }
    let beyond = d.graph.num_nodes() as NodeId;
    match s.submit(vec![0, beyond], None) {
        Err(Error::UnknownSeedNode(msg)) => {
            assert!(
                msg.contains(&beyond.to_string()),
                "diagnostic names the node: {msg}"
            );
        }
        other => panic!("expected UnknownSeedNode, got {other:?}"),
    }
    // A bad query never occupies the queue.
    assert_eq!(s.pending(), 0);
}

#[test]
fn zero_deadline_serves_inline_and_repeats_hit_the_result_cache() {
    let d = tiny();
    let clock = Arc::new(ManualClock::new());
    let mut s = session(&d, &clock);
    let first = s.submit(vec![1, 2, 3], None).unwrap();
    assert_eq!(first.completed.len(), 1);
    let r1 = first.completed[0].as_ref().unwrap().clone();
    assert!(!r1.cache_hit);
    assert_eq!(r1.logits.rows(), 3);
    assert_eq!(r1.logits.cols(), d.num_classes);

    clock.advance_us(50);
    let second = s.submit(vec![1, 2, 3], None).unwrap();
    let r2 = second.completed[0].as_ref().unwrap().clone();
    assert!(r2.cache_hit, "identical repeated query must hit");
    assert_eq!(
        r1.logits.data(),
        r2.logits.data(),
        "cached response must be bitwise identical"
    );
    let stats = s.result_cache_stats().unwrap();
    assert_eq!((stats.hits, stats.misses), (1, 1));
}

#[test]
fn apply_config_bumps_the_epoch_and_invalidates_cached_responses() {
    let d = tiny();
    let clock = Arc::new(ManualClock::new());
    let mut s = session(&d, &clock);
    s.submit(vec![4, 5], None).unwrap();
    assert_eq!(s.config_epoch(), 0);

    s.apply_config(argo_rt::Config::new(1, 1, 1).with_cache_rows(128));
    assert_eq!(s.config_epoch(), 1);
    let after = s.submit(vec![4, 5], None).unwrap();
    let r = after.completed[0].as_ref().unwrap();
    assert!(
        !r.cache_hit,
        "config change must invalidate the result cache"
    );
}

#[test]
fn shed_requests_fail_with_deadline_exceeded() {
    let d = tiny();
    let clock = Arc::new(ManualClock::new());
    let mut s = ServeSpec::builder(Arc::clone(&d), neighbor(), model(&d))
        .max_batch(8)
        .deadline_us(10_000)
        .shed_after_us(500)
        .clock(Arc::clone(&clock) as Arc<dyn argo_serve::Clock>)
        .start();
    s.submit(vec![1], None).unwrap();
    // Age the queued request far past the shed threshold, then drain.
    clock.advance_us(5_000);
    let out = s.drain(None);
    assert_eq!(out.len(), 1);
    match &out[0] {
        Err(Error::DeadlineExceeded(msg)) => {
            assert!(msg.contains("shed"), "diagnostic explains the shed: {msg}")
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}

#[test]
fn poll_flushes_at_the_deadline_and_drain_reports_drain_reason() {
    let d = tiny();
    let clock = Arc::new(ManualClock::new());
    let tel = Telemetry::new();
    let mut s = ServeSpec::builder(Arc::clone(&d), neighbor(), model(&d))
        .max_batch(8)
        .deadline_us(1_000)
        .clock(Arc::clone(&clock) as Arc<dyn argo_serve::Clock>)
        .start();
    s.submit(vec![1], Some(&tel)).unwrap();
    assert!(s.poll(Some(&tel)).is_empty(), "deadline not reached yet");
    clock.advance_us(1_000);
    let served = s.poll(Some(&tel));
    assert_eq!(served.len(), 1);
    let r = served[0].as_ref().unwrap();
    assert!(
        (r.queue_seconds - 1e-3).abs() < 1e-9,
        "queued exactly one deadline: {}",
        r.queue_seconds
    );

    s.submit(vec![2], Some(&tel)).unwrap();
    s.submit(vec![3], Some(&tel)).unwrap();
    assert_eq!(s.drain(Some(&tel)).len(), 2);
    assert_eq!(s.pending(), 0);

    // Telemetry: batch events carry the flush reason labels.
    let reasons: Vec<String> = tel
        .logger
        .events()
        .iter()
        .filter_map(|(_, e)| match e {
            RunEvent::ServeBatch { record } => Some(record.flush.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(reasons, vec!["deadline".to_string(), "drain".to_string()]);
    assert_eq!(FlushReason::Drain.label(), "drain");
}

#[test]
fn telemetry_reports_requests_batches_and_hit_rate() {
    let d = tiny();
    let clock = Arc::new(ManualClock::new());
    let tel = Telemetry::new();
    let mut s = session(&d, &clock);
    s.submit(vec![1, 2], Some(&tel)).unwrap();
    s.submit(vec![1, 2], Some(&tel)).unwrap();
    s.submit(vec![1, 2], Some(&tel)).unwrap();

    let counters = tel.metrics.counters();
    let get = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert_eq!(get(names::SERVE_REQUESTS_TOTAL), 3);
    assert_eq!(get(names::SERVE_BATCHES_TOTAL), 3);
    assert_eq!(get(names::SERVE_RESULT_HITS_TOTAL), 2);
    assert_eq!(get(names::SERVE_RESULT_MISSES_TOTAL), 1);

    let gauges = tel.metrics.gauges();
    let rate = gauges
        .iter()
        .find(|(n, _)| n == names::SERVE_RESULT_HIT_RATE)
        .map(|(_, v)| *v)
        .unwrap();
    assert!((rate - 2.0 / 3.0).abs() < 1e-9, "hit rate gauge: {rate}");

    let hist = tel.metrics.histograms();
    assert!(
        hist.iter()
            .any(|(n, h)| n == names::SERVE_REQUEST_SECONDS && h.count() == 3),
        "latency histogram observed every request"
    );

    // Request events carry cache_hit and ids; spans cover queue + exec.
    let hits: Vec<bool> = tel
        .logger
        .events()
        .iter()
        .filter_map(|(_, e)| match e {
            RunEvent::ServeRequest { record } => Some(record.cache_hit),
            _ => None,
        })
        .collect();
    assert_eq!(hits, vec![false, true, true]);

    let spans = s.drain_spans();
    let queues = spans
        .records
        .iter()
        .filter(|r| r.kind == SpanKind::ServeQueue)
        .count();
    let execs = spans
        .records
        .iter()
        .filter(|r| r.kind == SpanKind::ServeExec)
        .count();
    assert_eq!((queues, execs), (3, 3));
}

#[test]
fn quantized_serving_tracks_f32_within_accuracy_delta() {
    use argo_tensor::QuantKind;
    let d = tiny();
    let seeds: Vec<NodeId> = (0..24).collect();

    let f32_clock = Arc::new(ManualClock::new());
    let mut f32_session = ServeSpec::builder(Arc::clone(&d), neighbor(), model(&d))
        .deadline_us(0)
        .normalization(Normalization::Mean)
        .seed(11)
        .clock(Arc::clone(&f32_clock) as Arc<dyn argo_serve::Clock>)
        .start();
    assert_eq!(f32_session.active_quantization(), None);
    let f32_out = f32_session.submit(seeds.clone(), None).unwrap();
    let f32_logits = Arc::clone(&f32_out.completed[0].as_ref().unwrap().logits);

    for (quant, max_delta) in [(QuantKind::Bf16, 0.02f32), (QuantKind::Int8, 0.08)] {
        let clock = Arc::new(ManualClock::new());
        let mut s = ServeSpec::builder(Arc::clone(&d), neighbor(), model(&d))
            .deadline_us(0)
            .normalization(Normalization::Mean)
            .seed(11)
            .quantization(quant)
            .clock(Arc::clone(&clock) as Arc<dyn argo_serve::Clock>)
            .start();
        assert_eq!(s.active_quantization(), Some(quant));
        let out = s.submit(seeds.clone(), None).unwrap();
        let q = &out.completed[0].as_ref().unwrap().logits;
        assert_eq!((q.rows(), q.cols()), (f32_logits.rows(), f32_logits.cols()));
        // Same seed list + same session seed sample the same batch, so the
        // only difference is the weight rounding — bounded per scheme.
        let num: f32 = q
            .data()
            .iter()
            .zip(f32_logits.data())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        let den: f32 = f32_logits
            .data()
            .iter()
            .map(|x| x * x)
            .sum::<f32>()
            .sqrt()
            .max(1e-12);
        let delta = num / den;
        assert!(
            delta <= max_delta,
            "{quant:?}: serve logits delta {delta} > {max_delta}"
        );
    }
}

#[test]
fn gat_ignores_quantization_and_serves_f32() {
    use argo_tensor::QuantKind;
    let d = tiny();
    let gat = AnyModel::build(Arch::Gat { heads: 2 }, d.feat_dim(), 8, d.num_classes, 2, 5);
    let clock = Arc::new(ManualClock::new());
    let mut s = ServeSpec::builder(Arc::clone(&d), neighbor(), gat)
        .deadline_us(0)
        .quantization(QuantKind::Int8)
        .clock(Arc::clone(&clock) as Arc<dyn argo_serve::Clock>)
        .start();
    assert_eq!(s.active_quantization(), None, "GAT has no quantized form");
    let out = s.submit(vec![0, 1], None).unwrap();
    let r = out.completed[0].as_ref().unwrap();
    assert!(r.logits.data().iter().all(|x| x.is_finite()));
}

#[test]
fn from_engine_serves_the_training_checkpoint() {
    use argo_engine::{Engine, EngineOptions};
    let d = tiny();
    let opts = EngineOptions {
        hidden: 8,
        num_layers: 2,
        global_batch: 32,
        seed: 5,
        ..Default::default()
    };
    let mut engine = Engine::new(Arc::clone(&d), neighbor(), opts);
    engine.train_epoch(argo_rt::Config::new(1, 1, 1), None);
    let clock = Arc::new(ManualClock::new());
    let mut s = ServeSpec::from_engine(&engine)
        .deadline_us(0)
        .clock(Arc::clone(&clock) as Arc<dyn argo_serve::Clock>)
        .start();
    let out = s.submit(vec![0, 1], None).unwrap();
    let r = out.completed[0].as_ref().unwrap();
    assert_eq!(r.logits.rows(), 2);
    assert_eq!(r.logits.cols(), d.num_classes);
    assert!(r.logits.data().iter().all(|x| x.is_finite()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The load-bearing property of the layered cache: a response served
    /// from the result cache is bitwise identical to executing the same
    /// query on a session with no caches at all.
    #[test]
    fn cached_responses_match_uncached_execution_bitwise(
        raw in prop::collection::vec(0u32..64, 1..6),
    ) {
        let d = tiny();
        let seeds: Vec<NodeId> =
            raw.iter().map(|&v| v % d.graph.num_nodes() as u32).collect();

        let clock = Arc::new(ManualClock::new());
        let mut cached = session(&d, &clock);
        let first = cached.submit(seeds.clone(), None).unwrap();
        let miss = first.completed[0].as_ref().unwrap().clone();
        prop_assert!(!miss.cache_hit);
        let second = cached.submit(seeds.clone(), None).unwrap();
        let hit = second.completed[0].as_ref().unwrap().clone();
        prop_assert!(hit.cache_hit);

        let bare_clock = Arc::new(ManualClock::new());
        let mut bare = ServeSpec::builder(Arc::clone(&d), neighbor(), model(&d))
            .deadline_us(0)
            .normalization(Normalization::Mean)
            .seed(11)
            .clock(Arc::clone(&bare_clock) as Arc<dyn argo_serve::Clock>)
            .start();
        let plain = bare.submit(seeds, None).unwrap();
        let uncached = plain.completed[0].as_ref().unwrap().clone();

        prop_assert_eq!(hit.logits.data(), uncached.logits.data());
        prop_assert_eq!(miss.logits.data(), uncached.logits.data());
    }
}
