//! The README "Serving" quickstart, runnable: a `ServeSession` on a
//! synthetic Flickr slice answering a repeated query mix, with telemetry
//! written as JSONL for `argo report`.
//!
//! ```sh
//! cargo run --release -p argo-serve --example serve_quickstart
//! cargo run --release -p argo-cli --bin argo -- report --metrics /tmp/serve.jsonl
//! ```

use std::sync::Arc;

use argo_graph::datasets::FLICKR;
use argo_nn::{AnyModel, Arch};
use argo_rt::Telemetry;
use argo_sample::{NeighborSampler, Normalization};
use argo_serve::ServeSpec;

fn main() {
    let dataset = Arc::new(FLICKR.synthesize(0.005, 23));
    let net = AnyModel::build(
        Arch::Sage,
        dataset.feat_dim(),
        16,
        dataset.num_classes,
        2,
        9,
    );
    let sampler = Arc::new(NeighborSampler::new(vec![10, 5]));
    let tel = Telemetry::new();

    let mut session = ServeSpec::builder(dataset, sampler, net)
        .deadline_us(0) // inline execution: each submit answers immediately
        .result_cache_entries(64)
        .feature_cache_rows(1_024)
        .normalization(Normalization::Mean)
        .seed(3)
        .start();

    let queries = [vec![1, 2, 3], vec![7], vec![9, 11]];
    for pass in 0..3 {
        for q in &queries {
            let out = session.submit(q.clone(), Some(&tel)).expect("admission");
            for resp in out.completed {
                let r = resp.expect("inline response");
                println!(
                    "pass {pass}: request {} answered in {:.3}ms (cache_hit={})",
                    r.request,
                    r.latency_seconds * 1e3,
                    r.cache_hit
                );
            }
        }
    }
    if let Some(stats) = session.result_cache_stats() {
        println!(
            "result cache: {} hits / {} misses, {}/{} resident",
            stats.hits, stats.misses, stats.resident, stats.capacity
        );
    }

    let path = "/tmp/serve.jsonl";
    match std::fs::write(path, tel.logger.to_jsonl()) {
        Ok(()) => {
            println!("telemetry written to {path} — render with `argo report --metrics {path}`")
        }
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}
