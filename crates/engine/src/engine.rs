//! The Multi-Process Engine proper.

use std::sync::Arc;
use std::time::Instant;

use argo_graph::partition::random_partition;
use argo_graph::{Dataset, Features};
use argo_nn::{AnyModel, AnyOptimizer, Arch, LrSchedule, Optimizer, OptimizerKind};
use argo_rt::affinity::CoreSet;
use argo_rt::metrics::{Counter, Histogram, MetricsRegistry};
use argo_rt::spans::{critical_path, Role, SpanKind, SpanProfiler};
use argo_rt::telemetry::names;
use argo_rt::{
    AllReduce, BytesRecord, CacheSummaryRecord, Config, CoreBinder, EpochRecord, RunEvent,
    RunLogger, SeedSequence, Stage, StageSummaryRecord, Telemetry, ThreadPool, TraceRecorder,
};
use argo_sample::{FeatureCache, LoadedBatch, LoaderSpec, Sampler};

/// Construction options for an [`Engine`].
#[derive(Clone)]
pub struct EngineOptions {
    /// GNN architecture.
    pub kind: Arch,
    /// Hidden feature dimension (the paper uses 128).
    pub hidden: usize,
    /// Number of GNN layers (the paper uses 3).
    pub num_layers: usize,
    /// Global mini-batch size `b`; each process trains with `b / n_proc`.
    pub global_batch: usize,
    /// Optimizer to use (Adam by default; the exact-semantics tests use
    /// plain SGD because its update is linear in the gradient).
    pub optimizer: OptimizerKind,
    /// Learning rate.
    pub lr: f32,
    /// Master RNG seed (model init, partitioning, sampling).
    pub seed: u64,
    /// Total cores the core binder may plan over (defaults to the host's
    /// available cores; set explicitly to emulate a larger logical machine).
    pub total_cores: usize,
    /// Prefetch depth of each process's sampling pipeline.
    pub prefetch: usize,
    /// Optional global-L2 gradient clipping applied *after* the all-reduce
    /// (identical on every replica, so semantics stay synchronized).
    pub grad_clip: Option<f32>,
    /// Learning-rate schedule, keyed on the shared epoch counter so every
    /// replica applies the same rate.
    pub lr_schedule: LrSchedule,
    /// Default cross-batch feature-cache capacity in rows (0 = cache
    /// disabled). A per-epoch [`Config::cache_rows`] > 0 overrides this.
    pub cache_capacity: usize,
    /// Minimum number of matrix rows before a training kernel runs on the
    /// process's training-core pool (see
    /// [`argo_tensor::DispatchPolicy`]); below it the fork/join overhead
    /// outweighs the work.
    pub parallel_row_threshold: usize,
    /// Minimum sparse work (`nnz × dense columns` multiply-adds) before an
    /// aggregation kernel runs on the pool. SpMM is memory-bound, so small
    /// gathers lose to serial even with plenty of rows; the default
    /// crossover comes from the committed kernel baselines.
    pub sparse_work_threshold: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            kind: Arch::Sage,
            hidden: 128,
            num_layers: 3,
            global_batch: 1024,
            optimizer: OptimizerKind::Adam,
            lr: 3e-3,
            seed: 0,
            total_cores: argo_rt::num_available_cores(),
            prefetch: 4,
            grad_clip: None,
            lr_schedule: LrSchedule::Constant,
            cache_capacity: 0,
            parallel_row_threshold: argo_tensor::dispatch::DEFAULT_ROW_THRESHOLD,
            sparse_work_threshold: argo_tensor::dispatch::DEFAULT_SPARSE_WORK_THRESHOLD,
        }
    }
}

/// Fluent builder-style constructors, so adding fields (like
/// `cache_capacity`) never breaks existing call sites.
impl EngineOptions {
    /// Starts from [`EngineOptions::default`].
    pub fn builder() -> Self {
        Self::default()
    }

    /// GNN architecture.
    pub fn with_kind(mut self, kind: Arch) -> Self {
        self.kind = kind;
        self
    }

    /// Hidden feature dimension.
    pub fn with_hidden(mut self, hidden: usize) -> Self {
        self.hidden = hidden;
        self
    }

    /// Number of GNN layers.
    pub fn with_num_layers(mut self, num_layers: usize) -> Self {
        self.num_layers = num_layers;
        self
    }

    /// Global mini-batch size.
    pub fn with_global_batch(mut self, global_batch: usize) -> Self {
        self.global_batch = global_batch;
        self
    }

    /// Optimizer kind.
    pub fn with_optimizer(mut self, optimizer: OptimizerKind) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// Learning rate.
    pub fn with_lr(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Master RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total cores the core binder may plan over.
    pub fn with_total_cores(mut self, total_cores: usize) -> Self {
        self.total_cores = total_cores;
        self
    }

    /// Prefetch depth of each process's sampling pipeline.
    pub fn with_prefetch(mut self, prefetch: usize) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// Global-L2 gradient clipping threshold.
    pub fn with_grad_clip(mut self, max_norm: f32) -> Self {
        self.grad_clip = Some(max_norm);
        self
    }

    /// Learning-rate schedule.
    pub fn with_lr_schedule(mut self, lr_schedule: LrSchedule) -> Self {
        self.lr_schedule = lr_schedule;
        self
    }

    /// Default feature-cache capacity in rows (0 disables the cache).
    pub fn with_cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.cache_capacity = cache_capacity;
        self
    }

    /// Minimum rows before a training kernel goes pool-parallel.
    pub fn with_parallel_row_threshold(mut self, rows: usize) -> Self {
        self.parallel_row_threshold = rows;
        self
    }

    /// Minimum `nnz × dense-cols` multiply-adds before an aggregation
    /// (SpMM) kernel goes pool-parallel.
    pub fn with_sparse_work_threshold(mut self, work: usize) -> Self {
        self.sparse_work_threshold = work;
        self
    }

    /// The kernel dispatch policy these options induce (SIMD tier on;
    /// it self-disables on hosts without AVX2+FMA).
    pub fn dispatch_policy(&self) -> argo_tensor::DispatchPolicy {
        argo_tensor::DispatchPolicy::new(self.parallel_row_threshold)
            .with_sparse_work_threshold(self.sparse_work_threshold)
    }
}

/// Result of training one epoch under one configuration.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// Wall-clock epoch time in seconds — the auto-tuner's objective.
    pub epoch_time: f64,
    /// Mean training loss across all iterations and processes.
    pub loss: f32,
    /// Mean training accuracy.
    pub train_accuracy: f64,
    /// Synchronized iterations executed (= global mini-batches).
    pub iterations: usize,
    /// Mini-batches executed across all processes (= iterations × n_proc).
    pub minibatches: usize,
    /// Total sampled edges (workload proxy, Figure 6).
    pub edges: usize,
    /// Seconds spent inside gradient synchronization (summed over
    /// iterations, averaged over processes).
    pub sync_time: f64,
}

struct ProcessResult {
    loss_sum: f64,
    acc_sum: f64,
    iterations: usize,
    edges: usize,
    sync_time: f64,
    /// Sampler scratch-arena growth events across this process's batches
    /// (steady state: 0).
    scratch_allocs: u64,
    /// Batch-metadata bytes (node ids + edge endpoint indices) produced by
    /// this process's loader.
    metadata_bytes: u64,
    params: Vec<f32>,
    opt: AnyOptimizer,
}

/// Per-stage metric handles shared by all training processes of one epoch.
/// Handles are lock-free to touch, so cloning one set per process keeps the
/// hot loop cheap.
#[derive(Clone)]
struct StageMetrics {
    sample: Arc<Histogram>,
    gather: Arc<Histogram>,
    compute: Arc<Histogram>,
    sync: Arc<Histogram>,
    iterations: Counter,
    minibatches: Counter,
    edges: Counter,
}

impl StageMetrics {
    fn new(metrics: &MetricsRegistry) -> Self {
        let stage = |s: Stage| metrics.time_histogram(&Telemetry::stage_histogram_name(s));
        Self {
            sample: stage(Stage::Sample),
            gather: stage(Stage::Gather),
            compute: stage(Stage::Compute),
            sync: stage(Stage::Sync),
            iterations: metrics.counter(names::ITERATIONS_TOTAL),
            minibatches: metrics.counter(names::MINIBATCHES_TOTAL),
            edges: metrics.counter(names::EDGES_TOTAL),
        }
    }

    fn for_stage(&self, stage: Stage) -> &Arc<Histogram> {
        match stage {
            Stage::Sample => &self.sample,
            Stage::Gather => &self.gather,
            Stage::Compute => &self.compute,
            Stage::Sync => &self.sync,
        }
    }
}

/// A persistent GNN training session whose epochs can each run under a
/// different [`Config`] — exactly what ARGO's auto-tuner needs, since it
/// re-launches the training function with a new configuration every search
/// iteration while the model keeps converging.
pub struct Engine {
    dataset: Arc<Dataset>,
    sampler: Arc<dyn Sampler>,
    opts: EngineOptions,
    params: Vec<f32>,
    opt: AnyOptimizer,
    epoch: u64,
    seeds: SeedSequence,
    /// Cross-batch feature cache, persistent across epochs so reuse
    /// compounds; rebuilt only when the effective capacity changes.
    cache: Option<Arc<FeatureCache>>,
    /// Shared handle to the node features for loader-side pre-gathering
    /// (built lazily the first time the cache is enabled).
    features_arc: Option<Arc<Features>>,
}

impl Engine {
    /// Creates a session. The model is initialized deterministically from
    /// `opts.seed`.
    pub fn new(dataset: Arc<Dataset>, sampler: Arc<dyn Sampler>, opts: EngineOptions) -> Self {
        assert_eq!(
            sampler.num_layers(),
            opts.num_layers,
            "sampler depth must match model depth"
        );
        let model = AnyModel::build(
            opts.kind,
            dataset.feat_dim(),
            opts.hidden,
            dataset.num_classes,
            opts.num_layers,
            opts.seed,
        )
        .with_dispatch(opts.dispatch_policy());
        let mut params = Vec::new();
        model.params_flat(&mut params);
        let opt = AnyOptimizer::build(opts.optimizer, params.len(), opts.lr);
        let seeds = SeedSequence::new(opts.seed ^ 0xC0FFEE);
        Self {
            dataset,
            sampler,
            opts,
            params,
            opt,
            epoch: 0,
            seeds,
            cache: None,
            features_arc: None,
        }
    }

    /// The dataset under training.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// The sampler this session trains with (shared with e.g. a serving
    /// session built via `ServeSpec::from_engine`).
    pub fn sampler(&self) -> &Arc<dyn Sampler> {
        &self.sampler
    }

    /// Epochs completed so far.
    pub fn epochs_done(&self) -> u64 {
        self.epoch
    }

    /// Engine options.
    pub fn options(&self) -> &EngineOptions {
        &self.opts
    }

    /// Current flat model parameters (master replica).
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Builds a model carrying the current master parameters.
    pub fn model(&self) -> AnyModel {
        let mut m = AnyModel::build(
            self.opts.kind,
            self.dataset.feat_dim(),
            self.opts.hidden,
            self.dataset.num_classes,
            self.opts.num_layers,
            self.opts.seed,
        )
        .with_dispatch(self.opts.dispatch_policy());
        m.set_params_flat(&self.params);
        m
    }

    /// Trains one epoch under `config`. Returns measured statistics; the
    /// master parameters and optimizer state advance.
    ///
    /// Pass `Some(&telemetry)` to wire the epoch to the full telemetry
    /// layer: stage intervals go to `telemetry.trace`, per-iteration stage
    /// durations and workload counters to `telemetry.metrics`, and
    /// `epoch_start`/`stage_summary`/`cache_summary`/`epoch_end` events to
    /// `telemetry.logger`. Pass `None` for zero instrumentation overhead
    /// (trace-only callers can use [`Telemetry::with_trace`]).
    pub fn train_epoch(&mut self, config: Config, telemetry: Option<&Telemetry>) -> EpochStats {
        match telemetry {
            Some(t) => self.train_epoch_impl(config, &t.trace, Some(&t.metrics), Some(&t.logger)),
            None => self.train_epoch_impl(config, &TraceRecorder::disabled(), None, None),
        }
    }

    /// The feature cache for this epoch's effective capacity
    /// (`config.cache_rows`, falling back to `opts.cache_capacity`), or
    /// `None` when caching is off. The cache persists across epochs and is
    /// rebuilt only when the capacity knob moves.
    fn cache_for(&mut self, config: Config) -> Option<Arc<FeatureCache>> {
        let rows = if config.cache_rows > 0 {
            config.cache_rows
        } else {
            self.opts.cache_capacity
        };
        if rows == 0 {
            self.cache = None;
            return None;
        }
        match &self.cache {
            Some(c) if c.capacity_rows() == rows => Some(Arc::clone(c)),
            _ => {
                let c = Arc::new(FeatureCache::new(rows, self.dataset.feat_dim()));
                self.cache = Some(Arc::clone(&c));
                Some(c)
            }
        }
    }

    /// Shared features handle for loader-side pre-gathering (one clone of
    /// the feature matrix, amortized over the whole run).
    fn features_arc(&mut self) -> Arc<Features> {
        match &self.features_arc {
            Some(f) => Arc::clone(f),
            None => {
                let f = Arc::new(self.dataset.features.clone());
                self.features_arc = Some(Arc::clone(&f));
                f
            }
        }
    }

    fn train_epoch_impl(
        &mut self,
        config: Config,
        trace: &TraceRecorder,
        metrics: Option<&MetricsRegistry>,
        logger: Option<&RunLogger>,
    ) -> EpochStats {
        let n_proc = config.n_proc;
        let binder = CoreBinder::new(self.opts.total_cores.max(config.total_cores()));
        let plan = binder
            .plan(n_proc, config.n_samp, config.n_train)
            .expect("configuration exceeds engine cores");
        // Even data split; equalize so every process runs the same number of
        // synchronized iterations (DDP drop-last semantics).
        let parts = random_partition(
            &self.dataset.train_nodes,
            n_proc,
            self.seeds.seed_for(self.epoch, u64::MAX),
        );
        let min_len = parts.iter().map(Vec::len).min().unwrap_or(0);
        let local_batch = (self.opts.global_batch / n_proc).max(1);
        // Schedule the learning rate for this epoch (identical on replicas).
        self.opt
            .set_learning_rate(self.opts.lr * self.opts.lr_schedule.multiplier(self.epoch));
        let allreduce = Arc::new(AllReduce::new(n_proc, self.params.len()));
        let epoch = self.epoch;

        // Cross-batch feature cache (tentpole): shared by all processes so
        // neighborhoods re-gathered anywhere hit everywhere.
        let cache = self.cache_for(config);
        let features = cache.as_ref().map(|_| self.features_arc());
        let cache_snapshot = cache.as_ref().map(|c| c.stats());

        let stage_metrics = metrics.filter(|m| m.is_enabled()).map(StageMetrics::new);
        // Histograms are cumulative across epochs; snapshot them so the
        // per-epoch stage summaries below can report deltas.
        let stage_snapshot: Vec<(Stage, f64, u64)> = stage_metrics
            .as_ref()
            .map(|sm| {
                ALL_STAGES
                    .iter()
                    .map(|&s| {
                        let h = sm.for_stage(s);
                        (s, h.sum(), h.count())
                    })
                    .collect()
            })
            .unwrap_or_default();
        if let Some(l) = logger {
            l.log(RunEvent::EpochStart { epoch, config });
        }
        // The causal span profiler rides on the structured-event sink: when
        // events are off, a disabled profiler hands out detached rings and
        // the hot paths pay a single branch per span.
        let spans = if logger.is_some_and(|l| l.is_enabled()) {
            Arc::new(SpanProfiler::new())
        } else {
            Arc::new(SpanProfiler::disabled())
        };

        let start = Instant::now();
        let results: Vec<ProcessResult> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n_proc);
            for (rank, part) in parts.iter().enumerate() {
                let seeds_part: Arc<Vec<u32>> = Arc::new(part[..min_len].to_vec());
                let binding = plan[rank].clone();
                let allreduce = Arc::clone(&allreduce);
                let dataset = Arc::clone(&self.dataset);
                let sampler = Arc::clone(&self.sampler);
                let params0 = self.params.clone();
                let opt0 = self.opt.clone();
                let proc_seeds = self.seeds.child(rank as u64);
                let opts = self.opts.clone();
                let stage_metrics = stage_metrics.clone();
                let spec = ProcessSpec {
                    rank,
                    dataset,
                    sampler,
                    opts,
                    params0,
                    opt0,
                    seeds_part,
                    local_batch,
                    epoch,
                    proc_seeds,
                    sampling_cores: binding.sampling,
                    training_cores: binding.training,
                    allreduce,
                    features: features.clone(),
                    cache: cache.clone(),
                    stage_metrics,
                    spans: Arc::clone(&spans),
                };
                handles.push(scope.spawn(move || run_process(spec, trace)));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("process panicked"))
                .collect()
        });
        let epoch_time = start.elapsed().as_secs_f64();
        // Drain the span rings on the profiler clock: the horizon is the
        // profiler-relative instant of the drain, so critical-path bins
        // line up with the recorded span timestamps.
        let span_horizon = spans.now();
        let drained = spans.drain();

        // All replicas end bit-identical; adopt rank 0's state as master.
        let mut results = results;
        let r0 = results.swap_remove(0);
        self.params = r0.params;
        self.opt = r0.opt;
        self.epoch += 1;

        let iterations = r0.iterations;
        let total_edges = r0.edges + results.iter().map(|r| r.edges).sum::<usize>();
        let loss_sum = r0.loss_sum + results.iter().map(|r| r.loss_sum).sum::<f64>();
        let acc_sum = r0.acc_sum + results.iter().map(|r| r.acc_sum).sum::<f64>();
        let scratch_allocs =
            r0.scratch_allocs + results.iter().map(|r| r.scratch_allocs).sum::<u64>();
        let metadata_bytes =
            r0.metadata_bytes + results.iter().map(|r| r.metadata_bytes).sum::<u64>();
        let batches = iterations * n_proc;
        let stats = EpochStats {
            epoch_time,
            loss: if batches > 0 {
                (loss_sum / batches as f64) as f32
            } else {
                0.0
            },
            train_accuracy: if batches > 0 {
                acc_sum / batches as f64
            } else {
                0.0
            },
            iterations,
            minibatches: batches,
            edges: total_edges,
            sync_time: r0.sync_time,
        };

        // Per-epoch cache counters (only when the cache is enabled, so
        // cache-less runs keep the PR-1 event sequence exactly).
        let cache_delta = cache.as_ref().zip(cache_snapshot.as_ref()).map(|(c, s0)| {
            let d = c.stats().delta(s0);
            CacheSummaryRecord {
                hits: d.hits,
                misses: d.misses,
                evictions: d.evictions,
                resident_rows: d.resident_rows,
                capacity_rows: d.capacity_rows,
                bytes: d.bytes,
            }
        });

        // Byte/alloc accounting for this epoch: how much batch metadata the
        // loaders produced, how many feature bytes the cross-batch cache
        // served, and whether the scratch arena stayed allocation-free.
        let row_bytes = self.dataset.feat_dim() * std::mem::size_of::<f32>();
        let bytes_record = BytesRecord {
            batches: stats.minibatches as u64,
            metadata_bytes,
            cache_bytes: cache_delta
                .as_ref()
                .map_or(0, |d| d.hits * row_bytes as u64),
            scratch_allocs,
        };

        if let Some(m) = metrics.filter(|m| m.is_enabled()) {
            m.time_histogram(names::EPOCH_SECONDS).observe(epoch_time);
            m.counter(names::EPOCHS_TOTAL).inc();
            if trace.is_enabled() {
                m.gauge(names::OVERLAP_FRACTION)
                    .set(trace.overlap_fraction(trace.now()));
            }
            m.counter(names::SCRATCH_ALLOCS_TOTAL).add(scratch_allocs);
            m.counter(names::METADATA_BYTES_TOTAL).add(metadata_bytes);
            m.counter(names::SPANS_RECORDED_TOTAL)
                .add(drained.records.len() as u64);
            m.counter(names::SPANS_DROPPED_TOTAL).add(drained.dropped);
            if let Some(d) = &cache_delta {
                m.counter(names::CACHE_HITS_TOTAL).add(d.hits);
                m.counter(names::CACHE_MISSES_TOTAL).add(d.misses);
                m.counter(names::CACHE_EVICTIONS_TOTAL).add(d.evictions);
                m.counter(names::CACHE_MOVED_BYTES_TOTAL)
                    .add(bytes_record.cache_bytes);
                m.gauge(names::CACHE_BYTES).set(d.bytes as f64);
                m.gauge(names::CACHE_HIT_RATE).set(d.hit_rate());
            }
            // Surface runtime-checker verdicts (race reports, lock-order
            // violations) in the same snapshot the report renders; no-op
            // unless a checker feature is compiled in.
            argo_rt::racecheck::publish_verdicts(m);
        }
        if let Some(l) = logger {
            if let Some(sm) = &stage_metrics {
                for (stage, sum0, count0) in &stage_snapshot {
                    let h = sm.for_stage(*stage);
                    l.log(RunEvent::StageSummary {
                        epoch,
                        summary: StageSummaryRecord {
                            stage: stage.label().to_string(),
                            seconds: h.sum() - sum0,
                            count: h.count() - count0,
                        },
                    });
                }
            }
            // Critical-path attribution: which stage (or wait) was the
            // binding constraint, sampled over the epoch's span timeline.
            if !drained.records.is_empty() {
                let fractions = critical_path(&drained.records, span_horizon)
                    .into_iter()
                    .map(|(stage, f)| (stage.to_string(), f))
                    .collect();
                l.log(RunEvent::CriticalPath {
                    epoch,
                    fractions,
                    spans: drained.records.len() as u64,
                    dropped: drained.dropped,
                });
            }
            l.log(RunEvent::BytesSummary {
                epoch,
                record: bytes_record,
            });
            if let Some(summary) = cache_delta {
                l.log(RunEvent::CacheSummary { epoch, summary });
            }
            l.log(RunEvent::EpochEnd {
                epoch,
                config,
                record: EpochRecord {
                    epoch_time: stats.epoch_time,
                    loss: f64::from(stats.loss),
                    train_accuracy: stats.train_accuracy,
                    iterations: stats.iterations as u64,
                    minibatches: stats.minibatches as u64,
                    edges: stats.edges as u64,
                    sync_time: stats.sync_time,
                },
            });
        }
        stats
    }
}

const ALL_STAGES: [Stage; 4] = [Stage::Sample, Stage::Gather, Stage::Compute, Stage::Sync];

/// Everything one training process needs, bundled so [`run_process`] takes
/// two arguments instead of fifteen (the old signature needed an
/// `allow(clippy::too_many_arguments)` escape hatch).
struct ProcessSpec {
    rank: usize,
    dataset: Arc<Dataset>,
    sampler: Arc<dyn Sampler>,
    opts: EngineOptions,
    params0: Vec<f32>,
    opt0: AnyOptimizer,
    seeds_part: Arc<Vec<u32>>,
    local_batch: usize,
    epoch: u64,
    proc_seeds: SeedSequence,
    sampling_cores: CoreSet,
    training_cores: CoreSet,
    allreduce: Arc<AllReduce>,
    /// Feature table handle for loader-side pre-gather; `Some` iff the
    /// cross-batch cache is enabled for this epoch.
    features: Option<Arc<Features>>,
    cache: Option<Arc<FeatureCache>>,
    stage_metrics: Option<StageMetrics>,
    /// Causal span profiler shared by every process of this epoch (a
    /// disabled profiler hands out detached rings — zero overhead).
    spans: Arc<SpanProfiler>,
}

fn run_process(spec: ProcessSpec, trace: &TraceRecorder) -> ProcessResult {
    let ProcessSpec {
        rank,
        dataset,
        sampler,
        opts,
        params0,
        opt0,
        seeds_part,
        local_batch,
        epoch,
        proc_seeds,
        sampling_cores,
        training_cores,
        allreduce,
        features,
        cache,
        stage_metrics,
        spans,
    } = spec;

    // Local model replica (DDP-style).
    let mut model = AnyModel::build(
        opts.kind,
        dataset.feat_dim(),
        opts.hidden,
        dataset.num_classes,
        opts.num_layers,
        opts.seed,
    )
    .with_dispatch(opts.dispatch_policy());
    let mut params = params0;
    model.set_params_flat(&params);
    let mut opt = opt0;

    let n_samp = sampling_cores.len();
    let graph = Arc::new(dataset.graph.clone());
    let mut loader_spec = LoaderSpec::builder(graph, Arc::clone(&sampler), Arc::clone(&seeds_part))
        .batch_size(local_batch)
        .epoch(epoch)
        .epoch_seeds(proc_seeds)
        .n_samp(n_samp)
        .cores(sampling_cores)
        .prefetch(opts.prefetch)
        .normalization(opts.kind.normalization())
        .spans(Arc::clone(&spans));
    if let (Some(f), Some(c)) = (&features, &cache) {
        loader_spec = loader_spec.features(Arc::clone(f)).cache(Arc::clone(c));
    }
    let loader = loader_spec.start();
    // Consumer-side span ring: compute/sync spans here chain (by batch id)
    // onto the producer spans the loader records.
    let ring = spans.ring(Role::Consumer);
    let train_pool = if training_cores.len() > 1 {
        Some(ThreadPool::pinned("argo-train", &training_cores))
    } else {
        None
    };

    let mut grads = Vec::with_capacity(params.len());
    let mut loss_sum = 0.0f64;
    let mut acc_sum = 0.0f64;
    let mut iterations = 0usize;
    let mut edges = 0usize;
    let mut sync_time = 0.0f64;
    let mut scratch_allocs = 0u64;
    let mut metadata_bytes = 0u64;

    let sm = stage_metrics.as_ref();
    let observe = |stage: Stage, start: f64, end: f64| {
        trace.record(rank, stage, start, end);
        if let Some(sm) = sm {
            sm.for_stage(stage).observe(end - start);
        }
    };

    let mut wait_from = trace.now();
    for (i, loaded) in loader {
        observe(Stage::Sample, wait_from, trace.now());
        scratch_allocs += loaded.scratch_allocs;
        let LoadedBatch {
            batch,
            input,
            gather_seconds,
            metadata_bytes: batch_metadata_bytes,
            ..
        } = loaded;
        let stats = match input {
            Some(input) => {
                // The loader already gathered the input rows (through the
                // cross-batch cache); attribute that measured time to the
                // Gather stage instead of re-touching the feature table.
                if trace.is_enabled() || sm.is_some() {
                    let g0 = trace.now();
                    observe(Stage::Gather, g0, g0 + gather_seconds);
                }
                let c0 = trace.now();
                let sp = ring.span_begin(SpanKind::Compute, i as u64);
                let stats =
                    model.train_step_gathered(&batch, input, &dataset.labels, train_pool.as_ref());
                ring.span_end(sp);
                observe(Stage::Compute, c0, trace.now());
                stats
            }
            None => {
                if trace.is_enabled() || sm.is_some() {
                    // Instrument the bandwidth-bound feature gather separately
                    // (Figure 2's `aten::index_select`); the gather inside
                    // `train_step` is what actually feeds the model.
                    let g0 = trace.now();
                    let gsp = ring.span_begin(SpanKind::Gather, i as u64);
                    std::hint::black_box(dataset.features.gather(batch.input_nodes()));
                    ring.span_end(gsp);
                    observe(Stage::Gather, g0, trace.now());
                }
                let c0 = trace.now();
                let sp = ring.span_begin(SpanKind::Compute, i as u64);
                let stats = model.train_step(
                    &batch,
                    &dataset.features,
                    &dataset.labels,
                    train_pool.as_ref(),
                );
                ring.span_end(sp);
                observe(Stage::Compute, c0, trace.now());
                stats
            }
        };
        edges += batch.total_edges(opts.num_layers);
        // Measured on the arena-resident view by the loader worker: node
        // ids, degrees, u32 row pointers, column indices and fused values —
        // the compact CSR layout, not the old edge-list estimate.
        metadata_bytes += batch_metadata_bytes;
        loss_sum += f64::from(stats.loss);
        acc_sum += stats.accuracy;

        // Synchronous SGD: average gradients, then apply the identical
        // optimizer step on every replica.
        model.grads_flat(&mut grads);
        let t0 = trace.now();
        let sy = ring.span_begin(SpanKind::Sync, i as u64);
        allreduce.reduce_mean(&mut grads);
        ring.span_end(sy);
        let t1 = trace.now();
        sync_time += t1 - t0;
        observe(Stage::Sync, t0, t1);
        if let Some(max_norm) = opts.grad_clip {
            argo_nn::optim::clip_grad_norm(&mut grads, max_norm);
        }
        opt.step(&mut params, &grads);
        model.set_params_flat(&params);
        iterations += 1;
        if let Some(sm) = sm {
            sm.minibatches.inc();
            sm.edges.add(batch.total_edges(opts.num_layers) as u64);
            if rank == 0 {
                sm.iterations.inc();
            }
        }
        wait_from = trace.now();
    }

    ProcessResult {
        loss_sum,
        acc_sum,
        iterations,
        edges,
        sync_time,
        scratch_allocs,
        metadata_bytes,
        params,
        opt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_graph::datasets::FLICKR;
    use argo_sample::{NeighborSampler, ShadowSampler};

    fn tiny() -> Arc<Dataset> {
        Arc::new(FLICKR.synthesize(0.01, 21))
    }

    fn opts(batch: usize) -> EngineOptions {
        EngineOptions {
            hidden: 16,
            num_layers: 2,
            global_batch: batch,
            lr: 5e-3,
            seed: 3,
            total_cores: 8,
            ..Default::default()
        }
    }

    fn neighbor() -> Arc<dyn Sampler> {
        Arc::new(NeighborSampler::new(vec![8, 4]))
    }

    #[test]
    fn epoch_runs_and_advances() {
        let mut e = Engine::new(tiny(), neighbor(), opts(64));
        let before = e.params().to_vec();
        let stats = e.train_epoch(Config::new(2, 1, 2), None);
        assert!(stats.epoch_time > 0.0);
        assert!(stats.iterations > 0);
        assert_eq!(stats.minibatches, stats.iterations * 2);
        assert!(stats.loss.is_finite());
        assert_ne!(e.params(), &before[..], "parameters did not move");
        assert_eq!(e.epochs_done(), 1);
    }

    #[test]
    fn effective_batch_size_preserved() {
        // Iterations per epoch must be ~train_len / global_batch regardless
        // of n_proc (Section IV-B2): each process does b/n per iteration.
        let d = tiny();
        let n_train = d.train_nodes.len();
        let mut e1 = Engine::new(Arc::clone(&d), neighbor(), opts(64));
        let s1 = e1.train_epoch(Config::new(1, 1, 1), None);
        let mut e4 = Engine::new(Arc::clone(&d), neighbor(), opts(64));
        let s4 = e4.train_epoch(Config::new(4, 1, 1), None);
        let expect = n_train / 64;
        assert!(
            (s1.iterations as i64 - expect as i64).abs() <= 1,
            "{} vs {}",
            s1.iterations,
            expect
        );
        assert!(
            (s4.iterations as i64 - expect as i64).abs() <= 1,
            "{} vs {}",
            s4.iterations,
            expect
        );
        // Total seeds consumed per iteration is the same.
        assert_eq!(s4.minibatches, s4.iterations * 4);
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let mut e = Engine::new(tiny(), neighbor(), opts(64));
        let first = e.train_epoch(Config::new(2, 1, 1), None);
        let mut last = first;
        for _ in 0..5 {
            last = e.train_epoch(Config::new(2, 1, 1), None);
        }
        assert!(
            last.loss < first.loss,
            "loss {} did not drop from {}",
            last.loss,
            first.loss
        );
    }

    #[test]
    fn config_can_change_between_epochs() {
        let mut e = Engine::new(tiny(), neighbor(), opts(32));
        for (p, s, t) in [(1, 1, 1), (2, 1, 2), (4, 1, 1), (2, 2, 1)] {
            let stats = e.train_epoch(Config::new(p, s, t), None);
            assert!(stats.iterations > 0);
        }
        assert_eq!(e.epochs_done(), 4);
    }

    #[test]
    fn shadow_sampler_works() {
        let mut e = Engine::new(
            tiny(),
            Arc::new(ShadowSampler::new(vec![6, 3], 2)),
            opts(48),
        );
        let stats = e.train_epoch(Config::new(2, 1, 1), None);
        assert!(stats.loss.is_finite());
        assert!(stats.edges > 0);
    }

    #[test]
    fn trace_records_all_stages() {
        let mut e = Engine::new(tiny(), neighbor(), opts(64));
        let trace = Arc::new(TraceRecorder::new());
        let tel = Telemetry::with_trace(Arc::clone(&trace));
        e.train_epoch(Config::new(2, 1, 1), Some(&tel));
        let events = trace.events();
        for stage in [Stage::Sample, Stage::Gather, Stage::Compute, Stage::Sync] {
            assert!(
                events.iter().any(|ev| ev.stage == stage),
                "missing {stage:?} events"
            );
        }
        // Both processes traced.
        assert!(events.iter().any(|ev| ev.process == 1));
    }

    #[test]
    fn telemetry_epoch_emits_metrics_and_events() {
        use argo_rt::telemetry::names;
        let mut e = Engine::new(tiny(), neighbor(), opts(64));
        let tel = Telemetry::new();
        let stats = e.train_epoch(Config::new(2, 1, 1), Some(&tel));

        // Counters track the stats exactly.
        let counters: std::collections::BTreeMap<_, _> =
            tel.metrics.counters().into_iter().collect();
        assert_eq!(counters[names::EPOCHS_TOTAL], 1);
        assert_eq!(counters[names::ITERATIONS_TOTAL], stats.iterations as u64);
        assert_eq!(counters[names::MINIBATCHES_TOTAL], stats.minibatches as u64);
        assert_eq!(counters[names::EDGES_TOTAL], stats.edges as u64);

        // Stage histograms saw one observation per mini-batch.
        let hists: std::collections::BTreeMap<_, _> =
            tel.metrics.histograms().into_iter().collect();
        let compute = &hists[&Telemetry::stage_histogram_name(Stage::Compute)];
        assert_eq!(compute.count(), stats.minibatches as u64);
        assert!(compute.sum() > 0.0);
        let epoch_h = &hists[names::EPOCH_SECONDS];
        assert_eq!(epoch_h.count(), 1);
        assert!((epoch_h.sum() - stats.epoch_time).abs() < 1e-9);

        // Structured events: one epoch_start, four stage summaries, the
        // profiler's critical-path and bytes summaries, one epoch_end whose
        // record mirrors the returned stats.
        let events = tel.logger.events();
        let kinds: Vec<&str> = events.iter().map(|(_, e)| e.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                "epoch_start",
                "stage_summary",
                "stage_summary",
                "stage_summary",
                "stage_summary",
                "critical_path",
                "bytes_summary",
                "epoch_end"
            ]
        );
        // Critical-path fractions cover the whole epoch (sum ≈ 1).
        match events.iter().find_map(|(_, e)| match e {
            argo_rt::RunEvent::CriticalPath {
                fractions, spans, ..
            } => Some((fractions.clone(), *spans)),
            _ => None,
        }) {
            Some((fractions, spans)) => {
                assert!(spans > 0);
                let total: f64 = fractions.iter().map(|(_, f)| f).sum();
                assert!((total - 1.0).abs() < 1e-6, "fractions sum {total}");
            }
            None => panic!("no critical_path event"),
        }
        // Byte accounting: metadata flowed, the scratch counter matched the
        // metric, and no cache means no cache bytes.
        match events.iter().find_map(|(_, e)| match e {
            argo_rt::RunEvent::BytesSummary { record, .. } => Some(*record),
            _ => None,
        }) {
            Some(r) => {
                assert_eq!(r.batches, stats.minibatches as u64);
                assert!(r.metadata_bytes > 0);
                assert!(r.metadata_bytes_per_batch() > 0.0);
                assert_eq!(r.cache_bytes, 0);
                assert_eq!(counters[names::SCRATCH_ALLOCS_TOTAL], r.scratch_allocs);
                assert_eq!(counters[names::METADATA_BYTES_TOTAL], r.metadata_bytes);
            }
            None => panic!("no bytes_summary event"),
        }
        match &events.last().unwrap().1 {
            argo_rt::RunEvent::EpochEnd {
                epoch,
                config,
                record,
            } => {
                assert_eq!(*epoch, 0);
                assert_eq!(config.n_proc, 2);
                assert!((record.epoch_time - stats.epoch_time).abs() < 1e-12);
                assert_eq!(record.iterations, stats.iterations as u64);
            }
            other => panic!("expected epoch_end, got {other:?}"),
        }
    }

    #[test]
    fn sync_time_agrees_with_metrics() {
        use std::collections::BTreeMap;
        // Single process: the sync histogram's total is exactly the
        // EpochStats sync_time (both sum the same rank-0 intervals).
        let mut e = Engine::new(tiny(), neighbor(), opts(64));
        let tel = Telemetry::new();
        let stats = e.train_epoch(Config::new(1, 1, 1), Some(&tel));
        let hists: BTreeMap<_, _> = tel.metrics.histograms().into_iter().collect();
        let sync = &hists[&Telemetry::stage_histogram_name(Stage::Sync)];
        let tol = 1e-6 + 0.05 * stats.sync_time;
        assert!(
            (sync.sum() - stats.sync_time).abs() <= tol,
            "sync histogram {} vs stats {}",
            sync.sum(),
            stats.sync_time
        );
        assert_eq!(sync.count(), stats.iterations as u64);

        // Multi-process: stats report rank 0 only, so the all-rank
        // histogram total must be at least that and count every rank.
        let mut e = Engine::new(tiny(), neighbor(), opts(64));
        let tel = Telemetry::new();
        let stats = e.train_epoch(Config::new(2, 1, 1), Some(&tel));
        let hists: BTreeMap<_, _> = tel.metrics.histograms().into_iter().collect();
        let sync = &hists[&Telemetry::stage_histogram_name(Stage::Sync)];
        assert!(sync.sum() >= stats.sync_time * 0.95);
        assert_eq!(sync.count(), (stats.iterations * 2) as u64);
    }

    #[test]
    fn telemetry_disabled_is_inert_and_stats_match() {
        let mut e = Engine::new(tiny(), neighbor(), opts(64));
        let tel = Telemetry::disabled();
        let stats = e.train_epoch(Config::new(2, 1, 1), Some(&tel));
        assert!(stats.iterations > 0);
        assert!(tel.metrics.counters().is_empty());
        assert!(tel.metrics.histograms().is_empty());
        assert!(tel.logger.is_empty());
        assert!(tel.trace.events().is_empty());
    }

    #[test]
    fn more_processes_than_batch_still_works() {
        // Degenerate split: global batch 4 over 4 processes → local batch 1.
        let mut e = Engine::new(tiny(), neighbor(), opts(4));
        let stats = e.train_epoch(Config::new(4, 1, 1), None);
        assert!(stats.iterations > 0);
        assert!(stats.loss.is_finite());
    }

    #[test]
    fn tiny_train_set_with_many_processes() {
        // Fewer train nodes than processes×batch: drop-last still leaves at
        // least one synchronized iteration per process.
        let mut d = (*tiny()).clone();
        d.train_nodes.truncate(9);
        let mut e = Engine::new(Arc::new(d), neighbor(), opts(2));
        let stats = e.train_epoch(Config::new(3, 1, 1), None);
        // 9 nodes over 3 procs = 3 each; batch max(2/3,1)=1 → 3 iterations.
        assert_eq!(stats.iterations, 3);
        assert_eq!(stats.minibatches, 9);
    }

    #[test]
    fn gat_architecture_trains_through_engine() {
        let mut e = Engine::new(
            tiny(),
            neighbor(),
            EngineOptions {
                kind: Arch::Gat { heads: 2 },
                hidden: 16,
                num_layers: 2,
                global_batch: 64,
                lr: 5e-3,
                seed: 3,
                total_cores: 8,
                ..Default::default()
            },
        );
        let first = e.train_epoch(Config::new(2, 1, 1), None);
        let mut last = first;
        for _ in 0..4 {
            last = e.train_epoch(Config::new(2, 1, 1), None);
        }
        assert!(
            last.loss < first.loss,
            "GAT loss {} !< {}",
            last.loss,
            first.loss
        );
    }

    #[test]
    fn lr_schedule_decays_across_epochs() {
        use argo_nn::Optimizer;
        let mut o = opts(64);
        o.lr = 1e-2;
        o.lr_schedule = LrSchedule::StepDecay {
            every: 2,
            gamma: 0.5,
        };
        let mut e = Engine::new(tiny(), neighbor(), o);
        for _ in 0..2 {
            e.train_epoch(Config::new(1, 1, 1), None);
        }
        // After epochs 0 and 1, epoch 2 runs at lr/2.
        e.train_epoch(Config::new(1, 1, 1), None);
        assert!((e.opt.learning_rate() - 5e-3).abs() < 1e-9);
    }

    #[test]
    fn training_is_deterministic_across_core_allocations() {
        // Repeating a run with the same core allocation is bit-identical:
        // row-partitioned kernels give each output row to exactly one
        // worker, and the weight-gradient reduction folds per-worker
        // partials in a fixed range order. Across *different* allocations
        // the reduction legally regroups FP sums (chunk size follows pool
        // size), so cross-allocation agreement is tolerance-level, not
        // bitwise.
        let run = |t: usize| {
            let mut e = Engine::new(tiny(), neighbor(), opts(64));
            e.train_epoch(Config::new(2, 1, t), None);
            e.params().to_vec()
        };
        let serial = run(1);
        let pooled = run(2);
        assert_eq!(pooled, run(2), "fixed allocation must be bit-identical");
        assert_eq!(serial.len(), pooled.len());
        for (i, (a, b)) in serial.iter().zip(&pooled).enumerate() {
            assert!((a - b).abs() <= 1e-4, "param {i}: 1-core {a} vs 2-core {b}");
        }
    }

    #[test]
    fn grad_clipping_keeps_replicas_synchronized() {
        let mut o = opts(64);
        o.grad_clip = Some(0.5);
        let mut e = Engine::new(tiny(), neighbor(), o);
        let first = e.train_epoch(Config::new(2, 1, 1), None);
        let mut last = first;
        for _ in 0..3 {
            last = e.train_epoch(Config::new(2, 1, 1), None);
        }
        // Training still converges under clipping, and parameters stayed
        // finite (replica divergence would blow up the loss).
        assert!(last.loss.is_finite());
        assert!(last.loss <= first.loss * 1.2);
        assert!(e.params().iter().all(|p| p.is_finite()));
    }

    #[test]
    #[should_panic]
    fn sampler_model_depth_mismatch_panics() {
        let mut o = opts(32);
        o.num_layers = 3; // sampler below has 2 layers
        Engine::new(tiny(), neighbor(), o);
    }

    /// The headline semantics test: with deterministic sampling (fanout ≥
    /// max degree ⇒ every neighbor taken), one epoch with n processes and
    /// batch b/n produces the same parameters as one process with batch b —
    /// because gradient averaging over equal shards equals the full-batch
    /// gradient (Section IV-B2).
    #[test]
    fn ddp_semantics_match_single_process() {
        let mut owned = (*tiny()).clone();
        // Even train count so the 2-proc drop-last split loses no seed.
        if owned.train_nodes.len() % 2 == 1 {
            owned.train_nodes.pop();
        }
        let d = Arc::new(owned);
        let max_deg = d.graph.max_degree();
        let sampler: Arc<dyn Sampler> = Arc::new(NeighborSampler::new(vec![max_deg, max_deg]));
        let mut o = opts(32);
        // SGD so one step is linear in the averaged gradient.
        o.optimizer = OptimizerKind::Sgd { momentum: 0.0 };
        o.lr = 1e-2;
        // Use a single global batch per epoch so partitioning cannot
        // reshuffle batch composition: global_batch = all train nodes.
        let n = d.train_nodes.len();
        o.global_batch = n;
        let mut e1 = Engine::new(Arc::clone(&d), Arc::clone(&sampler), o.clone());
        let s1 = e1.train_epoch(Config::new(1, 1, 1), None);
        let mut e2 = Engine::new(Arc::clone(&d), Arc::clone(&sampler), o.clone());
        let s2 = e2.train_epoch(Config::new(2, 1, 1), None);
        assert_eq!(s1.iterations, 1);
        assert_eq!(s2.iterations, 1);
        let p1 = e1.params();
        let p2 = e2.params();
        let max_diff = p1
            .iter()
            .zip(p2)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_diff < 2e-3,
            "parameter divergence {max_diff} between 1-proc and 2-proc"
        );
    }

    #[test]
    fn cached_training_matches_uncached_bitwise() {
        // The cache returns feature rows verbatim, so enabling it must not
        // perturb training at all: parameters stay bit-identical.
        let run = |cache_rows: usize| {
            let mut o = opts(64);
            o.cache_capacity = cache_rows;
            let mut e = Engine::new(tiny(), neighbor(), o);
            for _ in 0..3 {
                e.train_epoch(Config::new(2, 1, 1), None);
            }
            e.params().to_vec()
        };
        assert_eq!(run(0), run(512));
    }

    #[test]
    fn config_cache_rows_overrides_engine_default() {
        let mut e = Engine::new(tiny(), neighbor(), opts(64));
        // Engine built without a cache; the per-epoch config switches it on.
        e.train_epoch(Config::new(2, 1, 1).with_cache_rows(256), None);
        let c = e.cache.as_ref().expect("config should enable the cache");
        assert_eq!(c.capacity_rows(), 256);
        // Back to a cache-less config: the cache is dropped again.
        e.train_epoch(Config::new(2, 1, 1), None);
        assert!(e.cache.is_none());
    }

    #[test]
    fn cache_telemetry_emits_summary_and_hit_rate() {
        use argo_rt::telemetry::names;
        let mut o = opts(64);
        o.cache_capacity = 4096;
        let mut e = Engine::new(tiny(), neighbor(), o);
        let tel = Telemetry::new();
        e.train_epoch(Config::new(2, 1, 1), Some(&tel));
        e.train_epoch(Config::new(2, 1, 1), Some(&tel));

        let counters: std::collections::BTreeMap<_, _> =
            tel.metrics.counters().into_iter().collect();
        assert!(counters[names::CACHE_MISSES_TOTAL] > 0);
        assert!(
            counters[names::CACHE_HITS_TOTAL] > 0,
            "shared neighborhoods should hit by the second epoch"
        );
        let gauges: std::collections::BTreeMap<_, _> = tel.metrics.gauges().into_iter().collect();
        let rate = gauges[names::CACHE_HIT_RATE];
        assert!(rate > 0.0 && rate <= 1.0, "hit rate {rate} out of range");
        assert!(gauges[names::CACHE_BYTES] > 0.0);

        // Each epoch logs exactly one cache_summary, between the stage
        // summaries and epoch_end.
        let events = tel.logger.events();
        let kinds: Vec<&str> = events.iter().map(|(_, e)| e.kind()).collect();
        assert_eq!(
            kinds.iter().filter(|k| **k == "cache_summary").count(),
            2,
            "kinds: {kinds:?}"
        );
        let epoch1: Vec<&str> = kinds[kinds.len() / 2..].to_vec();
        assert_eq!(
            epoch1,
            vec![
                "epoch_start",
                "stage_summary",
                "stage_summary",
                "stage_summary",
                "stage_summary",
                "critical_path",
                "bytes_summary",
                "cache_summary",
                "epoch_end"
            ]
        );
        // With the cache on, the loader pre-gathers through it, so the
        // epoch's bytes summary reports cache traffic.
        let moved = events
            .iter()
            .filter_map(|(_, e)| match e {
                argo_rt::RunEvent::BytesSummary { record, .. } => Some(record.cache_bytes),
                _ => None,
            })
            .sum::<u64>();
        assert!(moved > 0, "cache served no bytes");
        match events.iter().rev().find_map(|(_, e)| match e {
            argo_rt::RunEvent::CacheSummary { epoch, summary } => Some((*epoch, *summary)),
            _ => None,
        }) {
            Some((epoch, s)) => {
                assert_eq!(epoch, 1);
                assert!(s.hits > 0, "second epoch should re-hit resident rows");
                assert!(s.hit_rate() > 0.0);
            }
            None => panic!("no cache_summary event"),
        }
    }

    #[test]
    fn sampler_accessor_shares_the_training_sampler() {
        let e = Engine::new(tiny(), neighbor(), opts(64));
        assert_eq!(e.sampler().name(), "Neighbor");
        assert_eq!(e.sampler().num_layers(), e.options().num_layers);
    }

    #[test]
    fn engine_options_builder_matches_struct_literal() {
        let built = EngineOptions::builder()
            .with_hidden(16)
            .with_num_layers(2)
            .with_global_batch(64)
            .with_lr(5e-3)
            .with_seed(3)
            .with_total_cores(8)
            .with_cache_capacity(128);
        let mut lit = opts(64);
        lit.cache_capacity = 128;
        assert_eq!(built.hidden, lit.hidden);
        assert_eq!(built.global_batch, lit.global_batch);
        assert_eq!(built.cache_capacity, 128);
        assert_eq!(built.total_cores, lit.total_cores);
    }
}
