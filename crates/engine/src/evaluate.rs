//! Model evaluation on held-out nodes (used by the Figure 9 convergence
//! experiment).

use argo_graph::Dataset;
use argo_nn::AnyModel;
use argo_sample::{NeighborSampler, Sampler};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Accuracy of `model` on `nodes`, computed with full-neighborhood
/// aggregation (fanout = max degree, so evaluation is deterministic).
pub fn evaluate_accuracy(model: &AnyModel, dataset: &Dataset, nodes: &[u32]) -> f64 {
    if nodes.is_empty() {
        return 0.0;
    }
    let fanout = dataset.graph.max_degree().max(1);
    let sampler = NeighborSampler::new(vec![fanout; model.num_layers()]);
    let mut rng = SmallRng::seed_from_u64(0);
    let mut correct = 0.0f64;
    let mut total = 0usize;
    for chunk in nodes.chunks(256) {
        let batch = sampler.sample(&dataset.graph, chunk, &mut rng);
        let logits = model.forward(&batch, &dataset.features, None);
        let labels: Vec<u32> = chunk.iter().map(|&v| dataset.labels[v as usize]).collect();
        correct += argo_tensor::ops::accuracy(&logits, &labels) * chunk.len() as f64;
        total += chunk.len();
    }
    correct / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineOptions};
    use argo_graph::datasets::FLICKR;
    use argo_rt::Config;
    use std::sync::Arc;

    #[test]
    fn accuracy_improves_with_training() {
        let d = Arc::new(FLICKR.synthesize(0.012, 5));
        let sampler: Arc<dyn Sampler> = Arc::new(NeighborSampler::new(vec![8, 4]));
        let mut e = Engine::new(
            Arc::clone(&d),
            sampler,
            EngineOptions {
                hidden: 16,
                num_layers: 2,
                global_batch: 64,
                lr: 5e-3,
                seed: 2,
                total_cores: 4,
                ..Default::default()
            },
        );
        let before = evaluate_accuracy(&e.model(), &d, &d.val_nodes);
        for _ in 0..8 {
            e.train_epoch(Config::new(2, 1, 1), None);
        }
        let after = evaluate_accuracy(&e.model(), &d, &d.val_nodes);
        assert!(
            after > before + 0.1,
            "val accuracy {before} -> {after} shows no learning"
        );
    }

    #[test]
    fn empty_nodes_give_zero() {
        let d = FLICKR.synthesize(0.01, 5);
        let model = AnyModel::build(argo_nn::Arch::Gcn, d.feat_dim(), 8, d.num_classes, 2, 1);
        assert_eq!(evaluate_accuracy(&model, &d, &[]), 0.0);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let d = FLICKR.synthesize(0.01, 6);
        let model = AnyModel::build(argo_nn::Arch::Sage, d.feat_dim(), 8, d.num_classes, 2, 3);
        let a = evaluate_accuracy(&model, &d, &d.val_nodes);
        let b = evaluate_accuracy(&model, &d, &d.val_nodes);
        assert_eq!(a, b);
    }
}
