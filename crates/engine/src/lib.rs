//! # argo-engine — the Multi-Process Engine
//!
//! Implements the paper's Section IV: given a [`Config`] (number of
//! processes, sampling cores, training cores) the engine
//!
//! 1. **Launches** `n_proc` GNN training "processes" (OS threads with their
//!    own model replica, sampler pipeline and training pool — the Rust
//!    equivalent of Python multi-processing, which exists there only to
//!    escape the GIL),
//! 2. **Binds** each process's sampler threads and training pool to the core
//!    sets planned by [`argo_rt::CoreBinder`],
//! 3. **Splits the data evenly** and **divides the mini-batch size by
//!    `n_proc`** so the effective batch size — and therefore the training
//!    semantics — is identical to single-process training (Section IV-B2),
//! 4. Runs a synchronous-SGD **gradient all-reduce** after every iteration
//!    (the DDP substitute), so all replicas stay bit-identical.
//!
//! [`Engine::train_epoch`] is the objective function the online auto-tuner
//! evaluates: one call = one epoch under one configuration, returning the
//! measured epoch time.

pub mod engine;
pub mod evaluate;

pub use engine::{Engine, EngineOptions, EpochStats};
pub use evaluate::evaluate_accuracy;

pub use argo_rt::Config;
