//! Quantized inference models: a [`QuantizedGnn`] is built *after*
//! training from a [`Gnn`]'s f32 weights ([`Gnn::quantize`]) and serves
//! forward passes against bf16 or int8 weight matrices.
//!
//! Only the weights are quantized — activations, biases and the adjacency
//! stay f32, and the GEMMs dequantize weight panels on the fly inside the
//! kernel (see `argo_tensor::quant`). That bounds the accuracy delta to
//! the weight-rounding error: ≤ 2⁻⁸ relative per weight for bf16, ≤ half
//! a per-column quantization step for int8 — small enough that predicted
//! classes on the planted-community datasets agree with f32 almost
//! everywhere (pinned by this module's and `argo-serve`'s tests).
//!
//! The forward pass mirrors [`Gnn::forward_gathered`] layer by layer —
//! same aggregation kernels, same fused bias/ReLU epilogue, same
//! workspace recycling — swapping only the weight GEMM for the quantized
//! variant. There is no backward pass: quantized models are
//! inference-only by construction.

use std::cell::RefCell;

use argo_graph::features::Features;
use argo_rt::ThreadPool;
use argo_sample::batch::SampledBatch;
use argo_sample::view::SampledBatchView;
use argo_tensor::{DispatchPolicy, Epilogue, Matrix, QuantKind, QuantizedMatrix, Workspace};

use crate::model::{
    gather_features, layer_adjs_for, layer_adjs_view_for, select_prefix_rows, select_rows, Gnn,
    GnnKind, LayerAdj,
};

struct QuantLayer {
    w: QuantizedMatrix,
    b: Vec<f32>,
}

/// An inference-only GNN with post-training-quantized weights.
pub struct QuantizedGnn {
    kind: GnnKind,
    quant: QuantKind,
    layers: Vec<QuantLayer>,
    dispatch: DispatchPolicy,
    ws: RefCell<Workspace>,
}

impl Gnn {
    /// Builds a quantized inference model from this model's trained
    /// weights. The original f32 model is untouched; the quantized copy
    /// inherits its dispatch policy.
    pub fn quantize(&self, quant: QuantKind) -> QuantizedGnn {
        let layers = (0..self.num_layers())
            .map(|l| {
                let (w, b) = self.layer_params(l);
                QuantLayer {
                    w: QuantizedMatrix::quantize(w, quant),
                    b: b.to_vec(),
                }
            })
            .collect();
        QuantizedGnn {
            kind: self.kind(),
            quant,
            layers,
            dispatch: self.dispatch(),
            ws: RefCell::new(Workspace::new()),
        }
    }
}

impl QuantizedGnn {
    /// Replaces the kernel dispatch policy (builder-style).
    pub fn with_dispatch(mut self, dispatch: DispatchPolicy) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Aggregation rule of the underlying model.
    pub fn kind(&self) -> GnnKind {
        self.kind
    }

    /// The weight quantization scheme.
    pub fn quant_kind(&self) -> QuantKind {
        self.quant
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total quantized weight payload in bytes (biases excluded).
    pub fn weight_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.w.payload_bytes()).sum()
    }

    /// Inference forward pass; returns logits over the batch's seeds.
    pub fn forward(
        &self,
        batch: &SampledBatch,
        feats: &Features,
        pool: Option<&ThreadPool>,
    ) -> Matrix {
        self.forward_gathered(batch, gather_features(feats, batch.input_nodes()), pool)
    }

    /// [`QuantizedGnn::forward`] with the input-node feature rows already
    /// gathered (same contract as [`Gnn::forward_gathered`]).
    pub fn forward_gathered(
        &self,
        batch: &SampledBatch,
        input: Matrix,
        pool: Option<&ThreadPool>,
    ) -> Matrix {
        let adjs = layer_adjs_for(self.kind, self.layers.len(), batch);
        let h = self.forward_core(&adjs, input, pool);
        match batch {
            SampledBatch::Blocks(_) => h,
            SampledBatch::Subgraph(sb) => {
                let logits = select_rows(&h, &sb.seed_positions);
                self.ws.borrow_mut().put(h);
                logits
            }
        }
    }

    /// [`QuantizedGnn::forward_gathered`] over a borrowed
    /// [`SampledBatchView`]: adjacencies are consumed straight out of the
    /// sampler's batch arena with zero copies. Falls back to the owned path
    /// when the fused normalization does not match this model.
    pub fn forward_gathered_view(
        &self,
        batch: &SampledBatchView<'_>,
        input: Matrix,
        pool: Option<&ThreadPool>,
    ) -> Matrix {
        match layer_adjs_view_for(self.kind, self.layers.len(), batch) {
            Some(adjs) => {
                let h = self.forward_core(&adjs, input, pool);
                match batch {
                    SampledBatchView::Blocks(_) => h,
                    SampledBatchView::Subgraph(_) => {
                        // Subgraph-view seeds are the node-list prefix.
                        let logits = select_prefix_rows(&h, batch.num_seeds());
                        self.ws.borrow_mut().put(h);
                        logits
                    }
                }
            }
            None => self.forward_gathered(&batch.to_owned(), input, pool),
        }
    }

    /// Shared layer loop of the quantized forward passes.
    fn forward_core(&self, adjs: &[LayerAdj], input: Matrix, pool: Option<&ThreadPool>) -> Matrix {
        let mut h = input;
        for (l, adj) in adjs.iter().enumerate() {
            let relu = l + 1 < self.layers.len();
            let layer = &self.layers[l];
            let (mut agg, mut z) = {
                let mut ws = self.ws.borrow_mut();
                (
                    ws.take(adj.rows(), h.cols()),
                    ws.take(adj.n_dst, layer.w.cols()),
                )
            };
            adj.aggregate_into(&self.dispatch, &h, pool, &mut agg);
            let epi = if relu {
                Epilogue::bias_relu(&layer.b)
            } else {
                Epilogue::bias(&layer.b)
            };
            match self.kind {
                GnnKind::Gcn => self
                    .dispatch
                    .quant_gemm_into(&agg, &layer.w, epi, pool, &mut z),
                GnnKind::Sage => self
                    .dispatch
                    .sage_quant_gemm_into(&h, &agg, &layer.w, epi, pool, &mut z),
            }
            let mut ws = self.ws.borrow_mut();
            ws.put(agg);
            ws.put(std::mem::replace(&mut h, z));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_graph::datasets::FLICKR;
    use argo_sample::{NeighborSampler, Sampler};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_dataset() -> argo_graph::Dataset {
        FLICKR.synthesize(0.01, 11)
    }

    fn sample_blocks(d: &argo_graph::Dataset, n: usize, layers: usize) -> SampledBatch {
        let s = NeighborSampler::new(vec![5; layers]);
        let seeds: Vec<u32> = d.train_nodes.iter().copied().take(n).collect();
        s.sample(&d.graph, &seeds, &mut SmallRng::seed_from_u64(3))
    }

    /// Relative Frobenius distance between quantized and f32 logits.
    fn rel_delta(q: &Matrix, f: &Matrix) -> f32 {
        let num: f32 = q
            .data()
            .iter()
            .zip(f.data())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        let den: f32 = f.data().iter().map(|x| x * x).sum::<f32>().sqrt();
        num / den.max(1e-12)
    }

    fn argmax_agreement(q: &Matrix, f: &Matrix) -> f64 {
        let argmax = |m: &Matrix, r: usize| {
            m.row(r)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                .map(|(i, _)| i)
                .expect("non-empty row")
        };
        let same = (0..q.rows())
            .filter(|&r| argmax(q, r) == argmax(f, r))
            .count();
        same as f64 / q.rows() as f64
    }

    #[test]
    fn quantized_forward_tracks_f32_on_planted_communities() {
        let d = tiny_dataset();
        for kind in [GnnKind::Gcn, GnnKind::Sage] {
            let model = Gnn::new(kind, d.feat_dim(), 16, d.num_classes, 2, 1);
            let batch = sample_blocks(&d, 32, 2);
            let f32_logits = model.forward(&batch, &d.features, None);
            for (quant, max_delta) in [(QuantKind::Bf16, 0.02f32), (QuantKind::Int8, 0.08)] {
                let qm = model.quantize(quant);
                assert_eq!(qm.quant_kind(), quant);
                assert_eq!(qm.kind(), kind);
                let q_logits = qm.forward(&batch, &d.features, None);
                assert_eq!(
                    (q_logits.rows(), q_logits.cols()),
                    (f32_logits.rows(), f32_logits.cols())
                );
                let delta = rel_delta(&q_logits, &f32_logits);
                assert!(
                    delta <= max_delta,
                    "{kind:?}/{quant:?}: logits delta {delta} > {max_delta}"
                );
                let agree = argmax_agreement(&q_logits, &f32_logits);
                assert!(
                    agree >= 0.9,
                    "{kind:?}/{quant:?}: class agreement {agree} < 0.9"
                );
            }
        }
    }

    #[test]
    fn quantized_forward_pool_matches_serial() {
        let d = tiny_dataset();
        let pool = ThreadPool::new("t", 2);
        let model = Gnn::new(GnnKind::Sage, d.feat_dim(), 16, d.num_classes, 2, 4)
            .with_dispatch(DispatchPolicy::new(1).with_sparse_work_threshold(1));
        let batch = sample_blocks(&d, 24, 2);
        let qm = model.quantize(QuantKind::Bf16);
        let serial = qm.forward(&batch, &d.features, None);
        let par = qm.forward(&batch, &d.features, Some(&pool));
        // Quantized GEMM + gather are partition-invariant per element.
        assert_eq!(serial.data(), par.data());
    }

    #[test]
    fn weight_bytes_shrink_with_scheme() {
        let model = Gnn::new(GnnKind::Gcn, 32, 16, 4, 2, 1);
        let bf16 = model.quantize(QuantKind::Bf16).weight_bytes();
        let int8 = model.quantize(QuantKind::Int8).weight_bytes();
        let f32_bytes = (32 * 16 + 16 * 4) * 4;
        assert_eq!(bf16, f32_bytes / 2);
        assert_eq!(int8, f32_bytes / 4);
    }
}
