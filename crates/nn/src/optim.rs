//! Optimizers over flattened parameter vectors.
//!
//! The Multi-Process Engine averages gradients across processes and then
//! applies one *identical* optimizer step on every process (synchronous SGD,
//! paper Section IV-B2), so optimizers operate on the flat layout produced
//! by [`crate::Gnn::params_flat`].

/// A first-order optimizer over a flat parameter vector.
pub trait Optimizer {
    /// Applies one update of `params` from `grads`.
    fn step(&mut self, params: &mut [f32], grads: &[f32]);

    /// Learning rate currently in use.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (used by LR schedules; all DDP replicas
    /// apply the same value derived from the shared epoch counter).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain SGD with optional momentum.
#[derive(Clone, Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// SGD over `dim` parameters.
    pub fn new(dim: usize, lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0 && (0.0..1.0).contains(&momentum));
        Self {
            lr,
            momentum,
            velocity: vec![0.0; dim],
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), self.velocity.len());
        assert_eq!(params.len(), grads.len());
        for ((p, g), v) in params.iter_mut().zip(grads).zip(self.velocity.iter_mut()) {
            *v = self.momentum * *v + g;
            *p -= self.lr * *v;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0);
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba 2015) with the standard bias correction.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Adam over `dim` parameters with defaults β1=0.9, β2=0.999, ε=1e-8.
    pub fn new(dim: usize, lr: f32) -> Self {
        assert!(lr > 0.0);
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; dim],
            v: vec![0.0; dim],
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), self.m.len());
        assert_eq!(params.len(), grads.len());
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0);
        self.lr = lr;
    }
}

/// Clips `grads` to a maximum global L2 norm (PyTorch's
/// `clip_grad_norm_`): if `‖g‖ > max_norm`, every element is scaled by
/// `max_norm / ‖g‖`. Returns the pre-clip norm.
pub fn clip_grad_norm(grads: &mut [f32], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0);
    let norm = grads
        .iter()
        .map(|g| (*g as f64) * (*g as f64))
        .sum::<f64>()
        .sqrt() as f32;
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            *g *= scale;
        }
    }
    norm
}

/// Which optimizer an engine should build.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OptimizerKind {
    /// SGD with the given momentum.
    Sgd {
        /// Momentum coefficient in `[0, 1)`.
        momentum: f32,
    },
    /// Adam with default betas.
    Adam,
}

/// A concrete optimizer that is `Clone` (needed because every DDP replica
/// carries an identical optimizer-state copy).
#[derive(Clone, Debug)]
pub enum AnyOptimizer {
    /// SGD state.
    Sgd(Sgd),
    /// Adam state.
    Adam(Adam),
}

impl AnyOptimizer {
    /// Builds the optimizer described by `kind` over `dim` parameters.
    pub fn build(kind: OptimizerKind, dim: usize, lr: f32) -> Self {
        match kind {
            OptimizerKind::Sgd { momentum } => AnyOptimizer::Sgd(Sgd::new(dim, lr, momentum)),
            OptimizerKind::Adam => AnyOptimizer::Adam(Adam::new(dim, lr)),
        }
    }
}

impl Optimizer for AnyOptimizer {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        match self {
            AnyOptimizer::Sgd(s) => s.step(params, grads),
            AnyOptimizer::Adam(a) => a.step(params, grads),
        }
    }

    fn learning_rate(&self) -> f32 {
        match self {
            AnyOptimizer::Sgd(s) => s.learning_rate(),
            AnyOptimizer::Adam(a) => a.learning_rate(),
        }
    }

    fn set_learning_rate(&mut self, lr: f32) {
        match self {
            AnyOptimizer::Sgd(s) => s.set_learning_rate(lr),
            AnyOptimizer::Adam(a) => a.set_learning_rate(lr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_descend(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        // Minimize f(x) = x² starting at x = 2; gradient 2x.
        let mut x = vec![2.0f32];
        for _ in 0..steps {
            let g = vec![2.0 * x[0]];
            opt.step(&mut x, &g);
        }
        x[0].abs()
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut opt = Sgd::new(1, 0.1, 0.0);
        assert!(quadratic_descend(&mut opt, 50) < 1e-3);
    }

    #[test]
    fn sgd_momentum_descends() {
        let mut opt = Sgd::new(1, 0.05, 0.9);
        assert!(quadratic_descend(&mut opt, 200) < 1e-2);
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut opt = Adam::new(1, 0.1);
        assert!(quadratic_descend(&mut opt, 300) < 1e-2);
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        // Bias correction makes the very first Adam update ≈ lr * sign(g).
        let mut opt = Adam::new(1, 0.01);
        let mut x = vec![0.0f32];
        opt.step(&mut x, &[3.7]);
        assert!((x[0] + 0.01).abs() < 1e-4, "step was {}", x[0]);
    }

    #[test]
    fn identical_inputs_give_identical_trajectories() {
        // DDP requirement: every process applies the same step.
        let mut a = Adam::new(3, 0.05);
        let mut b = Adam::new(3, 0.05);
        let mut xa = vec![1.0, -2.0, 0.5];
        let mut xb = xa.clone();
        for t in 0..20 {
            let g: Vec<f32> = xa.iter().map(|x| x * 0.3 + t as f32 * 0.01).collect();
            a.step(&mut xa, &g);
            b.step(&mut xb, &g);
        }
        assert_eq!(xa, xb);
    }

    #[test]
    fn clip_grad_norm_scales_only_when_needed() {
        let mut g = vec![3.0f32, 4.0]; // norm 5
        let pre = clip_grad_norm(&mut g, 10.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert_eq!(g, vec![3.0, 4.0]); // untouched
        let pre = clip_grad_norm(&mut g, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let norm: f32 = g.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-6);
        // Direction preserved.
        assert!((g[0] / g[1] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn clip_grad_norm_zero_vector_is_noop() {
        let mut g = vec![0.0f32; 4];
        assert_eq!(clip_grad_norm(&mut g, 1.0), 0.0);
        assert!(g.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn any_optimizer_dispatches() {
        let mut s = AnyOptimizer::build(OptimizerKind::Sgd { momentum: 0.0 }, 1, 0.1);
        assert!(quadratic_descend(&mut s, 50) < 1e-3);
        assert!((s.learning_rate() - 0.1).abs() < 1e-9);
        let mut a = AnyOptimizer::build(OptimizerKind::Adam, 1, 0.1);
        assert!(quadratic_descend(&mut a, 300) < 1e-2);
    }

    #[test]
    #[should_panic]
    fn dim_mismatch_panics() {
        let mut opt = Sgd::new(2, 0.1, 0.0);
        let mut x = vec![0.0f32; 3];
        opt.step(&mut x, &[1.0, 2.0, 3.0]);
    }
}
