//! Graph Attention Network (Veličković et al. 2018) with manual backward.
//!
//! GAT is the model family whose edge-score computation is exactly the SDDMM
//! kernel DGL's backend is built around (paper Section II-C): per edge
//! `(i ← j)` and head `h`,
//!
//! ```text
//! z   = x W_h                     (feature update)
//! e_ij = LeakyReLU(aₗ·z_i + aᵣ·z_j)  (SDDMM u_add_v)
//! α_ij = softmax_i(e_ij)            (edge softmax per destination)
//! out_i = Σ_j α_ij z_j              (attention-weighted SpMM)
//! ```
//!
//! Hidden layers concatenate the heads; the output layer averages them.
//! Included as the reproduction's model extension beyond the paper's
//! GCN/GraphSAGE pair — it exercises every sparse kernel in `argo-tensor`.

use argo_graph::features::Features;
use argo_rt::ThreadPool;
use argo_sample::batch::SampledBatch;
use argo_tensor::ops::{
    accuracy, add_bias, bias_grad_into, leaky_relu_inplace, relu_backward, relu_inplace,
    softmax_cross_entropy,
};
use argo_tensor::{DispatchPolicy, Matrix, SparseMatrix};

use crate::model::StepStats;

/// LeakyReLU slope used for attention logits (the GAT paper's 0.2).
const ATTN_SLOPE: f32 = 0.2;

struct GatLayer {
    /// `in_dim × heads·out_dim`.
    w: Matrix,
    /// Attention vector for destination features, `heads × out_dim`.
    al: Matrix,
    /// Attention vector for source features, `heads × out_dim`.
    ar: Matrix,
    /// Bias over the layer output.
    b: Vec<f32>,
    dw: Matrix,
    dal: Matrix,
    dar: Matrix,
    db: Vec<f32>,
    heads: usize,
    out_dim: usize,
    /// Concatenate heads (hidden layers) or average them (output layer).
    concat: bool,
}

impl GatLayer {
    fn new(in_dim: usize, out_dim: usize, heads: usize, concat: bool, seed: u64) -> Self {
        Self {
            w: Matrix::xavier(in_dim, heads * out_dim, seed),
            al: Matrix::xavier(heads, out_dim, seed ^ 0xA1),
            ar: Matrix::xavier(heads, out_dim, seed ^ 0xA2),
            b: vec![0.0; if concat { heads * out_dim } else { out_dim }],
            dw: Matrix::zeros(in_dim, heads * out_dim),
            dal: Matrix::zeros(heads, out_dim),
            dar: Matrix::zeros(heads, out_dim),
            db: vec![0.0; if concat { heads * out_dim } else { out_dim }],
            heads,
            out_dim,
            concat,
        }
    }

    fn output_dim(&self) -> usize {
        if self.concat {
            self.heads * self.out_dim
        } else {
            self.out_dim
        }
    }
}

/// Per-layer forward cache needed by the backward pass.
struct GatCache {
    /// Layer input (src rows × in_dim).
    x: Matrix,
    /// Projected features z = x W (src rows × heads·out_dim).
    z: Matrix,
    /// Per head: attention matrix (values = α) and LeakyReLU derivative.
    heads: Vec<(SparseMatrix, Vec<f32>)>,
    /// ReLU mask of the layer output (hidden layers only).
    relu_mask: Option<Vec<bool>>,
}

/// A multi-layer GAT model operating on [`SampledBatch`]es, with the same
/// flat parameter/gradient API as [`crate::Gnn`].
pub struct Gat {
    layers: Vec<GatLayer>,
    dispatch: DispatchPolicy,
}

impl Gat {
    /// Builds `num_layers` GAT layers `in_dim → hidden×(L−1) → out_dim` with
    /// `heads` attention heads (hidden layers concat; output layer averages).
    pub fn new(
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        num_layers: usize,
        heads: usize,
        seed: u64,
    ) -> Self {
        assert!(num_layers >= 1 && heads >= 1 && in_dim > 0 && hidden > 0 && out_dim > 0);
        assert!(
            hidden.is_multiple_of(heads),
            "hidden dim must divide evenly into heads"
        );
        let mut layers = Vec::with_capacity(num_layers);
        let mut d_in = in_dim;
        for l in 0..num_layers {
            let last = l + 1 == num_layers;
            let (d_out, concat) = if last {
                (out_dim, false)
            } else {
                (hidden / heads, true)
            };
            layers.push(GatLayer::new(
                d_in,
                d_out,
                heads,
                concat,
                seed.wrapping_add(l as u64 * 131),
            ));
            d_in = layers[l].output_dim();
        }
        Self {
            layers,
            dispatch: DispatchPolicy::default(),
        }
    }

    /// Replaces the kernel dispatch policy (builder style).
    pub fn with_dispatch(mut self, dispatch: DispatchPolicy) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// The kernel dispatch policy in effect.
    pub fn dispatch(&self) -> DispatchPolicy {
        self.dispatch
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.layers[0].heads
    }

    /// Total scalar parameters.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.w.data().len() + l.al.data().len() + l.ar.data().len() + l.b.len())
            .sum()
    }

    /// Raw (un-normalized) adjacency of every layer, plus dst counts.
    fn layer_adjs(&self, batch: &SampledBatch) -> Vec<(SparseMatrix, usize)> {
        match batch {
            SampledBatch::Blocks(mb) => {
                assert_eq!(
                    mb.blocks.len(),
                    self.layers.len(),
                    "batch depth != model depth"
                );
                mb.blocks
                    .iter()
                    .map(|b| (b.adj.clone(), b.dst_nodes.len()))
                    .collect()
            }
            SampledBatch::Subgraph(sb) => (0..self.layers.len())
                .map(|_| (sb.adj.clone(), sb.nodes.len()))
                .collect(),
        }
    }

    /// One layer forward. Returns `(output, cache)`.
    fn layer_forward(
        &self,
        l: usize,
        adj: &SparseMatrix,
        n_dst: usize,
        x: Matrix,
        relu: bool,
        pool: Option<&ThreadPool>,
    ) -> (Matrix, GatCache) {
        let layer = &self.layers[l];
        let z = self.dispatch.gemm(&x, &layer.w, pool);
        let (h, d) = (layer.heads, layer.out_dim);
        let mut out = Matrix::zeros(n_dst, layer.output_dim());
        let mut head_caches = Vec::with_capacity(h);
        for head in 0..h {
            let zc = slice_cols(&z, head * d, d);
            // sl_i = aₗ·z_i over dst rows (prefix of src), sr_j = aᵣ·z_j.
            let al = layer.al.row(head);
            let ar = layer.ar.row(head);
            let mut sl = vec![0.0f32; n_dst];
            let mut sr = vec![0.0f32; zc.rows()];
            for j in 0..zc.rows() {
                let row = zc.row(j);
                let mut dot_r = 0.0f32;
                for (a, v) in ar.iter().zip(row) {
                    dot_r += a * v;
                }
                sr[j] = dot_r;
                if j < n_dst {
                    let mut dot_l = 0.0f32;
                    for (a, v) in al.iter().zip(row) {
                        dot_l += a * v;
                    }
                    sl[j] = dot_l;
                }
            }
            // e = LeakyReLU(sl_i + sr_j) per edge (SDDMM u_add_v).
            let e = adj.sddmm_add(&sl, &sr);
            let mut logits = e.values().expect("sddmm_add sets values").to_vec();
            let deriv = leaky_relu_inplace(&mut logits, ATTN_SLOPE);
            let alpha = adj.with_values(logits).row_softmax();
            // out_head = α @ z_head (attention-weighted aggregation).
            let agg = self.dispatch.aggregate(&alpha, &zc, pool);
            if layer.concat {
                copy_into_cols(&mut out, &agg, head * d);
            } else {
                out.axpy(1.0 / h as f32, &pad_cols(&agg, out.cols()));
            }
            head_caches.push((alpha, deriv));
        }
        add_bias(&mut out, &layer.b);
        let relu_mask = if relu {
            Some(relu_inplace(&mut out))
        } else {
            None
        };
        (
            out,
            GatCache {
                x,
                z,
                heads: head_caches,
                relu_mask,
            },
        )
    }

    /// Inference forward; logits over the batch seeds.
    pub fn forward(
        &self,
        batch: &SampledBatch,
        feats: &Features,
        pool: Option<&ThreadPool>,
    ) -> Matrix {
        self.forward_gathered(batch, gather(feats, batch.input_nodes()), pool)
    }

    /// [`Gat::forward`] with the input-node feature rows already gathered
    /// (in `input_nodes()` order).
    pub fn forward_gathered(
        &self,
        batch: &SampledBatch,
        input: Matrix,
        pool: Option<&ThreadPool>,
    ) -> Matrix {
        let adjs = self.layer_adjs(batch);
        let mut hcur = input;
        for (l, (adj, n_dst)) in adjs.iter().enumerate() {
            let relu = l + 1 < self.layers.len();
            let (out, _) = self.layer_forward(l, adj, *n_dst, hcur, relu, pool);
            hcur = out;
        }
        match batch {
            SampledBatch::Blocks(_) => hcur,
            SampledBatch::Subgraph(sb) => select_rows(&hcur, &sb.seed_positions),
        }
    }

    /// One training step: forward, loss, full backward into the gradient
    /// buffers (overwritten). Parameters are not updated.
    pub fn train_step(
        &mut self,
        batch: &SampledBatch,
        feats: &Features,
        labels: &[u32],
        pool: Option<&ThreadPool>,
    ) -> StepStats {
        let input = gather(feats, batch.input_nodes());
        self.train_step_gathered(batch, input, labels, pool)
    }

    /// [`Gat::train_step`] with the input-node feature rows already
    /// gathered; see [`Gat::forward_gathered`].
    pub fn train_step_gathered(
        &mut self,
        batch: &SampledBatch,
        input: Matrix,
        labels: &[u32],
        pool: Option<&ThreadPool>,
    ) -> StepStats {
        let adjs = self.layer_adjs(batch);
        let mut hcur = input;
        let mut caches = Vec::with_capacity(self.layers.len());
        for (l, (adj, n_dst)) in adjs.iter().enumerate() {
            let relu = l + 1 < self.layers.len();
            let (out, cache) = self.layer_forward(l, adj, *n_dst, hcur, relu, pool);
            caches.push(cache);
            hcur = out;
        }
        let seeds = batch.seeds();
        let seed_labels: Vec<u32> = seeds.iter().map(|&v| labels[v as usize]).collect();
        let logits = match batch {
            SampledBatch::Blocks(_) => hcur.clone(),
            SampledBatch::Subgraph(sb) => select_rows(&hcur, &sb.seed_positions),
        };
        let (loss, dlogits) = softmax_cross_entropy(&logits, &seed_labels);
        let acc = accuracy(&logits, &seed_labels);
        let mut grad = match batch {
            SampledBatch::Blocks(_) => dlogits,
            SampledBatch::Subgraph(sb) => scatter_rows(&dlogits, &sb.seed_positions, hcur.rows()),
        };
        for l in (0..self.layers.len()).rev() {
            let cache = &caches[l];
            if let Some(mask) = &cache.relu_mask {
                relu_backward(&mut grad, mask);
            }
            grad = self.layer_backward(l, cache, grad, pool);
        }
        StepStats {
            loss,
            accuracy: acc,
            num_seeds: seeds.len(),
        }
    }

    /// Backward of one layer: consumes d(output) and produces d(input).
    fn layer_backward(
        &mut self,
        l: usize,
        cache: &GatCache,
        dout: Matrix,
        pool: Option<&ThreadPool>,
    ) -> Matrix {
        let (h, d) = (self.layers[l].heads, self.layers[l].out_dim);
        let n_dst = dout.rows();
        let concat = self.layers[l].concat;
        bias_grad_into(&dout, &mut self.layers[l].db);
        let mut dz = Matrix::zeros(cache.z.rows(), cache.z.cols());
        for head in 0..h {
            let (alpha, deriv) = &cache.heads[head];
            let zc = slice_cols(&cache.z, head * d, d);
            // Head's share of the output gradient.
            let dh = if concat {
                slice_cols(&dout, head * d, d)
            } else {
                let mut m = slice_cols(&dout, 0, d.min(dout.cols()));
                m.scale(1.0 / h as f32);
                m
            };
            // dz from the aggregation: αᵀ dh (CSC gather).
            let dz_head = self.dispatch.aggregate_transpose(alpha, &dh, pool);
            // dα_k = dh_i · z_j per edge (SDDMM).
            let dalpha = alpha.sddmm(&dh, &zc);
            // Softmax and LeakyReLU backward to edge logits.
            let mut de = alpha.row_softmax_backward(dalpha.values().expect("values"));
            for (g, sl) in de.iter_mut().zip(deriv) {
                *g *= sl;
            }
            let de_mat = alpha.with_values(de);
            // dsl_i = Σ_{k∈row i} de_k; dsr_j = column-scatter of de.
            let dsl = de_mat.row_value_sums();
            let dsr = de_mat.col_value_sums();
            // Gradients to attention vectors and z.
            let al = self.layers[l].al.row(head).to_vec();
            let ar = self.layers[l].ar.row(head).to_vec();
            let mut dal = vec![0.0f32; d];
            let mut dar = vec![0.0f32; d];
            for j in 0..zc.rows() {
                let zr = zc.row(j);
                let base = head * d;
                let dz_row = &mut dz.row_mut(j)[base..base + d];
                // Aggregation path.
                for (out_v, v) in dz_row.iter_mut().zip(dz_head.row(j)) {
                    *out_v += v;
                }
                // Source attention path.
                let s = dsr[j];
                if s != 0.0 {
                    for k in 0..d {
                        dar[k] += s * zr[k];
                        dz_row[k] += s * ar[k];
                    }
                }
                // Destination attention path (dst rows are the src prefix).
                if j < n_dst {
                    let s = dsl[j];
                    if s != 0.0 {
                        for k in 0..d {
                            dal[k] += s * zr[k];
                            dz_row[k] += s * al[k];
                        }
                    }
                }
            }
            self.layers[l].dal.row_mut(head).copy_from_slice(&dal);
            self.layers[l].dar.row_mut(head).copy_from_slice(&dar);
        }
        // Through the projection: dW = xᵀ dz, dx = dz Wᵀ.
        let dispatch = self.dispatch;
        let rows = cache.x.rows();
        dispatch.grad_weights_into(&cache.x, 0..rows, &dz, pool, &mut self.layers[l].dw, 0);
        let w = &self.layers[l].w;
        dispatch.grad_input(&dz, w, 0..w.rows(), pool)
    }

    /// Flattens parameters (layer order: W, aₗ, aᵣ, b).
    pub fn params_flat(&self, out: &mut Vec<f32>) {
        out.clear();
        for l in &self.layers {
            out.extend_from_slice(l.w.data());
            out.extend_from_slice(l.al.data());
            out.extend_from_slice(l.ar.data());
            out.extend_from_slice(&l.b);
        }
    }

    /// Restores parameters from a flat buffer.
    pub fn set_params_flat(&mut self, flat: &[f32]) {
        let mut at = 0usize;
        for l in &mut self.layers {
            for m in [&mut l.w, &mut l.al, &mut l.ar] {
                let n = m.data().len();
                m.data_mut().copy_from_slice(&flat[at..at + n]);
                at += n;
            }
            let nb = l.b.len();
            l.b.copy_from_slice(&flat[at..at + nb]);
            at += nb;
        }
        assert_eq!(at, flat.len(), "flat parameter length mismatch");
    }

    /// Flattens gradients (same layout as parameters).
    pub fn grads_flat(&self, out: &mut Vec<f32>) {
        out.clear();
        for l in &self.layers {
            out.extend_from_slice(l.dw.data());
            out.extend_from_slice(l.dal.data());
            out.extend_from_slice(l.dar.data());
            out.extend_from_slice(&l.db);
        }
    }

    /// Restores gradients from a flat buffer.
    pub fn set_grads_flat(&mut self, flat: &[f32]) {
        let mut at = 0usize;
        for l in &mut self.layers {
            for m in [&mut l.dw, &mut l.dal, &mut l.dar] {
                let n = m.data().len();
                m.data_mut().copy_from_slice(&flat[at..at + n]);
                at += n;
            }
            let nb = l.db.len();
            l.db.copy_from_slice(&flat[at..at + nb]);
            at += nb;
        }
        assert_eq!(at, flat.len(), "flat gradient length mismatch");
    }
}

fn gather(feats: &Features, ids: &[u32]) -> Matrix {
    let g = feats.gather(ids);
    Matrix::from_vec(ids.len(), feats.dim(), g.data().to_vec())
}

fn slice_cols(m: &Matrix, start: usize, len: usize) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), len);
    for r in 0..m.rows() {
        out.row_mut(r)
            .copy_from_slice(&m.row(r)[start..start + len]);
    }
    out
}

fn copy_into_cols(dst: &mut Matrix, src: &Matrix, start: usize) {
    for r in 0..src.rows() {
        dst.row_mut(r)[start..start + src.cols()].copy_from_slice(src.row(r));
    }
}

fn pad_cols(m: &Matrix, cols: usize) -> Matrix {
    if m.cols() == cols {
        return m.clone();
    }
    let mut out = Matrix::zeros(m.rows(), cols);
    for r in 0..m.rows() {
        out.row_mut(r)[..m.cols()].copy_from_slice(m.row(r));
    }
    out
}

fn select_rows(m: &Matrix, rows: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(rows.len(), m.cols());
    for (i, &r) in rows.iter().enumerate() {
        out.row_mut(i).copy_from_slice(m.row(r));
    }
    out
}

fn scatter_rows(m: &Matrix, rows: &[usize], total: usize) -> Matrix {
    let mut out = Matrix::zeros(total, m.cols());
    for (i, &r) in rows.iter().enumerate() {
        out.row_mut(r).copy_from_slice(m.row(i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_graph::datasets::FLICKR;
    use argo_sample::{NeighborSampler, Sampler, ShadowSampler};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny() -> argo_graph::Dataset {
        FLICKR.synthesize(0.01, 31)
    }

    fn blocks(d: &argo_graph::Dataset, n: usize) -> SampledBatch {
        let s = NeighborSampler::new(vec![4, 3]);
        let seeds: Vec<u32> = d.train_nodes.iter().copied().take(n).collect();
        s.sample(&d.graph, &seeds, &mut SmallRng::seed_from_u64(2))
    }

    #[test]
    fn forward_shapes_blocks_and_shadow() {
        let d = tiny();
        let gat = Gat::new(d.feat_dim(), 8, d.num_classes, 2, 2, 1);
        let b = blocks(&d, 6);
        let out = gat.forward(&b, &d.features, None);
        assert_eq!(out.rows(), 6);
        assert_eq!(out.cols(), d.num_classes);

        let sh = ShadowSampler::new(vec![4, 3], 2);
        let seeds: Vec<u32> = d.train_nodes.iter().copied().take(5).collect();
        let sb = sh.sample(&d.graph, &seeds, &mut SmallRng::seed_from_u64(3));
        let out = gat.forward(&sb, &d.features, None);
        assert_eq!(out.rows(), 5);
        assert_eq!(out.cols(), d.num_classes);
    }

    #[test]
    fn params_roundtrip() {
        let mut g = Gat::new(10, 8, 3, 2, 2, 5);
        let mut p = Vec::new();
        g.params_flat(&mut p);
        assert_eq!(p.len(), g.num_params());
        let doubled: Vec<f32> = p.iter().map(|x| x * 2.0).collect();
        g.set_params_flat(&doubled);
        let mut p2 = Vec::new();
        g.params_flat(&mut p2);
        assert_eq!(p2, doubled);
    }

    #[test]
    fn attention_rows_are_distributions() {
        // α rows sum to 1 for every dst with at least one in-edge.
        let d = tiny();
        let gat = Gat::new(d.feat_dim(), 8, d.num_classes, 2, 2, 7);
        let SampledBatch::Blocks(mb) = blocks(&d, 8) else {
            panic!()
        };
        let block = &mb.blocks[0];
        // Recompute a head's α through the public kernels.
        let x = gather(&d.features, &block.src_nodes);
        let z = x.matmul(&gat.layers[0].w);
        let zc = slice_cols(&z, 0, gat.layers[0].out_dim);
        let n_dst = block.dst_nodes.len();
        let mut sl = vec![0.0f32; n_dst];
        let mut sr = vec![0.0f32; zc.rows()];
        for j in 0..zc.rows() {
            sr[j] = gat.layers[0]
                .ar
                .row(0)
                .iter()
                .zip(zc.row(j))
                .map(|(a, v)| a * v)
                .sum();
            if j < n_dst {
                sl[j] = gat.layers[0]
                    .al
                    .row(0)
                    .iter()
                    .zip(zc.row(j))
                    .map(|(a, v)| a * v)
                    .sum();
            }
        }
        let mut logits = block.adj.sddmm_add(&sl, &sr).values().unwrap().to_vec();
        leaky_relu_inplace(&mut logits, ATTN_SLOPE);
        let alpha = block.adj.with_values(logits).row_softmax();
        for i in 0..alpha.rows() {
            let (lo, hi) = (alpha.indptr()[i], alpha.indptr()[i + 1]);
            if hi > lo {
                let s: f32 = alpha.values().unwrap()[lo..hi].iter().sum();
                assert!((s - 1.0).abs() < 1e-5, "row {i} sums to {s}");
            }
        }
    }

    fn fd_check(use_shadow: bool, heads: usize) {
        let d = tiny();
        let batch = if use_shadow {
            let s = ShadowSampler::new(vec![3, 2], 2);
            let seeds: Vec<u32> = d.train_nodes.iter().copied().take(4).collect();
            s.sample(&d.graph, &seeds, &mut SmallRng::seed_from_u64(9))
        } else {
            blocks(&d, 4)
        };
        let mut gat = Gat::new(d.feat_dim(), 4 * heads, d.num_classes, 2, heads, 13);
        gat.train_step(&batch, &d.features, &d.labels, None);
        let mut analytic = Vec::new();
        gat.grads_flat(&mut analytic);
        let mut params = Vec::new();
        gat.params_flat(&mut params);
        let seeds = batch.seeds();
        let labels: Vec<u32> = seeds.iter().map(|&v| d.labels[v as usize]).collect();
        let loss_at = |g: &mut Gat, p: &[f32]| -> f32 {
            g.set_params_flat(p);
            let logits = g.forward(&batch, &d.features, None);
            softmax_cross_entropy(&logits, &labels).0
        };
        let eps = 2e-3f32;
        let n = params.len();
        for &i in &[0usize, n / 7, n / 3, n / 2, 3 * n / 4, n - 1] {
            let mut p = params.clone();
            p[i] += eps;
            let lp = loss_at(&mut gat, &p);
            p[i] = params[i] - eps;
            let lm = loss_at(&mut gat, &p);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - analytic[i]).abs() < 2e-2_f32.max(0.25 * fd.abs()),
                "shadow={use_shadow} heads={heads} param {i}: fd {fd} vs analytic {}",
                analytic[i]
            );
        }
        gat.set_params_flat(&params);
    }

    #[test]
    fn backward_matches_finite_difference_blocks_1head() {
        fd_check(false, 1);
    }

    #[test]
    fn backward_matches_finite_difference_blocks_2heads() {
        fd_check(false, 2);
    }

    #[test]
    fn backward_matches_finite_difference_shadow_2heads() {
        fd_check(true, 2);
    }

    #[test]
    fn pool_and_serial_backward_agree() {
        use argo_rt::ThreadPool;
        let d = tiny();
        let b = blocks(&d, 48);
        let mk = || {
            Gat::new(d.feat_dim(), 8, d.num_classes, 2, 2, 11)
                .with_dispatch(argo_tensor::DispatchPolicy::new(1))
        };
        let mut serial = mk();
        serial.train_step(&b, &d.features, &d.labels, None);
        let mut gs = Vec::new();
        serial.grads_flat(&mut gs);
        let pool = ThreadPool::new("t", 4);
        let mut pooled = mk();
        pooled.train_step(&b, &d.features, &d.labels, Some(&pool));
        let mut gp = Vec::new();
        pooled.grads_flat(&mut gp);
        assert_eq!(gs.len(), gp.len());
        for (i, (a, b)) in gs.iter().zip(&gp).enumerate() {
            assert!((a - b).abs() <= 1e-4, "grad {i}: serial {a} vs pooled {b}");
        }
    }

    #[test]
    fn training_reduces_loss() {
        let d = tiny();
        let mut gat = Gat::new(d.feat_dim(), 8, d.num_classes, 2, 2, 3);
        let mut opt = crate::optim::Adam::new(gat.num_params(), 0.01);
        let sampler = NeighborSampler::new(vec![5, 3]);
        let mut first = None;
        let mut last = 0.0;
        for step in 0..25 {
            let start = (step * 24) % d.train_nodes.len().saturating_sub(24).max(1);
            let seeds: Vec<u32> = d.train_nodes.iter().copied().skip(start).take(24).collect();
            let batch = sampler.sample(&d.graph, &seeds, &mut SmallRng::seed_from_u64(step as u64));
            let stats = gat.train_step(&batch, &d.features, &d.labels, None);
            first.get_or_insert(stats.loss);
            last = stats.loss;
            let mut g = Vec::new();
            gat.grads_flat(&mut g);
            let mut p = Vec::new();
            gat.params_flat(&mut p);
            crate::optim::Optimizer::step(&mut opt, &mut p, &g);
            gat.set_params_flat(&p);
        }
        assert!(
            last < first.unwrap() * 0.8,
            "GAT loss {last} did not drop from {}",
            first.unwrap()
        );
    }

    #[test]
    #[should_panic]
    fn hidden_must_divide_heads() {
        Gat::new(10, 7, 3, 2, 2, 1);
    }
}
