//! Classification metrics beyond plain accuracy: confusion matrix and
//! macro-/micro-averaged F1, the metrics typically reported for the paper's
//! multi-class node-classification datasets (GraphSAINT reports micro-F1
//! for Flickr/Reddit).

use argo_tensor::Matrix;

/// A `classes × classes` confusion matrix: `counts[truth][pred]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Builds the matrix from logits (argmax prediction) and labels.
    pub fn from_logits(logits: &Matrix, labels: &[u32], classes: usize) -> Self {
        assert_eq!(logits.rows(), labels.len());
        assert!(
            logits.cols() <= classes || logits.cols() == classes,
            "class mismatch"
        );
        let mut counts = vec![vec![0usize; classes]; classes];
        for (i, &lab) in labels.iter().enumerate() {
            let row = logits.row(i);
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            counts[lab as usize][best] += 1;
        }
        Self { counts }
    }

    /// Builds the matrix from hard predictions.
    pub fn from_predictions(preds: &[u32], labels: &[u32], classes: usize) -> Self {
        assert_eq!(preds.len(), labels.len());
        let mut counts = vec![vec![0usize; classes]; classes];
        for (&p, &l) in preds.iter().zip(labels) {
            counts[l as usize][p as usize] += 1;
        }
        Self { counts }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.counts.len()
    }

    /// `counts[truth][pred]`.
    pub fn count(&self, truth: usize, pred: usize) -> usize {
        self.counts[truth][pred]
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.classes()).map(|c| self.counts[c][c]).sum();
        if self.total() == 0 {
            0.0
        } else {
            correct as f64 / self.total() as f64
        }
    }

    fn tp_fp_fn(&self, c: usize) -> (usize, usize, usize) {
        let tp = self.counts[c][c];
        let fp: usize = (0..self.classes())
            .filter(|&t| t != c)
            .map(|t| self.counts[t][c])
            .sum();
        let fnn: usize = (0..self.classes())
            .filter(|&p| p != c)
            .map(|p| self.counts[c][p])
            .sum();
        (tp, fp, fnn)
    }

    /// Per-class F1 (0 when the class never occurs and is never predicted).
    pub fn f1_per_class(&self) -> Vec<f64> {
        (0..self.classes())
            .map(|c| {
                let (tp, fp, fnn) = self.tp_fp_fn(c);
                let denom = 2 * tp + fp + fnn;
                if denom == 0 {
                    0.0
                } else {
                    2.0 * tp as f64 / denom as f64
                }
            })
            .collect()
    }

    /// Macro-averaged F1 (unweighted class mean).
    pub fn macro_f1(&self) -> f64 {
        let f1 = self.f1_per_class();
        f1.iter().sum::<f64>() / f1.len().max(1) as f64
    }

    /// Micro-averaged F1. For single-label multi-class classification this
    /// equals accuracy.
    pub fn micro_f1(&self) -> f64 {
        let (mut tp, mut fp, mut fnn) = (0usize, 0usize, 0usize);
        for c in 0..self.classes() {
            let (a, b, d) = self.tp_fp_fn(c);
            tp += a;
            fp += b;
            fnn += d;
        }
        let denom = 2 * tp + fp + fnn;
        if denom == 0 {
            0.0
        } else {
            2.0 * tp as f64 / denom as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let cm = ConfusionMatrix::from_predictions(&[0, 1, 2, 1], &[0, 1, 2, 1], 3);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.macro_f1(), 1.0);
        assert_eq!(cm.micro_f1(), 1.0);
        assert_eq!(cm.total(), 4);
    }

    #[test]
    fn known_confusion() {
        // truths: [0,0,1,1]; preds: [0,1,1,1]
        let cm = ConfusionMatrix::from_predictions(&[0, 1, 1, 1], &[0, 0, 1, 1], 2);
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(1, 1), 2);
        assert!((cm.accuracy() - 0.75).abs() < 1e-12);
        // class 0: tp=1 fp=0 fn=1 → f1=2/3; class 1: tp=2 fp=1 fn=0 → 4/5.
        let f1 = cm.f1_per_class();
        assert!((f1[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((f1[1] - 0.8).abs() < 1e-12);
        assert!((cm.macro_f1() - (2.0 / 3.0 + 0.8) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn micro_f1_equals_accuracy_for_single_label() {
        let cm = ConfusionMatrix::from_predictions(&[0, 2, 1, 2, 0], &[0, 1, 1, 2, 2], 3);
        assert!((cm.micro_f1() - cm.accuracy()).abs() < 1e-12);
    }

    #[test]
    fn absent_class_scores_zero() {
        let cm = ConfusionMatrix::from_predictions(&[0, 0], &[0, 0], 3);
        let f1 = cm.f1_per_class();
        assert_eq!(f1[1], 0.0);
        assert_eq!(f1[2], 0.0);
        assert!(cm.macro_f1() < 0.5);
    }

    #[test]
    fn from_logits_argmaxes() {
        let logits = Matrix::from_vec(2, 3, vec![0.1, 0.9, 0.0, 0.7, 0.1, 0.2]);
        let cm = ConfusionMatrix::from_logits(&logits, &[1, 0], 3);
        assert_eq!(cm.accuracy(), 1.0);
    }

    #[test]
    fn empty_is_zero() {
        let cm = ConfusionMatrix::from_predictions(&[], &[], 2);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.micro_f1(), 0.0);
    }
}
