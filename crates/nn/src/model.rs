//! GCN / GraphSAGE models with manual forward and backward passes.
//!
//! Every matmul/SpMM goes through the crate-wide
//! [`DispatchPolicy`](argo_tensor::DispatchPolicy) (blocked kernels, serial
//! vs pool-parallel decided in one place), bias+ReLU are fused into the
//! GEMM write-back, GraphSAGE's `[h ‖ agg]` concatenation is eliminated by
//! multiplying against the self/neighbor halves of the stacked weight, and
//! activations/gradient buffers round-trip through a per-model
//! [`Workspace`](argo_tensor::Workspace) so steady-state training steps
//! allocate (almost) nothing.

use std::cell::RefCell;

use argo_graph::features::Features;
use argo_rt::ThreadPool;
use argo_sample::batch::{Normalization, SampledBatch};
use argo_sample::view::SampledBatchView;
use argo_tensor::ops::{accuracy, bias_grad_into, relu_backward, softmax_cross_entropy};
use argo_tensor::{DispatchPolicy, Epilogue, Matrix, SparseMatrix, SparseView, Workspace};

/// Which aggregation rule a model uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GnnKind {
    /// Graph Convolutional Network — Eq. 1.
    Gcn,
    /// GraphSAGE with mean aggregator and self-concat — Eq. 2.
    Sage,
}

impl GnnKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            GnnKind::Gcn => "GCN",
            GnnKind::Sage => "GraphSAGE",
        }
    }
}

struct Layer {
    w: Matrix,
    b: Vec<f32>,
    dw: Matrix,
    db: Vec<f32>,
}

impl Layer {
    fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        Self {
            w: Matrix::xavier(in_dim, out_dim, seed),
            b: vec![0.0; out_dim],
            dw: Matrix::zeros(in_dim, out_dim),
            db: vec![0.0; out_dim],
        }
    }
}

/// Statistics of one training step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepStats {
    /// Mean cross-entropy loss over the batch.
    pub loss: f32,
    /// Training accuracy on the batch.
    pub accuracy: f64,
    /// Number of target nodes.
    pub num_seeds: usize,
}

/// One layer's normalized adjacency: a borrow of the pre-normalized matrix
/// the sampler fused during block assembly, an owned matrix normalized here
/// (legacy path for batches sampled without fusion), or a borrowed
/// [`SparseView`] straight out of the sampler's batch arena (zero-copy
/// inference path).
pub(crate) enum NormAdj<'a> {
    Pre(&'a SparseMatrix),
    Owned(SparseMatrix),
    View(SparseView<'a>),
}

/// One layer's normalized adjacency plus the output-row count; uniform view
/// over bipartite blocks and square ShaDow subgraphs.
pub(crate) struct LayerAdj<'a> {
    pub(crate) adj: NormAdj<'a>,
    pub(crate) n_dst: usize,
}

impl LayerAdj<'_> {
    /// The owned/borrowed [`SparseMatrix`] — the backward pass needs its CSC
    /// mirror, which a borrowed arena view cannot carry.
    pub(crate) fn norm(&self) -> &SparseMatrix {
        match &self.adj {
            NormAdj::Pre(m) => m,
            NormAdj::Owned(m) => m,
            NormAdj::View(_) => unreachable!("views are forward-only"),
        }
    }

    /// Row count of the adjacency (aggregation output rows).
    pub(crate) fn rows(&self) -> usize {
        match &self.adj {
            NormAdj::Pre(m) => m.rows(),
            NormAdj::Owned(m) => m.rows(),
            NormAdj::View(v) => v.rows(),
        }
    }

    /// Forward aggregation `out = adj × h` through the dispatch policy,
    /// whichever representation the adjacency is in.
    pub(crate) fn aggregate_into(
        &self,
        dispatch: &DispatchPolicy,
        h: &Matrix,
        pool: Option<&ThreadPool>,
        out: &mut Matrix,
    ) {
        match &self.adj {
            NormAdj::Pre(m) => dispatch.aggregate_into(m, h, pool, out),
            NormAdj::Owned(m) => dispatch.aggregate_into(m, h, pool, out),
            NormAdj::View(v) => dispatch.aggregate_view_into(v, h, pool, out),
        }
    }
}

/// A multi-layer GNN (hidden dims all equal, ReLU between layers, no
/// activation after the last layer — paper's standard 3-layer setup).
pub struct Gnn {
    kind: GnnKind,
    layers: Vec<Layer>,
    dims: Vec<usize>, // layer input/output dims: [in, hidden, ..., out]
    dispatch: DispatchPolicy,
    // Interior mutability so `forward` (&self) can recycle buffers too;
    // a model is only ever driven from one thread at a time.
    ws: RefCell<Workspace>,
}

impl Gnn {
    /// Builds an `num_layers`-deep model `in_dim → hidden × (L-1) → out_dim`,
    /// deterministic in `seed`.
    pub fn new(
        kind: GnnKind,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        num_layers: usize,
        seed: u64,
    ) -> Self {
        assert!(num_layers >= 1 && in_dim > 0 && hidden > 0 && out_dim > 0);
        let mut dims = Vec::with_capacity(num_layers + 1);
        dims.push(in_dim);
        for _ in 1..num_layers {
            dims.push(hidden);
        }
        dims.push(out_dim);
        let layers = (0..num_layers)
            .map(|l| {
                let fan_in = match kind {
                    GnnKind::Gcn => dims[l],
                    GnnKind::Sage => 2 * dims[l],
                };
                Layer::new(fan_in, dims[l + 1], seed.wrapping_add(l as u64 * 7919))
            })
            .collect();
        Self {
            kind,
            layers,
            dims,
            dispatch: DispatchPolicy::default(),
            ws: RefCell::new(Workspace::new()),
        }
    }

    /// Replaces the kernel dispatch policy (builder-style).
    pub fn with_dispatch(mut self, dispatch: DispatchPolicy) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// The active kernel dispatch policy.
    pub fn dispatch(&self) -> DispatchPolicy {
        self.dispatch
    }

    /// Workspace arena counters `(fresh allocations, reuses)` — observability
    /// for the cross-batch buffer recycling.
    pub fn workspace_stats(&self) -> (usize, usize) {
        let ws = self.ws.borrow();
        (ws.allocs(), ws.reuses())
    }

    /// Model kind.
    pub fn kind(&self) -> GnnKind {
        self.kind
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.w.data().len() + l.b.len())
            .sum()
    }

    fn layer_adjs<'a>(&self, batch: &'a SampledBatch) -> Vec<LayerAdj<'a>> {
        layer_adjs_for(self.kind, self.layers.len(), batch)
    }

    /// One layer's weights and bias — the quantized-inference builder in
    /// [`crate::quant`] reads the trained parameters through this.
    pub(crate) fn layer_params(&self, l: usize) -> (&Matrix, &[f32]) {
        (&self.layers[l].w, &self.layers[l].b)
    }

    /// Layer forward: returns `(output, aggregation cache, relu mask)`.
    ///
    /// * GCN: `z = (Â h) W + b`
    /// * SAGE: `z = h_self W_self + mean(h) W_neigh + b` — the fused form
    ///   of `[h_self ‖ mean(h)] W + b` with `W = [W_self; W_neigh]`
    ///   stacked; the concatenation is never materialized.
    ///
    /// Bias (and ReLU when `relu` is true — all layers except the last) are
    /// fused into the GEMM write-back. Output and aggregation buffers come
    /// from the model's workspace arena.
    fn layer_forward(
        &self,
        l: usize,
        adj: &LayerAdj,
        h: &Matrix,
        relu: bool,
        pool: Option<&ThreadPool>,
    ) -> (Matrix, Matrix, Option<Vec<bool>>) {
        let layer = &self.layers[l];
        let (mut agg, mut z) = {
            let mut ws = self.ws.borrow_mut();
            (
                ws.take(adj.rows(), h.cols()),
                ws.take(adj.n_dst, layer.w.cols()),
            )
        };
        adj.aggregate_into(&self.dispatch, h, pool, &mut agg);
        let epi = if relu {
            Epilogue::bias_relu(&layer.b)
        } else {
            Epilogue::bias(&layer.b)
        };
        let mask = match self.kind {
            GnnKind::Gcn => self.dispatch.gemm_into(&agg, &layer.w, epi, pool, &mut z),
            GnnKind::Sage => self
                .dispatch
                .sage_gemm_into(h, &agg, &layer.w, epi, pool, &mut z),
        };
        (z, agg, mask)
    }

    /// Inference forward pass; returns logits over the batch's seeds.
    pub fn forward(
        &self,
        batch: &SampledBatch,
        feats: &Features,
        pool: Option<&ThreadPool>,
    ) -> Matrix {
        self.forward_gathered(batch, gather_features(feats, batch.input_nodes()), pool)
    }

    /// [`Gnn::forward`] with the input-node feature rows already gathered
    /// (e.g. pre-gathered on the sampling side, possibly through the
    /// cross-batch feature cache). `input` must be the batch's input-node
    /// rows in `input_nodes()` order.
    pub fn forward_gathered(
        &self,
        batch: &SampledBatch,
        input: Matrix,
        pool: Option<&ThreadPool>,
    ) -> Matrix {
        let adjs = self.layer_adjs(batch);
        let h = self.forward_core(&adjs, input, pool);
        match batch {
            SampledBatch::Blocks(_) => h,
            SampledBatch::Subgraph(sb) => {
                let logits = select_rows(&h, &sb.seed_positions);
                self.ws.borrow_mut().put(h);
                logits
            }
        }
    }

    /// [`Gnn::forward_gathered`] over a borrowed [`SampledBatchView`]: the
    /// adjacencies are consumed straight out of the sampler's batch arena
    /// with zero copies. Falls back to materializing the owned batch when
    /// the fused normalization does not match this model (the sampler then
    /// re-normalizes the owned copy, exactly as before).
    pub fn forward_gathered_view(
        &self,
        batch: &SampledBatchView<'_>,
        input: Matrix,
        pool: Option<&ThreadPool>,
    ) -> Matrix {
        match layer_adjs_view_for(self.kind, self.layers.len(), batch) {
            Some(adjs) => {
                let h = self.forward_core(&adjs, input, pool);
                match batch {
                    SampledBatchView::Blocks(_) => h,
                    SampledBatchView::Subgraph(_) => {
                        // Subgraph-view seeds are the node-list prefix.
                        let logits = select_prefix_rows(&h, batch.num_seeds());
                        self.ws.borrow_mut().put(h);
                        logits
                    }
                }
            }
            None => self.forward_gathered(&batch.to_owned(), input, pool),
        }
    }

    /// Shared layer loop of the forward passes: runs every layer over the
    /// prepared adjacencies and returns the final hidden matrix (all output
    /// rows, before any seed selection).
    fn forward_core(&self, adjs: &[LayerAdj], input: Matrix, pool: Option<&ThreadPool>) -> Matrix {
        let mut h = input;
        for (l, adj) in adjs.iter().enumerate() {
            let relu = l + 1 < self.layers.len();
            let (z, agg, _) = self.layer_forward(l, adj, &h, relu, pool);
            let mut ws = self.ws.borrow_mut();
            ws.put(agg);
            ws.put(std::mem::replace(&mut h, z));
        }
        h
    }

    /// One training step: forward, loss, full backward. Gradients are
    /// written into the model's gradient buffers (overwriting previous
    /// contents); parameters are *not* updated — the engine averages
    /// gradients across processes first, then calls an optimizer.
    pub fn train_step(
        &mut self,
        batch: &SampledBatch,
        feats: &Features,
        labels: &[u32],
        pool: Option<&ThreadPool>,
    ) -> StepStats {
        let input = gather_features(feats, batch.input_nodes());
        self.train_step_gathered(batch, input, labels, pool)
    }

    /// [`Gnn::train_step`] with the input-node feature rows already
    /// gathered; see [`Gnn::forward_gathered`].
    pub fn train_step_gathered(
        &mut self,
        batch: &SampledBatch,
        input: Matrix,
        labels: &[u32],
        pool: Option<&ThreadPool>,
    ) -> StepStats {
        let adjs = self.layer_adjs(batch);
        // Forward, caching per-layer inputs, aggregations and masks.
        let mut h = input;
        let mut caches: Vec<(Matrix, Matrix, Option<Vec<bool>>)> =
            Vec::with_capacity(self.layers.len());
        for (l, adj) in adjs.iter().enumerate() {
            let relu = l + 1 < self.layers.len();
            let (z, agg, mask) = self.layer_forward(l, adj, &h, relu, pool);
            caches.push((std::mem::replace(&mut h, z), agg, mask));
        }
        // Loss over seeds.
        let seeds = batch.seeds();
        let seed_labels: Vec<u32> = seeds.iter().map(|&v| labels[v as usize]).collect();
        let (loss, acc, mut grad) = match batch {
            SampledBatch::Blocks(_) => {
                let (loss, dlogits) = softmax_cross_entropy(&h, &seed_labels);
                (loss, accuracy(&h, &seed_labels), dlogits)
            }
            SampledBatch::Subgraph(sb) => {
                let logits = select_rows(&h, &sb.seed_positions);
                let (loss, dlogits) = softmax_cross_entropy(&logits, &seed_labels);
                // Scatter the loss gradient back to the full output rows.
                let grad = scatter_rows(&dlogits, &sb.seed_positions, h.rows());
                (loss, accuracy(&logits, &seed_labels), grad)
            }
        };
        // Backward through the layers. Weight/bias gradients are written in
        // place into the model's persistent `dw`/`db` buffers; intermediate
        // gradient matrices cycle through the workspace.
        let dispatch = self.dispatch;
        for l in (0..self.layers.len()).rev() {
            let (layer_input, agg, mask) = &caches[l];
            if let Some(m) = mask {
                relu_backward(&mut grad, m);
            }
            let n_dst = adjs[l].n_dst;
            bias_grad_into(&grad, &mut self.layers[l].db);
            match self.kind {
                GnnKind::Gcn => {
                    // dW = aggᵀ grad (agg is the layer's GEMM input).
                    dispatch.grad_weights_into(
                        agg,
                        0..n_dst,
                        &grad,
                        pool,
                        &mut self.layers[l].dw,
                        0,
                    );
                }
                GnnKind::Sage => {
                    // Stacked halves of dW, no concatenation: the top f_in
                    // rows reduce against the self features, the bottom
                    // against the aggregation.
                    let f_in = self.dims[l];
                    dispatch.grad_weights_into(
                        layer_input,
                        0..n_dst,
                        &grad,
                        pool,
                        &mut self.layers[l].dw,
                        0,
                    );
                    dispatch.grad_weights_into(
                        agg,
                        0..n_dst,
                        &grad,
                        pool,
                        &mut self.layers[l].dw,
                        f_in,
                    );
                }
            }
            if l == 0 {
                break; // input features get no gradient
            }
            let adj = &adjs[l];
            let w = &self.layers[l].w;
            grad = match self.kind {
                GnnKind::Gcn => {
                    let dagg = dispatch.grad_input(&grad, w, 0..w.rows(), pool);
                    let mut ws = self.ws.borrow_mut();
                    let mut dh = ws.take(adj.norm().cols(), dagg.cols());
                    drop(ws);
                    dispatch.aggregate_transpose_into(adj.norm(), &dagg, pool, &mut dh);
                    let mut ws = self.ws.borrow_mut();
                    ws.put(dagg);
                    ws.put(std::mem::replace(&mut grad, Matrix::zeros(0, 0)));
                    dh
                }
                GnnKind::Sage => {
                    // Pull d_self / d_neigh out of the stacked weight by row
                    // window instead of splitting a concatenated gradient.
                    let f_in = self.dims[l];
                    let dself = dispatch.grad_input(&grad, w, 0..f_in, pool);
                    let dmean = dispatch.grad_input(&grad, w, f_in..2 * f_in, pool);
                    let mut ws = self.ws.borrow_mut();
                    let mut dh = ws.take(adj.norm().cols(), f_in);
                    drop(ws);
                    dispatch.aggregate_transpose_into(adj.norm(), &dmean, pool, &mut dh);
                    // Self-path gradient lands on the first n_dst src rows.
                    for r in 0..adj.n_dst {
                        for (a, b) in dh.row_mut(r).iter_mut().zip(dself.row(r)) {
                            *a += b;
                        }
                    }
                    let mut ws = self.ws.borrow_mut();
                    ws.put(dself);
                    ws.put(dmean);
                    ws.put(std::mem::replace(&mut grad, Matrix::zeros(0, 0)));
                    dh
                }
            };
        }
        // Recycle every per-step buffer for the next batch.
        {
            let mut ws = self.ws.borrow_mut();
            for (layer_input, agg, _) in caches {
                ws.put(layer_input);
                ws.put(agg);
            }
            ws.put(h);
            ws.put(grad);
        }
        StepStats {
            loss,
            accuracy: acc,
            num_seeds: seeds.len(),
        }
    }

    /// Flattens all gradients (layer order, `W` then `b`) into `out`.
    pub fn grads_flat(&self, out: &mut Vec<f32>) {
        out.clear();
        for l in &self.layers {
            out.extend_from_slice(l.dw.data());
            out.extend_from_slice(&l.db);
        }
    }

    /// Overwrites gradients from a flat buffer (inverse of
    /// [`Gnn::grads_flat`]).
    pub fn set_grads_flat(&mut self, flat: &[f32]) {
        let mut at = 0usize;
        for l in &mut self.layers {
            let nw = l.dw.data().len();
            l.dw.data_mut().copy_from_slice(&flat[at..at + nw]);
            at += nw;
            let nb = l.db.len();
            l.db.copy_from_slice(&flat[at..at + nb]);
            at += nb;
        }
        assert_eq!(at, flat.len(), "flat gradient length mismatch");
    }

    /// Flattens all parameters into `out` (same layout as gradients).
    pub fn params_flat(&self, out: &mut Vec<f32>) {
        out.clear();
        for l in &self.layers {
            out.extend_from_slice(l.w.data());
            out.extend_from_slice(&l.b);
        }
    }

    /// Overwrites parameters from a flat buffer.
    pub fn set_params_flat(&mut self, flat: &[f32]) {
        let mut at = 0usize;
        for l in &mut self.layers {
            let nw = l.w.data().len();
            l.w.data_mut().copy_from_slice(&flat[at..at + nw]);
            at += nw;
            let nb = l.b.len();
            l.b.copy_from_slice(&flat[at..at + nb]);
            at += nb;
        }
        assert_eq!(at, flat.len(), "flat parameter length mismatch");
    }

    /// Layer dimensions `[in, hidden…, out]`.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }
}

fn wanted_norm_for(kind: GnnKind) -> Normalization {
    match kind {
        GnnKind::Gcn => Normalization::Gcn,
        GnnKind::Sage => Normalization::Mean,
    }
}

/// The per-layer normalized adjacencies of a batch for a `depth`-layer
/// model of the given kind — shared by [`Gnn`] and the quantized inference
/// model in [`crate::quant`].
pub(crate) fn layer_adjs_for(
    kind: GnnKind,
    depth: usize,
    batch: &SampledBatch,
) -> Vec<LayerAdj<'_>> {
    let want = wanted_norm_for(kind);
    match batch {
        SampledBatch::Blocks(mb) => {
            assert_eq!(mb.blocks.len(), depth, "batch depth != model depth");
            mb.blocks
                .iter()
                .map(|b| LayerAdj {
                    adj: if b.norm == want && b.adj.values().is_some() {
                        // The sampler already fused this normalization
                        // into the adjacency values — consume in place.
                        NormAdj::Pre(&b.adj)
                    } else {
                        NormAdj::Owned(match kind {
                            GnnKind::Gcn => b.gcn_normalized(),
                            GnnKind::Sage => b.mean_normalized(),
                        })
                    },
                    n_dst: b.dst_nodes.len(),
                })
                .collect()
        }
        SampledBatch::Subgraph(sb) => {
            if sb.norm == want && sb.adj.values().is_some() {
                // Every layer (and the backward pass) borrows the one
                // pre-normalized matrix; its CSC mirror is shared too.
                sb.adj.csc();
                return (0..depth)
                    .map(|_| LayerAdj {
                        adj: NormAdj::Pre(&sb.adj),
                        n_dst: sb.nodes.len(),
                    })
                    .collect();
            }
            let norm = match kind {
                GnnKind::Gcn => sb.gcn_normalized(),
                GnnKind::Sage => sb.mean_normalized(),
            };
            // Build the CSC mirror before cloning so every layer (and
            // the backward pass) shares one mirror instead of each
            // clone rebuilding it lazily.
            norm.csc();
            (0..depth)
                .map(|_| LayerAdj {
                    adj: NormAdj::Owned(norm.clone()),
                    n_dst: sb.nodes.len(),
                })
                .collect()
        }
    }
}

/// The per-layer adjacencies of a *borrowed* batch view, consumed in place
/// from the sampler's arena. Returns `None` when the fused normalization
/// does not match what the model wants (or the layer count disagrees) — the
/// caller falls back to the owned path, which re-normalizes.
pub(crate) fn layer_adjs_view_for<'a>(
    kind: GnnKind,
    depth: usize,
    batch: &SampledBatchView<'a>,
) -> Option<Vec<LayerAdj<'a>>> {
    let want = wanted_norm_for(kind);
    if batch.norm() != want {
        return None;
    }
    match batch {
        SampledBatchView::Blocks(mb) => {
            if mb.num_blocks() != depth {
                return None;
            }
            Some(
                (0..depth)
                    .map(|l| {
                        let b = mb.block(l);
                        LayerAdj {
                            adj: NormAdj::View(b.adj),
                            n_dst: b.dst_nodes.len(),
                        }
                    })
                    .collect(),
            )
        }
        SampledBatchView::Subgraph(sb) => Some(
            (0..depth)
                .map(|_| LayerAdj {
                    adj: NormAdj::View(sb.adj()),
                    n_dst: sb.nodes().len(),
                })
                .collect(),
        ),
    }
}

pub(crate) fn gather_features(feats: &Features, ids: &[u32]) -> Matrix {
    let g = feats.gather(ids);
    Matrix::from_vec(ids.len(), feats.dim(), g.data().to_vec())
}

pub(crate) fn select_rows(m: &Matrix, rows: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(rows.len(), m.cols());
    for (i, &r) in rows.iter().enumerate() {
        out.row_mut(i).copy_from_slice(m.row(r));
    }
    out
}

/// [`select_rows`] specialized to the contiguous prefix `0..n` — the seed
/// layout of every subgraph batch *view* — without a positions slice.
pub(crate) fn select_prefix_rows(m: &Matrix, n: usize) -> Matrix {
    let mut out = Matrix::zeros(n, m.cols());
    out.data_mut().copy_from_slice(&m.data()[..n * m.cols()]);
    out
}

fn scatter_rows(m: &Matrix, rows: &[usize], total: usize) -> Matrix {
    let mut out = Matrix::zeros(total, m.cols());
    for (i, &r) in rows.iter().enumerate() {
        out.row_mut(r).copy_from_slice(m.row(i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_graph::datasets::FLICKR;
    use argo_sample::{NeighborSampler, Sampler, ShadowSampler};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_dataset() -> argo_graph::Dataset {
        FLICKR.synthesize(0.01, 11)
    }

    fn sample_blocks(d: &argo_graph::Dataset, n: usize, layers: usize) -> SampledBatch {
        let s = NeighborSampler::new(vec![5; layers]);
        let seeds: Vec<u32> = d.train_nodes.iter().copied().take(n).collect();
        s.sample(&d.graph, &seeds, &mut SmallRng::seed_from_u64(3))
    }

    #[test]
    fn forward_shapes() {
        let d = tiny_dataset();
        let batch = sample_blocks(&d, 8, 2);
        let model = Gnn::new(GnnKind::Sage, d.feat_dim(), 16, d.num_classes, 2, 1);
        let logits = model.forward(&batch, &d.features, None);
        assert_eq!(logits.rows(), 8);
        assert_eq!(logits.cols(), d.num_classes);
    }

    #[test]
    fn forward_shadow_shapes() {
        let d = tiny_dataset();
        let s = ShadowSampler::new(vec![5, 3], 2);
        let seeds: Vec<u32> = d.train_nodes.iter().copied().take(6).collect();
        let batch = s.sample(&d.graph, &seeds, &mut SmallRng::seed_from_u64(5));
        let model = Gnn::new(GnnKind::Gcn, d.feat_dim(), 16, d.num_classes, 2, 2);
        let logits = model.forward(&batch, &d.features, None);
        assert_eq!(logits.rows(), 6);
        assert_eq!(logits.cols(), d.num_classes);
    }

    #[test]
    fn num_params_counts() {
        let m = Gnn::new(GnnKind::Gcn, 10, 8, 3, 2, 1);
        // L1: 10*8 + 8; L2: 8*3 + 3.
        assert_eq!(m.num_params(), 80 + 8 + 24 + 3);
        let s = Gnn::new(GnnKind::Sage, 10, 8, 3, 2, 1);
        // SAGE doubles fan-in: 20*8+8 + 16*3+3.
        assert_eq!(s.num_params(), 160 + 8 + 48 + 3);
    }

    #[test]
    fn flat_roundtrip() {
        let mut m = Gnn::new(GnnKind::Sage, 6, 4, 3, 2, 7);
        let mut p = Vec::new();
        m.params_flat(&mut p);
        assert_eq!(p.len(), m.num_params());
        let doubled: Vec<f32> = p.iter().map(|x| x * 2.0).collect();
        m.set_params_flat(&doubled);
        let mut p2 = Vec::new();
        m.params_flat(&mut p2);
        assert_eq!(p2, doubled);
    }

    #[test]
    fn train_step_fills_grads() {
        let d = tiny_dataset();
        let batch = sample_blocks(&d, 16, 2);
        let mut m = Gnn::new(GnnKind::Sage, d.feat_dim(), 16, d.num_classes, 2, 3);
        let stats = m.train_step(&batch, &d.features, &d.labels, None);
        assert!(stats.loss.is_finite() && stats.loss > 0.0);
        assert_eq!(stats.num_seeds, 16);
        let mut g = Vec::new();
        m.grads_flat(&mut g);
        assert_eq!(g.len(), m.num_params());
        let nonzero = g.iter().filter(|x| **x != 0.0).count();
        assert!(
            nonzero > g.len() / 4,
            "gradients mostly zero: {nonzero}/{}",
            g.len()
        );
    }

    /// Finite-difference check of the full backward pass (the core
    /// correctness test for manual backprop).
    fn fd_check(kind: GnnKind, use_shadow: bool) {
        let d = tiny_dataset();
        let batch = if use_shadow {
            let s = ShadowSampler::new(vec![4, 3], 2);
            let seeds: Vec<u32> = d.train_nodes.iter().copied().take(5).collect();
            s.sample(&d.graph, &seeds, &mut SmallRng::seed_from_u64(9))
        } else {
            sample_blocks(&d, 5, 2)
        };
        let mut m = Gnn::new(kind, d.feat_dim(), 6, d.num_classes, 2, 5);
        m.train_step(&batch, &d.features, &d.labels, None);
        let mut analytic = Vec::new();
        m.grads_flat(&mut analytic);
        let mut params = Vec::new();
        m.params_flat(&mut params);
        let seeds = batch.seeds();
        let seed_labels: Vec<u32> = seeds.iter().map(|&v| d.labels[v as usize]).collect();
        let loss_at = |m: &mut Gnn, p: &[f32]| -> f32 {
            m.set_params_flat(p);
            let logits = m.forward(&batch, &d.features, None);
            softmax_cross_entropy(&logits, &seed_labels).0
        };
        let eps = 3e-3f32;
        // Spot-check a spread of parameter coordinates.
        let n = params.len();
        for &i in &[0usize, n / 5, n / 3, n / 2, 2 * n / 3, n - 1] {
            let mut p = params.clone();
            p[i] += eps;
            let lp = loss_at(&mut m, &p);
            p[i] = params[i] - eps;
            let lm = loss_at(&mut m, &p);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - analytic[i]).abs() < 2e-2_f32.max(0.2 * fd.abs()),
                "{kind:?} shadow={use_shadow} param {i}: fd {fd} vs analytic {}",
                analytic[i]
            );
        }
        m.set_params_flat(&params);
    }

    #[test]
    fn backward_matches_finite_difference_gcn_blocks() {
        fd_check(GnnKind::Gcn, false);
    }

    #[test]
    fn backward_matches_finite_difference_sage_blocks() {
        fd_check(GnnKind::Sage, false);
    }

    #[test]
    fn backward_matches_finite_difference_gcn_shadow() {
        fd_check(GnnKind::Gcn, true);
    }

    #[test]
    fn backward_matches_finite_difference_sage_shadow() {
        fd_check(GnnKind::Sage, true);
    }

    #[test]
    fn pool_and_serial_forward_agree() {
        let d = tiny_dataset();
        let batch = sample_blocks(&d, 64, 2);
        let model = Gnn::new(GnnKind::Sage, d.feat_dim(), 16, d.num_classes, 2, 1);
        let a = model.forward(&batch, &d.features, None);
        let pool = ThreadPool::new("t", 3);
        let b = model.forward(&batch, &d.features, Some(&pool));
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    /// The pool-parallel backward (per-worker partial dW reduction, CSC
    /// gather, parallel input-grad GEMMs) must agree with the serial
    /// backward to accumulation-order tolerance.
    fn backward_agree(kind: GnnKind, use_shadow: bool) {
        let d = tiny_dataset();
        let batch = if use_shadow {
            let s = ShadowSampler::new(vec![4, 3], 2);
            let seeds: Vec<u32> = d.train_nodes.iter().copied().take(48).collect();
            s.sample(&d.graph, &seeds, &mut SmallRng::seed_from_u64(17))
        } else {
            sample_blocks(&d, 64, 2)
        };
        // Threshold 1 forces every kernel onto the pool, including the
        // small inner layers a 64-row default would leave serial.
        let mk = || {
            Gnn::new(kind, d.feat_dim(), 16, d.num_classes, 2, 6)
                .with_dispatch(argo_tensor::DispatchPolicy::new(1))
        };
        let mut serial = mk();
        serial.train_step(&batch, &d.features, &d.labels, None);
        let mut gs = Vec::new();
        serial.grads_flat(&mut gs);
        let pool = ThreadPool::new("t", 4);
        let mut pooled = mk();
        pooled.train_step(&batch, &d.features, &d.labels, Some(&pool));
        let mut gp = Vec::new();
        pooled.grads_flat(&mut gp);
        assert_eq!(gs.len(), gp.len());
        for (i, (a, b)) in gs.iter().zip(&gp).enumerate() {
            assert!(
                (a - b).abs() <= 1e-4,
                "{kind:?} shadow={use_shadow} grad {i}: serial {a} vs pooled {b}"
            );
        }
    }

    #[test]
    fn pool_and_serial_backward_agree_gcn() {
        backward_agree(GnnKind::Gcn, false);
    }

    #[test]
    fn pool_and_serial_backward_agree_sage() {
        backward_agree(GnnKind::Sage, false);
    }

    #[test]
    fn pool_and_serial_backward_agree_sage_shadow() {
        backward_agree(GnnKind::Sage, true);
    }

    #[test]
    fn workspace_recycles_buffers_across_steps() {
        let d = tiny_dataset();
        let batch = sample_blocks(&d, 16, 2);
        let mut m = Gnn::new(GnnKind::Sage, d.feat_dim(), 16, d.num_classes, 2, 3);
        m.train_step(&batch, &d.features, &d.labels, None);
        let (allocs_first, _) = m.workspace_stats();
        assert!(allocs_first > 0, "first step should allocate");
        m.train_step(&batch, &d.features, &d.labels, None);
        let (allocs_second, reuses) = m.workspace_stats();
        assert!(
            reuses >= allocs_first,
            "second step should reuse first-step buffers: {reuses} reuses, {allocs_first} first-step allocs"
        );
        assert_eq!(
            allocs_second, allocs_first,
            "steady state should allocate nothing new"
        );
    }

    #[test]
    fn training_reduces_loss() {
        let d = tiny_dataset();
        let mut m = Gnn::new(GnnKind::Sage, d.feat_dim(), 16, d.num_classes, 2, 4);
        let mut opt = crate::optim::Adam::new(m.num_params(), 0.01);
        let mut first = None;
        let mut last = 0.0;
        for step in 0..30 {
            let s = NeighborSampler::new(vec![5, 5]);
            let seeds: Vec<u32> = d
                .train_nodes
                .iter()
                .copied()
                .skip((step * 32) % d.train_nodes.len().saturating_sub(32).max(1))
                .take(32)
                .collect();
            let batch = s.sample(&d.graph, &seeds, &mut SmallRng::seed_from_u64(step as u64));
            let stats = m.train_step(&batch, &d.features, &d.labels, None);
            if first.is_none() {
                first = Some(stats.loss);
            }
            last = stats.loss;
            let mut g = Vec::new();
            m.grads_flat(&mut g);
            let mut p = Vec::new();
            m.params_flat(&mut p);
            crate::optim::Optimizer::step(&mut opt, &mut p, &g);
            m.set_params_flat(&p);
        }
        assert!(
            last < first.unwrap() * 0.7,
            "loss {last} did not drop from {}",
            first.unwrap()
        );
    }
}
