//! Architecture selection and the type-erased model used by the engine.
//!
//! The Multi-Process Engine replicates one model per process; [`AnyModel`]
//! lets it hold any of the supported architectures (GCN, GraphSAGE, GAT)
//! behind one concrete, `Send` type with the flat parameter/gradient API
//! DDP-style synchronization needs.

use argo_graph::features::Features;
use argo_rt::ThreadPool;
use argo_sample::batch::SampledBatch;
use argo_sample::view::SampledBatchView;
use argo_tensor::{DispatchPolicy, Matrix};

use crate::gat::Gat;
use crate::model::{Gnn, GnnKind, StepStats};

/// Which GNN architecture to train.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arch {
    /// Graph Convolutional Network (paper Eq. 1).
    Gcn,
    /// GraphSAGE with mean aggregator (paper Eq. 2).
    Sage,
    /// Graph Attention Network with `heads` attention heads (extension).
    Gat {
        /// Number of attention heads (hidden dim must divide evenly).
        heads: usize,
    },
}

impl Arch {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Arch::Gcn => "GCN",
            Arch::Sage => "GraphSAGE",
            Arch::Gat { .. } => "GAT",
        }
    }

    /// The adjacency normalization this architecture consumes — what the
    /// loader asks the samplers to fuse into batch values at assembly time.
    /// GAT computes attention coefficients instead of fixed weights, so its
    /// batches stay unnormalized.
    pub fn normalization(&self) -> argo_sample::Normalization {
        match self {
            Arch::Gcn => argo_sample::Normalization::Gcn,
            Arch::Sage => argo_sample::Normalization::Mean,
            Arch::Gat { .. } => argo_sample::Normalization::None,
        }
    }
}

impl From<GnnKind> for Arch {
    fn from(k: GnnKind) -> Self {
        match k {
            GnnKind::Gcn => Arch::Gcn,
            GnnKind::Sage => Arch::Sage,
        }
    }
}

/// A trained model of any supported architecture.
pub enum AnyModel {
    /// GCN or GraphSAGE.
    Gnn(Gnn),
    /// Graph attention network.
    Gat(Gat),
}

impl AnyModel {
    /// Builds the architecture `arch` with the given dimensions.
    pub fn build(
        arch: Arch,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        num_layers: usize,
        seed: u64,
    ) -> Self {
        match arch {
            Arch::Gcn => AnyModel::Gnn(Gnn::new(
                GnnKind::Gcn,
                in_dim,
                hidden,
                out_dim,
                num_layers,
                seed,
            )),
            Arch::Sage => AnyModel::Gnn(Gnn::new(
                GnnKind::Sage,
                in_dim,
                hidden,
                out_dim,
                num_layers,
                seed,
            )),
            Arch::Gat { heads } => {
                AnyModel::Gat(Gat::new(in_dim, hidden, out_dim, num_layers, heads, seed))
            }
        }
    }

    /// Replaces the kernel dispatch policy (builder style).
    pub fn with_dispatch(self, dispatch: DispatchPolicy) -> Self {
        match self {
            AnyModel::Gnn(m) => AnyModel::Gnn(m.with_dispatch(dispatch)),
            AnyModel::Gat(m) => AnyModel::Gat(m.with_dispatch(dispatch)),
        }
    }

    /// The kernel dispatch policy in effect.
    pub fn dispatch(&self) -> DispatchPolicy {
        match self {
            AnyModel::Gnn(m) => m.dispatch(),
            AnyModel::Gat(m) => m.dispatch(),
        }
    }

    /// Inference logits over the batch seeds.
    pub fn forward(
        &self,
        batch: &SampledBatch,
        feats: &Features,
        pool: Option<&ThreadPool>,
    ) -> Matrix {
        match self {
            AnyModel::Gnn(m) => m.forward(batch, feats, pool),
            AnyModel::Gat(m) => m.forward(batch, feats, pool),
        }
    }

    /// [`AnyModel::forward`] with the input-node feature rows already
    /// gathered (in `input_nodes()` order).
    pub fn forward_gathered(
        &self,
        batch: &SampledBatch,
        input: Matrix,
        pool: Option<&ThreadPool>,
    ) -> Matrix {
        match self {
            AnyModel::Gnn(m) => m.forward_gathered(batch, input, pool),
            AnyModel::Gat(m) => m.forward_gathered(batch, input, pool),
        }
    }

    /// [`AnyModel::forward_gathered`] over a borrowed [`SampledBatchView`] —
    /// adjacencies consumed in place from the sampler's batch arena. GAT
    /// recomputes attention over an owned adjacency, so it materializes the
    /// batch (same cost as before the view path existed).
    pub fn forward_gathered_view(
        &self,
        batch: &SampledBatchView<'_>,
        input: Matrix,
        pool: Option<&ThreadPool>,
    ) -> Matrix {
        match self {
            AnyModel::Gnn(m) => m.forward_gathered_view(batch, input, pool),
            AnyModel::Gat(m) => m.forward_gathered(&batch.to_owned(), input, pool),
        }
    }

    /// One training step (loss + backward into the gradient buffers).
    pub fn train_step(
        &mut self,
        batch: &SampledBatch,
        feats: &Features,
        labels: &[u32],
        pool: Option<&ThreadPool>,
    ) -> StepStats {
        match self {
            AnyModel::Gnn(m) => m.train_step(batch, feats, labels, pool),
            AnyModel::Gat(m) => m.train_step(batch, feats, labels, pool),
        }
    }

    /// [`AnyModel::train_step`] with the input-node feature rows already
    /// gathered (e.g. pre-gathered by the loader, possibly through the
    /// cross-batch feature cache).
    pub fn train_step_gathered(
        &mut self,
        batch: &SampledBatch,
        input: Matrix,
        labels: &[u32],
        pool: Option<&ThreadPool>,
    ) -> StepStats {
        match self {
            AnyModel::Gnn(m) => m.train_step_gathered(batch, input, labels, pool),
            AnyModel::Gat(m) => m.train_step_gathered(batch, input, labels, pool),
        }
    }

    /// Flat parameter vector.
    pub fn params_flat(&self, out: &mut Vec<f32>) {
        match self {
            AnyModel::Gnn(m) => m.params_flat(out),
            AnyModel::Gat(m) => m.params_flat(out),
        }
    }

    /// Restores parameters from a flat vector.
    pub fn set_params_flat(&mut self, flat: &[f32]) {
        match self {
            AnyModel::Gnn(m) => m.set_params_flat(flat),
            AnyModel::Gat(m) => m.set_params_flat(flat),
        }
    }

    /// Flat gradient vector.
    pub fn grads_flat(&self, out: &mut Vec<f32>) {
        match self {
            AnyModel::Gnn(m) => m.grads_flat(out),
            AnyModel::Gat(m) => m.grads_flat(out),
        }
    }

    /// Restores gradients from a flat vector.
    pub fn set_grads_flat(&mut self, flat: &[f32]) {
        match self {
            AnyModel::Gnn(m) => m.set_grads_flat(flat),
            AnyModel::Gat(m) => m.set_grads_flat(flat),
        }
    }

    /// Total scalar parameters.
    pub fn num_params(&self) -> usize {
        match self {
            AnyModel::Gnn(m) => m.num_params(),
            AnyModel::Gat(m) => m.num_params(),
        }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        match self {
            AnyModel::Gnn(m) => m.num_layers(),
            AnyModel::Gat(m) => m.num_layers(),
        }
    }

    /// Architecture name.
    pub fn name(&self) -> &'static str {
        match self {
            AnyModel::Gnn(m) => m.kind().name(),
            AnyModel::Gat(_) => "GAT",
        }
    }
}

impl From<Gnn> for AnyModel {
    fn from(m: Gnn) -> Self {
        AnyModel::Gnn(m)
    }
}

impl From<Gat> for AnyModel {
    fn from(m: Gat) -> Self {
        AnyModel::Gat(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_dispatches() {
        let g = AnyModel::build(Arch::Gcn, 10, 8, 3, 2, 1);
        assert_eq!(g.name(), "GCN");
        assert_eq!(g.num_layers(), 2);
        let s = AnyModel::build(Arch::Sage, 10, 8, 3, 2, 1);
        assert_eq!(s.name(), "GraphSAGE");
        assert!(
            s.num_params() > g.num_params(),
            "SAGE concat doubles fan-in"
        );
        let a = AnyModel::build(Arch::Gat { heads: 2 }, 10, 8, 3, 2, 1);
        assert_eq!(a.name(), "GAT");
        assert!(a.num_params() > 0);
    }

    #[test]
    fn flat_roundtrip_through_erasure() {
        for arch in [Arch::Gcn, Arch::Sage, Arch::Gat { heads: 2 }] {
            let mut m = AnyModel::build(arch, 6, 4, 3, 2, 9);
            let mut p = Vec::new();
            m.params_flat(&mut p);
            assert_eq!(p.len(), m.num_params(), "{arch:?}");
            let scaled: Vec<f32> = p.iter().map(|x| x * 0.5).collect();
            m.set_params_flat(&scaled);
            let mut p2 = Vec::new();
            m.params_flat(&mut p2);
            assert_eq!(p2, scaled);
        }
    }

    #[test]
    fn gnnkind_converts() {
        assert_eq!(Arch::from(GnnKind::Gcn), Arch::Gcn);
        assert_eq!(Arch::from(GnnKind::Sage), Arch::Sage);
        assert_eq!(Arch::Gat { heads: 4 }.name(), "GAT");
    }
}
