//! Learning-rate schedules.
//!
//! A schedule maps the epoch index to an LR multiplier; the engine applies
//! it identically on every DDP replica (the multiplier depends only on the
//! epoch counter, so replicas stay synchronized).

/// A learning-rate schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Multiply by `gamma` every `every` epochs.
    StepDecay {
        /// Epoch period.
        every: u64,
        /// Decay factor in (0, 1].
        gamma: f32,
    },
    /// Cosine annealing from 1 down to `floor` over `horizon` epochs, then
    /// held at `floor`.
    Cosine {
        /// Annealing horizon in epochs.
        horizon: u64,
        /// Final multiplier in [0, 1].
        floor: f32,
    },
    /// Linear warm-up from `start` to 1 over `epochs` epochs, constant after.
    Warmup {
        /// Warm-up length.
        epochs: u64,
        /// Initial multiplier in (0, 1].
        start: f32,
    },
}

impl LrSchedule {
    /// LR multiplier at `epoch` (0-based).
    pub fn multiplier(&self, epoch: u64) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::StepDecay { every, gamma } => {
                assert!(every > 0 && gamma > 0.0 && gamma <= 1.0);
                gamma.powi((epoch / every) as i32)
            }
            LrSchedule::Cosine { horizon, floor } => {
                assert!(horizon > 0 && (0.0..=1.0).contains(&floor));
                if epoch >= horizon {
                    return floor;
                }
                let t = epoch as f32 / horizon as f32;
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
                floor + (1.0 - floor) * cos
            }
            LrSchedule::Warmup { epochs, start } => {
                assert!(epochs > 0 && start > 0.0 && start <= 1.0);
                if epoch >= epochs {
                    1.0
                } else {
                    start + (1.0 - start) * (epoch as f32 / epochs as f32)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one() {
        for e in [0u64, 10, 1000] {
            assert_eq!(LrSchedule::Constant.multiplier(e), 1.0);
        }
    }

    #[test]
    fn step_decay_steps() {
        let s = LrSchedule::StepDecay {
            every: 10,
            gamma: 0.5,
        };
        assert_eq!(s.multiplier(0), 1.0);
        assert_eq!(s.multiplier(9), 1.0);
        assert_eq!(s.multiplier(10), 0.5);
        assert_eq!(s.multiplier(25), 0.25);
    }

    #[test]
    fn cosine_monotone_then_floor() {
        let s = LrSchedule::Cosine {
            horizon: 100,
            floor: 0.1,
        };
        assert!((s.multiplier(0) - 1.0).abs() < 1e-6);
        let mut prev = 2.0f32;
        for e in (0..100).step_by(10) {
            let m = s.multiplier(e);
            assert!(m <= prev + 1e-6, "not monotone at {e}");
            prev = m;
        }
        assert!((s.multiplier(100) - 0.1).abs() < 1e-6);
        assert!((s.multiplier(10_000) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn warmup_ramps_to_one() {
        let s = LrSchedule::Warmup {
            epochs: 4,
            start: 0.2,
        };
        assert!((s.multiplier(0) - 0.2).abs() < 1e-6);
        assert!(s.multiplier(2) > s.multiplier(1));
        assert_eq!(s.multiplier(4), 1.0);
        assert_eq!(s.multiplier(50), 1.0);
    }
}
