//! # argo-nn — GNN models with hand-written backward passes
//!
//! The model substrate of the ARGO reproduction: the two representative GNN
//! architectures the paper evaluates (Section II-A) —
//!
//! * **GCN** (Eq. 1): symmetric-normalized sum aggregation;
//! * **GraphSAGE** (Eq. 2): mean aggregation concatenated with the node's own
//!   previous-layer feature —
//!
//! each followed by the shared feature-update step `ReLU(a W + b)` (Eq. 3),
//! with full manual backpropagation (no autograd), mini-batch training over
//! [`argo_sample::SampledBatch`]es, and SGD/Adam optimizers. Parameters and
//! gradients can be flattened to a single `Vec<f32>` for the engine's DDP
//! gradient all-reduce.

pub mod arch;
pub mod gat;
pub mod metrics;
pub mod model;
pub mod optim;
pub mod quant;
pub mod schedule;

pub use arch::{AnyModel, Arch};
pub use gat::Gat;
pub use metrics::ConfusionMatrix;
pub use model::{Gnn, GnnKind, StepStats};
pub use optim::{clip_grad_norm, Adam, AnyOptimizer, Optimizer, OptimizerKind, Sgd};
pub use quant::QuantizedGnn;
pub use schedule::LrSchedule;
