//! Deterministic synthetic graph generators.
//!
//! The paper's datasets (Flickr, Reddit, ogbn-products, ogbn-papers100M) are
//! all heavy-tailed social/co-purchase/citation graphs. The workload effects
//! ARGO exploits — expensive neighbor sampling, shared-neighbor reuse across
//! mini-batches, bandwidth-bound feature gathering — are driven by the degree
//! distribution, so the stand-in generators here reproduce power-law degrees
//! with a controllable average degree.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::csr::Graph;
use crate::NodeId;

/// Chung–Lu power-law graph: node `i` gets weight `(i + i0)^(-alpha)` and
/// `num_edges` endpoint pairs are drawn with probability proportional to the
/// weights, giving an expected power-law degree sequence.
///
/// The graph is undirected (both directions stored) and deterministic in
/// `seed`.
pub fn power_law(num_nodes: usize, num_edges: usize, alpha: f64, seed: u64) -> Graph {
    assert!(num_nodes >= 2, "need at least two nodes");
    let mut rng = SmallRng::seed_from_u64(seed);
    // Cumulative weight table for endpoint sampling by binary search.
    let i0 = 10.0; // offset keeps the hub degrees bounded
    let mut cum = Vec::with_capacity(num_nodes);
    let mut total = 0.0f64;
    for i in 0..num_nodes {
        total += (i as f64 + i0).powf(-alpha);
        cum.push(total);
    }
    let sample = |rng: &mut SmallRng, cum: &[f64]| -> NodeId {
        let x = rng.gen::<f64>() * total;
        match cum.binary_search_by(|p| p.partial_cmp(&x).unwrap()) {
            Ok(i) | Err(i) => (i.min(num_nodes - 1)) as NodeId,
        }
    };
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let u = sample(&mut rng, &cum);
        let mut v = sample(&mut rng, &cum);
        if u == v {
            v = ((u as usize + 1) % num_nodes) as NodeId; // avoid self-loop
        }
        edges.push((u, v));
    }
    Graph::from_edges(num_nodes, &edges, true)
}

/// Erdős–Rényi `G(n, m)` graph with exactly `num_edges` undirected edges
/// (endpoint pairs drawn uniformly; self-loops redrawn as neighbor shift).
pub fn erdos_renyi(num_nodes: usize, num_edges: usize, seed: u64) -> Graph {
    assert!(num_nodes >= 2);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let u = rng.gen_range(0..num_nodes) as NodeId;
        let mut v = rng.gen_range(0..num_nodes) as NodeId;
        if u == v {
            v = ((u as usize + 1) % num_nodes) as NodeId;
        }
        edges.push((u, v));
    }
    Graph::from_edges(num_nodes, &edges, true)
}

/// RMAT-style recursive-matrix graph (Graph500 parameters a=0.57, b=0.19,
/// c=0.19 by default) — skewed like real web/social graphs.
pub fn rmat(scale: u32, edge_factor: usize, seed: u64) -> Graph {
    let n = 1usize << scale;
    let m = n * edge_factor;
    let (a, b, c) = (0.57, 0.19, 0.19);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            let r: f64 = rng.gen();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u == v {
            v = (v + 1) % n;
        }
        edges.push((u as NodeId, v as NodeId));
    }
    Graph::from_edges(n, &edges, true)
}

/// A community-structured graph used for *learnable* synthetic datasets:
/// nodes are split into `num_communities` equal blocks and each drawn edge is
/// intra-community with probability `homophily` (endpoints within the block
/// are chosen power-law, preserving heavy tails).
pub fn planted_communities(
    num_nodes: usize,
    num_edges: usize,
    num_communities: usize,
    homophily: f64,
    seed: u64,
) -> Graph {
    assert!(num_communities >= 1 && num_nodes >= 2 * num_communities);
    assert!((0.0..=1.0).contains(&homophily));
    let mut rng = SmallRng::seed_from_u64(seed);
    let block = num_nodes.div_ceil(num_communities);
    // Power-law rank within the whole graph; community of node v is v / block.
    let pick_in = |rng: &mut SmallRng, comm: usize| -> NodeId {
        let lo = comm * block;
        let hi = ((comm + 1) * block).min(num_nodes);
        // Zipf-ish: bias toward low offsets inside the block.
        let span = hi - lo;
        let x: f64 = rng.gen::<f64>();
        let off = ((x * x) * span as f64) as usize; // quadratic skew
        (lo + off.min(span - 1)) as NodeId
    };
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let cu = rng.gen_range(0..num_communities);
        let cv = if rng.gen::<f64>() < homophily {
            cu
        } else {
            rng.gen_range(0..num_communities)
        };
        let u = pick_in(&mut rng, cu);
        let mut v = pick_in(&mut rng, cv);
        if u == v {
            v = ((v as usize + 1) % num_nodes) as NodeId;
        }
        edges.push((u, v));
    }
    Graph::from_edges(num_nodes, &edges, true)
}

/// Community id of `v` for a graph built by [`planted_communities`].
pub fn community_of(v: NodeId, num_nodes: usize, num_communities: usize) -> usize {
    let block = num_nodes.div_ceil(num_communities);
    (v as usize / block).min(num_communities - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_deterministic_and_valid() {
        let g1 = power_law(1000, 5000, 0.8, 7);
        let g2 = power_law(1000, 5000, 0.8, 7);
        assert_eq!(g1, g2);
        g1.validate().unwrap();
        assert_eq!(g1.num_nodes(), 1000);
        // Undirected: both directions stored (self-loops avoided).
        assert_eq!(g1.num_edges(), 10000);
    }

    #[test]
    fn power_law_is_heavy_tailed() {
        let g = power_law(2000, 20000, 0.9, 3);
        let max = g.max_degree() as f64;
        let avg = g.avg_degree();
        assert!(max > 5.0 * avg, "max {max} should dwarf avg {avg}");
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(power_law(500, 2000, 0.8, 1), power_law(500, 2000, 0.8, 2));
    }

    #[test]
    fn erdos_renyi_uniformish() {
        let g = erdos_renyi(2000, 20000, 11);
        g.validate().unwrap();
        let max = g.max_degree() as f64;
        let avg = g.avg_degree();
        // Uniform graph: max degree stays within a small factor of the mean.
        assert!(max < 4.0 * avg, "max {max}, avg {avg}");
    }

    #[test]
    fn rmat_shape() {
        let g = rmat(10, 8, 5);
        assert_eq!(g.num_nodes(), 1024);
        g.validate().unwrap();
        assert!(g.max_degree() as f64 > 4.0 * g.avg_degree());
    }

    #[test]
    fn planted_communities_homophilous() {
        let n = 3000;
        let k = 6;
        let g = planted_communities(n, 30000, k, 0.9, 13);
        g.validate().unwrap();
        let mut intra = 0usize;
        let mut total = 0usize;
        for v in 0..n as NodeId {
            for &u in g.neighbors(v) {
                total += 1;
                if community_of(u, n, k) == community_of(v, n, k) {
                    intra += 1;
                }
            }
        }
        let frac = intra as f64 / total as f64;
        assert!(frac > 0.8, "intra-community fraction {frac}");
    }

    #[test]
    fn community_of_covers_all_ids() {
        let n = 103;
        let k = 7;
        for v in 0..n as NodeId {
            assert!(community_of(v, n, k) < k);
        }
    }
}
