//! The paper's evaluation datasets (Table III) and synthesized stand-ins.
//!
//! Two uses:
//!
//! 1. **Modeled experiments** (tables/figures at paper scale) only need the
//!    published statistics — `|V|`, `|E|`, layer dimensions `f0/f1/f2` — which
//!    are recorded verbatim in [`FLICKR`], [`REDDIT`], [`OGBN_PRODUCTS`] and
//!    [`OGBN_PAPERS100M`].
//! 2. **Measured experiments** (real training: convergence, semantics,
//!    quickstart) need an actual graph; [`DatasetSpec::synthesize`] builds a
//!    scaled-down power-law graph with planted community labels matching the
//!    spec's average degree and feature/class dimensions.

use crate::csr::Graph;
use crate::features::{community_features, Features};
use crate::generators::planted_communities;

/// Published statistics of an evaluation dataset (paper Table III).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Number of vertices.
    pub num_nodes: usize,
    /// Number of edges.
    pub num_edges: usize,
    /// Input feature length (`f0`).
    pub f0: usize,
    /// Hidden feature length (`f1`).
    pub f1: usize,
    /// Output dimension = number of classes (`f2`).
    pub f2: usize,
}

/// Flickr (medium-scale; Zeng et al. 2020).
pub const FLICKR: DatasetSpec = DatasetSpec {
    name: "Flickr",
    num_nodes: 89_250,
    num_edges: 899_756,
    f0: 500,
    f1: 128,
    f2: 7,
};

/// Reddit (Zeng et al. 2020).
pub const REDDIT: DatasetSpec = DatasetSpec {
    name: "Reddit",
    num_nodes: 232_965,
    num_edges: 11_606_919,
    f0: 602,
    f1: 128,
    f2: 41,
};

/// ogbn-products (OGB).
pub const OGBN_PRODUCTS: DatasetSpec = DatasetSpec {
    name: "ogbn-products",
    num_nodes: 2_449_029,
    num_edges: 61_859_140,
    f0: 100,
    f1: 128,
    f2: 47,
};

/// ogbn-papers100M (OGB).
pub const OGBN_PAPERS100M: DatasetSpec = DatasetSpec {
    name: "ogbn-papers100M",
    num_nodes: 111_059_956,
    num_edges: 1_615_685_872,
    f0: 128,
    f1: 128,
    f2: 172,
};

/// All four paper datasets, in Table III order.
pub const ALL_SPECS: [DatasetSpec; 4] = [FLICKR, REDDIT, OGBN_PRODUCTS, OGBN_PAPERS100M];

impl DatasetSpec {
    /// Average degree implied by the published statistics.
    pub fn avg_degree(&self) -> f64 {
        self.num_edges as f64 / self.num_nodes as f64
    }

    /// Fraction of nodes used as training targets. OGB/GraphSAINT splits
    /// differ per dataset; we use representative values.
    pub fn train_fraction(&self) -> f64 {
        match self.name {
            "Flickr" => 0.50,
            "Reddit" => 0.66,
            "ogbn-products" => 0.08,
            "ogbn-papers100M" => 0.011,
            _ => 0.5,
        }
    }

    /// Builds a scaled-down, *learnable* synthetic instance of this dataset:
    /// `scale` multiplies `|V|`; edges scale to preserve the average degree
    /// (capped so tests stay fast). Labels are planted communities
    /// (`f2` classes) and features are community prototypes plus noise.
    pub fn synthesize(&self, scale: f64, seed: u64) -> Dataset {
        assert!(scale > 0.0);
        let n = ((self.num_nodes as f64 * scale) as usize).max(16 * self.f2.min(64));
        let avg_deg = self.avg_degree().min(24.0); // cap for tractability
        let m = ((n as f64 * avg_deg) / 2.0) as usize; // undirected pairs
        let classes = self.f2.min(16); // keep synthetic label space small
        let feat_dim = self.f0.min(64);
        let graph = planted_communities(n, m, classes, 0.82, seed);
        let (features, labels) = community_features(n, feat_dim, classes, 0.35, seed ^ 0xFEED);
        // Train split: stride over all nodes for an unbiased class mix.
        let train_frac = self.train_fraction().clamp(0.05, 0.7);
        let stride = (1.0 / train_frac).round().max(1.0) as usize;
        let train: Vec<u32> = (0..n).step_by(stride).map(|v| v as u32).collect();
        let val: Vec<u32> = (1..n).step_by(stride * 3).map(|v| v as u32).collect();
        Dataset {
            spec: *self,
            graph,
            features,
            labels,
            train_nodes: train,
            val_nodes: val,
            num_classes: classes,
        }
    }
}

/// A materialized (synthetic) dataset ready for training.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// The spec this instance was synthesized from.
    pub spec: DatasetSpec,
    /// Graph topology (undirected, CSR).
    pub graph: Graph,
    /// Node features (`num_nodes x feat_dim`).
    pub features: Features,
    /// Node class labels.
    pub labels: Vec<u32>,
    /// Training target nodes.
    pub train_nodes: Vec<u32>,
    /// Validation nodes.
    pub val_nodes: Vec<u32>,
    /// Number of label classes.
    pub num_classes: usize,
}

impl Dataset {
    /// Input feature dimension of this instance.
    pub fn feat_dim(&self) -> usize {
        self.features.dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_statistics_are_verbatim() {
        assert_eq!(FLICKR.num_nodes, 89_250);
        assert_eq!(FLICKR.num_edges, 899_756);
        assert_eq!(FLICKR.f0, 500);
        assert_eq!(FLICKR.f2, 7);
        assert_eq!(REDDIT.num_edges, 11_606_919);
        assert_eq!(REDDIT.f2, 41);
        assert_eq!(OGBN_PRODUCTS.num_nodes, 2_449_029);
        assert_eq!(OGBN_PRODUCTS.f0, 100);
        assert_eq!(OGBN_PAPERS100M.num_edges, 1_615_685_872);
        assert_eq!(OGBN_PAPERS100M.f2, 172);
        for s in ALL_SPECS {
            assert_eq!(s.f1, 128, "{}: hidden dim is 128 for all", s.name);
        }
    }

    #[test]
    fn avg_degrees_match_paper_scale() {
        assert!((FLICKR.avg_degree() - 10.08).abs() < 0.1);
        assert!((REDDIT.avg_degree() - 49.8).abs() < 0.5);
        assert!((OGBN_PRODUCTS.avg_degree() - 25.26).abs() < 0.2);
    }

    #[test]
    fn synthesize_produces_consistent_dataset() {
        let d = FLICKR.synthesize(0.02, 42);
        assert_eq!(d.graph.num_nodes(), d.features.num_nodes());
        assert_eq!(d.graph.num_nodes(), d.labels.len());
        d.graph.validate().unwrap();
        assert!(d.num_classes >= 2);
        assert!(d.labels.iter().all(|&l| (l as usize) < d.num_classes));
        assert!(!d.train_nodes.is_empty());
        assert!(d
            .train_nodes
            .iter()
            .all(|&v| (v as usize) < d.graph.num_nodes()));
        // Average degree close to the (capped) spec degree.
        let want = FLICKR.avg_degree().min(24.0);
        let got = d.graph.avg_degree();
        assert!(
            (got - want).abs() / want < 0.25,
            "avg degree {got} vs {want}"
        );
    }

    #[test]
    fn synthesize_is_deterministic() {
        let a = REDDIT.synthesize(0.005, 7);
        let b = REDDIT.synthesize(0.005, 7);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn train_split_has_all_classes() {
        let d = FLICKR.synthesize(0.02, 3);
        let mut seen = vec![false; d.num_classes];
        for &v in &d.train_nodes {
            seen[d.labels[v as usize] as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "train split misses a class");
    }
}
