//! # argo-graph — graph storage, datasets and partitioning
//!
//! The graph substrate of the ARGO reproduction:
//!
//! * [`Graph`] — compressed-sparse-row adjacency used by samplers and the
//!   SpMM/SDDMM kernels (the two fundamental GNN kernels, paper Section II-C).
//! * [`generators`] — deterministic synthetic graph generators (power-law
//!   Chung–Lu, Erdős–Rényi, RMAT-like) used to stand in for the OGB datasets,
//!   which cannot be downloaded in this environment.
//! * [`datasets`] — the four evaluation datasets of the paper (Table III)
//!   with their exact published statistics, plus `synthesize`d scaled-down
//!   instances with planted community labels for real end-to-end training.
//! * [`partition`] — data partitioning across ARGO processes: random (the
//!   paper's default) and a BFS-locality "METIS-like" partitioner for the
//!   Section VII-A ablation.

pub mod csr;
pub mod datasets;
pub mod features;
pub mod generators;
pub mod io;
pub mod partition;

pub use csr::Graph;
pub use datasets::{Dataset, DatasetSpec, FLICKR, OGBN_PAPERS100M, OGBN_PRODUCTS, REDDIT};
pub use features::Features;

/// Node identifier. `u32` keeps CSR indices compact (paper graphs stay below
/// `u32::MAX` nodes; the 111M-node papers100M fits comfortably).
pub type NodeId = u32;
