//! Dense node-feature storage and synthetic feature/label generation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::generators::community_of;
use crate::NodeId;

/// Row-major `num_nodes x dim` node-feature matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Features {
    data: Vec<f32>,
    dim: usize,
}

impl Features {
    /// Wraps raw data; `data.len()` must be a multiple of `dim`.
    pub fn new(data: Vec<f32>, dim: usize) -> Self {
        assert!(
            dim > 0 && data.len().is_multiple_of(dim),
            "data not a multiple of dim"
        );
        Self { data, dim }
    }

    /// All-zero features for `n` nodes.
    pub fn zeros(n: usize, dim: usize) -> Self {
        Self::new(vec![0.0; n * dim], dim)
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    pub fn num_nodes(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Feature row of node `v`.
    pub fn row(&self, v: NodeId) -> &[f32] {
        let d = self.dim;
        &self.data[v as usize * d..(v as usize + 1) * d]
    }

    /// Mutable feature row.
    pub fn row_mut(&mut self, v: NodeId) -> &mut [f32] {
        let d = self.dim;
        &mut self.data[v as usize * d..(v as usize + 1) * d]
    }

    /// Contiguous storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Gathers rows `ids` into a fresh dense matrix (the `index_select`
    /// operation the paper identifies as the memory-bandwidth-bound phase of
    /// GNN training, Figure 2).
    pub fn gather(&self, ids: &[NodeId]) -> Features {
        let mut out = Vec::with_capacity(ids.len() * self.dim);
        for &v in ids {
            out.extend_from_slice(self.row(v));
        }
        Features::new(out, self.dim)
    }

    /// Copies node `v`'s feature row into `out` without allocating.
    /// `out.len()` must equal [`Features::dim`].
    pub fn copy_row_into(&self, v: NodeId, out: &mut [f32]) {
        out.copy_from_slice(self.row(v));
    }

    /// Partitioned batch assembly: fills only the rows of `out` whose
    /// positions appear in `positions`, taking row `ids[p]` for each
    /// position `p`. `out` is a row-major `ids.len() x dim` buffer; rows at
    /// other positions (e.g. already served from a cache) are untouched.
    pub fn fill_rows(&self, ids: &[NodeId], positions: &[usize], out: &mut [f32]) {
        let d = self.dim;
        assert_eq!(out.len(), ids.len() * d, "output buffer shape mismatch");
        for &p in positions {
            out[p * d..(p + 1) * d].copy_from_slice(self.row(ids[p]));
        }
    }
}

/// Synthesizes learnable `dim`-dimensional features for a planted-community
/// graph: each community gets a random unit-ish prototype vector; node
/// features are `prototype + noise`.
///
/// With `noise` well below 1 a linear classifier can recover the community,
/// so GNN training on these features converges — which is what the
/// correctness experiment (Figure 9) needs.
pub fn community_features(
    num_nodes: usize,
    dim: usize,
    num_communities: usize,
    noise: f32,
    seed: u64,
) -> (Features, Vec<u32>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut prototypes = vec![0.0f32; num_communities * dim];
    for p in prototypes.iter_mut() {
        *p = rng.gen_range(-1.0..1.0);
    }
    let mut data = vec![0.0f32; num_nodes * dim];
    let mut labels = vec![0u32; num_nodes];
    for v in 0..num_nodes {
        let c = community_of(v as NodeId, num_nodes, num_communities);
        labels[v] = c as u32;
        let proto = &prototypes[c * dim..(c + 1) * dim];
        for (x, p) in data[v * dim..(v + 1) * dim].iter_mut().zip(proto) {
            *x = *p + rng.gen_range(-noise..noise);
        }
    }
    (Features::new(data, dim), labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_rows() {
        let f = Features::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3);
        assert_eq!(f.num_nodes(), 2);
        assert_eq!(f.dim(), 3);
        assert_eq!(f.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn zeros() {
        let f = Features::zeros(4, 2);
        assert_eq!(f.num_nodes(), 4);
        assert!(f.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic]
    fn bad_shape_panics() {
        Features::new(vec![1.0; 5], 2);
    }

    #[test]
    fn gather_selects_rows() {
        let f = Features::new((0..12).map(|x| x as f32).collect(), 4);
        let g = f.gather(&[2, 0]);
        assert_eq!(g.row(0), &[8.0, 9.0, 10.0, 11.0]);
        assert_eq!(g.row(1), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn fill_rows_fills_only_requested_positions() {
        let f = Features::new((0..12).map(|x| x as f32).collect(), 4);
        let ids = [2u32, 0, 1];
        let mut out = vec![-1.0f32; 12];
        f.fill_rows(&ids, &[0, 2], &mut out);
        assert_eq!(&out[0..4], &[8.0, 9.0, 10.0, 11.0]);
        assert_eq!(&out[4..8], &[-1.0, -1.0, -1.0, -1.0]); // untouched
        assert_eq!(&out[8..12], &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn fill_rows_all_positions_matches_gather() {
        let f = Features::new((0..20).map(|x| x as f32 * 0.5).collect(), 5);
        let ids = [3u32, 1, 3, 0];
        let positions: Vec<usize> = (0..ids.len()).collect();
        let mut out = vec![0.0f32; ids.len() * 5];
        f.fill_rows(&ids, &positions, &mut out);
        assert_eq!(out, f.gather(&ids).data());
    }

    #[test]
    fn copy_row_into_matches_row() {
        let f = Features::new((0..6).map(|x| x as f32).collect(), 3);
        let mut buf = [0.0f32; 3];
        f.copy_row_into(1, &mut buf);
        assert_eq!(&buf, f.row(1));
    }

    #[test]
    fn row_mut_writes() {
        let mut f = Features::zeros(2, 2);
        f.row_mut(1)[0] = 7.0;
        assert_eq!(f.row(1), &[7.0, 0.0]);
    }

    #[test]
    fn community_features_separable() {
        let (f, labels) = community_features(200, 16, 4, 0.1, 9);
        assert_eq!(f.num_nodes(), 200);
        assert_eq!(labels.len(), 200);
        // Nodes of the same community are closer to each other than to nodes
        // of a different community (centroid check).
        let mut centroids = vec![vec![0.0f32; 16]; 4];
        let mut counts = vec![0usize; 4];
        for v in 0..200u32 {
            let c = labels[v as usize] as usize;
            counts[c] += 1;
            for (a, b) in centroids[c].iter_mut().zip(f.row(v)) {
                *a += b;
            }
        }
        for (c, cnt) in centroids.iter_mut().zip(&counts) {
            for a in c.iter_mut() {
                *a /= *cnt as f32;
            }
        }
        let mut correct = 0;
        for v in 0..200u32 {
            let best = (0..4)
                .min_by(|&a, &b| {
                    let da: f32 = centroids[a]
                        .iter()
                        .zip(f.row(v))
                        .map(|(c, x)| (c - x).powi(2))
                        .sum();
                    let db: f32 = centroids[b]
                        .iter()
                        .zip(f.row(v))
                        .map(|(c, x)| (c - x).powi(2))
                        .sum();
                    da.total_cmp(&db)
                })
                .unwrap();
            if best == labels[v as usize] as usize {
                correct += 1;
            }
        }
        assert!(correct > 190, "nearest-centroid accuracy {correct}/200");
    }

    #[test]
    fn community_features_deterministic() {
        let a = community_features(50, 8, 3, 0.2, 5);
        let b = community_features(50, 8, 3, 0.2, 5);
        assert_eq!(a, b);
    }
}
