//! Binary serialization of graphs and datasets.
//!
//! A compact little-endian format (`ARGOGRPH` magic + version) so synthetic
//! datasets can be generated once and shared across runs/machines — the
//! moral equivalent of the OGB download step this environment cannot
//! perform. No external serialization crate is needed; the format is a
//! straight dump of the CSR arrays and feature/label tables.

use std::io::{self, Read, Write};

use crate::csr::Graph;
use crate::datasets::{Dataset, DatasetSpec};
use crate::features::Features;

const MAGIC: &[u8; 8] = b"ARGOGRPH";
const VERSION: u32 = 1;

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn write_u32_slice(w: &mut impl Write, v: &[u32]) -> io::Result<()> {
    write_u64(w, v.len() as u64)?;
    for &x in v {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn read_u32_vec(r: &mut impl Read) -> io::Result<Vec<u32>> {
    let n = read_u64(r)? as usize;
    let mut buf = vec![0u8; n * 4];
    r.read_exact(&mut buf)?;
    Ok(buf
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

fn write_f32_slice(w: &mut impl Write, v: &[f32]) -> io::Result<()> {
    write_u64(w, v.len() as u64)?;
    for &x in v {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn read_f32_vec(r: &mut impl Read) -> io::Result<Vec<f32>> {
    let n = read_u64(r)? as usize;
    let mut buf = vec![0u8; n * 4];
    r.read_exact(&mut buf)?;
    Ok(buf
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Writes `graph` in the binary format.
pub fn write_graph(w: &mut impl Write, graph: &Graph) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(w, VERSION)?;
    write_u64(w, graph.num_nodes() as u64)?;
    write_u64(w, graph.indptr().len() as u64)?;
    for &p in graph.indptr() {
        write_u64(w, p as u64)?;
    }
    write_u32_slice(w, graph.indices())
}

/// Reads a graph written by [`write_graph`]; validates the CSR invariants.
pub fn read_graph(r: &mut impl Read) -> io::Result<Graph> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not an ARGO graph file"));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(bad("unsupported format version"));
    }
    let _nodes = read_u64(r)?;
    let np = read_u64(r)? as usize;
    let mut indptr = Vec::with_capacity(np);
    for _ in 0..np {
        indptr.push(read_u64(r)? as usize);
    }
    let indices = read_u32_vec(r)?;
    let g = Graph::from_csr_checked(indptr, indices).map_err(|e| bad(&e))?;
    Ok(g)
}

/// Writes a full dataset (graph, features, labels, splits).
pub fn write_dataset(w: &mut impl Write, d: &Dataset) -> io::Result<()> {
    write_graph(w, &d.graph)?;
    write_u64(w, d.features.dim() as u64)?;
    write_f32_slice(w, d.features.data())?;
    write_u32_slice(w, &d.labels)?;
    write_u32_slice(w, &d.train_nodes)?;
    write_u32_slice(w, &d.val_nodes)?;
    write_u64(w, d.num_classes as u64)?;
    // Spec essentials (name resolved against the known table on load).
    let name = d.spec.name.as_bytes();
    write_u64(w, name.len() as u64)?;
    w.write_all(name)?;
    for v in [
        d.spec.num_nodes,
        d.spec.num_edges,
        d.spec.f0,
        d.spec.f1,
        d.spec.f2,
    ] {
        write_u64(w, v as u64)?;
    }
    Ok(())
}

/// Reads a dataset written by [`write_dataset`].
pub fn read_dataset(r: &mut impl Read) -> io::Result<Dataset> {
    let graph = read_graph(r)?;
    let dim = read_u64(r)? as usize;
    let feat_data = read_f32_vec(r)?;
    if dim == 0 || feat_data.len() % dim != 0 {
        return Err(bad("corrupt feature table"));
    }
    let features = Features::new(feat_data, dim);
    if features.num_nodes() != graph.num_nodes() {
        return Err(bad("feature/graph node-count mismatch"));
    }
    let labels = read_u32_vec(r)?;
    if labels.len() != graph.num_nodes() {
        return Err(bad("label/graph node-count mismatch"));
    }
    let train_nodes = read_u32_vec(r)?;
    let val_nodes = read_u32_vec(r)?;
    let num_classes = read_u64(r)? as usize;
    if labels.iter().any(|&l| l as usize >= num_classes) {
        return Err(bad("label out of class range"));
    }
    if train_nodes
        .iter()
        .chain(&val_nodes)
        .any(|&v| v as usize >= graph.num_nodes())
    {
        return Err(bad("split node out of range"));
    }
    let name_len = read_u64(r)? as usize;
    let mut name_buf = vec![0u8; name_len];
    r.read_exact(&mut name_buf)?;
    let name = String::from_utf8(name_buf).map_err(|_| bad("non-utf8 dataset name"))?;
    let mut nums = [0u64; 5];
    for v in nums.iter_mut() {
        *v = read_u64(r)?;
    }
    // Resolve the name against the known specs; otherwise a generic tag.
    let known = crate::datasets::ALL_SPECS
        .iter()
        .find(|s| s.name == name)
        .copied();
    let spec = known.unwrap_or(DatasetSpec {
        name: "custom",
        num_nodes: nums[0] as usize,
        num_edges: nums[1] as usize,
        f0: nums[2] as usize,
        f1: nums[3] as usize,
        f2: nums[4] as usize,
    });
    Ok(Dataset {
        spec,
        graph,
        features,
        labels,
        train_nodes,
        val_nodes,
        num_classes,
    })
}

/// Parses a whitespace/comment-tolerant edge-list text file (the SNAP /
/// `ogbn` raw format: one `src dst` pair per line, `#` comments). Node ids
/// may be sparse; they are compacted to `0..n` and the mapping returned.
pub fn read_edge_list(r: &mut impl Read, undirected: bool) -> io::Result<(Graph, Vec<u64>)> {
    let mut text = String::new();
    r.read_to_string(&mut text)?;
    let mut remap: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    let mut ids: Vec<u64> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let local =
        |raw: u64, remap: &mut std::collections::HashMap<u64, u32>, ids: &mut Vec<u64>| -> u32 {
            *remap.entry(raw).or_insert_with(|| {
                ids.push(raw);
                (ids.len() - 1) as u32
            })
        };
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (a, b) = (parts.next(), parts.next());
        let (Some(a), Some(b)) = (a, b) else {
            return Err(bad(&format!("line {}: expected 'src dst'", lineno + 1)));
        };
        let a: u64 = a
            .parse()
            .map_err(|_| bad(&format!("line {}: bad id '{a}'", lineno + 1)))?;
        let b: u64 = b
            .parse()
            .map_err(|_| bad(&format!("line {}: bad id '{b}'", lineno + 1)))?;
        let (u, v) = (
            local(a, &mut remap, &mut ids),
            local(b, &mut remap, &mut ids),
        );
        edges.push((u, v));
    }
    if ids.is_empty() {
        return Err(bad("empty edge list"));
    }
    Ok((Graph::from_edges(ids.len(), &edges, undirected), ids))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::FLICKR;
    use crate::generators::power_law;

    #[test]
    fn graph_roundtrip() {
        let g = power_law(500, 4000, 0.8, 3);
        let mut buf = Vec::new();
        write_graph(&mut buf, &g).unwrap();
        let g2 = read_graph(&mut buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn dataset_roundtrip() {
        let d = FLICKR.synthesize(0.01, 9);
        let mut buf = Vec::new();
        write_dataset(&mut buf, &d).unwrap();
        let d2 = read_dataset(&mut buf.as_slice()).unwrap();
        assert_eq!(d.graph, d2.graph);
        assert_eq!(d.features, d2.features);
        assert_eq!(d.labels, d2.labels);
        assert_eq!(d.train_nodes, d2.train_nodes);
        assert_eq!(d.val_nodes, d2.val_nodes);
        assert_eq!(d.num_classes, d2.num_classes);
        assert_eq!(d.spec.name, d2.spec.name); // known spec resolved
    }

    #[test]
    fn rejects_wrong_magic() {
        let buf = b"NOTAGRPH________".to_vec();
        assert!(read_graph(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncated_file() {
        let g = power_law(100, 500, 0.8, 1);
        let mut buf = Vec::new();
        write_graph(&mut buf, &g).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_graph(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_corrupt_indptr() {
        let g = power_law(100, 500, 0.8, 2);
        let mut buf = Vec::new();
        write_graph(&mut buf, &g).unwrap();
        // Smash an indptr entry (monotonicity violated) — bytes after the
        // 8B magic + 4B version + 8B nodes + 8B len.
        let off = 8 + 4 + 8 + 8 + 16;
        buf[off] = 0xFF;
        buf[off + 1] = 0xFF;
        assert!(read_graph(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn edge_list_parses_snap_format() {
        let text = "# comment line\n% another comment\n10 20\n20 30\n\n10 30\n";
        let (g, ids) = read_edge_list(&mut text.as_bytes(), true).unwrap();
        assert_eq!(ids, vec![10, 20, 30]);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 6); // 3 undirected pairs
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn edge_list_directed_and_sparse_ids() {
        let text = "1000000 5\n5 1000000\n";
        let (g, ids) = read_edge_list(&mut text.as_bytes(), false).unwrap();
        assert_eq!(ids, vec![1_000_000, 5]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(read_edge_list(&mut "1 two\n".as_bytes(), false).is_err());
        assert!(read_edge_list(&mut "lonely\n".as_bytes(), false).is_err());
        assert!(read_edge_list(&mut "# only comments\n".as_bytes(), false).is_err());
    }

    #[test]
    fn unknown_dataset_name_becomes_custom() {
        let mut d = FLICKR.synthesize(0.01, 4);
        d.spec.name = "my-private-graph";
        let mut buf = Vec::new();
        write_dataset(&mut buf, &d).unwrap();
        let d2 = read_dataset(&mut buf.as_slice()).unwrap();
        assert_eq!(d2.spec.name, "custom");
        assert_eq!(d2.spec.num_nodes, d.spec.num_nodes);
    }
}
