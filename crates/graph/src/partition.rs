//! Data partitioning across ARGO processes.
//!
//! The Multi-Process Engine "splits the input data evenly into n partitions"
//! (paper Section IV-B2). The paper's default is a random split; Section
//! VII-A discusses METIS-based locality partitioning, which improves balance
//! but is too expensive to re-run every time the auto-tuner changes the
//! process count. We implement both: [`random_partition`] and the
//! BFS-locality [`bfs_partition`] ("METIS-like" — multilevel K-way is out of
//! scope, but BFS blocks capture the locality benefit), plus an
//! [`edge_cut`] quality metric for the ablation bench.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::csr::Graph;
use crate::NodeId;

/// Splits `items` into `n_parts` near-equal parts after a seeded shuffle
/// (ARGO's default strategy). Part sizes differ by at most one.
pub fn random_partition(items: &[NodeId], n_parts: usize, seed: u64) -> Vec<Vec<NodeId>> {
    assert!(n_parts > 0);
    let mut shuffled = items.to_vec();
    let mut rng = SmallRng::seed_from_u64(seed);
    shuffled.shuffle(&mut rng);
    split_even(&shuffled, n_parts)
}

/// Splits `items` into `n_parts` contiguous near-equal parts (no shuffle).
pub fn split_even(items: &[NodeId], n_parts: usize) -> Vec<Vec<NodeId>> {
    assert!(n_parts > 0);
    let n = items.len();
    let base = n / n_parts;
    let extra = n % n_parts;
    let mut out = Vec::with_capacity(n_parts);
    let mut at = 0usize;
    for p in 0..n_parts {
        let len = base + usize::from(p < extra);
        out.push(items[at..at + len].to_vec());
        at += len;
    }
    out
}

/// Locality-aware partition: orders `items` by a BFS sweep over `graph`
/// (restricted to `items`) and cuts the order into `n_parts` equal blocks.
/// Neighboring training nodes land in the same part, which raises
/// shared-neighbor reuse within each process — the effect METIS buys the
/// paper in Section VII-A.
pub fn bfs_partition(graph: &Graph, items: &[NodeId], n_parts: usize) -> Vec<Vec<NodeId>> {
    assert!(n_parts > 0);
    let in_set: std::collections::HashSet<NodeId> = items.iter().copied().collect();
    let mut visited: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
    let mut order = Vec::with_capacity(items.len());
    let mut queue = std::collections::VecDeque::new();
    for &start in items {
        if visited.contains(&start) {
            continue;
        }
        visited.insert(start);
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &u in graph.neighbors(v) {
                if in_set.contains(&u) && visited.insert(u) {
                    queue.push_back(u);
                }
            }
        }
    }
    split_even(&order, n_parts)
}

/// Number of graph edges whose endpoints fall in different parts — the
/// classic partition-quality metric METIS minimizes. Only edges between two
/// partitioned items count.
pub fn edge_cut(graph: &Graph, parts: &[Vec<NodeId>]) -> usize {
    let mut part_of: std::collections::HashMap<NodeId, usize> = std::collections::HashMap::new();
    for (p, part) in parts.iter().enumerate() {
        for &v in part {
            part_of.insert(v, p);
        }
    }
    let mut cut = 0usize;
    for (&v, &pv) in &part_of {
        for &u in graph.neighbors(v) {
            if let Some(&pu) = part_of.get(&u) {
                if pu != pv {
                    cut += 1;
                }
            }
        }
    }
    cut / 2 // each undirected edge counted twice
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::planted_communities;

    fn all_items(n: usize) -> Vec<NodeId> {
        (0..n as NodeId).collect()
    }

    #[test]
    fn split_even_balanced() {
        let parts = split_even(&all_items(10), 3);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn split_even_more_parts_than_items() {
        let parts = split_even(&all_items(2), 5);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 2);
        assert_eq!(parts.len(), 5);
    }

    #[test]
    fn random_partition_covers_everything_once() {
        let items = all_items(101);
        let parts = random_partition(&items, 4, 9);
        let mut all: Vec<NodeId> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, items);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn random_partition_deterministic_in_seed() {
        let items = all_items(50);
        assert_eq!(
            random_partition(&items, 3, 1),
            random_partition(&items, 3, 1)
        );
        assert_ne!(
            random_partition(&items, 3, 1),
            random_partition(&items, 3, 2)
        );
    }

    #[test]
    fn bfs_partition_covers_everything() {
        let g = planted_communities(300, 1500, 3, 0.9, 4);
        let items = all_items(300);
        let parts = bfs_partition(&g, &items, 4);
        let mut all: Vec<NodeId> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, items);
    }

    #[test]
    fn bfs_has_lower_edge_cut_than_random() {
        let n = 600;
        let g = planted_communities(n, 6000, 4, 0.9, 8);
        let items = all_items(n);
        let rand_cut = edge_cut(&g, &random_partition(&items, 4, 3));
        let bfs_cut = edge_cut(&g, &bfs_partition(&g, &items, 4));
        assert!(
            bfs_cut < rand_cut,
            "bfs cut {bfs_cut} should beat random cut {rand_cut}"
        );
    }

    #[test]
    fn edge_cut_zero_for_single_part() {
        let g = planted_communities(100, 400, 2, 0.8, 1);
        let parts = vec![all_items(100)];
        assert_eq!(edge_cut(&g, &parts), 0);
    }
}
