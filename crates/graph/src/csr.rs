//! Compressed-sparse-row graph storage.

use std::sync::OnceLock;

use crate::NodeId;

/// An unweighted directed graph in CSR form. Undirected graphs are stored
/// with both edge directions present.
///
/// `indptr` has `num_nodes + 1` entries; the out-neighbors of node `v` are
/// `indices[indptr[v]..indptr[v+1]]`.
#[derive(Debug)]
pub struct Graph {
    indptr: Vec<usize>,
    indices: Vec<NodeId>,
    /// Lazily built `1/sqrt(max(degree, 1))` table for fused GCN
    /// normalization; shared so every sampled batch reads one table instead
    /// of recomputing square roots per edge.
    inv_sqrt_degrees: OnceLock<Vec<f32>>,
    /// Lazily checked adjacency symmetry (see [`Graph::is_symmetric`]).
    symmetric: OnceLock<bool>,
}

impl Clone for Graph {
    fn clone(&self) -> Self {
        // The derived impl would clone the cache cell too; rebuilding it
        // lazily on the clone is cheaper than cloning and keeps `clone`
        // equivalent to reconstruction.
        Self {
            indptr: self.indptr.clone(),
            indices: self.indices.clone(),
            inv_sqrt_degrees: OnceLock::new(),
            symmetric: OnceLock::new(),
        }
    }
}

/// Equality is structural over the CSR arrays; the lazily built degree
/// table is a cache, not identity.
impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        self.indptr == other.indptr && self.indices == other.indices
    }
}

impl Eq for Graph {}

impl Graph {
    /// Builds a graph from an edge list.
    ///
    /// * `num_nodes` — node-id domain `0..num_nodes`.
    /// * `edges` — `(src, dst)` pairs; out-of-range endpoints panic.
    /// * `undirected` — when true, each edge is inserted in both directions.
    ///
    /// Parallel edges are kept (samplers treat them as higher connection
    /// strength, as DGL does); self-loops are allowed.
    pub fn from_edges(num_nodes: usize, edges: &[(NodeId, NodeId)], undirected: bool) -> Self {
        let mut degree = vec![0usize; num_nodes];
        for &(s, d) in edges {
            assert!(
                (s as usize) < num_nodes && (d as usize) < num_nodes,
                "edge ({s},{d}) out of range"
            );
            degree[s as usize] += 1;
            if undirected && s != d {
                degree[d as usize] += 1;
            }
        }
        let mut indptr = Vec::with_capacity(num_nodes + 1);
        indptr.push(0usize);
        for d in &degree {
            indptr.push(indptr.last().unwrap() + d);
        }
        let mut cursor = indptr[..num_nodes].to_vec();
        let mut indices = vec![0 as NodeId; *indptr.last().unwrap()];
        for &(s, d) in edges {
            indices[cursor[s as usize]] = d;
            cursor[s as usize] += 1;
            if undirected && s != d {
                indices[cursor[d as usize]] = s;
                cursor[d as usize] += 1;
            }
        }
        let mut g = Self {
            indptr,
            indices,
            inv_sqrt_degrees: OnceLock::new(),
            symmetric: OnceLock::new(),
        };
        g.sort_adjacency();
        g
    }

    /// Builds a graph directly from CSR arrays.
    ///
    /// Panics if the arrays are inconsistent (see [`Graph::validate`]).
    pub fn from_csr(indptr: Vec<usize>, indices: Vec<NodeId>) -> Self {
        Self::from_csr_checked(indptr, indices).expect("invalid CSR")
    }

    /// Fallible variant of [`Graph::from_csr`] (used by deserialization).
    pub fn from_csr_checked(indptr: Vec<usize>, indices: Vec<NodeId>) -> Result<Self, String> {
        let g = Self {
            indptr,
            indices,
            inv_sqrt_degrees: OnceLock::new(),
            symmetric: OnceLock::new(),
        };
        g.validate()?;
        Ok(g)
    }

    fn sort_adjacency(&mut self) {
        for v in 0..self.num_nodes() {
            let (lo, hi) = (self.indptr[v], self.indptr[v + 1]);
            self.indices[lo..hi].sort_unstable();
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Number of stored (directed) edges.
    pub fn num_edges(&self) -> usize {
        self.indices.len()
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.indptr[v as usize + 1] - self.indptr[v as usize]
    }

    /// Out-neighbors of `v` (sorted).
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.indices[self.indptr[v as usize]..self.indptr[v as usize + 1]]
    }

    /// The CSR row-pointer array.
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// The CSR column-index array.
    pub fn indices(&self) -> &[NodeId] {
        &self.indices
    }

    /// Per-node `1/sqrt(max(degree, 1))`, built once on first use and cached.
    ///
    /// Samplers fuse GCN normalization into adjacency assembly by writing
    /// `inv_sqrt[v] * inv_sqrt[u]` per sampled edge, so the table is read on
    /// every batch but the square roots are computed once per graph.
    pub fn inv_sqrt_degrees(&self) -> &[f32] {
        self.inv_sqrt_degrees.get_or_init(|| {
            (0..self.num_nodes())
                .map(|v| 1.0 / ((self.degree(v as NodeId).max(1)) as f32).sqrt())
                .collect()
        })
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|v| self.degree(v as NodeId))
            .max()
            .unwrap_or(0)
    }

    /// Checks CSR structural invariants: monotone `indptr` starting at 0 and
    /// ending at `indices.len()`, and all column indices in range.
    pub fn validate(&self) -> Result<(), String> {
        if self.indptr.is_empty() {
            return Err("indptr empty".into());
        }
        if self.indptr[0] != 0 {
            return Err("indptr[0] != 0".into());
        }
        if *self.indptr.last().unwrap() != self.indices.len() {
            return Err("indptr end != nnz".into());
        }
        if self.indptr.windows(2).any(|w| w[0] > w[1]) {
            return Err("indptr not monotone".into());
        }
        let n = self.num_nodes() as NodeId;
        if self.indices.iter().any(|&c| c >= n) {
            return Err("column index out of range".into());
        }
        Ok(())
    }

    /// Whether edge `u -> v` exists (binary search over sorted adjacency).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Whether the adjacency is symmetric — every edge `u -> v` has a
    /// matching `v -> u` *with equal multiplicity* (undirected construction
    /// inserts both directions, so the transpose equals the graph exactly).
    ///
    /// Checked once per graph by building the transpose and comparing the
    /// CSR arrays (both are sorted per row, so equality is a multiset
    /// comparison), then cached. Samplers branch on this to pick the
    /// sort-free induced-subgraph assembly, which enumerates the transposed
    /// entry set; the O(E) one-time check amortizes over every batch drawn
    /// from the graph.
    pub fn is_symmetric(&self) -> bool {
        *self.symmetric.get_or_init(|| {
            let r = self.reverse();
            r.indptr == self.indptr && r.indices == self.indices
        })
    }

    /// The subgraph induced by `nodes`, with nodes relabeled to
    /// `0..nodes.len()` in the order given. Returns the subgraph; the inverse
    /// mapping is `nodes` itself. `nodes` must not contain duplicates.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> Graph {
        let mut local = std::collections::HashMap::with_capacity(nodes.len());
        for (i, &v) in nodes.iter().enumerate() {
            let prev = local.insert(v, i as NodeId);
            assert!(prev.is_none(), "duplicate node {v} in induced_subgraph");
        }
        let mut edges = Vec::new();
        for (i, &v) in nodes.iter().enumerate() {
            for &u in self.neighbors(v) {
                if let Some(&j) = local.get(&u) {
                    edges.push((i as NodeId, j));
                }
            }
        }
        Graph::from_edges(nodes.len(), &edges, false)
    }

    /// The reverse (transposed) graph: edge `u -> v` becomes `v -> u`.
    pub fn reverse(&self) -> Graph {
        let n = self.num_nodes();
        let mut degree = vec![0usize; n];
        for &d in &self.indices {
            degree[d as usize] += 1;
        }
        let mut indptr = Vec::with_capacity(n + 1);
        indptr.push(0usize);
        for d in &degree {
            indptr.push(indptr.last().unwrap() + d);
        }
        let mut cursor = indptr[..n].to_vec();
        let mut indices = vec![0 as NodeId; self.indices.len()];
        for v in 0..n {
            for &u in self.neighbors(v as NodeId) {
                indices[cursor[u as usize]] = v as NodeId;
                cursor[u as usize] += 1;
            }
        }
        let mut g = Graph {
            indptr,
            indices,
            inv_sqrt_degrees: OnceLock::new(),
            symmetric: OnceLock::new(),
        };
        g.sort_adjacency();
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)], true)
    }

    #[test]
    fn from_edges_directed() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (2, 3)], false);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[] as &[NodeId]);
        assert_eq!(g.degree(2), 1);
        g.validate().unwrap();
    }

    #[test]
    fn from_edges_undirected_symmetric() {
        let g = triangle();
        assert_eq!(g.num_edges(), 6);
        for u in 0..3u32 {
            for &v in g.neighbors(u) {
                assert!(g.has_edge(v, u), "missing reverse of {u}->{v}");
            }
        }
    }

    #[test]
    fn self_loop_not_duplicated_in_undirected() {
        let g = Graph::from_edges(2, &[(0, 0), (0, 1)], true);
        assert_eq!(g.neighbors(0), &[0, 1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn parallel_edges_kept() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1)], false);
        assert_eq!(g.neighbors(0), &[1, 1]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        Graph::from_edges(2, &[(0, 5)], false);
    }

    #[test]
    fn degree_stats() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 2), (1, 2)], false);
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = triangle();
        let sub = g.induced_subgraph(&[2, 0]);
        // Original edges 2<->0 survive as local 0<->1.
        assert_eq!(sub.num_nodes(), 2);
        assert_eq!(sub.neighbors(0), &[1]);
        assert_eq!(sub.neighbors(1), &[0]);
    }

    #[test]
    fn induced_subgraph_empty() {
        let g = triangle();
        let sub = g.induced_subgraph(&[]);
        assert_eq!(sub.num_nodes(), 0);
        assert_eq!(sub.num_edges(), 0);
    }

    #[test]
    #[should_panic]
    fn induced_subgraph_duplicate_panics() {
        triangle().induced_subgraph(&[0, 0]);
    }

    #[test]
    fn symmetry_check_matches_structure() {
        assert!(triangle().is_symmetric());
        // Undirected multigraphs and self-loops stay symmetric.
        let multi = Graph::from_edges(3, &[(0, 1), (0, 1), (2, 2)], true);
        assert!(multi.is_symmetric());
        // A directed edge breaks symmetry.
        let directed = Graph::from_edges(3, &[(0, 1), (1, 0), (1, 2)], false);
        assert!(!directed.is_symmetric());
        // Existence-symmetric but multiplicity-asymmetric is NOT symmetric:
        // the transposed assembly would over-count an entry.
        let lopsided = Graph::from_edges(2, &[(0, 1), (0, 1), (1, 0)], false);
        assert!(!lopsided.is_symmetric());
        // Cached: second call agrees (and clones re-derive lazily).
        assert!(triangle().clone().is_symmetric());
    }

    #[test]
    fn reverse_transposes() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 2), (1, 2)], false);
        let r = g.reverse();
        assert_eq!(r.neighbors(1), &[0]);
        assert_eq!(r.neighbors(2), &[0, 1]);
        assert_eq!(r.neighbors(0), &[] as &[NodeId]);
        assert_eq!(r.num_edges(), g.num_edges());
        // Transposing twice is the identity.
        assert_eq!(r.reverse(), g);
    }

    #[test]
    fn inv_sqrt_degrees_matches_definition() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2)], false);
        let t = g.inv_sqrt_degrees();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0], 1.0 / (2.0f32).sqrt());
        assert_eq!(t[1], 1.0);
        assert_eq!(t[3], 1.0, "isolated node clamps degree to 1");
        // Cached: second call returns the same table.
        assert_eq!(t.as_ptr(), g.inv_sqrt_degrees().as_ptr());
        // Clones compare equal and rebuild the cache lazily.
        let c = g.clone();
        assert_eq!(c, g);
        assert_eq!(c.inv_sqrt_degrees(), t);
    }

    #[test]
    fn from_csr_validates() {
        let g = Graph::from_csr(vec![0, 1, 2], vec![1, 0]);
        assert_eq!(g.num_nodes(), 2);
        g.validate().unwrap();
    }

    #[test]
    #[should_panic]
    fn from_csr_rejects_bad_indptr() {
        Graph::from_csr(vec![0, 3, 2], vec![1, 0]);
    }
}
