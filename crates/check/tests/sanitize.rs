//! Tests of the `parking_lot` shim's concurrency sanitizer (the
//! `sanitize` feature): seeded lock-order inversions and double-locks are
//! detected, and — just as important — a full auto-tuned training run over
//! the real runtime (pool, pipelined loader, feature cache, telemetry)
//! produces **zero** violations, i.e. the detector does not cry wolf.
//!
//! Built only with `cargo test -p argo-check --features sanitize`, which is
//! how `ci.sh` invokes it; the normal workspace build stays uninstrumented.
#![cfg(feature = "sanitize")]

use std::sync::{Arc, Mutex as StdMutex, MutexGuard as StdMutexGuard};

use parking_lot::sanitizer::{self, Violation};
use parking_lot::{Mutex, RwLock};

/// The sanitizer's order graph and violation list are global; tests must
/// not interleave. (Raw std mutex: the instrumented shim would record the
/// serialization lock itself in the order graph.)
static SERIAL: StdMutex<()> = StdMutex::new(());

fn serialized() -> StdMutexGuard<'static, ()> {
    let guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    sanitizer::reset();
    guard
}

#[test]
fn seeded_lock_order_inversion_is_detected() {
    let _guard = serialized();
    let a = Mutex::new(0u32);
    let b = Mutex::new(0u32);
    // Establish the order a → b …
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    // … then take them the other way around. No deadlock happens in this
    // single-threaded execution, but the mirror-image schedule would — the
    // sanitizer must flag the inversion.
    {
        let _gb = b.lock();
        let _ga = a.lock();
    }
    let violations = sanitizer::take_violations();
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert!(
        matches!(violations[0], Violation::OrderInversion { .. }),
        "{violations:?}"
    );
    let msg = violations[0].to_string();
    assert!(msg.contains("lock-order inversion"), "{msg}");
}

#[test]
fn inversion_is_detected_through_transitive_chains() {
    let _guard = serialized();
    let a = Mutex::new(());
    let b = Mutex::new(());
    let c = Mutex::new(());
    // a → b and b → c …
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    {
        let _gb = b.lock();
        let _gc = c.lock();
    }
    // … so c → a inverts via the path a →* c even though the pair (c, a)
    // was never taken together before.
    {
        let _gc = c.lock();
        let _ga = a.lock();
    }
    let violations = sanitizer::take_violations();
    assert_eq!(violations.len(), 1, "{violations:?}");
}

#[test]
fn seeded_double_lock_panics_and_is_recorded() {
    let _guard = serialized();
    let m = Arc::new(Mutex::new(0u32));
    let m2 = Arc::clone(&m);
    let result = std::panic::catch_unwind(move || {
        let _g1 = m2.lock();
        let _g2 = m2.lock(); // would deadlock the std-backed mutex for real
    });
    let err = result.expect_err("double-lock must panic, not hang");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("argo-sanitizer"), "{msg}");
    assert!(msg.contains("double-lock"), "{msg}");
    let violations = sanitizer::take_violations();
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::DoubleLock { .. })),
        "{violations:?}"
    );
}

#[test]
fn rwlock_double_write_is_detected() {
    let _guard = serialized();
    let l = Arc::new(RwLock::new(0u32));
    let l2 = Arc::clone(&l);
    let result = std::panic::catch_unwind(move || {
        let _g1 = l2.write();
        let _g2 = l2.read(); // read-after-write on the same lock: deadlock
    });
    assert!(result.is_err());
    let violations = sanitizer::take_violations();
    assert_eq!(violations.len(), 1, "{violations:?}");
}

#[test]
fn consistent_order_across_threads_is_clean() {
    let _guard = serialized();
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            std::thread::spawn(move || {
                for _ in 0..50 {
                    let mut ga = a.lock();
                    let mut gb = b.lock();
                    *ga += 1;
                    *gb += 1;
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker");
    }
    assert_eq!(*a.lock(), 200);
    assert!(
        sanitizer::take_violations().is_empty(),
        "same-order acquisitions must not be flagged"
    );
    assert!(sanitizer::order_edge_count() >= 1);
}

/// The zero-false-positive test: a real auto-tuned training run (the same
/// shape as `tests/telemetry.rs`) through the thread pool, the pipelined
/// loader, the sharded feature cache and the telemetry registry — with
/// every `parking_lot` lock in those paths instrumented — must record no
/// violations.
#[test]
fn full_training_run_has_zero_false_positives() {
    use argo_core::{Argo, ArgoOptions};
    use argo_engine::{Engine, EngineOptions};
    use argo_graph::datasets::FLICKR;
    use argo_rt::Telemetry;
    use argo_sample::NeighborSampler;

    let _guard = serialized();
    let dataset = Arc::new(FLICKR.synthesize(0.008, 11));
    let sampler: Arc<dyn argo_sample::Sampler> = Arc::new(NeighborSampler::new(vec![6, 3]));
    let mut engine = Engine::new(
        dataset,
        sampler,
        EngineOptions {
            hidden: 8,
            num_layers: 2,
            global_batch: 64,
            total_cores: 16,
            seed: 11,
            ..Default::default()
        },
    );
    let mut argo = Argo::new(ArgoOptions {
        n_search: 3,
        epochs: 5,
        total_cores: 16,
        seed: 11,
    });
    let tel = Telemetry::new();
    let _report = argo.train(&mut engine, Some(&tel), |_, _, _| {});

    let violations = sanitizer::take_violations();
    assert!(
        violations.is_empty(),
        "training run must be violation-free, got: {violations:#?}"
    );
}

/// Concurrent cache stress under instrumentation: shard locks are taken
/// one at a time, so even heavy cross-thread sharing must stay clean.
#[test]
fn feature_cache_stress_has_zero_false_positives() {
    use argo_graph::{Features, NodeId};
    use argo_sample::FeatureCache;

    let _guard = serialized();
    let feats = Arc::new(Features::new((0..64 * 4).map(|i| i as f32).collect(), 4));
    let cache = Arc::new(FeatureCache::with_shards(16, 4, 4));
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let (feats, cache) = (Arc::clone(&feats), Arc::clone(&cache));
            std::thread::spawn(move || {
                for i in 0..200u64 {
                    let ids = [((i * (t + 1)) % 64) as NodeId, ((i * 7 + t) % 64) as NodeId];
                    let got = cache.gather_rows(&feats, &ids);
                    assert_eq!(got.len(), 8);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker");
    }
    assert!(
        sanitizer::take_violations().is_empty(),
        "sharded cache must be violation-free"
    );
}
