//! Tests of the vector-clock happens-before race detector (the `race`
//! feature): a corpus of seeded bugs in the claimed-disjoint-window pattern
//! is detected with file/line-attributed reports, each next to a fixed twin
//! proving the corrected synchronization is clean — and, just as important,
//! a full auto-tuned training run and a serving session over the real
//! runtime (pool fork/join, pipelined loader channels, feature/result
//! caches, fused dispatch kernels) produce **zero** reports.
//!
//! Built only with `cargo test -p argo-check --features race`, which is how
//! `ci.sh` invokes it; the normal workspace build stays uninstrumented.
#![cfg(feature = "race")]

use std::sync::{Arc, Mutex as StdMutex, MutexGuard as StdMutexGuard};

use argo_rt::racecheck;
use argo_rt::ThreadPool;
use parking_lot::race::AccessKind;

/// The detector's shadow regions and report list are global; tests must not
/// interleave. (Raw std mutex: the instrumented shim would thread the
/// serialization lock's release clock into every test.)
static SERIAL: StdMutex<()> = StdMutex::new(());

fn serialized() -> StdMutexGuard<'static, ()> {
    let guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    racecheck::reset();
    guard
}

// ---------------------------------------------------------------------------
// Seeded bug 1: overlapping windows. Two threads each claim a window of the
// same buffer, but the windows share a cell — exactly the bug the
// `as_mut_ptr() as usize` escape hatch makes possible and the compiler
// cannot see.
// ---------------------------------------------------------------------------

#[test]
fn seeded_overlapping_windows_are_detected() {
    let _guard = serialized();
    let shadow = racecheck::region("corpus.overlap", 8);
    std::thread::scope(|s| {
        s.spawn(|| racecheck::write(&shadow, 0, 5)); // cells 0..5
        s.spawn(|| racecheck::write(&shadow, 4, 4)); // cells 4..8 — cell 4 collides
    });
    let reports = racecheck::take_reports();
    assert!(!reports.is_empty(), "overlapping windows must be reported");
    let r = &reports[0];
    assert_eq!(r.region, "corpus.overlap");
    assert_eq!(r.cell, 4, "the one shared cell is the race: {r}");
    assert_eq!((r.prior, r.current), (AccessKind::Write, AccessKind::Write));
    assert!(
        r.site.contains("race.rs") && r.prior_site.contains("race.rs"),
        "both sites carry file/line attribution: {r}"
    );
    assert!(r
        .to_string()
        .contains("data race on region 'corpus.overlap'"));
}

/// Fixed twin: genuinely disjoint windows through the *real* pool path —
/// `parallel_chunks_mut` carries its own shadow annotation, and the
/// `Completion` fork/join edges order every worker write before the caller's
/// post-wait reads.
#[test]
fn disjoint_windows_through_the_pool_are_clean() {
    let _guard = serialized();
    let pool = ThreadPool::new("race-twin", 4);
    let mut buf = vec![0u32; 64];
    pool.parallel_chunks_mut(&mut buf, |_chunk_idx, chunk| {
        for v in chunk.iter_mut() {
            *v += 1;
        }
    });
    // Caller-side read of the full buffer after the join: ordered.
    assert_eq!(buf.iter().sum::<u32>(), 64);
    assert_eq!(
        racecheck::report_count(),
        0,
        "disjoint pool windows must be clean: {:#?}",
        racecheck::take_reports()
    );
}

// ---------------------------------------------------------------------------
// Seeded bug 2: missing join edge. A raw `std::thread::join` really does
// order the child's writes before the parent's reads, but it is *not*
// instrumented — modeling code that synchronizes through a side channel the
// detector (and, in real TSan deployments, the annotator) cannot see. The
// fixed twin restores the edge with an explicit `SyncPoint`.
// ---------------------------------------------------------------------------

#[test]
fn seeded_missing_join_edge_is_detected() {
    let _guard = serialized();
    let shadow = racecheck::region("corpus.missing_join", 1);
    std::thread::scope(|s| {
        let h = s.spawn(|| racecheck::write(&shadow, 0, 1));
        h.join().expect("writer");
        // Raw join: real-time order, but no happens-before edge recorded.
        racecheck::read(&shadow, 0, 1);
    });
    let reports = racecheck::take_reports();
    assert!(
        !reports.is_empty(),
        "read-after-uninstrumented-join must be reported"
    );
    let r = &reports[0];
    assert_eq!(r.region, "corpus.missing_join");
    assert_eq!((r.prior, r.current), (AccessKind::Write, AccessKind::Read));
    assert!(r.site.contains("race.rs"), "attributed: {r}");
}

#[test]
fn syncpoint_publish_acquire_restores_the_join_edge() {
    let _guard = serialized();
    let shadow = racecheck::region("corpus.joined", 1);
    let point = racecheck::SyncPoint::new();
    std::thread::scope(|s| {
        let h = s.spawn(|| {
            racecheck::write(&shadow, 0, 1);
            point.publish();
        });
        h.join().expect("writer");
        point.acquire();
        racecheck::read(&shadow, 0, 1);
    });
    assert_eq!(
        racecheck::report_count(),
        0,
        "publish/acquire orders the read: {:#?}",
        racecheck::take_reports()
    );
}

// ---------------------------------------------------------------------------
// Seeded bug 3: send-after-close reorder. The writer publishes its result
// and "hands it off" with a channel send — but every receiver is already
// gone, so the send fails and carries no clock. Code that shrugs off the
// `SendError` and lets the consumer read anyway has lost its only
// happens-before edge.
// ---------------------------------------------------------------------------

#[test]
fn seeded_send_after_close_is_detected() {
    let _guard = serialized();
    let shadow = racecheck::region("corpus.send_after_close", 1);
    let (tx, rx) = crossbeam::channel::unbounded::<u32>();
    drop(rx); // close first: the handoff below silently fails
    std::thread::scope(|s| {
        let h = s.spawn(|| {
            racecheck::write(&shadow, 0, 1);
            let _ = tx.send(7); // SendError swallowed — no edge established
        });
        h.join().expect("writer");
        racecheck::read(&shadow, 0, 1);
    });
    let reports = racecheck::take_reports();
    assert!(
        !reports.is_empty(),
        "handoff through a failed send must be reported"
    );
    let r = &reports[0];
    assert_eq!(r.region, "corpus.send_after_close");
    assert_eq!((r.prior, r.current), (AccessKind::Write, AccessKind::Read));
    assert!(r.site.contains("race.rs"), "attributed: {r}");
}

#[test]
fn successful_channel_handoff_orders_the_read() {
    let _guard = serialized();
    let shadow = racecheck::region("corpus.handoff", 1);
    let (tx, rx) = crossbeam::channel::unbounded::<u32>();
    std::thread::scope(|s| {
        s.spawn(|| {
            racecheck::write(&shadow, 0, 1);
            tx.send(7).expect("receiver alive");
        });
        let got = rx.recv().expect("sender sent"); // edge: sender's clock joins
        assert_eq!(got, 7);
        racecheck::read(&shadow, 0, 1);
    });
    assert_eq!(
        racecheck::report_count(),
        0,
        "recv orders the read after the write: {:#?}",
        racecheck::take_reports()
    );
}

// ---------------------------------------------------------------------------
// Zero false positives over the real runtime.
// ---------------------------------------------------------------------------

/// A full auto-tuned training run — thread pool, pipelined loader, feature
/// cache, fused dispatch kernels, telemetry — with every lock, channel,
/// fork/join edge and disjoint-window annotation instrumented must record
/// no races.
#[test]
fn full_training_run_reports_zero_races() {
    use argo_core::{Argo, ArgoOptions};
    use argo_engine::{Engine, EngineOptions};
    use argo_graph::datasets::FLICKR;
    use argo_rt::telemetry::names;
    use argo_rt::Telemetry;
    use argo_sample::NeighborSampler;

    let _guard = serialized();
    let dataset = Arc::new(FLICKR.synthesize(0.008, 11));
    let sampler: Arc<dyn argo_sample::Sampler> = Arc::new(NeighborSampler::new(vec![6, 3]));
    let mut engine = Engine::new(
        dataset,
        sampler,
        EngineOptions {
            hidden: 8,
            num_layers: 2,
            global_batch: 64,
            total_cores: 16,
            seed: 11,
            ..Default::default()
        },
    );
    let mut argo = Argo::new(ArgoOptions {
        n_search: 3,
        epochs: 5,
        total_cores: 16,
        seed: 11,
    });
    let tel = Telemetry::new();
    let _report = argo.train(&mut engine, Some(&tel), |_, _, _| {});

    let reports = racecheck::take_reports();
    assert!(
        reports.is_empty(),
        "training run must be race-free, got: {reports:#?}"
    );
    // The engine publishes checker verdicts at every epoch end, so the
    // zero shows up in `argo report`, not just here.
    let verdict = tel
        .metrics
        .counters()
        .into_iter()
        .find(|(name, _)| name == names::CHECK_RACE_REPORTS_TOTAL);
    assert_eq!(
        verdict,
        Some((names::CHECK_RACE_REPORTS_TOTAL.to_string(), 0)),
        "verdict counter published and zero"
    );
}

/// A serving session — deadline micro-batcher, result cache slot handoffs,
/// feature cache, inference kernels — under full instrumentation must also
/// be race-free, including across cache hits that *read* slots other
/// requests wrote.
#[test]
fn serve_session_run_reports_zero_races() {
    use argo_graph::datasets::FLICKR;
    use argo_nn::{AnyModel, Arch};
    use argo_rt::telemetry::names;
    use argo_rt::Telemetry;
    use argo_sample::{NeighborSampler, Normalization, Sampler};
    use argo_serve::{ManualClock, ServeSpec};

    let _guard = serialized();
    let d = Arc::new(FLICKR.synthesize(0.003, 77));
    let sampler: Arc<dyn Sampler> = Arc::new(NeighborSampler::new(vec![6, 3]));
    let model = AnyModel::build(Arch::Sage, d.feat_dim(), 8, d.num_classes, 2, 5);
    let clock = Arc::new(ManualClock::new());
    let tel = Telemetry::new();
    let mut s = ServeSpec::builder(Arc::clone(&d), sampler, model)
        .max_batch(3)
        .deadline_us(500)
        .result_cache_entries(16)
        .feature_cache_rows(128)
        .normalization(Normalization::Mean)
        .seed(11)
        .clock(Arc::clone(&clock) as Arc<dyn argo_serve::Clock>)
        .start();

    // Six queries with repeats: misses write result-cache slots, the
    // repeated seeds read them back, and the flush-on-full path (max_batch
    // 3) interleaves with the flush-on-deadline path.
    for seeds in [
        vec![1, 2, 3],
        vec![4, 5],
        vec![1, 2, 3],
        vec![6],
        vec![4, 5],
        vec![7, 8],
    ] {
        s.submit(seeds, Some(&tel)).expect("admitted");
        clock.advance_us(200);
        let _ = s.poll(Some(&tel));
    }
    let out = s.drain(Some(&tel));
    for r in &out {
        r.as_ref().expect("late drain still serves");
    }

    let reports = racecheck::take_reports();
    assert!(
        reports.is_empty(),
        "serve session must be race-free, got: {reports:#?}"
    );
    let verdict = tel
        .metrics
        .counters()
        .into_iter()
        .find(|(name, _)| name == names::CHECK_RACE_REPORTS_TOTAL);
    assert_eq!(
        verdict,
        Some((names::CHECK_RACE_REPORTS_TOTAL.to_string(), 0)),
        "drain publishes the (zero) verdict counter"
    );
}
