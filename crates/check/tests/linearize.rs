//! Linearizability tests driven by the mini-loom schedule explorer.
//!
//! Each test models two logical threads as step lists and runs **every**
//! interleaving (see `argo_check::schedule`), asserting the invariant the
//! runtime relies on:
//!
//! * [`FeatureCache`] is transparent — a gather through the cache is
//!   bitwise identical to an uncached [`Features::gather`], for every
//!   interleaving of two threads sharing the cache, including schedules
//!   that force CLOCK evictions mid-stream.
//! * The loader's channel handoff (crossbeam channel + binary-heap
//!   reordering, as in `PipelinedLoader::next`) delivers every batch
//!   exactly once, in index order, no matter how producer completions
//!   interleave with consumer pumps.
//! * [`ThreadPool::parallel_map_reduce`]'s slot protocol — workers write
//!   per-range partials into index-addressed slots, the caller folds the
//!   slots in range order — produces a bitwise-identical reduction for
//!   every completion interleaving, which is what makes the pool-parallel
//!   weight gradients (`dW = Xᵀ dY`) deterministic for a fixed pool size.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use argo_check::schedule::explore;
use argo_graph::{Features, NodeId};
use argo_sample::FeatureCache;
use crossbeam::channel::{unbounded, Receiver, Sender};

/// Deterministic feature matrix: row v = [v*10+0, v*10+1, …].
fn features(rows: usize, dim: usize) -> Features {
    let data: Vec<f32> = (0..rows * dim)
        .map(|i| (i / dim * 10 + i % dim) as f32)
        .collect();
    Features::new(data, dim)
}

/// Expected bitwise result of gathering `ids` without any cache.
fn expected(feats: &Features, ids: &[NodeId]) -> Vec<f32> {
    ids.iter().flat_map(|&v| feats.row(v).to_vec()).collect()
}

#[test]
fn feature_cache_gathers_are_linearizable() {
    let feats = features(8, 3);
    // Overlapping id sets with a 4-row cache: interleavings force hits,
    // misses and CLOCK evictions in every combination.
    let a_batches: Vec<Vec<NodeId>> = vec![vec![0, 1, 2], vec![2, 3, 4], vec![0, 5, 6]];
    let b_batches: Vec<Vec<NodeId>> = vec![vec![1, 2, 3], vec![6, 7, 0], vec![4, 4, 5]];

    for shards in [1, 2] {
        let n = explore(
            a_batches.len(),
            b_batches.len(),
            || FeatureCache::with_shards(4, 3, shards),
            |cache, i| {
                let got = cache.gather_rows(&feats, &a_batches[i]);
                assert_eq!(got, expected(&feats, &a_batches[i]), "A batch {i}");
            },
            |cache, i| {
                let got = cache.gather_rows(&feats, &b_batches[i]);
                assert_eq!(got, expected(&feats, &b_batches[i]), "B batch {i}");
            },
            |cache, sched| {
                // Conservation: every lookup was either a hit or a miss,
                // and residency never exceeds capacity.
                let s = cache.stats();
                let rows: u64 = (a_batches.iter().chain(&b_batches))
                    .map(|b| b.len() as u64)
                    .sum();
                assert_eq!(s.hits + s.misses, rows, "schedule {sched}");
                assert!(s.resident_rows <= s.capacity_rows, "schedule {sched}");
            },
        );
        assert_eq!(n, 20, "C(6,3) schedules explored");
    }
}

/// Shared state for the handoff model: the channel, the consumer's reorder
/// heap and its in-order output (mirrors `PipelinedLoader::next`).
struct Handoff {
    tx: Sender<usize>,
    rx: Receiver<usize>,
    reorder: BinaryHeap<Reverse<usize>>,
    next: usize,
    delivered: Vec<usize>,
}

impl Handoff {
    fn new() -> Self {
        let (tx, rx) = unbounded();
        Self {
            tx,
            rx,
            reorder: BinaryHeap::new(),
            next: 0,
            delivered: Vec::new(),
        }
    }

    /// One consumer pump: drain whatever is in the channel into the heap,
    /// then release every batch that is next in index order.
    fn pump(&mut self) {
        while let Ok(i) = self.rx.try_recv() {
            self.reorder.push(Reverse(i));
        }
        while self.reorder.peek() == Some(&Reverse(self.next)) {
            if let Some(Reverse(i)) = self.reorder.pop() {
                self.delivered.push(i);
                self.next += 1;
            }
        }
    }
}

#[test]
fn loader_handoff_delivers_in_order_exactly_once() {
    // Producer completes batches out of order (1, 0, 3, 2) — two pipelined
    // workers finishing at different speeds — while the consumer pumps at
    // arbitrary points. Every schedule must deliver 0..4 in order.
    let completion_order = [1usize, 0, 3, 2];
    let n = explore(
        completion_order.len(),
        3, // consumer pumps interleaved anywhere among the sends
        Handoff::new,
        |h, i| h.tx.send(completion_order[i]).expect("receiver alive"),
        |h, _| h.pump(),
        |h, sched| {
            // A schedule may end before the consumer's last pump, so the
            // invariant is checked after one final drain (on a clone —
            // `check` sees the state immutably).
            let mut done = Handoff {
                tx: h.tx.clone(),
                rx: h.rx.clone(),
                reorder: h.reorder.clone(),
                next: h.next,
                delivered: h.delivered.clone(),
            };
            done.pump();
            assert_eq!(done.delivered, vec![0, 1, 2, 3], "schedule {sched}");
        },
    );
    assert_eq!(n, 35, "C(7,4) schedules explored");
}

#[test]
fn map_reduce_slot_protocol_is_schedule_independent() {
    use argo_rt::ThreadPool;

    // The per-range partials of a float sum whose value depends on
    // accumulation order (catastrophic cancellation between ranges): only
    // a fixed fold order gives a stable answer.
    let partials: [f32; 4] = [1.0e8, 3.125, -1.0e8, 2.0 - 9.75e-4];

    // Reference: what the real pool computes for the same 4 ranges. Chunk
    // size in `parallel_map_reduce` is ceil(n / workers), so n = 8 over a
    // 4-worker pool yields exactly the ranges 0..2, 2..4, 4..6, 6..8.
    let pool = ThreadPool::new("mr", 4);
    let real = pool
        .parallel_map_reduce(8, |r| partials[r.start / 2], |a, b| a + b)
        .expect("non-empty reduction");

    // Model: worker A owns slots {0, 2}, worker B owns slots {1, 3} —
    // each schedule is one order in which range results can land. The
    // fold always walks slots 0..4, exactly like the caller-side fold.
    let a_slots = [0usize, 2];
    let b_slots = [1usize, 3];
    let n = explore(
        a_slots.len(),
        b_slots.len(),
        || vec![None::<f32>; 4],
        |slots, i| slots[a_slots[i]] = Some(partials[a_slots[i]]),
        |slots, i| slots[b_slots[i]] = Some(partials[b_slots[i]]),
        |slots, sched| {
            let mut acc: Option<f32> = None;
            for s in slots {
                let Some(v) = s else { continue };
                acc = Some(match acc {
                    Some(a) => a + v,
                    None => *v,
                });
            }
            let folded = acc.expect("all slots filled");
            assert_eq!(
                folded.to_bits(),
                real.to_bits(),
                "schedule {sched}: fold {folded} != pool result {real}"
            );
        },
    );
    assert_eq!(n, 6, "C(4,2) schedules explored");
}

#[test]
fn disconnect_mid_stream_is_detected_not_lost() {
    // If the producer side is dropped with batches undelivered, the
    // consumer observes Disconnected after draining — never a silent hang
    // or a lost in-flight batch (mirrors the loader's `Err(_) => None`).
    use crossbeam::channel::TryRecvError;
    let (tx, rx) = unbounded::<usize>();
    tx.send(0).expect("receiver alive");
    tx.send(1).expect("receiver alive");
    drop(tx);
    assert_eq!(rx.try_recv(), Ok(0));
    assert_eq!(rx.try_recv(), Ok(1));
    assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
}
