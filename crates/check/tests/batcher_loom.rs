//! Exhaustive interleaving tests for the serve deadline micro-batcher,
//! driven by the mini-loom in `argo_check::schedule`.
//!
//! The batcher itself is a single-driver state machine, but the *session*
//! around it interleaves three operations whose relative order the wall
//! clock decides at runtime: admissions, deadline polls, and the shutdown
//! drain. Each test models two logical drivers as step lists, enumerates
//! every interleaving under a [`ManualClock`], and asserts the invariants
//! the serving path relies on — no request lost, duplicated or reordered;
//! `Full` flushes carry exactly `max_batch`; `Deadline` flushes only once
//! the *oldest* admit has aged out. A failure names the exact schedule
//! (e.g. `ABBAB`) that broke it.

use std::sync::Arc;

use argo_check::schedule::{all_interleavings, explore};
use argo_serve::{Clock, FlushReason, ManualClock, MicroBatch, MicroBatcher};

/// Shared state for one explored schedule: the batcher, its manual clock,
/// and every batch flushed so far (by either driver).
struct Harness {
    clock: Arc<ManualClock>,
    batcher: MicroBatcher,
    batches: Vec<MicroBatch>,
    admitted: u64,
}

impl Harness {
    fn new(max_batch: usize, deadline_us: u64) -> Self {
        Self {
            clock: Arc::new(ManualClock::new()),
            batcher: MicroBatcher::new(max_batch, deadline_us, 64),
            batches: Vec::new(),
            admitted: 0,
        }
    }

    fn admit(&mut self) {
        let now = self.clock.now_us();
        let (_, batch) = self.batcher.admit(vec![1], now).expect("under cap");
        self.admitted += 1;
        self.batches.extend(batch);
    }

    fn poll(&mut self) {
        let batch = self.batcher.poll(self.clock.now_us());
        self.batches.extend(batch);
    }

    fn drain(&mut self) {
        while let Some(b) = self.batcher.flush(self.clock.now_us(), FlushReason::Drain) {
            self.batches.push(b);
        }
    }

    /// The invariants every schedule must uphold.
    fn check(&self, max_batch: usize, deadline_us: u64, schedule: &str) {
        for (i, b) in self.batches.iter().enumerate() {
            assert_eq!(b.id, i as u64, "batch ids sequential [{schedule}]");
            assert!(!b.requests.is_empty(), "no empty flushes [{schedule}]");
            assert!(
                b.requests.len() <= max_batch,
                "batch within max_batch [{schedule}]"
            );
            match b.reason {
                FlushReason::Full => assert_eq!(
                    b.requests.len(),
                    max_batch,
                    "Full means exactly max_batch [{schedule}]"
                ),
                FlushReason::Deadline if deadline_us > 0 => {
                    let oldest = b.requests[0].admitted_us;
                    assert!(
                        b.flushed_us >= oldest.saturating_add(deadline_us),
                        "Deadline flush before the oldest admit aged out: \
                         admitted {oldest}, flushed {} [{schedule}]",
                        b.flushed_us
                    );
                }
                _ => {}
            }
        }
        // Conservation + FIFO: the queue flushes from the front, so the
        // concatenated flushed ids must be exactly 0..k in order, with the
        // remaining admitted - k requests still pending.
        let ids: Vec<u64> = self
            .batches
            .iter()
            .flat_map(|b| b.requests.iter().map(|r| r.id))
            .collect();
        let expect: Vec<u64> = (0..ids.len() as u64).collect();
        assert_eq!(
            ids, expect,
            "no request lost, duplicated or reordered [{schedule}]"
        );
        assert_eq!(
            ids.len() + self.batcher.pending(),
            self.admitted as usize,
            "flushed + pending accounts for every admit [{schedule}]"
        );
    }
}

/// Flush-on-full racing flush-on-deadline: driver A admits 4 requests
/// (max_batch 3, so a `Full` flush leaves a straggler) then drains; driver
/// B advances the clock past the deadline and polls. Depending on where the
/// polls land, the same requests flush as `Full`, `Deadline`, `Drain`, or a
/// mix — every interleaving must conserve and order them.
#[test]
fn full_and_deadline_flushes_conserve_requests_in_every_interleaving() {
    let (max_batch, deadline_us) = (3, 1_000);
    let n = explore(
        5,
        2,
        || Harness::new(max_batch, deadline_us),
        |h, i| {
            if i < 4 {
                h.admit();
                h.clock.advance_us(10);
            } else {
                h.drain(); // shutdown after the last admit
            }
        },
        |h, _| {
            h.clock.advance_us(deadline_us); // age the oldest past its deadline
            h.poll();
        },
        |h, schedule| {
            assert_eq!(
                h.batcher.pending(),
                0,
                "drain left the queue empty [{schedule}]"
            );
            h.check(max_batch, deadline_us, schedule);
        },
    );
    assert_eq!(n, all_interleavings(5, 2).len());
}

/// Deadline keyed to the *oldest* admit: driver A admits at 300 µs spacing,
/// driver B polls at absolute times straddling the first request's deadline
/// (900, 999, 1 200 µs). No interleaving may flush a `Deadline` batch
/// early, and a poll that lands at/after a pending request's deadline must
/// flush it — both asserted inside the poll step, where the due time is
/// known exactly.
#[test]
fn deadline_is_keyed_to_the_oldest_admit_in_every_interleaving() {
    let (max_batch, deadline_us) = (8, 1_000);
    explore(
        4,
        3,
        || Harness::new(max_batch, deadline_us),
        |h, i| {
            if i < 3 {
                h.admit();
                h.clock.advance_us(300);
            } else {
                h.drain();
            }
        },
        |h, i| {
            let at = [900, 999, 1_200][i];
            let now = h.clock.now_us();
            if at > now {
                h.clock.advance_us(at - now);
            }
            let due = h.batcher.next_deadline_us();
            let batch = h.batcher.poll(h.clock.now_us());
            match (&batch, due) {
                (Some(b), _) => assert!(
                    h.clock.now_us() >= b.requests[0].admitted_us + deadline_us,
                    "flushed before the oldest aged out"
                ),
                (None, Some(due)) => assert!(
                    h.clock.now_us() < due,
                    "poll at {} missed a flush due at {due}",
                    h.clock.now_us()
                ),
                (None, None) => {}
            }
            h.batches.extend(batch);
        },
        |h, schedule| {
            assert_eq!(
                h.batcher.pending(),
                0,
                "drain left the queue empty [{schedule}]"
            );
            h.check(max_batch, deadline_us, schedule);
        },
    );
}

/// Drain racing admissions: driver B drains mid-stream (session shutdown
/// while requests still arrive). Requests admitted after the drain stay
/// pending; everything flushed is still conserved FIFO.
#[test]
fn mid_stream_drain_conserves_flushed_requests_in_every_interleaving() {
    let (max_batch, deadline_us) = (4, 10_000);
    explore(
        4,
        2,
        || Harness::new(max_batch, deadline_us),
        |h, _| {
            h.admit();
            h.clock.advance_us(50);
        },
        |h, _| h.drain(),
        |h, schedule| h.check(max_batch, deadline_us, schedule),
    );
}
