//! Per-file lint rules over the scanned source channels.
//!
//! Each rule reports `file:line` diagnostics; deliberate exceptions are
//! routed through the embedded [`crate::allowlist`], never inline `#[allow]`
//! attributes, so every exemption carries a reviewed justification.

use crate::allowlist::AllowTracker;
use crate::source::SourceFile;
use crate::Diagnostic;

/// Crates whose non-test code must not contain panicking constructs: these
/// run inside the training loop or on pool workers, where a panic tears
/// down an epoch (or the whole run) instead of surfacing an `argo_core::Error`.
const NO_PANIC_CRATES: &[&str] = &[
    "crates/rt/",
    "crates/sample/",
    "crates/engine/",
    "crates/tensor/",
    "crates/cli/",
    "crates/serve/",
];

/// Files allowed to read the wall clock: the trace timeline and the metrics
/// registry own all timing; everything else is either deterministic
/// (modeled platform, replay) or explicitly allowlisted as a measured path.
const INSTANT_ALLOWED_FILES: &[&str] = &[
    "crates/rt/src/trace.rs",
    "crates/rt/src/metrics.rs",
    "crates/rt/src/spans.rs",
    // The serving wall clock: `WallClock` is the one measured `Clock`
    // implementation; every other serving path takes timestamps through the
    // `Clock` trait (deterministic under `ManualClock`).
    "crates/serve/src/clock.rs",
];

/// Removed `*_telemetry`-era shim names: the methods were deleted in 0.2,
/// and this list stays as a tripwire so the old spellings never
/// reappear — in new call sites or in resurrected shims.
const DEPRECATED_CALLS: &[&str] = &[
    ".run_telemetry(",
    ".train_telemetry(",
    ".run_modeled_telemetry(",
    ".train_epoch_telemetry(",
];

/// Raw serial/pool kernel entry points that model and engine code must not
/// call directly: serial-vs-parallel selection (and the blocked kernels
/// behind it) lives in `argo_tensor::DispatchPolicy`, so a direct call
/// silently bypasses both the auto-tuned pool routing and the cache
/// blocking.
const RAW_KERNEL_CALLS: &[&str] = &[
    ".matmul(",
    ".matmul_pool(",
    ".spmm(",
    ".spmm_pool(",
    ".spmm_transpose(",
    ".matmul_transpose_self(",
    ".matmul_transpose_other(",
];

/// Crates whose non-test code must route matmul/SpMM through the dispatch
/// policy rather than the raw kernels. `crates/serve/` joined in PR 8: the
/// serving forward pass reuses the training model, so it must inherit the
/// same serial-vs-pool routing rather than pinning kernels by hand.
const DISPATCH_ONLY_CRATES: &[&str] = &["crates/nn/", "crates/engine/", "crates/serve/"];

/// Sampler hot-path files that must stay on the scratch arena
/// (`crates/sample/src/scratch.rs`): per-batch `HashMap`/`HashSet`
/// relabeling or `.clone()` of node-id vectors is exactly the allocation
/// churn the scratch rewrite removed — the epoch-stamped dense dedup table
/// and the recycled pick buffers replace them. `cache.rs` (long-lived
/// cross-batch map) and `loader.rs` (Arc handle clones) are deliberately
/// out of scope.
const SAMPLER_HOT_FILES: &[&str] = &[
    "crates/sample/src/neighbor.rs",
    "crates/sample/src/shadow.rs",
    "crates/sample/src/saint.rs",
    "crates/sample/src/cluster.rs",
    "crates/sample/src/scratch.rs",
    // Batch assembly moved into the arena (`sample_into`): the batch types
    // and the borrowed views over the arena are now hot-path assembly code
    // too. `legacy.rs` (the reference edge-list assembly kept for the
    // bitwise-equality proptests and benches) is deliberately out of scope —
    // its allocation churn is the baseline being measured against.
    "crates/sample/src/batch.rs",
    "crates/sample/src/view.rs",
    // The serving request path runs the same sampler per query: per-request
    // hash containers or seed-vector clones would charge the allocation
    // churn to every single query's latency. `result_cache.rs` (long-lived
    // keyed map, like `cache.rs`) is deliberately out of scope.
    "crates/serve/src/session.rs",
    "crates/serve/src/batcher.rs",
];

/// Allocation-churn constructs forbidden in [`SAMPLER_HOT_FILES`].
const SCRATCH_NEEDLES: &[&str] = &["HashMap", "HashSet", ".clone()"];

/// How many lines above an `unsafe` token a `SAFETY:` comment may sit.
/// Generous enough for a multi-line justification, tight enough that the
/// comment stays adjacent to the block it justifies.
const SAFETY_LOOKBACK: usize = 8;

/// The one file allowed to contain raw `core::arch` SIMD intrinsics. All
/// explicit vectorization funnels through this module so the runtime
/// feature detection, the scalar fallback and the numerical contract live
/// in one reviewed place; intrinsics sprinkled elsewhere would bypass all
/// three.
const SIMD_FILE: &str = "crates/tensor/src/simd.rs";

/// Tokens that mark raw SIMD usage: the arch module path, intrinsic calls
/// (`_mm256_fmadd_ps`, …) and vector register types (`__m256`, …).
const SIMD_NEEDLES: &[&str] = &["core::arch", "_mm", "__m"];

/// Inside [`SIMD_FILE`], a `SAFETY:` justification must name the runtime
/// feature check that guards the block — one of these, case-insensitive —
/// so the comment states *which* detection makes the intrinsics sound,
/// not just that they are.
const SIMD_FEATURE_MARKS: &[&str] = &["avx2", "is_x86_feature_detected"];

/// The raw-pointer window escape: a buffer's base address smuggled across a
/// closure boundary as `usize` so workers can carve claimed-disjoint `&mut`
/// windows out of it.
const WINDOW_ESCAPE: &str = "as_mut_ptr() as usize";

/// Shadow-memory annotations that make a window escape *checked* rather
/// than merely claimed (see `argo_rt::racecheck`).
const RACECHECK_MARKS: &[&str] = &["racecheck::region", "racecheck::write", "racecheck::read"];

/// Raw-pointer escapes a borrowed batch view must not take silently: a
/// `SparseView` borrows the sampler's batch arena, and a pointer laundered
/// out of it as `usize`/raw outlives the borrow checker's sight — the next
/// `sample_into` reuses the arena under it.
const VIEW_ESCAPES: &[&str] = &[".as_ptr()", ".as_mut_ptr()"];

/// True for files that are test/bench/example code wholesale.
pub fn is_test_path(path: &str) -> bool {
    path.contains("/tests/")
        || path.starts_with("tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
}

fn in_no_panic_scope(path: &str) -> bool {
    NO_PANIC_CRATES.iter().any(|c| path.starts_with(c))
}

/// Whether `code` contains `needle` with no identifier character directly
/// before it (so `panic!` does not match `dont_panic!`). Needles that start
/// with a non-identifier char (`.unwrap()`) are their own boundary.
fn contains_token(code: &str, needle: &str) -> bool {
    let ident_start = needle
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let mut from = 0;
    while let Some(pos) = code[from..].find(needle) {
        let at = from + pos;
        let boundary = !ident_start
            || code[..at]
                .chars()
                .next_back()
                .is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
        if boundary {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// Runs every per-file rule on one scanned file.
pub fn check_file(file: &SourceFile, allow: &mut AllowTracker, out: &mut Vec<Diagnostic>) {
    let test_file = is_test_path(&file.path);
    check_unsafe_safety(file, out);
    if !test_file {
        check_no_panic(file, allow, out);
        check_no_instant(file, allow, out);
        check_no_deprecated_telemetry(file, out);
        check_kernel_dispatch(file, allow, out);
        check_sampler_scratch(file, allow, out);
        check_borrowed_batch(file, allow, out);
        check_span_pairing(file, allow, out);
        check_window_racecheck(file, allow, out);
        check_simd_isolation(file, allow, out);
    }
}

/// Rule `simd-isolation`: raw `core::arch` intrinsics live only in
/// [`SIMD_FILE`] — everywhere else they would bypass the runtime feature
/// dispatch, the scalar fallback and the documented numerical contract.
/// Inside that file, every `unsafe` must carry a `SAFETY:` comment naming
/// the runtime feature check guarding it (see [`SIMD_FEATURE_MARKS`]), so
/// a reader can tell which detection makes the raw-pointer loads and
/// feature-gated calls sound.
fn check_simd_isolation(file: &SourceFile, allow: &mut AllowTracker, out: &mut Vec<Diagnostic>) {
    if !file.path.starts_with("crates/") {
        return;
    }
    if file.path.ends_with(SIMD_FILE) {
        for (n, line) in file.numbered() {
            if !contains_token(&line.code, "unsafe") {
                continue;
            }
            let start = n.saturating_sub(SAFETY_LOOKBACK + 1);
            let window = &file.lines[start..n];
            let named = window.iter().any(|l| l.comment.contains("SAFETY:"))
                && window.iter().any(|l| {
                    let c = l.comment.to_lowercase();
                    SIMD_FEATURE_MARKS.iter().any(|m| c.contains(m))
                });
            if !named && !allow.permits("simd-isolation", &file.path, &line.raw) {
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line: n,
                    rule: "simd-isolation",
                    message: format!(
                        "`unsafe` in the SIMD module whose `SAFETY:` comment (within \
                         {SAFETY_LOOKBACK} lines) does not name the runtime feature check \
                         guarding it; say which detection (e.g. `available()` = AVX2+FMA) \
                         makes this block sound"
                    ),
                });
            }
        }
        return;
    }
    for (n, line) in file.numbered() {
        if line.test {
            continue;
        }
        for needle in SIMD_NEEDLES {
            if contains_token(&line.code, needle)
                && !allow.permits("simd-isolation", &file.path, &line.raw)
            {
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line: n,
                    rule: "simd-isolation",
                    message: format!(
                        "raw SIMD token `{needle}` outside `{SIMD_FILE}`; explicit \
                         vectorization must go through the tensor SIMD module so runtime \
                         dispatch, the scalar fallback and the numerical contract stay \
                         centralized, or add an allowlist entry with a justification"
                    ),
                });
                break;
            }
        }
    }
}

/// Rule `window-racecheck`: every `as_mut_ptr() as usize` escape in
/// non-test code must sit within [`SAFETY_LOOKBACK`] lines of a
/// `racecheck::region`/`write`/`read` annotation — the runtime-checked twin
/// of the `// SAFETY:` proximity rule. A window that is only *claimed*
/// disjoint in a comment drifts silently; one registered with the race
/// detector is verified on every `--features race` run.
fn check_window_racecheck(file: &SourceFile, allow: &mut AllowTracker, out: &mut Vec<Diagnostic>) {
    if !file.path.starts_with("crates/") {
        return;
    }
    for (n, line) in file.numbered() {
        if line.test || !line.code.contains(WINDOW_ESCAPE) {
            continue;
        }
        // The annotation may precede the escape (region registered next to
        // the base pointer) or follow it (write recorded inside the worker
        // closure), so the window looks both ways.
        let start = n.saturating_sub(SAFETY_LOOKBACK + 1);
        let end = (n + SAFETY_LOOKBACK).min(file.lines.len());
        let annotated = file.lines[start..end]
            .iter()
            .any(|l| RACECHECK_MARKS.iter().any(|m| contains_token(&l.code, m)));
        if !annotated && !allow.permits("window-racecheck", &file.path, &line.raw) {
            out.push(Diagnostic {
                path: file.path.clone(),
                line: n,
                rule: "window-racecheck",
                message: format!(
                    "`{WINDOW_ESCAPE}` without a `racecheck::` shadow-memory annotation \
                     within {SAFETY_LOOKBACK} lines; register the window with \
                     `argo_rt::racecheck::region` and record its accesses so the race \
                     detector can verify the disjointness claim"
                ),
            });
        }
    }
}

/// Rule `span-pairing`: every profiler `.span_begin(` in non-test code must
/// be lexically paired with a `.span_end(` before its enclosing scope closes.
/// An unended span corrupts critical-path attribution silently (the interval
/// never reaches the ring), so the invariant is enforced at lint time: track
/// brace depth across the file; a `span_begin` opens an obligation at its
/// depth, a `span_end` discharges the most recent one, and a scope closing
/// below an open obligation's depth (or EOF) reports the orphaned begin.
fn check_span_pairing(file: &SourceFile, allow: &mut AllowTracker, out: &mut Vec<Diagnostic>) {
    if !file.path.starts_with("crates/") {
        return;
    }
    let mut depth: i64 = 0;
    // Open obligations: (line of the `span_begin`, brace depth it sits at).
    let mut open: Vec<(usize, i64)> = Vec::new();
    let orphan = |out: &mut Vec<Diagnostic>, allow: &mut AllowTracker, bn: usize, why: &str| {
        let raw = file
            .lines
            .get(bn - 1)
            .map(|l| l.raw.as_str())
            .unwrap_or_default();
        if !allow.permits("span-pairing", &file.path, raw) {
            out.push(Diagnostic {
                path: file.path.clone(),
                line: bn,
                rule: "span-pairing",
                message: format!(
                    "`span_begin` {why}; every span must reach `span_end` on all paths \
                     or its interval silently never reaches the profiler ring"
                ),
            });
        }
    };
    for (n, line) in file.numbered() {
        let code = line.code.as_bytes();
        // Brace depth is tracked through test modules too (their braces
        // enclose real scopes), but span tokens inside tests are exempt.
        let track = !line.test;
        let mut i = 0;
        while i < code.len() {
            if track && code[i..].starts_with(b".span_begin(") {
                open.push((n, depth));
                i += ".span_begin(".len();
            } else if track && code[i..].starts_with(b".span_end(") {
                if open.pop().is_none() && !allow.permits("span-pairing", &file.path, &line.raw) {
                    out.push(Diagnostic {
                        path: file.path.clone(),
                        line: n,
                        rule: "span-pairing",
                        message: "`span_end` without a lexically earlier `span_begin` in scope"
                            .to_string(),
                    });
                }
                i += ".span_end(".len();
            } else {
                match code[i] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        while open.last().is_some_and(|&(_, bd)| bd > depth) {
                            if let Some((bn, _)) = open.pop() {
                                orphan(out, allow, bn, "scope closed before `span_end`");
                            }
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        }
    }
    for (bn, _) in open {
        orphan(out, allow, bn, "still open at end of file");
    }
}

/// Rule `unsafe-safety`: every `unsafe` token (block, fn, impl) must have a
/// `SAFETY:` comment — or a `# Safety` doc section for `unsafe fn` — on the
/// same line or within [`SAFETY_LOOKBACK`] lines above. Applies to test
/// code too: an unexplained `unsafe` is no better for living in a test.
fn check_unsafe_safety(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (n, line) in file.numbered() {
        if !contains_token(&line.code, "unsafe") {
            continue;
        }
        let start = n.saturating_sub(SAFETY_LOOKBACK + 1);
        let justified = file.lines[start..n]
            .iter()
            .any(|l| l.comment.contains("SAFETY:") || l.comment.contains("# Safety"));
        if !justified {
            out.push(Diagnostic {
                path: file.path.clone(),
                line: n,
                rule: "unsafe-safety",
                message: format!(
                    "`unsafe` without a `// SAFETY:` comment within {SAFETY_LOOKBACK} lines"
                ),
            });
        }
    }
}

/// Rule `no-panic`: no `.unwrap()` / `.expect(` / `panic!` / `unreachable!`
/// / `todo!` / `unimplemented!` in non-test code of the hot-path crates.
fn check_no_panic(file: &SourceFile, allow: &mut AllowTracker, out: &mut Vec<Diagnostic>) {
    if !in_no_panic_scope(&file.path) {
        return;
    }
    const NEEDLES: &[&str] = &[
        ".unwrap()",
        ".expect(",
        "panic!",
        "unreachable!",
        "todo!",
        "unimplemented!",
    ];
    for (n, line) in file.numbered() {
        if line.test {
            continue;
        }
        for needle in NEEDLES {
            if contains_token(&line.code, needle)
                && !allow.permits("no-panic", &file.path, &line.raw)
            {
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line: n,
                    rule: "no-panic",
                    message: format!(
                        "`{needle}` in hot-path crate; return `argo_core::Error` \
                         or add an allowlist entry with a justification"
                    ),
                });
            }
        }
    }
}

/// Rule `no-instant`: `Instant::now` only in the trace/metrics modules (or
/// allowlisted measured paths). Keeps the modeled platform deterministic.
fn check_no_instant(file: &SourceFile, allow: &mut AllowTracker, out: &mut Vec<Diagnostic>) {
    if !file.path.starts_with("crates/") || file.path.starts_with("crates/bench/") {
        return;
    }
    if INSTANT_ALLOWED_FILES.iter().any(|f| file.path.ends_with(f)) {
        return;
    }
    for (n, line) in file.numbered() {
        if line.test || !line.code.contains("Instant::now") {
            continue;
        }
        if allow.permits("no-instant", &file.path, &line.raw) {
            continue;
        }
        out.push(Diagnostic {
            path: file.path.clone(),
            line: n,
            rule: "no-instant",
            message: "`Instant::now` outside rt::trace/rt::metrics; modeled paths must be \
                      deterministic — route timing through the trace timeline or allowlist \
                      a measured path"
                .to_string(),
        });
    }
}

/// Rule `no-deprecated-telemetry`: internal code must use the unified
/// `Option<&Telemetry>` entry points, not the deprecated `*_telemetry` shims.
fn check_no_deprecated_telemetry(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !file.path.starts_with("crates/") {
        return;
    }
    for (n, line) in file.numbered() {
        if line.test {
            continue;
        }
        for needle in DEPRECATED_CALLS {
            if line.code.contains(needle) {
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line: n,
                    rule: "no-deprecated-telemetry",
                    message: format!(
                        "call to deprecated shim `{}`; pass `Option<&Telemetry>` to the \
                         unified entry point instead",
                        needle.trim_start_matches('.').trim_end_matches('(')
                    ),
                });
            }
        }
    }
}

/// Rule `kernel-dispatch`: model/engine non-test code must go through
/// `DispatchPolicy` (`gemm`, `aggregate`, `grad_weights`, …) instead of the
/// raw serial or pool kernels on `Matrix`/`SparseMatrix`.
fn check_kernel_dispatch(file: &SourceFile, allow: &mut AllowTracker, out: &mut Vec<Diagnostic>) {
    if !DISPATCH_ONLY_CRATES
        .iter()
        .any(|c| file.path.starts_with(c))
    {
        return;
    }
    for (n, line) in file.numbered() {
        if line.test {
            continue;
        }
        for needle in RAW_KERNEL_CALLS {
            if contains_token(&line.code, needle)
                && !allow.permits("kernel-dispatch", &file.path, &line.raw)
            {
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line: n,
                    rule: "kernel-dispatch",
                    message: format!(
                        "raw kernel call `{needle}` in model/engine code; route it through \
                         `argo_tensor::DispatchPolicy` so serial-vs-pool selection stays \
                         centralized, or add an allowlist entry with a justification"
                    ),
                });
            }
        }
    }
}

/// Rule `sampler-scratch`: sampler hot-path files must not reintroduce
/// per-batch hash containers or node-id vector clones — batch-lifetime state
/// belongs in `SamplerScratch` so steady-state sampling stays allocation-free
/// (pinned by `loader.rs::steady_state_sampling_is_allocation_free`).
fn check_sampler_scratch(file: &SourceFile, allow: &mut AllowTracker, out: &mut Vec<Diagnostic>) {
    if !SAMPLER_HOT_FILES.iter().any(|f| file.path.ends_with(f)) {
        return;
    }
    for (n, line) in file.numbered() {
        if line.test {
            continue;
        }
        for needle in SCRATCH_NEEDLES {
            if contains_token(&line.code, needle)
                && !allow.permits("sampler-scratch", &file.path, &line.raw)
            {
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line: n,
                    rule: "sampler-scratch",
                    message: format!(
                        "`{needle}` in sampler hot path; use the `SamplerScratch` arena \
                         (epoch-stamped dedup table, recycled buffers) so steady-state \
                         sampling stays allocation-free, or add an allowlist entry with \
                         a justification"
                    ),
                });
            }
        }
    }
}

/// Rule `borrowed-batch`: in non-test code of files that handle
/// [`SparseView`]s (they mention the type), a raw-pointer escape
/// (`.as_ptr()` / `.as_mut_ptr()`) must sit within [`SAFETY_LOOKBACK`]
/// lines of a `racecheck::` shadow-memory annotation. A `SparseView`
/// borrows the sampler's batch arena for exactly one batch; a pointer
/// smuggled past that lifetime dangles the moment the next `sample_into`
/// recycles the arena, and only the race detector can verify the window
/// claim at runtime.
fn check_borrowed_batch(file: &SourceFile, allow: &mut AllowTracker, out: &mut Vec<Diagnostic>) {
    if !file.path.starts_with("crates/") {
        return;
    }
    let handles_views = file
        .lines
        .iter()
        .any(|l| contains_token(&l.code, "SparseView"));
    if !handles_views {
        return;
    }
    for (n, line) in file.numbered() {
        if line.test {
            continue;
        }
        for needle in VIEW_ESCAPES {
            if !contains_token(&line.code, needle) {
                continue;
            }
            let start = n.saturating_sub(SAFETY_LOOKBACK + 1);
            let end = (n + SAFETY_LOOKBACK).min(file.lines.len());
            let annotated = file.lines[start..end]
                .iter()
                .any(|l| RACECHECK_MARKS.iter().any(|m| contains_token(&l.code, m)));
            if !annotated && !allow.permits("borrowed-batch", &file.path, &line.raw) {
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line: n,
                    rule: "borrowed-batch",
                    message: format!(
                        "`{needle}` in a file handling `SparseView` without a `racecheck::` \
                         annotation within {SAFETY_LOOKBACK} lines; a view borrows the batch \
                         arena for one batch only — register the escape with \
                         `argo_rt::racecheck` so the lifetime claim is runtime-verified, or \
                         add an allowlist entry with a justification"
                    ),
                });
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::scan(path, src);
        let mut allow = AllowTracker::new();
        let mut out = Vec::new();
        check_file(&file, &mut allow, &mut out);
        out
    }

    #[test]
    fn uncommented_unsafe_is_flagged() {
        let d = lint("crates/rt/src/x.rs", "fn f() {\n    unsafe { g(); }\n}\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "unsafe-safety");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn safety_comment_within_lookback_passes() {
        let src = "fn f() {\n    // SAFETY: g has no preconditions here.\n    unsafe { g(); }\n}\n";
        assert!(lint("crates/rt/src/x.rs", src).is_empty());
    }

    #[test]
    fn safety_doc_section_covers_unsafe_fn() {
        let src = "/// # Safety\n/// Caller must pass a valid pointer.\npub unsafe fn f() {}\n";
        assert!(lint("shims/libc/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_hot_path_is_flagged() {
        let d = lint("crates/engine/src/x.rs", "fn f() { v.last().unwrap(); }\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "no-panic");
    }

    #[test]
    fn unwrap_in_tests_and_cold_crates_passes() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { v.last().unwrap(); }\n}\n";
        assert!(lint("crates/engine/src/x.rs", src).is_empty());
        assert!(lint("crates/platform/src/x.rs", "fn f() { v.unwrap(); }\n").is_empty());
        assert!(lint("crates/engine/tests/x.rs", "fn f() { v.unwrap(); }\n").is_empty());
    }

    #[test]
    fn unwrap_in_string_literal_passes() {
        let src = "fn f() { log(\"never .unwrap() here\"); }\n";
        assert!(lint("crates/engine/src/x.rs", src).is_empty());
    }

    #[test]
    fn allowlisted_expect_passes_and_panic_needles_match() {
        let src = "fn f() { h.join().expect(\"process panicked\"); }\n";
        assert!(lint("crates/engine/src/engine.rs", src).is_empty());
        let d = lint("crates/rt/src/x.rs", "fn f() { unreachable!() }\n");
        assert_eq!(d.len(), 1);
        // `dont_panic!` must not match `panic!`.
        assert!(lint("crates/rt/src/x.rs", "fn f() { dont_panic!() }\n").is_empty());
    }

    #[test]
    fn instant_flagged_outside_trace_and_metrics() {
        let src = "fn f() { let t = Instant::now(); }\n";
        let d = lint("crates/platform/src/perf.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "no-instant");
        assert!(lint("crates/rt/src/trace.rs", src).is_empty());
        assert!(lint("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn raw_kernel_call_in_model_code_is_flagged() {
        let d = lint("crates/nn/src/x.rs", "fn f() { let z = x.matmul(&w); }\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "kernel-dispatch");
        let d = lint(
            "crates/engine/src/x.rs",
            "fn f() { let a = adj.spmm_transpose(&g); }\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "kernel-dispatch");
    }

    #[test]
    fn raw_kernel_call_outside_scope_or_in_tests_passes() {
        // The tensor crate itself defines and reference-tests the kernels.
        assert!(lint("crates/tensor/src/x.rs", "fn f() { x.matmul(&w); }\n").is_empty());
        // Test modules may call the raw kernels as references.
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.matmul_pool(&w, p); }\n}\n";
        assert!(lint("crates/nn/src/x.rs", src).is_empty());
        assert!(lint("crates/nn/tests/x.rs", "fn f() { adj.spmm(&h); }\n").is_empty());
        // Dispatch-policy calls do not match the raw needles.
        let src = "fn f() { let z = dispatch.gemm(&x, &w, pool); }\n";
        assert!(lint("crates/nn/src/x.rs", src).is_empty());
    }

    #[test]
    fn hash_container_in_sampler_hot_path_is_flagged() {
        let d = lint(
            "crates/sample/src/neighbor.rs",
            "fn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n",
        );
        assert_eq!(d.len(), 1, "one diagnostic per offending line");
        assert_eq!(d[0].rule, "sampler-scratch");
        let d = lint(
            "crates/sample/src/cluster.rs",
            "fn f() { let s = HashSet::new(); }\n",
        );
        assert_eq!(d.len(), 1);
        let d = lint(
            "crates/sample/src/shadow.rs",
            "fn f() { let ids = nodes.clone(); }\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "sampler-scratch");
    }

    #[test]
    fn sampler_scratch_exempts_tests_and_cold_files() {
        // The cross-batch feature cache legitimately owns a long-lived map,
        // and the loader clones Arc handles into worker threads.
        assert!(lint(
            "crates/sample/src/cache.rs",
            "fn f() { let m = HashMap::new(); }\n"
        )
        .is_empty());
        assert!(lint(
            "crates/sample/src/loader.rs",
            "fn f() { let g = graph.clone(); }\n"
        )
        .is_empty());
        // Test modules inside hot files may clone for reference checks.
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let ids = b.src_nodes.clone(); }\n}\n";
        assert!(lint("crates/sample/src/neighbor.rs", src).is_empty());
    }

    #[test]
    fn unannotated_window_escape_is_flagged() {
        let src = "fn f(v: &mut [f32]) {\n\
                   \x20   // SAFETY: windows are disjoint.\n\
                   \x20   let base = v.as_mut_ptr() as usize;\n\
                   \x20   go(base);\n\
                   }\n";
        let d = lint("crates/tensor/src/x.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "window-racecheck");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn annotated_window_escape_passes_before_and_after() {
        // Region registered just before the escape.
        let src = "fn f(v: &mut [f32]) {\n\
                   \x20   let shadow = racecheck::region(\"x\", v.len());\n\
                   \x20   // SAFETY: windows are disjoint.\n\
                   \x20   let base = v.as_mut_ptr() as usize;\n\
                   }\n";
        assert!(lint("crates/tensor/src/x.rs", src).is_empty());
        // Write recorded a few lines after the escape (inside the closure).
        let src = "fn f(v: &mut [f32]) {\n\
                   \x20   // SAFETY: windows are disjoint.\n\
                   \x20   let base = v.as_mut_ptr() as usize;\n\
                   \x20   pool.run(|r| {\n\
                   \x20       racecheck::write(&shadow, r.start, r.len());\n\
                   \x20   });\n\
                   }\n";
        assert!(lint("crates/rt/src/x.rs", src).is_empty());
    }

    #[test]
    fn window_racecheck_annotation_outside_lookback_still_flags() {
        let filler = "    no_op();\n".repeat(SAFETY_LOOKBACK + 1);
        let src = format!(
            "fn f(v: &mut [f32]) {{\n\
             \x20   let shadow = racecheck::region(\"x\", v.len());\n\
             {filler}\
             \x20   // SAFETY: windows are disjoint.\n\
             \x20   let base = v.as_mut_ptr() as usize;\n\
             }}\n"
        );
        let d = lint("crates/tensor/src/x.rs", &src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "window-racecheck");
    }

    #[test]
    fn window_racecheck_exempts_tests_and_foreign_paths() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(v: &mut [u8]) { let b = v.as_mut_ptr() as usize; }\n}\n";
        assert!(lint("crates/rt/src/x.rs", src).is_empty());
        assert!(lint(
            "crates/rt/tests/x.rs",
            "fn f(v: &mut [u8]) { let b = v.as_mut_ptr() as usize; }\n"
        )
        .is_empty());
        assert!(lint(
            "shims/x/src/lib.rs",
            "fn f(v: &mut [u8]) { let b = v.as_mut_ptr() as usize; }\n"
        )
        .is_empty());
    }

    #[test]
    fn serve_is_dispatch_only_and_scratch_checked() {
        // PR 8 extended both rules to the serving pipeline.
        let d = lint(
            "crates/serve/src/x.rs",
            "fn f() { let z = x.matmul(&w); }\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "kernel-dispatch");
        let d = lint(
            "crates/serve/src/session.rs",
            "fn f() { let s = seeds.clone(); }\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "sampler-scratch");
        let d = lint(
            "crates/serve/src/batcher.rs",
            "fn f() { let m: HashMap<u64, u64> = HashMap::new(); }\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "sampler-scratch");
        // The result cache, like the feature cache, owns a long-lived map.
        assert!(lint(
            "crates/serve/src/result_cache.rs",
            "fn f() { let m: HashMap<u64, usize> = HashMap::new(); }\n"
        )
        .is_empty());
    }

    #[test]
    fn batch_and_view_files_are_scratch_checked() {
        // Assembly moved into the arena: the batch/view files are hot now.
        let d = lint(
            "crates/sample/src/batch.rs",
            "fn f() { let ids = nodes.clone(); }\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "sampler-scratch");
        let d = lint(
            "crates/sample/src/view.rs",
            "fn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "sampler-scratch");
        // The legacy reference assembly is the measured baseline, not hot.
        assert!(lint(
            "crates/sample/src/legacy.rs",
            "fn f() { let ids = nodes.clone(); }\n"
        )
        .is_empty());
    }

    #[test]
    fn view_pointer_escape_without_racecheck_is_flagged() {
        let src = "fn f(v: &SparseView<'_>) {\n\
                   \x20   let p = v.indices().as_ptr();\n\
                   \x20   stash(p as usize);\n\
                   }\n";
        let d = lint("crates/nn/src/x.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "borrowed-batch");
        assert_eq!(d[0].line, 2);
        // `.as_mut_ptr()` escapes are caught too (alongside any
        // window-racecheck hit on the ` as usize` form).
        let src = "fn f(v: &mut Vec<u32>, view: SparseView<'_>) {\n\
                   \x20   let p = v.as_mut_ptr();\n\
                   }\n";
        let d = lint("crates/nn/src/x.rs", src);
        assert!(
            d.iter().any(|x| x.rule == "borrowed-batch"),
            "expected borrowed-batch: {d:?}"
        );
    }

    #[test]
    fn view_pointer_escape_with_racecheck_or_without_views_passes() {
        // A racecheck annotation nearby makes the escape checked.
        let src = "fn f(v: &SparseView<'_>) {\n\
                   \x20   let shadow = racecheck::region(\"view\", v.nnz());\n\
                   \x20   let p = v.indices().as_ptr();\n\
                   }\n";
        assert!(lint("crates/nn/src/x.rs", src).is_empty());
        // Files that never touch SparseView are out of scope.
        assert!(lint(
            "crates/nn/src/y.rs",
            "fn f(v: &[u32]) { let p = v.as_ptr(); }\n"
        )
        .is_empty());
        // Test modules inside view-handling files are exempt.
        let src = "fn f(v: &SparseView<'_>) {}\n\
                   #[cfg(test)]\nmod tests {\n\
                   \x20   fn t(v: &[u32]) { let p = v.as_ptr(); }\n\
                   }\n";
        assert!(lint("crates/nn/src/x.rs", src).is_empty());
    }

    #[test]
    fn raw_intrinsics_outside_the_simd_module_are_flagged() {
        let d = lint(
            "crates/tensor/src/kernels.rs",
            "fn f() { let v = _mm256_add_ps(a, b); }\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "simd-isolation");
        let d = lint("crates/nn/src/x.rs", "use core::arch::x86_64::*;\n");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "simd-isolation");
        let d = lint("crates/rt/src/x.rs", "fn f(a: __m256) -> __m256 { a }\n");
        assert_eq!(d.len(), 1, "one diagnostic per line: {d:?}");
    }

    #[test]
    fn simd_module_tests_and_foreign_paths_may_use_intrinsics() {
        // The SIMD module itself is the sanctioned home.
        assert!(lint(
            "crates/tensor/src/simd.rs",
            "use core::arch::x86_64::*;\nfn f(a: __m256) {}\n"
        )
        .is_empty());
        // Test modules and non-crate paths are out of scope.
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { _mm256_setzero_ps(); }\n}\n";
        assert!(lint("crates/tensor/src/kernels.rs", src).is_empty());
        assert!(lint("shims/x/src/lib.rs", "fn f() { _mm256_setzero_ps(); }\n").is_empty());
        // Ordinary identifiers that merely end in the needle don't match.
        assert!(lint("crates/rt/src/x.rs", "fn f() { let comm_mm = 1; }\n").is_empty());
    }

    #[test]
    fn simd_unsafe_must_name_the_feature_check() {
        // SAFETY present but silent about the runtime feature check: the
        // generic unsafe-safety rule passes, simd-isolation flags it.
        let src = "fn f() {\n\
                   \x20   // SAFETY: pointers are in bounds.\n\
                   \x20   unsafe { g(); }\n\
                   }\n";
        let d = lint("crates/tensor/src/simd.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "simd-isolation");
        assert_eq!(d[0].line, 3);
        // Naming the guarding detection satisfies it.
        let src = "fn f() {\n\
                   \x20   // SAFETY: in bounds, and available() confirmed AVX2+FMA.\n\
                   \x20   unsafe { g(); }\n\
                   }\n";
        assert!(lint("crates/tensor/src/simd.rs", src).is_empty());
        // `is_x86_feature_detected` in the comment works too.
        let src = "fn f() {\n\
                   \x20   // SAFETY: guarded by is_x86_feature_detected above.\n\
                   \x20   unsafe { g(); }\n\
                   }\n";
        assert!(lint("crates/tensor/src/simd.rs", src).is_empty());
    }

    #[test]
    fn paired_spans_pass() {
        let src = "fn f(ring: &WorkerRing) {\n\
                   \x20   let s = ring.span_begin(SpanKind::Pick, 0);\n\
                   \x20   work();\n\
                   \x20   ring.span_end(s);\n\
                   }\n";
        assert!(lint("crates/sample/src/x.rs", src).is_empty());
        // Nested blocks between begin and end are fine.
        let src = "fn f() {\n\
                   \x20   let s = ring.span_begin(SpanKind::Pick, 0);\n\
                   \x20   if x { inner(); }\n\
                   \x20   ring.span_end(s);\n\
                   }\n";
        assert!(lint("crates/sample/src/x.rs", src).is_empty());
    }

    #[test]
    fn unended_span_is_flagged() {
        // Begin whose enclosing scope closes before any end.
        let src = "fn f() {\n\
                   \x20   if x {\n\
                   \x20       let s = ring.span_begin(SpanKind::Pick, 0);\n\
                   \x20   }\n\
                   \x20   ring.span_end(s);\n\
                   }\n";
        let d = lint("crates/engine/src/x.rs", src);
        assert_eq!(d.len(), 2, "orphaned begin and unmatched end: {d:?}");
        assert!(d.iter().all(|x| x.rule == "span-pairing"));
        assert_eq!(d[0].line, 3);
        // Begin still open at end of file.
        let src = "fn f() {\n    let s = ring.span_begin(SpanKind::Pick, 0);\n}\n";
        let d = lint("crates/engine/src/x.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn end_without_begin_is_flagged() {
        let d = lint("crates/rt/src/x.rs", "fn f() { ring.span_end(s); }\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "span-pairing");
    }

    #[test]
    fn span_pairing_exempts_tests_and_foreign_paths() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { ring.span_begin(SpanKind::Pick, 0); }\n}\n";
        assert!(lint("crates/rt/src/x.rs", src).is_empty());
        assert!(lint(
            "crates/bench/benches/micro.rs",
            "fn f() { ring.span_begin(SpanKind::Pick, 0); }\n"
        )
        .is_empty());
        assert!(lint(
            "shims/x/src/lib.rs",
            "fn f() { ring.span_begin(SpanKind::Pick, 0); }\n"
        )
        .is_empty());
    }

    #[test]
    fn spans_module_may_read_the_clock() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert!(lint("crates/rt/src/spans.rs", src).is_empty());
    }

    #[test]
    fn deprecated_telemetry_call_is_flagged() {
        let d = lint(
            "crates/cli/src/x.rs",
            "fn f() { argo.run_telemetry(obj, &tel); }\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "no-deprecated-telemetry");
        // The definition site (no leading dot) is not a call.
        assert!(lint("crates/core/src/x.rs", "pub fn run_telemetry(\n").is_empty());
    }
}
