//! A miniature deterministic schedule explorer (a "mini-loom").
//!
//! Real thread interleavings are non-deterministic and unrepeatable; this
//! module takes the opposite trade: model each logical thread as an ordered
//! list of *steps* (closures over shared state), enumerate **every**
//! interleaving of two such lists, and run each interleaving serially on a
//! fresh copy of the state. For step counts `a` and `b` that is
//! `C(a+b, a)` schedules — exhaustive where stress tests are probabilistic.
//!
//! Serial execution of one interleaving is exactly the sequentially
//! consistent execution of that schedule, so any invariant that holds for
//! every enumerated schedule holds for every SC execution of the two
//! threads — which is what the linearizability tests in
//! `tests/linearize.rs` assert for the feature cache and loader channels.

/// One schedule: `true` = next step of thread A, `false` = thread B.
pub type Schedule = Vec<bool>;

/// All interleavings of `a` A-steps and `b` B-steps, in lexicographic
/// order (A-first). `C(a+b, a)` schedules — keep step counts small.
pub fn all_interleavings(a: usize, b: usize) -> Vec<Schedule> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(a + b);
    fn rec(a: usize, b: usize, cur: &mut Schedule, out: &mut Vec<Schedule>) {
        if a == 0 && b == 0 {
            out.push(cur.clone());
            return;
        }
        if a > 0 {
            cur.push(true);
            rec(a - 1, b, cur, out);
            cur.pop();
        }
        if b > 0 {
            cur.push(false);
            rec(a, b - 1, cur, out);
            cur.pop();
        }
    }
    rec(a, b, &mut cur, &mut out);
    out
}

/// Runs every interleaving of two step lists and checks an invariant.
///
/// For each schedule: `init` builds fresh shared state, the steps run in
/// schedule order, then `check` receives the final state plus the schedule
/// (for the panic message). `step_a`/`step_b` receive the state and the
/// 0-based index of the step within their thread.
///
/// Panics (via the caller's `check`) identify the exact schedule that broke
/// the invariant, rendered as e.g. `AABAB`.
pub fn explore<S>(
    a_steps: usize,
    b_steps: usize,
    mut init: impl FnMut() -> S,
    mut step_a: impl FnMut(&mut S, usize),
    mut step_b: impl FnMut(&mut S, usize),
    mut check: impl FnMut(&S, &str),
) -> usize {
    let schedules = all_interleavings(a_steps, b_steps);
    let n = schedules.len();
    for schedule in schedules {
        let mut state = init();
        let (mut ia, mut ib) = (0usize, 0usize);
        for &is_a in &schedule {
            if is_a {
                step_a(&mut state, ia);
                ia += 1;
            } else {
                step_b(&mut state, ib);
                ib += 1;
            }
        }
        let rendered: String = schedule
            .iter()
            .map(|&s| if s { 'A' } else { 'B' })
            .collect();
        check(&state, &rendered);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaving_counts_are_binomial() {
        assert_eq!(all_interleavings(0, 0).len(), 1);
        assert_eq!(all_interleavings(1, 1).len(), 2);
        assert_eq!(all_interleavings(2, 2).len(), 6);
        assert_eq!(all_interleavings(3, 3).len(), 20);
        assert_eq!(all_interleavings(4, 3).len(), 35);
    }

    #[test]
    fn each_schedule_preserves_per_thread_order() {
        for s in all_interleavings(3, 2) {
            assert_eq!(s.iter().filter(|&&x| x).count(), 3);
            assert_eq!(s.len(), 5);
        }
        // Lexicographic: first schedule is AAABB, last is BBAAA.
        let all = all_interleavings(3, 2);
        assert_eq!(all[0], vec![true, true, true, false, false]);
        assert_eq!(all[all.len() - 1], vec![false, false, true, true, true]);
    }

    #[test]
    fn explore_visits_every_schedule_with_fresh_state() {
        let mut seen = Vec::new();
        let n = explore(
            2,
            1,
            Vec::new,
            |s: &mut Vec<char>, _| s.push('a'),
            |s: &mut Vec<char>, _| s.push('b'),
            |s, sched| seen.push((s.clone(), sched.to_string())),
        );
        assert_eq!(n, 3);
        let orders: Vec<String> = seen.iter().map(|(s, _)| s.iter().collect()).collect();
        assert_eq!(orders, vec!["aab", "aba", "baa"]);
        // State was fresh per schedule: each run has exactly 3 chars.
        assert!(seen.iter().all(|(s, _)| s.len() == 3));
    }

    #[test]
    fn explore_finds_a_seeded_atomicity_bug() {
        // A classic lost update: both "threads" do read-modify-write in two
        // separate steps. Some interleaving must lose one increment.
        struct S {
            shared: i32,
            tmp_a: i32,
            tmp_b: i32,
        }
        let mut lost = 0;
        explore(
            2,
            2,
            || S {
                shared: 0,
                tmp_a: 0,
                tmp_b: 0,
            },
            |s, i| match i {
                0 => s.tmp_a = s.shared,
                _ => s.shared = s.tmp_a + 1,
            },
            |s, i| match i {
                0 => s.tmp_b = s.shared,
                _ => s.shared = s.tmp_b + 1,
            },
            |s, _| {
                if s.shared != 2 {
                    lost += 1;
                }
            },
        );
        assert!(lost > 0, "exhaustive exploration must hit the lost update");
    }
}
