//! `argo-check`: in-tree correctness tooling for the ARGO runtime.
//!
//! Two halves live here, both wired into `ci.sh`:
//!
//! * **`argo-lint`** (`src/bin/argo-lint.rs`) — a hand-rolled static
//!   analyzer over the workspace's Rust sources. No `syn`, no rustc
//!   internals: the same offline philosophy as `rt/json.rs`, built on a
//!   small lexical scanner ([`source`]) plus per-file rules ([`rules`]),
//!   a justified-exception allowlist ([`allowlist`]) and cross-file
//!   telemetry schema checks ([`schema`]).
//! * **the concurrency harness** — a deterministic schedule-permutation
//!   explorer ([`schedule`], a mini-loom) used by this crate's test suite,
//!   which with `--features sanitize` also turns on the lock-order /
//!   double-lock sanitizer inside the `parking_lot` shim.

use std::fmt;
use std::path::{Path, PathBuf};

pub mod allowlist;
pub mod rules;
pub mod schedule;
pub mod schema;
pub mod source;

use source::SourceFile;

/// One lint finding, printed as `path:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative path.
    pub path: String,
    /// 1-indexed line; 0 for file- or tree-level findings.
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Recursively collects `.rs` files under `dir`, skipping build output.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans every workspace source file under `root` (crates/, shims/ and the
/// top-level tests/), returning them with repo-relative paths.
pub fn scan_tree(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut paths = Vec::new();
    for top in ["crates", "shims", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut paths)?;
        }
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        files.push(SourceFile::scan(&rel, &text));
    }
    Ok(files)
}

/// Runs every rule over an already-scanned file set. Split from
/// [`lint_tree`] so tests can lint synthetic trees without touching disk.
pub fn lint_files(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut allow = allowlist::AllowTracker::new();
    let mut out = Vec::new();
    for file in files {
        rules::check_file(file, &mut allow, &mut out);
    }
    allow.report_stale(&mut out);
    out.extend(schema::check_schema(files));
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

/// Scans and lints the workspace rooted at `root`.
pub fn lint_tree(root: &Path) -> Result<Vec<Diagnostic>, String> {
    Ok(lint_files(&scan_tree(root)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_actual_repo_is_lint_clean() {
        // The acceptance invariant behind `ci.sh`'s argo-lint stage, checked
        // in-process as well: the tree this crate ships in has no findings.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let diagnostics = lint_tree(&root).expect("scan succeeds");
        assert!(diagnostics.is_empty(), "{diagnostics:#?}");
    }

    #[test]
    fn seeded_violations_surface_with_file_and_line() {
        // Deliberately plant one violation of each rule in an otherwise
        // clean synthetic tree and check each is reported at its exact
        // file:line — the diagnostics a CI user would see before exit 1.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let mut files = scan_tree(&root).expect("scan succeeds");
        files.push(source::SourceFile::scan(
            "crates/rt/src/seeded.rs",
            "fn f() {\n    unsafe { g(); }\n    let v = x.unwrap();\n}\n",
        ));
        let diagnostics = lint_files(&files);
        let rendered: Vec<String> = diagnostics.iter().map(|d| d.to_string()).collect();
        assert!(
            rendered.iter().any(|r| r
                == "crates/rt/src/seeded.rs:2: [unsafe-safety] `unsafe` without a \
                              `// SAFETY:` comment within 8 lines"),
            "{rendered:?}"
        );
        assert!(
            rendered
                .iter()
                .any(|r| r.starts_with("crates/rt/src/seeded.rs:3: [no-panic]")),
            "{rendered:?}"
        );
        assert_eq!(diagnostics.len(), 2, "no collateral findings: {rendered:?}");
    }

    #[test]
    fn seeded_unconsumed_event_kind_fails_schema() {
        // An event kind added to the producer without a matching consumer
        // entry must fail: simulate by removing a name from report.rs's
        // manifest rather than touching the real file.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let mut files = scan_tree(&root).expect("scan succeeds");
        for f in &mut files {
            if f.path.ends_with("crates/cli/src/report.rs") {
                for line in &mut f.lines {
                    line.strings.retain(|s| s != "config_applied");
                }
            }
        }
        let diagnostics = lint_files(&files);
        assert!(
            diagnostics
                .iter()
                .any(|d| d.rule == "schema" && d.message.contains("config_applied")),
            "{diagnostics:#?}"
        );
    }
}
