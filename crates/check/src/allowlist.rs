//! The embedded allowlist: every deliberate exception to a lint rule lives
//! here, next to a written justification. An entry that stops matching
//! anything is itself a lint error ("stale allowlist entry"), so the list
//! can only shrink or be consciously edited — it cannot silently rot.

use crate::Diagnostic;

/// One sanctioned exception to a rule.
pub struct AllowEntry {
    /// Rule id this entry applies to (e.g. `no-panic`).
    pub rule: &'static str,
    /// Repo-relative path suffix of the file (matched with `ends_with`).
    pub path: &'static str,
    /// Substring of the *raw* source line identifying the site. Raw text is
    /// used so needles can quote string contents (`.expect("spawn sampler")`)
    /// that the code channel blanks out.
    pub needle: &'static str,
    /// Why this site is exempt. Shown nowhere, but reviewed with the diff.
    pub why: &'static str,
}

/// The exceptions. Keep sorted by (rule, path).
pub const ALLOWLIST: &[AllowEntry] = &[
    // ---- no-instant: legitimately *measured* paths. The rule exists so
    // modeled/deterministic paths (crates/platform, replay) never read the
    // wall clock; measured paths are the clock's raison d'être. -------------
    AllowEntry {
        rule: "no-instant",
        path: "crates/core/src/lib.rs",
        needle: "Instant::now()",
        why: "tuner suggest/observe CPU-time accounting around the real objective call",
    },
    AllowEntry {
        rule: "no-instant",
        path: "crates/engine/src/engine.rs",
        needle: "let start = Instant::now()",
        why: "measured epoch wall-time; this IS the measurement the tuner consumes",
    },
    AllowEntry {
        rule: "no-instant",
        path: "crates/rt/src/events.rs",
        needle: "origin: std::time::Instant::now()",
        why: "RunLogger event timestamps are wall-clock by design (JSONL `t` field)",
    },
    AllowEntry {
        rule: "no-instant",
        path: "crates/sample/src/loader.rs",
        needle: "let t0 = Instant::now()",
        why: "per-batch gather timing fed to the stage histograms",
    },
    AllowEntry {
        rule: "no-instant",
        path: "crates/tune/src/online.rs",
        needle: "Instant::now()",
        why: "suggest/observe overhead metrics (Table 5 reproduction)",
    },
    // ---- no-panic: sites whose invariant is established immediately
    // before, where returning an Error would claim a failure mode that
    // cannot happen. ------------------------------------------------------
    AllowEntry {
        rule: "no-panic",
        path: "crates/engine/src/engine.rs",
        needle: ".expect(\"configuration exceeds engine cores\")",
        why: "Config::clamp_to above bounds the request to the pool size",
    },
    AllowEntry {
        rule: "no-panic",
        path: "crates/engine/src/engine.rs",
        needle: ".expect(\"process panicked\")",
        why: "join() only fails if a simulated process panicked; propagating that panic is correct",
    },
    AllowEntry {
        rule: "no-panic",
        path: "crates/rt/src/affinity.rs",
        needle: ".expect(\"capacity checked above\")",
        why: "preceding if-branch guarantees capacity; see the comment at the call site",
    },
    AllowEntry {
        rule: "no-panic",
        path: "crates/rt/src/pool.rs",
        needle: ".expect(\"spawn pool worker\")",
        why: "thread::Builder::spawn fails only on OS thread exhaustion; no meaningful recovery",
    },
    AllowEntry {
        rule: "no-panic",
        path: "crates/rt/src/pool.rs",
        needle: ".expect(\"pool alive\")",
        why: "worker channels live exactly as long as the pool that owns them",
    },
    AllowEntry {
        rule: "no-panic",
        path: "crates/rt/src/pool.rs",
        needle: ".expect(\"pool workers alive\")",
        why: "completion latch is held open until every worker acks; disconnect is unreachable",
    },
    AllowEntry {
        rule: "no-panic",
        path: "crates/sample/src/loader.rs",
        needle: ".expect(\"spawn sampler\")",
        why: "thread::Builder::spawn fails only on OS thread exhaustion; no meaningful recovery",
    },
    AllowEntry {
        rule: "no-panic",
        path: "crates/tensor/src/sparse.rs",
        needle: "needs values\")",
        why: "weighted-matrix kernels require values by API contract; CSR constructor enforces it",
    },
    // ---- sampler-scratch: serve-path sites that allocate by design. -------
    AllowEntry {
        rule: "sampler-scratch",
        path: "crates/serve/src/session.rs",
        needle: "req.seeds.clone()",
        why: "the result cache takes ownership of its key; one clone per computed (miss) \
              response, not per batch element — hits allocate nothing",
    },
];

/// Tracks which entries matched during a run so stale ones can be reported.
pub struct AllowTracker {
    used: Vec<bool>,
}

impl AllowTracker {
    pub fn new() -> Self {
        Self {
            used: vec![false; ALLOWLIST.len()],
        }
    }

    /// Returns true (and records the use) if some entry sanctions this
    /// diagnostic site.
    pub fn permits(&mut self, rule: &str, path: &str, raw_line: &str) -> bool {
        let mut hit = false;
        for (i, e) in ALLOWLIST.iter().enumerate() {
            if e.rule == rule && path.ends_with(e.path) && raw_line.contains(e.needle) {
                self.used[i] = true;
                hit = true;
            }
        }
        hit
    }

    /// Emits a diagnostic for every entry that never matched: either the
    /// exempted code was fixed (delete the entry) or the needle drifted.
    pub fn report_stale(&self, out: &mut Vec<Diagnostic>) {
        for (i, e) in ALLOWLIST.iter().enumerate() {
            if !self.used[i] {
                out.push(Diagnostic {
                    path: e.path.to_string(),
                    line: 0,
                    rule: "stale-allowlist",
                    message: format!(
                        "allowlist entry for rule `{}` with needle `{}` matched nothing; \
                         delete it or update the needle",
                        e.rule, e.needle
                    ),
                });
            }
        }
    }
}

impl Default for AllowTracker {
    fn default() -> Self {
        Self::new()
    }
}
