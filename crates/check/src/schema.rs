//! Telemetry schema consistency: the event kinds and metric names the
//! runtime *produces* must exactly match what `argo report` *consumes*.
//!
//! Three contracts are checked across the scanned tree:
//!
//! 1. Every event kind string in `rt/src/events.rs` appears in the
//!    `CONSUMED_EVENT_KINDS` manifest in `cli/src/report.rs` (and vice
//!    versa — a consumed kind no producer emits is stale), and report.rs
//!    actually matches on the corresponding `RunEvent::Variant`.
//! 2. Every metric name constant in `rt/src/telemetry.rs`'s `names` module
//!    is referenced (as `names::IDENT`) by at least one producer crate and
//!    by report.rs — an emitted-but-never-rendered metric is dead weight,
//!    a rendered-but-never-emitted one is a stale dashboard.
//! 3. Every stage label in `rt/src/trace.rs` appears as a string in
//!    report.rs (the per-stage table would silently drop a renamed stage).
//! 4. Every span label in `rt/src/spans.rs` appears as a string in
//!    report.rs — the critical-path section (and its legend) must keep up
//!    with new span kinds, or their attribution would render namelessly.

use std::collections::{BTreeMap, BTreeSet};

use crate::rules::is_test_path;
use crate::source::SourceFile;
use crate::Diagnostic;

const EVENTS_FILE: &str = "crates/rt/src/events.rs";
const TELEMETRY_FILE: &str = "crates/rt/src/telemetry.rs";
const TRACE_FILE: &str = "crates/rt/src/trace.rs";
const SPANS_FILE: &str = "crates/rt/src/spans.rs";
const REPORT_FILE: &str = "crates/cli/src/report.rs";

fn find<'a>(files: &'a [SourceFile], suffix: &str) -> Option<&'a SourceFile> {
    files.iter().find(|f| f.path.ends_with(suffix))
}

/// `snake_case` → `CamelCase` (event kind → `RunEvent` variant name).
fn camel(kind: &str) -> String {
    kind.split('_')
        .map(|w| {
            let mut cs = w.chars();
            match cs.next() {
                Some(c) => c.to_uppercase().collect::<String>() + cs.as_str(),
                None => String::new(),
            }
        })
        .collect()
}

/// Event kind literals in events.rs: strings on non-test lines that map a
/// `RunEvent::` variant (`kind()` match arms and the JSONL parse arms — the
/// two stay in sync by construction, so either yields the same set).
fn producer_event_kinds(events: &SourceFile) -> BTreeMap<String, usize> {
    let mut kinds = BTreeMap::new();
    for (n, line) in events.numbered() {
        if line.test || !line.code.contains("RunEvent::") || !line.code.contains("=>") {
            continue;
        }
        for s in &line.strings {
            kinds.entry(s.clone()).or_insert(n);
        }
    }
    kinds
}

/// Strings in report.rs's `CONSUMED_EVENT_KINDS` manifest. Collected from
/// the declaration line until the closing `]`.
fn consumed_event_kinds(report: &SourceFile) -> Option<(usize, BTreeSet<String>)> {
    let mut at = None;
    let mut set = BTreeSet::new();
    let mut in_manifest = false;
    for (n, line) in report.numbered() {
        if !in_manifest {
            if line.code.contains("CONSUMED_EVENT_KINDS") {
                in_manifest = true;
                at = Some(n);
            } else {
                continue;
            }
        }
        set.extend(line.strings.iter().cloned());
        // `];` ends the manifest — a bare `]` would false-match the `&[&str]`
        // type annotation on the declaration line.
        if line.code.contains("];") {
            break;
        }
    }
    at.map(|n| (n, set))
}

/// Metric name constants in telemetry.rs: `pub const IDENT: &str = "lit";`.
fn metric_names(telemetry: &SourceFile) -> Vec<(String, String, usize)> {
    let mut out = Vec::new();
    for (n, line) in telemetry.numbered() {
        if line.test || !line.code.contains("pub const ") || !line.code.contains(": &str") {
            continue;
        }
        let after = match line.code.split("pub const ").nth(1) {
            Some(a) => a,
            None => continue,
        };
        let ident: String = after
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if ident.is_empty() {
            continue;
        }
        if let Some(lit) = line.strings.first() {
            out.push((ident, lit.clone(), n));
        }
    }
    out
}

/// Stage labels in trace.rs: strings on `Stage::… =>` match arms.
fn stage_labels(trace: &SourceFile) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (n, line) in trace.numbered() {
        if line.test || !line.code.contains("Stage::") || !line.code.contains("=>") {
            continue;
        }
        for s in &line.strings {
            out.push((s.clone(), n));
        }
    }
    out
}

/// Span labels in spans.rs: strings on `SpanKind::… =>` match arms.
fn span_labels(spans: &SourceFile) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (n, line) in spans.numbered() {
        if line.test || !line.code.contains("SpanKind::") || !line.code.contains("=>") {
            continue;
        }
        for s in &line.strings {
            out.push((s.clone(), n));
        }
    }
    out
}

/// Whether any non-test line of `file` references `names::IDENT` as a whole
/// token (no trailing identifier char, so `CACHE_HITS` ≠ `CACHE_HITS_TOTAL`).
fn references_name(file: &SourceFile, ident: &str) -> bool {
    let needle = format!("names::{ident}");
    file.lines.iter().any(|l| {
        if l.test {
            return false;
        }
        let mut from = 0;
        while let Some(pos) = l.code[from..].find(&needle) {
            let end = from + pos + needle.len();
            let whole = l.code[end..]
                .chars()
                .next()
                .is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
            if whole {
                return true;
            }
            from = end;
        }
        false
    })
}

/// Runs the three cross-file schema checks over the scanned tree.
pub fn check_schema(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let (events, telemetry, trace, report) = match (
        find(files, EVENTS_FILE),
        find(files, TELEMETRY_FILE),
        find(files, TRACE_FILE),
        find(files, REPORT_FILE),
    ) {
        (Some(e), Some(m), Some(t), Some(r)) => (e, m, t, r),
        _ => {
            out.push(Diagnostic {
                path: REPORT_FILE.to_string(),
                line: 0,
                rule: "schema",
                message: "schema check needs events.rs, telemetry.rs, trace.rs and report.rs; \
                          one or more were not found in the scanned tree"
                    .to_string(),
            });
            return out;
        }
    };

    // ---- 1. event kinds ----------------------------------------------
    let produced = producer_event_kinds(events);
    match consumed_event_kinds(report) {
        None => out.push(Diagnostic {
            path: report.path.clone(),
            line: 1,
            rule: "schema",
            message: "report.rs must declare a CONSUMED_EVENT_KINDS manifest listing every \
                      event kind it renders"
                .to_string(),
        }),
        Some((manifest_line, consumed)) => {
            for (kind, line) in &produced {
                if !consumed.contains(kind) {
                    out.push(Diagnostic {
                        path: events.path.clone(),
                        line: *line,
                        rule: "schema",
                        message: format!(
                            "event kind \"{kind}\" is produced but missing from \
                             CONSUMED_EVENT_KINDS in report.rs — render it or record why not"
                        ),
                    });
                }
            }
            for kind in &consumed {
                if !produced.contains_key(kind) {
                    out.push(Diagnostic {
                        path: report.path.clone(),
                        line: manifest_line,
                        rule: "schema",
                        message: format!(
                            "CONSUMED_EVENT_KINDS lists \"{kind}\" but no such event kind \
                             exists in events.rs (stale name?)"
                        ),
                    });
                }
            }
            // The manifest must be honest: report.rs must actually match on
            // the corresponding variant.
            for kind in produced.keys() {
                if !consumed.contains(kind) {
                    continue;
                }
                let variant = format!("RunEvent::{}", camel(kind));
                let used = report
                    .lines
                    .iter()
                    .any(|l| !l.test && l.code.contains(&variant));
                if !used {
                    out.push(Diagnostic {
                        path: report.path.clone(),
                        line: manifest_line,
                        rule: "schema",
                        message: format!(
                            "CONSUMED_EVENT_KINDS claims \"{kind}\" but report.rs never \
                             matches `{variant}`"
                        ),
                    });
                }
            }
        }
    }

    // ---- 2. metric names ---------------------------------------------
    let producers: Vec<&SourceFile> = files
        .iter()
        .filter(|f| {
            f.path.starts_with("crates/")
                && !f.path.ends_with(TELEMETRY_FILE)
                && !f.path.ends_with(REPORT_FILE)
                && !is_test_path(&f.path)
        })
        .collect();
    for (ident, lit, line) in metric_names(telemetry) {
        if !producers.iter().any(|f| references_name(f, &ident)) {
            out.push(Diagnostic {
                path: telemetry.path.clone(),
                line,
                rule: "schema",
                message: format!(
                    "metric `names::{ident}` (\"{lit}\") is never emitted by any producer \
                     crate — dead name or missing instrumentation"
                ),
            });
        }
        if !references_name(report, &ident) {
            out.push(Diagnostic {
                path: telemetry.path.clone(),
                line,
                rule: "schema",
                message: format!(
                    "metric `names::{ident}` (\"{lit}\") is never consumed by report.rs — \
                     the report would silently drop it"
                ),
            });
        }
    }

    // ---- 3. stage labels ---------------------------------------------
    for (label, line) in stage_labels(trace) {
        let rendered = report
            .lines
            .iter()
            .any(|l| !l.test && l.strings.contains(&label));
        if !rendered {
            out.push(Diagnostic {
                path: trace.path.clone(),
                line,
                rule: "schema",
                message: format!(
                    "stage label \"{label}\" from trace.rs does not appear in report.rs's \
                     per-stage table — a renamed stage would vanish from reports"
                ),
            });
        }
    }

    // ---- 4. span labels ----------------------------------------------
    // Guarded: synthetic trees without a spans.rs simply skip this check.
    if let Some(spans) = find(files, SPANS_FILE) {
        for (label, line) in span_labels(spans) {
            let rendered = report
                .lines
                .iter()
                .any(|l| !l.test && l.strings.iter().any(|s| s.contains(&label)));
            if !rendered {
                out.push(Diagnostic {
                    path: spans.path.clone(),
                    line,
                    rule: "schema",
                    message: format!(
                        "span label \"{label}\" from spans.rs does not appear in report.rs — \
                         the critical-path section (or its legend) must name every span kind"
                    ),
                });
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(path: &str, src: &str) -> SourceFile {
        SourceFile::scan(path, src)
    }

    fn base_events() -> SourceFile {
        scan(
            EVENTS_FILE,
            "impl RunEvent {\n\
             pub fn kind(&self) -> &'static str {\n\
             match self {\n\
             RunEvent::EpochEnd { .. } => \"epoch_end\",\n\
             RunEvent::TunerTrial(_) => \"tuner_trial\",\n\
             }\n}\n}\n",
        )
    }

    fn base_telemetry() -> SourceFile {
        scan(
            TELEMETRY_FILE,
            "pub mod names {\n    pub const EPOCH_SECONDS: &str = \"epoch_seconds\";\n}\n",
        )
    }

    fn base_trace() -> SourceFile {
        scan(
            TRACE_FILE,
            "fn label(&self) -> &'static str {\nmatch self {\nStage::Sample => \"sample\",\n}\n}\n",
        )
    }

    fn good_report() -> SourceFile {
        scan(
            REPORT_FILE,
            "const CONSUMED_EVENT_KINDS: &[&str] = &[\"epoch_end\", \"tuner_trial\"];\n\
             fn render() {\n\
             if let RunEvent::EpochEnd { .. } = e {}\n\
             if let RunEvent::TunerTrial(t) = e {}\n\
             let s = \"sample\";\n\
             let v = names::EPOCH_SECONDS;\n\
             }\n",
        )
    }

    fn producer() -> SourceFile {
        scan(
            "crates/engine/src/engine.rs",
            "fn emit() { m.observe(names::EPOCH_SECONDS, 1.0); }\n",
        )
    }

    #[test]
    fn consistent_schema_passes() {
        let files = vec![
            base_events(),
            base_telemetry(),
            base_trace(),
            good_report(),
            producer(),
        ];
        assert!(check_schema(&files).is_empty());
    }

    #[test]
    fn unconsumed_event_kind_is_flagged() {
        let report = scan(
            REPORT_FILE,
            "const CONSUMED_EVENT_KINDS: &[&str] = &[\"epoch_end\"];\n\
             fn render() {\n\
             if let RunEvent::EpochEnd { .. } = e {}\n\
             let s = \"sample\";\n\
             let v = names::EPOCH_SECONDS;\n\
             }\n",
        );
        let files = vec![
            base_events(),
            base_telemetry(),
            base_trace(),
            report,
            producer(),
        ];
        let d = check_schema(&files);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("tuner_trial"));
    }

    #[test]
    fn manifest_claim_without_variant_match_is_flagged() {
        let report = scan(
            REPORT_FILE,
            "const CONSUMED_EVENT_KINDS: &[&str] = &[\"epoch_end\", \"tuner_trial\"];\n\
             fn render() {\n\
             if let RunEvent::EpochEnd { .. } = e {}\n\
             let s = \"sample\";\n\
             let v = names::EPOCH_SECONDS;\n\
             }\n",
        );
        let files = vec![
            base_events(),
            base_telemetry(),
            base_trace(),
            report,
            producer(),
        ];
        let d = check_schema(&files);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("RunEvent::TunerTrial"));
    }

    #[test]
    fn unproduced_and_unconsumed_metric_is_flagged() {
        let telemetry = scan(
            TELEMETRY_FILE,
            "pub mod names {\n\
             pub const EPOCH_SECONDS: &str = \"epoch_seconds\";\n\
             pub const GHOST_TOTAL: &str = \"ghost_total\";\n}\n",
        );
        let files = vec![
            base_events(),
            telemetry,
            base_trace(),
            good_report(),
            producer(),
        ];
        let d = check_schema(&files);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|x| x.message.contains("never emitted")));
        assert!(d.iter().any(|x| x.message.contains("never consumed")));
    }

    #[test]
    fn prefix_name_reference_does_not_satisfy_longer_ident() {
        let telemetry = scan(
            TELEMETRY_FILE,
            "pub mod names {\n    pub const CACHE_HITS_TOTAL: &str = \"cache_hits_total\";\n}\n",
        );
        // Referencing CACHE_HITS (a prefix) must not count for CACHE_HITS_TOTAL.
        let producer = scan(
            "crates/engine/src/engine.rs",
            "fn emit() { m.inc(names::CACHE_HITS, 1); }\n",
        );
        let files = vec![
            base_events(),
            telemetry,
            base_trace(),
            good_report(),
            producer,
        ];
        let d = check_schema(&files);
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn span_labels_match_via_substring_or_flag() {
        let spans = scan(
            SPANS_FILE,
            "fn label(self) -> &'static str {\nmatch self {\n\
             SpanKind::Pick => \"sample\",\nSpanKind::EnqueueWait => \"channel_wait\",\n}\n}\n",
        );
        // "sample" appears verbatim in good_report(); "channel_wait" only as
        // a substring of a longer legend string — both must satisfy check 4.
        let report = scan(
            REPORT_FILE,
            "const CONSUMED_EVENT_KINDS: &[&str] = &[\"epoch_end\", \"tuner_trial\"];\n\
             fn render() {\n\
             if let RunEvent::EpochEnd { .. } = e {}\n\
             if let RunEvent::TunerTrial(t) = e {}\n\
             let s = \"sample\";\n\
             let legend = \"channel_wait = enqueue backpressure\";\n\
             let v = names::EPOCH_SECONDS;\n\
             }\n",
        );
        let files = vec![
            base_events(),
            base_telemetry(),
            base_trace(),
            report,
            producer(),
            spans,
        ];
        assert!(check_schema(&files).is_empty());

        let spans = scan(
            SPANS_FILE,
            "fn label(self) -> &'static str {\nmatch self {\nSpanKind::Ghost => \"ghost_wait\",\n}\n}\n",
        );
        let files = vec![
            base_events(),
            base_telemetry(),
            base_trace(),
            good_report(),
            producer(),
            spans,
        ];
        let d = check_schema(&files);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("\"ghost_wait\""));
    }

    #[test]
    fn trees_without_spans_file_skip_span_check() {
        let files = vec![
            base_events(),
            base_telemetry(),
            base_trace(),
            good_report(),
            producer(),
        ];
        assert!(check_schema(&files).is_empty());
    }

    #[test]
    fn missing_stage_label_is_flagged() {
        let trace = scan(
            TRACE_FILE,
            "fn label(&self) -> &'static str {\nmatch self {\nStage::Flush => \"flush\",\n}\n}\n",
        );
        let files = vec![
            base_events(),
            base_telemetry(),
            trace,
            good_report(),
            producer(),
        ];
        let d = check_schema(&files);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("\"flush\""));
    }
}
