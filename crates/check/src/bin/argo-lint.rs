//! `argo-lint` — the workspace's own static analyzer.
//!
//! Usage: `cargo run -p argo-check --bin argo-lint [-- <repo-root>]`
//!
//! Scans `crates/`, `shims/` and `tests/` under the repo root (default:
//! two levels above this crate's manifest), prints every finding as
//! `path:line: [rule] message`, and exits 1 if anything was found —
//! which is how `ci.sh` gates on it. Exit 2 means the scan itself failed.

use std::path::PathBuf;

fn main() {
    let root = match std::env::args().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")),
    };
    let files = match argo_check::scan_tree(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("argo-lint: scan failed: {e}");
            std::process::exit(2);
        }
    };
    let total_lines: usize = files.iter().map(|f| f.lines.len()).sum();
    let diagnostics = argo_check::lint_files(&files);
    if diagnostics.is_empty() {
        println!(
            "argo-lint: OK ({} files, {} lines, 0 findings)",
            files.len(),
            total_lines
        );
        return;
    }
    for d in &diagnostics {
        println!("{d}");
    }
    eprintln!(
        "argo-lint: {} finding(s) in {} files ({} lines scanned)",
        diagnostics.len(),
        files.len(),
        total_lines
    );
    std::process::exit(1);
}
