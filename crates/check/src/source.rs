//! A hand-rolled lexical model of Rust source, in the same offline spirit
//! as `rt/json.rs`: no `syn`, no proc-macro machinery — a single-pass
//! state machine that is exactly strong enough for the repo's lint rules.
//!
//! For every physical line it separates *code* (with string/char contents
//! blanked so rules never match inside literals), *comments* (so the
//! `// SAFETY:` convention can be checked), and the *string literals*
//! themselves (so the telemetry-schema rule can compare event and metric
//! names across files). It also marks `#[cfg(test)]` regions so rules that
//! only govern production code can skip tests.

/// One physical source line, split into the channels the rules consume.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// The original line text (allowlist needles match against this, so
    /// they can name string contents the `code` channel blanks out).
    pub raw: String,
    /// Code with comments removed and string/char literal contents blanked.
    pub code: String,
    /// Comment text on this line (`//`/`/* */` bodies, doc comments).
    pub comment: String,
    /// String literal contents that appear on this line, in order.
    pub strings: Vec<String>,
    /// Whether this line sits inside a `#[cfg(test)]` module.
    pub test: bool,
}

/// A scanned file: path (repo-relative) plus per-line channels.
#[derive(Debug)]
pub struct SourceFile {
    pub path: String,
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Scans `text` into lines. `path` is kept verbatim for diagnostics.
    pub fn scan(path: &str, text: &str) -> Self {
        let mut lines = split_channels(text);
        for (line, raw) in lines.iter_mut().zip(text.lines()) {
            line.raw = raw.to_string();
        }
        mark_test_regions(&mut lines);
        Self {
            path: path.to_string(),
            lines,
        }
    }

    /// 1-indexed iteration over lines.
    pub fn numbered(&self) -> impl Iterator<Item = (usize, &Line)> {
        self.lines.iter().enumerate().map(|(i, l)| (i + 1, l))
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    Str,
    RawStr(usize),
    BlockComment(usize),
}

/// Splits source text into per-line code/comment/string channels.
fn split_channels(text: &str) -> Vec<Line> {
    let mut out: Vec<Line> = Vec::new();
    let mut cur = Line::default();
    let mut cur_string = String::new();
    let mut state = State::Code;
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::Str || matches!(state, State::RawStr(_)) {
                // Multi-line string: the literal keeps accumulating.
                cur_string.push('\n');
            }
            out.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    // Line comment: rest of the line is comment channel.
                    let mut j = i;
                    while j < chars.len() && chars[j] != '\n' {
                        cur.comment.push(chars[j]);
                        j += 1;
                    }
                    i = j;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    cur.code.push('"');
                    state = State::Str;
                    cur_string.clear();
                    i += 1;
                    continue;
                }
                // Raw strings: r"..", r#".."#, br".." etc.
                if (c == 'r' || c == 'b')
                    && !prev_is_ident(&cur.code)
                    && is_raw_string_start(&chars, i)
                {
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    // chars[j] is the opening quote.
                    cur.code.push('"');
                    cur_string.clear();
                    state = State::RawStr(hashes);
                    i = j + 1;
                    continue;
                }
                // Char literal vs lifetime: 'x' / '\n' are literals, 'a in
                // `&'a str` is not.
                if c == '\'' {
                    if let Some(end) = char_literal_end(&chars, i) {
                        cur.code.push_str("' '");
                        i = end;
                        continue;
                    }
                }
                cur.code.push(c);
                i += 1;
            }
            State::Str => {
                if c == '\\' {
                    // Keep escapes opaque; they cannot end the literal.
                    if let Some(&esc) = chars.get(i + 1) {
                        if esc != '\n' {
                            cur_string.push(esc);
                        }
                    }
                    i += 2;
                    continue;
                }
                if c == '"' {
                    cur.code.push('"');
                    cur.strings.push(std::mem::take(&mut cur_string));
                    state = State::Code;
                } else {
                    cur_string.push(c);
                }
                i += 1;
            }
            State::RawStr(hashes) => {
                if c == '"' && (0..hashes).all(|k| chars.get(i + 1 + k) == Some(&'#')) {
                    cur.code.push('"');
                    cur.strings.push(std::mem::take(&mut cur_string));
                    state = State::Code;
                    i += 1 + hashes;
                } else {
                    cur_string.push(c);
                    i += 1;
                }
            }
            State::BlockComment(depth) => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    cur.comment.push_str("/*");
                    i += 2;
                } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    cur.comment.push_str("*/");
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() || !cur.strings.is_empty() {
        out.push(cur);
    }
    out
}

/// Whether the last code char continues an identifier (then `r`/`b` is part
/// of a name like `for`, not a raw-string prefix).
fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .last()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Detects `r"`, `r#…"`, `br"`, `br#…"` at position `i`.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i + 1;
    if chars.get(i) == Some(&'b') {
        if chars.get(j) != Some(&'r') {
            return false;
        }
        j += 1;
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// If a char literal starts at `i` (which holds `'`), returns the index one
/// past its closing quote; `None` for lifetimes.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1)? {
        '\\' => {
            // Escaped char: scan to the next unescaped quote (covers \u{..}).
            let mut j = i + 2;
            while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                j += 1;
            }
            (chars.get(j) == Some(&'\'')).then_some(j + 1)
        }
        _ => (chars.get(i + 2) == Some(&'\'')).then_some(i + 3),
    }
}

/// Marks every line inside a `#[cfg(test)]`-attributed block as test code.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i32 = 0;
    let mut armed: Option<i32> = None; // depth at which #[cfg(test)] appeared
    let mut test_end: Option<i32> = None; // exit depth of the active region
    for line in lines.iter_mut() {
        let depth_before = depth;
        let opens = line.code.matches('{').count() as i32;
        let closes = line.code.matches('}').count() as i32;
        depth += opens - closes;
        if let Some(end) = test_end {
            line.test = true;
            if depth <= end {
                test_end = None;
            }
            continue;
        }
        if let Some(at) = armed {
            // Waiting for the attributed item's block to open.
            if depth > at {
                line.test = true;
                test_end = Some(at);
                armed = None;
                if depth <= at {
                    test_end = None;
                }
            } else if line.code.trim().is_empty() || line.code.contains("#[") {
                // Attribute stacking / blank lines between attr and item.
            } else if depth < at {
                armed = None; // attribute never got a block; disarm
            }
            continue;
        }
        if line.code.contains("#[cfg(test)]") {
            line.test = true;
            armed = Some(depth_before);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_blanked_and_captured() {
        let f = SourceFile::scan("x.rs", "let s = \"a.unwrap()\"; s.len();\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert_eq!(f.lines[0].strings, vec!["a.unwrap()".to_string()]);
        assert!(f.lines[0].code.contains("s.len()"));
    }

    #[test]
    fn comments_split_off() {
        let f = SourceFile::scan("x.rs", "foo(); // SAFETY: fine\nbar();\n");
        assert!(f.lines[0].comment.contains("SAFETY: fine"));
        assert!(!f.lines[0].code.contains("SAFETY"));
        assert!(f.lines[1].code.contains("bar"));
    }

    #[test]
    fn block_comments_nest() {
        let f = SourceFile::scan("x.rs", "a(); /* x /* y */ z */ b();\n");
        assert!(f.lines[0].code.contains("a()"));
        assert!(f.lines[0].code.contains("b()"));
        assert!(!f.lines[0].code.contains('z'));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let f = SourceFile::scan("x.rs", "let c = '\"'; fn f<'a>(x: &'a str) {}\n");
        // The quote inside the char literal must not open a string.
        assert!(f.lines[0].code.contains("fn f<'a>"));
        let g = SourceFile::scan("x.rs", "let c = '\\n'; g();\n");
        assert!(g.lines[0].code.contains("g()"));
    }

    #[test]
    fn raw_strings() {
        let f = SourceFile::scan("x.rs", "let s = r#\"panic!(\"x\")\"#; h();\n");
        assert!(!f.lines[0].code.contains("panic!"));
        assert_eq!(f.lines[0].strings, vec!["panic!(\"x\")".to_string()]);
        assert!(f.lines[0].code.contains("h()"));
    }

    #[test]
    fn multiline_strings_stay_literal() {
        let f = SourceFile::scan("x.rs", "let s = \"a\nb.unwrap()\nc\"; done();\n");
        assert!(f.lines.iter().all(|l| !l.code.contains("unwrap")));
        assert!(f.lines[2].code.contains("done()"));
        assert_eq!(f.lines[2].strings, vec!["a\nb.unwrap()\nc".to_string()]);
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn prod() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { y.unwrap(); }\n\
                   }\n\
                   fn prod2() {}\n";
        let f = SourceFile::scan("x.rs", src);
        assert!(!f.lines[0].test);
        assert!(f.lines[1].test && f.lines[2].test && f.lines[3].test && f.lines[4].test);
        assert!(!f.lines[5].test);
    }
}
