//! # argo-cli — command-line front end
//!
//! `argo train` runs real auto-tuned GNN training on a synthetic dataset;
//! `argo simulate` evaluates the paper-scale platform model for one task;
//! `argo space` inspects the design space. The argument parser is a tiny
//! hand-rolled `--key value` reader (no external dependency).

use std::collections::HashMap;

pub mod perf;
pub mod report;

use argo_graph::datasets::{DatasetSpec, FLICKR, OGBN_PAPERS100M, OGBN_PRODUCTS, REDDIT};
use argo_platform::{
    Library, ModelKind, PlatformSpec, SamplerKind, ICE_LAKE_8380H, SAPPHIRE_RAPIDS_6430L,
};

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cli {
    /// First positional argument.
    pub command: String,
    /// `--key value` pairs (keys without the leading dashes).
    pub options: HashMap<String, String>,
}

/// Parses `args` (without the program name). Flags must be `--key value`
/// pairs; a missing value or an unknown shape is an error.
pub fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut it = args.iter();
    let command = it.next().cloned().ok_or("missing subcommand")?;
    if command.starts_with("--") {
        return Err(format!("expected subcommand, got flag {command}"));
    }
    let mut options = HashMap::new();
    while let Some(key) = it.next() {
        let stripped = key
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {key}"))?;
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{stripped} needs a value"))?;
        options.insert(stripped.to_string(), value.clone());
    }
    Ok(Cli { command, options })
}

impl Cli {
    /// String option with a default.
    pub fn get<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(String::as_str).unwrap_or(default)
    }

    /// Numeric option with a default.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }

    /// Boolean option (`--key true|false|1|0|yes|no`), default `false`.
    pub fn get_bool(&self, key: &str) -> Result<bool, String> {
        match self.options.get(key).map(String::as_str) {
            None => Ok(false),
            Some("true" | "1" | "yes" | "on") => Ok(true),
            Some("false" | "0" | "no" | "off") => Ok(false),
            Some(v) => Err(format!("--{key}: expected true|false, got '{v}'")),
        }
    }
}

/// Resolves a dataset name.
pub fn dataset_by_name(name: &str) -> Result<DatasetSpec, String> {
    match name.to_ascii_lowercase().as_str() {
        "flickr" => Ok(FLICKR),
        "reddit" => Ok(REDDIT),
        "products" | "ogbn-products" => Ok(OGBN_PRODUCTS),
        "papers" | "papers100m" | "ogbn-papers100m" => Ok(OGBN_PAPERS100M),
        other => Err(format!(
            "unknown dataset '{other}' (expected flickr|reddit|products|papers100m)"
        )),
    }
}

/// Resolves a platform name.
pub fn platform_by_name(name: &str) -> Result<PlatformSpec, String> {
    match name.to_ascii_lowercase().as_str() {
        "icelake" | "ice-lake" | "8380h" => Ok(ICE_LAKE_8380H),
        "spr" | "sapphirerapids" | "sapphire-rapids" | "6430l" => Ok(SAPPHIRE_RAPIDS_6430L),
        other => Err(format!("unknown platform '{other}' (expected icelake|spr)")),
    }
}

/// Resolves a library name.
pub fn library_by_name(name: &str) -> Result<Library, String> {
    match name.to_ascii_lowercase().as_str() {
        "dgl" => Ok(Library::Dgl),
        "pyg" => Ok(Library::Pyg),
        other => Err(format!("unknown library '{other}' (expected dgl|pyg)")),
    }
}

/// Resolves a modeled sampler name.
pub fn sampler_kind_by_name(name: &str) -> Result<SamplerKind, String> {
    match name.to_ascii_lowercase().as_str() {
        "neighbor" => Ok(SamplerKind::Neighbor),
        "shadow" => Ok(SamplerKind::Shadow),
        other => Err(format!(
            "unknown sampler '{other}' (expected neighbor|shadow)"
        )),
    }
}

/// Resolves a modeled model name.
pub fn model_kind_by_name(name: &str) -> Result<ModelKind, String> {
    match name.to_ascii_lowercase().as_str() {
        "sage" | "graphsage" => Ok(ModelKind::Sage),
        "gcn" => Ok(ModelKind::Gcn),
        other => Err(format!("unknown model '{other}' (expected sage|gcn)")),
    }
}

/// Help text.
pub fn usage() -> &'static str {
    "argo — auto-tuning runtime for scalable GNN training (paper reproduction)

USAGE:
  argo train    [--dataset flickr] [--scale 0.02] [--sampler neighbor|shadow|saint|cluster]
                [--model sage|gcn|gat] [--epochs 20] [--n-search 5] [--batch 512]
                [--hidden 64] [--layers 2] [--seed 0] [--cache-rows 0]
                [--save FILE] [--load FILE]
                [--metrics-out run.jsonl] [--trace-out trace.json] [--report true]
      run real auto-tuned training on a synthetic (or saved) dataset;
      --cache-rows N enables the cross-batch feature cache (N rows, 0 = off)

  argo simulate [--platform icelake|spr] [--library dgl|pyg]
                [--sampler neighbor|shadow] [--model sage|gcn] [--dataset products]
                [--metrics-out run.jsonl] [--report true]
      evaluate the paper-scale platform model: default vs auto-tuned vs optimal

  argo report   --metrics run.jsonl
      render a telemetry report (per-stage p50/p95/max, critical-path
      attribution, bytes/batch, feature-cache hit rates, bottleneck audit,
      tuner convergence) from a JSONL file written with --metrics-out

  argo top      --metrics run.jsonl [--refresh 2] [--frames 1]
      compact live view of the latest epoch (critical path, bytes/batch,
      cache, bottleneck audit); re-reads the JSONL every --refresh seconds
      for --frames iterations

  argo perf-diff [--quick true] [--tolerance 0.15]
                 [--baseline-sampling FILE] [--baseline-kernels FILE]
                 [--baseline-serving FILE]
                 [--current-sampling FILE] [--current-kernels FILE]
                 [--current-serving FILE]
      perf-regression gate: compare a fresh bench run's speedup ratios
      against the committed baselines; fails when any ratio drops more
      than --tolerance (default 15%) below its baseline. --quick true
      compares target/BENCH_*.quick.json (ARGO_BENCH_QUICK=1 artifacts)
      against the committed BENCH_*.quick.json, as wired into ci.sh;
      without it, baselines are BENCH_*.json and --current-* is required
      (quick and full ratios are not cross-comparable). The serving pair
      gates the tuned-vs-default p99 improvement and the warm result-cache
      hit rate from BENCH_serving.json

  argo space    [--cores 112]
      inspect the configuration design space

  argo info
      list datasets and platforms

TELEMETRY:
  --metrics-out FILE   write structured run events (epoch_start/epoch_end,
                       stage_summary, tuner_trial, config_applied) as JSONL
  --trace-out FILE     write a Chrome-tracing JSON of stage intervals
                       (load in chrome://tracing or https://ui.perfetto.dev)
  --report true        print the telemetry report after the run"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let cli = parse_args(&argv("train --dataset reddit --epochs 30")).unwrap();
        assert_eq!(cli.command, "train");
        assert_eq!(cli.get("dataset", "flickr"), "reddit");
        assert_eq!(cli.get_num::<usize>("epochs", 0).unwrap(), 30);
        assert_eq!(cli.get_num::<usize>("n-search", 5).unwrap(), 5);
    }

    #[test]
    fn rejects_missing_value_and_bad_flag() {
        assert!(parse_args(&argv("train --dataset")).is_err());
        assert!(parse_args(&argv("train dataset reddit")).is_err());
        assert!(parse_args(&argv("--train")).is_err());
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn rejects_bad_numbers() {
        let cli = parse_args(&argv("train --epochs abc")).unwrap();
        assert!(cli.get_num::<usize>("epochs", 1).is_err());
    }

    #[test]
    fn name_resolution() {
        assert_eq!(dataset_by_name("Products").unwrap().name, "ogbn-products");
        assert_eq!(
            dataset_by_name("papers100m").unwrap().name,
            "ogbn-papers100M"
        );
        assert!(dataset_by_name("imagenet").is_err());
        assert_eq!(platform_by_name("ICELAKE").unwrap().total_cores, 112);
        assert_eq!(platform_by_name("spr").unwrap().total_cores, 64);
        assert!(library_by_name("jax").is_err());
        assert_eq!(sampler_kind_by_name("shadow").unwrap(), SamplerKind::Shadow);
        assert_eq!(model_kind_by_name("graphsage").unwrap(), ModelKind::Sage);
    }
}
