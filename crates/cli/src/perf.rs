//! `argo perf diff` — the perf-regression gate — and `argo top`'s live view.
//!
//! The bench crate emits machine-readable baselines (`BENCH_sampling.json`
//! / `BENCH_kernels.json` at the repository root for full mode, committed;
//! quick CI runs land in `target/BENCH_*.quick.json` and diff against the
//! committed `BENCH_*.quick.json` baselines, recorded as the per-metric
//! minimum over several reference-container runs). Absolute milliseconds
//! are not comparable across modes or machines — but the *speedup ratios*
//! (scratch vs serial reference, pool/blocked kernels vs serial) are
//! shape-normalized, so the diff compares those within a mode: a current
//! ratio may not fall more than the tolerance below its baseline.

use argo_rt::json::Json;
use argo_rt::{RunEvent, Source};

/// Default regression tolerance: a current speedup ratio passes when it is
/// at least `baseline × (1 − tolerance)`. 15% absorbs CI-runner noise while
/// still catching real hot-path regressions.
pub const DEFAULT_TOLERANCE: f64 = 0.15;

/// One compared metric.
#[derive(Clone, Debug)]
pub struct DiffLine {
    /// Human-readable metric label, e.g. `kernels/gemm:speedup_pool`.
    pub metric: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Value from the current run.
    pub current: f64,
    /// Whether the metric is inside its tolerance band:
    /// `current >= baseline * (1 - tolerance)` for higher-better metrics,
    /// `current <= baseline * (1 + tolerance)` for lower-better ones.
    pub ok: bool,
    /// Whether this metric regresses *upward* (latency, bytes) rather than
    /// downward (speedups).
    pub lower_better: bool,
}

/// Outcome of a baseline-vs-current comparison.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// All compared metrics, in file order.
    pub lines: Vec<DiffLine>,
    /// Non-fatal observations (missing counterparts, new variants).
    pub notes: Vec<String>,
    /// Tolerance the lines were judged with.
    pub tolerance: f64,
}

impl DiffReport {
    fn new(tolerance: f64) -> Self {
        Self {
            tolerance,
            ..Self::default()
        }
    }

    fn push(&mut self, metric: String, baseline: f64, current: f64) {
        let ok = current >= baseline * (1.0 - self.tolerance);
        self.lines.push(DiffLine {
            metric,
            baseline,
            current,
            ok,
            lower_better: false,
        });
    }

    /// Records a lower-better metric (ns/edge, bytes/batch): the gate trips
    /// when the current value *exceeds* `baseline * (1 + tolerance)`.
    fn push_lower(&mut self, metric: String, baseline: f64, current: f64) {
        let ok = current <= baseline * (1.0 + self.tolerance);
        self.lines.push(DiffLine {
            metric,
            baseline,
            current,
            ok,
            lower_better: true,
        });
    }

    fn note(&mut self, msg: String) {
        self.notes.push(msg);
    }

    /// Absorbs another report's lines and notes (same tolerance assumed).
    pub fn merge(&mut self, other: DiffReport) {
        self.lines.extend(other.lines);
        self.notes.extend(other.notes);
    }

    /// Number of metrics below the tolerance band.
    pub fn regressions(&self) -> usize {
        self.lines.iter().filter(|l| !l.ok).count()
    }

    /// Text rendering: one line per metric, notes, and a verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "perf diff (tolerance: current >= baseline * {:.2}):\n",
            1.0 - self.tolerance
        ));
        for l in &self.lines {
            let delta = if l.baseline.abs() > f64::EPSILON {
                (l.current / l.baseline - 1.0) * 100.0
            } else {
                0.0
            };
            let verdict = if l.ok { "ok" } else { "REGRESSED" };
            if l.lower_better {
                out.push_str(&format!(
                    "  {:<52} base {:>10.2} cur {:>10.2} ({delta:>+6.1}%) {verdict} (lower better)\n",
                    l.metric, l.baseline, l.current,
                ));
            } else {
                out.push_str(&format!(
                    "  {:<52} base {:>6.3}x cur {:>6.3}x ({delta:>+6.1}%) {verdict}\n",
                    l.metric, l.baseline, l.current,
                ));
            }
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        let r = self.regressions();
        if r == 0 {
            out.push_str(&format!(
                "perf gate OK ({} metrics compared)\n",
                self.lines.len()
            ));
        } else {
            out.push_str(&format!(
                "perf gate FAILED: {r} of {} metrics regressed past tolerance\n",
                self.lines.len()
            ));
        }
        out
    }
}

fn num(j: &Json, key: &str) -> Option<f64> {
    j.get(key).and_then(Json::as_f64)
}

fn text(j: &Json, key: &str) -> Option<String> {
    j.get(key).and_then(Json::as_str).map(str::to_string)
}

/// `(name, speedup_vs_serial)` rows of a `BENCH_sampling.json` document.
fn sampling_variants(doc: &Json) -> Vec<(String, f64)> {
    doc.get("variants")
        .and_then(Json::as_arr)
        .map(|vs| {
            vs.iter()
                .filter_map(|v| Some((text(v, "name")?, num(v, "speedup_vs_serial")?)))
                .collect()
        })
        .unwrap_or_default()
}

/// Compares sampling speedups by variant name. The serial reference is its
/// own baseline (always 1.0), so it is skipped.
pub fn diff_sampling(baseline: &Json, current: &Json, tolerance: f64) -> DiffReport {
    let mut rep = DiffReport::new(tolerance);
    let base = sampling_variants(baseline);
    let cur = sampling_variants(current);
    for (name, b) in &base {
        if name == "serial_reference" {
            continue;
        }
        match cur.iter().find(|(n, _)| n == name) {
            Some((_, c)) => rep.push(format!("sampling/{name}:speedup_vs_serial"), *b, *c),
            None => rep.note(format!(
                "sampling variant '{name}' missing from current run"
            )),
        }
    }
    for (name, _) in &cur {
        if base.iter().all(|(n, _)| n != name) {
            rep.note(format!("sampling variant '{name}' is new (no baseline)"));
        }
    }
    // Fused-assembly metrics are lower-better: ns per assembled edge and
    // arena metadata bytes per batch. Baselines written before the arena
    // assembly landed lack the keys — noted, not failed.
    for key in ["assembly_ns_per_edge", "metadata_bytes_per_batch"] {
        match (num(baseline, key), num(current, key)) {
            (Some(b), Some(c)) => rep.push_lower(format!("sampling/{key}"), b, c),
            (Some(_), None) => rep.note(format!("'{key}' missing from current run")),
            (None, Some(_)) => rep.note(format!("'{key}' is new (no baseline)")),
            (None, None) => {}
        }
    }
    if let Some(pct) = num(current, "span_overhead_pct") {
        rep.note(format!(
            "span profiler overhead: {pct:.2}% (bench-gated at 5%)"
        ));
    }
    rep
}

struct KernelRow {
    name: String,
    shape: String,
    pool: Option<f64>,
    blocked: Option<f64>,
    simd: Option<f64>,
}

fn kernel_rows(doc: &Json) -> Vec<KernelRow> {
    doc.get("kernels")
        .and_then(Json::as_arr)
        .map(|ks| {
            ks.iter()
                .filter_map(|k| {
                    Some(KernelRow {
                        name: text(k, "name")?,
                        shape: text(k, "shape").unwrap_or_default(),
                        pool: num(k, "speedup_pool"),
                        blocked: num(k, "speedup_blocked"),
                        simd: num(k, "speedup_simd"),
                    })
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Compares kernel speedups. Kernel names repeat (two `gemm` shapes), so
/// rows are paired by ordered name occurrence: the i-th baseline `gemm`
/// matches the i-th current `gemm`. Shapes may differ between quick and
/// full mode — both are shown in the metric label.
pub fn diff_kernels(baseline: &Json, current: &Json, tolerance: f64) -> DiffReport {
    let mut rep = DiffReport::new(tolerance);
    let base = kernel_rows(baseline);
    let cur = kernel_rows(current);
    let mut used = vec![false; cur.len()];
    for b in &base {
        let hit = cur
            .iter()
            .enumerate()
            .find(|(i, k)| !used[*i] && k.name == b.name);
        match hit {
            Some((i, k)) => {
                used[i] = true;
                let shapes = if b.shape == k.shape {
                    b.shape.clone()
                } else {
                    format!("{} vs {}", b.shape, k.shape)
                };
                if let (Some(bp), Some(cp)) = (b.pool, k.pool) {
                    rep.push(format!("kernels/{}[{shapes}]:speedup_pool", b.name), bp, cp);
                }
                if let (Some(bb), Some(cb)) = (b.blocked, k.blocked) {
                    rep.push(
                        format!("kernels/{}[{shapes}]:speedup_blocked", b.name),
                        bb,
                        cb,
                    );
                }
                if let (Some(bs), Some(cs)) = (b.simd, k.simd) {
                    rep.push(format!("kernels/{}[{shapes}]:speedup_simd", b.name), bs, cs);
                }
            }
            None => rep.note(format!(
                "kernel '{}' [{}] missing from current run",
                b.name, b.shape
            )),
        }
    }
    for (i, k) in cur.iter().enumerate() {
        if !used[i] {
            rep.note(format!(
                "kernel '{}' [{}] is new (no baseline)",
                k.name, k.shape
            ));
        }
    }
    let pair = (
        baseline
            .get("train_step_gathered")
            .and_then(|t| num(t, "speedup_pool")),
        current
            .get("train_step_gathered")
            .and_then(|t| num(t, "speedup_pool")),
    );
    if let (Some(b), Some(c)) = pair {
        rep.push("train_step_gathered:speedup_pool".to_string(), b, c);
    }
    rep
}

/// Compares serving-baseline ratios from `BENCH_serving.json`. The gated
/// metrics are shape-normalized and deterministic on any host: the
/// p99 improvement of the tuned configuration over the library default
/// (from the pure open-loop simulation driven by the platform model) and
/// the warm result-cache hit rate of the closed-loop load generator
/// (structural — a function of the request mix, not the clock).
pub fn diff_serving(baseline: &Json, current: &Json, tolerance: f64) -> DiffReport {
    let mut rep = DiffReport::new(tolerance);
    for key in ["p99_improvement", "warm_hit_rate"] {
        match (num(baseline, key), num(current, key)) {
            (Some(b), Some(c)) => rep.push(format!("serving:{key}"), b, c),
            (Some(_), None) => rep.note(format!("serving metric '{key}' missing from current run")),
            (None, _) => rep.note(format!("serving metric '{key}' has no baseline")),
        }
    }
    let points = |doc: &Json| {
        doc.get("qps_curve")
            .and_then(Json::as_arr)
            .map_or(0, |c| c.len())
    };
    let (bp, cp) = (points(baseline), points(current));
    if bp != cp {
        rep.note(format!(
            "serving qps curve has {cp} points vs {bp} in the baseline"
        ));
    }
    rep
}

/// Full diff over both artifact pairs.
pub fn diff_all(
    base_sampling: &Json,
    cur_sampling: &Json,
    base_kernels: &Json,
    cur_kernels: &Json,
    tolerance: f64,
) -> DiffReport {
    let mut rep = diff_sampling(base_sampling, cur_sampling, tolerance);
    rep.merge(diff_kernels(base_kernels, cur_kernels, tolerance));
    rep
}

/// One-screen live view of a run's most recent telemetry, rendered from the
/// structured events (`argo top --metrics run.jsonl` re-reads and re-renders
/// the file as the run appends to it).
pub fn render_top(events: &[(RunEvent, f64, Source)]) -> String {
    let mut out = String::new();
    let mut last_epoch: Option<(u64, &argo_rt::EpochRecord)> = None;
    let mut last_cp: Option<&Vec<(String, f64)>> = None;
    let mut last_bytes: Option<&argo_rt::BytesRecord> = None;
    let mut last_cache: Option<&argo_rt::CacheSummaryRecord> = None;
    let mut last_trial: Option<&argo_rt::TrialRecord> = None;
    let mut last_check: Option<(&String, &String)> = None;
    let mut modeled = false;
    for (e, _, s) in events {
        modeled |= *s == Source::Modeled;
        match e {
            RunEvent::EpochEnd { epoch, record, .. } => last_epoch = Some((*epoch, record)),
            RunEvent::CriticalPath { fractions, .. } => last_cp = Some(fractions),
            RunEvent::BytesSummary { record, .. } => last_bytes = Some(record),
            RunEvent::CacheSummary { summary, .. } => last_cache = Some(summary),
            RunEvent::TunerTrial(t) => last_trial = Some(t),
            RunEvent::BottleneckCheck {
                predicted,
                measured,
                ..
            } => last_check = Some((predicted, measured)),
            _ => {}
        }
    }
    let Some((epoch, r)) = last_epoch else {
        return "argo top — waiting for events…\n".to_string();
    };
    out.push_str(&format!(
        "argo top — epoch {epoch}{}\n",
        if modeled { " (modeled)" } else { "" }
    ));
    out.push_str(&format!(
        "  epoch: {:.3}s, loss {:.4}, acc {:.3}, {} iterations, {} edges\n",
        r.epoch_time, r.loss, r.train_accuracy, r.iterations, r.edges
    ));
    if let Some(fractions) = last_cp {
        let mut sorted: Vec<&(String, f64)> = fractions.iter().filter(|(_, f)| *f > 0.0).collect();
        sorted.sort_by(|a, b| b.1.total_cmp(&a.1));
        let parts: Vec<String> = sorted
            .iter()
            .map(|(s, f)| format!("{s} {:.0}%", f * 100.0))
            .collect();
        out.push_str(&format!("  critical path: {}\n", parts.join(" | ")));
    }
    if let Some(b) = last_bytes {
        out.push_str(&format!(
            "  bytes/batch: {:.1} KB metadata, {:.1} MB cache-served, {} scratch allocs\n",
            b.metadata_bytes_per_batch() / 1e3,
            b.cache_bytes as f64 / 1e6,
            b.scratch_allocs
        ));
    }
    if let Some(c) = last_cache {
        out.push_str(&format!(
            "  cache: hit rate {:.1}%, {} / {} rows resident\n",
            c.hit_rate() * 100.0,
            c.resident_rows,
            c.capacity_rows
        ));
    }
    if let Some((predicted, measured)) = last_check {
        out.push_str(&format!(
            "  bottleneck: predicted {predicted}, measured {measured} ({})\n",
            if predicted == measured {
                "agree"
            } else {
                "DISAGREE"
            }
        ));
    }
    if let Some(t) = last_trial {
        out.push_str(&format!(
            "  tuner: trial {} — best {:.3}s at {}\n",
            t.trial, t.best_epoch_time, t.best_config
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_rt::{BytesRecord, Config, EpochRecord};

    fn sampling_doc(scratch: f64, pool: f64) -> Json {
        let variant = |name: &str, s: f64| {
            Json::obj(vec![
                ("name", Json::str(name)),
                ("speedup_vs_serial", Json::Num(s)),
            ])
        };
        Json::obj(vec![(
            "variants",
            Json::Arr(vec![
                variant("serial_reference", 1.0),
                variant("scratch", scratch),
                variant("scratch_pool2", pool),
            ]),
        )])
    }

    fn kernels_doc(gemm1: f64, gemm2: f64, train: f64) -> Json {
        let kernel = |name: &str, shape: &str, pool: f64| {
            Json::obj(vec![
                ("name", Json::str(name)),
                ("shape", Json::str(shape)),
                ("speedup_pool", Json::Num(pool)),
                ("speedup_blocked", Json::Num(pool + 0.1)),
                ("speedup_simd", Json::Num(pool + 0.2)),
            ])
        };
        Json::obj(vec![
            (
                "kernels",
                Json::Arr(vec![
                    kernel("gemm", "256x64x32", gemm1),
                    kernel("gemm", "1024x256x128", gemm2),
                ]),
            ),
            (
                "train_step_gathered",
                Json::obj(vec![("speedup_pool", Json::Num(train))]),
            ),
        ])
    }

    #[test]
    fn identical_runs_pass() {
        let rep = diff_all(
            &sampling_doc(1.9, 1.95),
            &sampling_doc(1.9, 1.95),
            &kernels_doc(1.4, 1.45, 0.89),
            &kernels_doc(1.4, 1.45, 0.89),
            DEFAULT_TOLERANCE,
        );
        assert_eq!(rep.regressions(), 0);
        // scratch + pool2 + 2 gemms × (pool, blocked, simd) + train_step = 9.
        assert_eq!(rep.lines.len(), 9);
        assert!(rep.render().contains("perf gate OK"));
    }

    #[test]
    fn within_tolerance_passes_beyond_fails() {
        // 10% down: inside the 15% band.
        let rep = diff_sampling(&sampling_doc(2.0, 2.0), &sampling_doc(1.8, 2.0), 0.15);
        assert_eq!(rep.regressions(), 0);
        // 20% down: outside.
        let rep = diff_sampling(&sampling_doc(2.0, 2.0), &sampling_doc(1.6, 2.0), 0.15);
        assert_eq!(rep.regressions(), 1);
        let text = rep.render();
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("perf gate FAILED"), "{text}");
    }

    /// A sampling doc carrying the lower-better assembly metrics.
    fn sampling_doc_with_assembly(scratch: f64, ns_per_edge: f64, bytes: f64) -> Json {
        let Json::Obj(mut fields) = sampling_doc(scratch, scratch) else {
            panic!("sampling_doc must be an object");
        };
        fields.insert("assembly_ns_per_edge".into(), Json::Num(ns_per_edge));
        fields.insert("metadata_bytes_per_batch".into(), Json::Num(bytes));
        Json::Obj(fields)
    }

    #[test]
    fn lower_better_metrics_regress_upward() {
        let base = sampling_doc_with_assembly(1.9, 16.0, 800_000.0);
        // 10% slower / fatter: inside the 15% band.
        let rep = diff_sampling(
            &base,
            &sampling_doc_with_assembly(1.9, 17.6, 880_000.0),
            0.15,
        );
        assert_eq!(rep.regressions(), 0, "{}", rep.render());
        assert_eq!(rep.lines.len(), 4, "2 variants + 2 assembly metrics");
        assert!(rep.render().contains("(lower better)"));
        // 25% up: past the band — both assembly metrics trip.
        let rep = diff_sampling(
            &base,
            &sampling_doc_with_assembly(1.9, 20.0, 1_000_000.0),
            0.15,
        );
        assert_eq!(rep.regressions(), 2, "{}", rep.render());
        // Getting *faster* and *smaller* is never a regression.
        let rep = diff_sampling(
            &base,
            &sampling_doc_with_assembly(1.9, 8.0, 400_000.0),
            0.15,
        );
        assert_eq!(rep.regressions(), 0, "{}", rep.render());
    }

    #[test]
    fn assembly_metrics_missing_counterparts_are_notes() {
        let with = sampling_doc_with_assembly(1.9, 16.0, 800_000.0);
        let without = sampling_doc(1.9, 1.9);
        // Old baseline, new run: noted as new, not compared.
        let rep = diff_sampling(&without, &with, 0.15);
        assert_eq!(rep.regressions(), 0);
        assert!(
            rep.notes.iter().any(|n| n.contains("no baseline")),
            "{:?}",
            rep.notes
        );
        // New baseline, old run: noted as missing, not failed.
        let rep = diff_sampling(&with, &without, 0.15);
        assert_eq!(rep.regressions(), 0);
        assert!(
            rep.notes
                .iter()
                .any(|n| n.contains("missing from current run")),
            "{:?}",
            rep.notes
        );
    }

    #[test]
    fn a_baseline_below_one_does_not_require_reaching_one() {
        // Some committed speedups are < 1.0 (pool losses on small shapes);
        // the gate is relative to the baseline, not to 1.0.
        let rep = diff_kernels(
            &kernels_doc(1.4, 1.45, 0.86),
            &kernels_doc(1.4, 1.45, 0.80),
            0.15,
        );
        assert_eq!(rep.regressions(), 0);
    }

    #[test]
    fn duplicate_kernel_names_pair_by_occurrence() {
        // Regressing only the SECOND gemm must be caught even though both
        // rows share a name.
        let rep = diff_kernels(
            &kernels_doc(1.4, 1.45, 0.89),
            &kernels_doc(1.4, 0.9, 0.89),
            0.15,
        );
        assert_eq!(rep.regressions(), 3); // its pool, blocked and simd columns
        assert!(rep.render().contains("1024x256x128"));
    }

    #[test]
    fn missing_counterparts_become_notes_not_failures() {
        let base = sampling_doc(1.9, 1.95);
        let cur = Json::obj(vec![(
            "variants",
            Json::Arr(vec![Json::obj(vec![
                ("name", Json::str("scratch")),
                ("speedup_vs_serial", Json::Num(1.9)),
            ])]),
        )]);
        let rep = diff_sampling(&base, &cur, 0.15);
        assert_eq!(rep.regressions(), 0);
        assert!(rep
            .notes
            .iter()
            .any(|n| n.contains("scratch_pool2") && n.contains("missing")));
    }

    fn serving_doc(improvement: f64, hit_rate: f64, points: usize) -> Json {
        let row = |qps: f64| {
            Json::obj(vec![
                ("qps", Json::Num(qps)),
                ("default_p99_ms", Json::Num(10.0)),
                ("tuned_p99_ms", Json::Num(10.0 / improvement)),
            ])
        };
        Json::obj(vec![
            ("p99_improvement", Json::Num(improvement)),
            ("warm_hit_rate", Json::Num(hit_rate)),
            (
                "qps_curve",
                Json::Arr((0..points).map(|i| row(100.0 * (i + 1) as f64)).collect()),
            ),
        ])
    }

    #[test]
    fn serving_diff_gates_improvement_and_hit_rate() {
        let rep = diff_serving(&serving_doc(1.5, 0.95, 4), &serving_doc(1.5, 0.95, 4), 0.15);
        assert_eq!(rep.regressions(), 0);
        assert_eq!(rep.lines.len(), 2);

        // A collapsed improvement ratio fails the gate.
        let rep = diff_serving(&serving_doc(1.5, 0.95, 4), &serving_doc(1.0, 0.95, 4), 0.15);
        assert_eq!(rep.regressions(), 1);
        assert!(rep.render().contains("serving:p99_improvement"));

        // A cold result cache fails the gate.
        let rep = diff_serving(&serving_doc(1.5, 0.95, 4), &serving_doc(1.5, 0.30, 4), 0.15);
        assert_eq!(rep.regressions(), 1);
        assert!(rep.render().contains("serving:warm_hit_rate"));
    }

    #[test]
    fn serving_diff_notes_curve_shape_and_missing_metrics() {
        let rep = diff_serving(&serving_doc(1.5, 0.95, 4), &serving_doc(1.5, 0.95, 2), 0.15);
        assert_eq!(rep.regressions(), 0);
        assert!(rep.notes.iter().any(|n| n.contains("2 points vs 4")));

        let rep = diff_serving(&serving_doc(1.5, 0.95, 4), &Json::obj(vec![]), 0.15);
        assert_eq!(
            rep.regressions(),
            0,
            "missing metrics are notes, not failures"
        );
        assert_eq!(
            rep.notes.iter().filter(|n| n.contains("missing")).count(),
            2
        );
    }

    #[test]
    fn committed_baselines_parse_and_self_diff_clean() {
        // The repository's committed artifacts must stay consumable.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let read = |name: &str| {
            let text = std::fs::read_to_string(root.join(name))
                .unwrap_or_else(|e| panic!("read {name}: {e}"));
            Json::parse(&text).unwrap_or_else(|e| panic!("parse {name}: {e}"))
        };
        let s = read("BENCH_sampling.json");
        let k = read("BENCH_kernels.json");
        let qs = read("BENCH_sampling.quick.json");
        let qk = read("BENCH_kernels.quick.json");

        // The serving artifacts: self-diff is clean, the committed curve
        // shows the tuned configuration beating the default p99, and the
        // warm result-cache hit rate clears the 0.9 bar.
        for name in ["BENCH_serving.json", "BENCH_serving.quick.json"] {
            let v = read(name);
            let rep = diff_serving(&v, &v, DEFAULT_TOLERANCE);
            assert_eq!(rep.regressions(), 0, "{name}: {}", rep.render());
            assert_eq!(rep.lines.len(), 2, "{name}: {}", rep.render());
            let improvement = v.get("p99_improvement").and_then(Json::as_f64).unwrap();
            assert!(improvement > 1.0, "{name}: tuned must beat default p99");
            let hit_rate = v.get("warm_hit_rate").and_then(Json::as_f64).unwrap();
            assert!(hit_rate > 0.9, "{name}: warm hit rate {hit_rate}");
            let curve = v.get("qps_curve").and_then(Json::as_arr).unwrap();
            assert!(curve.len() >= 3, "{name}: qps curve too short");
            for row in curve {
                assert!(row.get("qps").and_then(Json::as_f64).is_some());
                assert!(row.get("default_p99_ms").and_then(Json::as_f64).is_some());
                assert!(row.get("tuned_p99_ms").and_then(Json::as_f64).is_some());
            }
        }
        let rep = diff_all(&qs, &qs, &qk, &qk, DEFAULT_TOLERANCE);
        assert_eq!(rep.regressions(), 0, "{}", rep.render());
        let rep = diff_all(&s, &k, &k, &k, DEFAULT_TOLERANCE);
        // Self-comparison of the kernels file is trivially clean; sampling
        // baseline vs kernels doc yields only notes.
        assert_eq!(rep.regressions(), 0);
        let rep = diff_all(&s, &s, &k, &k, DEFAULT_TOLERANCE);
        assert_eq!(rep.regressions(), 0);
        assert!(rep.lines.len() >= 7, "{}", rep.render());
    }

    #[test]
    fn top_renders_latest_state() {
        let c = Config::new(2, 1, 2);
        let mk = |e: RunEvent| (e, 0.0, Source::Measured);
        let events = vec![
            mk(RunEvent::EpochEnd {
                epoch: 0,
                config: c,
                record: EpochRecord {
                    epoch_time: 2.0,
                    loss: 0.9,
                    train_accuracy: 0.5,
                    iterations: 4,
                    minibatches: 8,
                    edges: 100,
                    sync_time: 0.1,
                },
            }),
            mk(RunEvent::CriticalPath {
                epoch: 1,
                fractions: vec![("compute".to_string(), 0.7), ("heap_wait".to_string(), 0.3)],
                spans: 10,
                dropped: 0,
            }),
            mk(RunEvent::BytesSummary {
                epoch: 1,
                record: BytesRecord {
                    batches: 4,
                    metadata_bytes: 8_000,
                    cache_bytes: 0,
                    scratch_allocs: 2,
                },
            }),
            mk(RunEvent::BottleneckCheck {
                epoch: 1,
                config: c,
                predicted: "compute".to_string(),
                measured: "compute".to_string(),
            }),
            mk(RunEvent::EpochEnd {
                epoch: 1,
                config: c,
                record: EpochRecord {
                    epoch_time: 1.5,
                    loss: 0.7,
                    train_accuracy: 0.6,
                    iterations: 4,
                    minibatches: 8,
                    edges: 100,
                    sync_time: 0.1,
                },
            }),
        ];
        let text = render_top(&events);
        assert!(text.contains("epoch 1"), "{text}");
        assert!(text.contains("1.500s"), "{text}");
        assert!(text.contains("compute 70% | heap_wait 30%"), "{text}");
        assert!(text.contains("2.0 KB metadata"), "{text}");
        assert!(text.contains("2 scratch allocs"), "{text}");
        assert!(
            text.contains("predicted compute, measured compute (agree)"),
            "{text}"
        );
        assert!(render_top(&[]).contains("waiting for events"));
    }
}
