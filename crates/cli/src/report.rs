//! Rendering of telemetry into the `argo report` text output.
//!
//! Works from two sources that can be combined:
//! * a live [`Telemetry`] handle right after a run (histogram quantiles,
//!   overlap gauge), and/or
//! * the structured events themselves — which is all a JSONL file written
//!   with `--metrics-out` contains, so `argo report --metrics run.jsonl`
//!   renders the same sections offline.

use std::collections::BTreeMap;

use argo_rt::telemetry::names;
use argo_rt::{RunEvent, Source, Telemetry};

/// Event kinds this renderer consumes. `argo-lint`'s telemetry-schema rule
/// checks this manifest against the producer set in `rt/src/events.rs` in
/// both directions — an event the runtime emits but the report drops (or a
/// stale name listed here) fails CI — and verifies each entry is backed by
/// a real `RunEvent::…` match below.
pub const CONSUMED_EVENT_KINDS: &[&str] = &[
    "epoch_start",
    "epoch_end",
    "stage_summary",
    "cache_summary",
    "tuner_trial",
    "config_applied",
    "critical_path",
    "bytes_summary",
    "bottleneck_check",
    "serve_request",
    "serve_batch",
];

/// p50/p95/max of a sample set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Percentiles {
    pub p50: f64,
    pub p95: f64,
    pub max: f64,
}

/// Exact percentiles of raw samples (nearest-rank). Returns `None` for an
/// empty set.
pub fn percentiles(samples: &[f64]) -> Option<Percentiles> {
    if samples.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(f64::total_cmp);
    let rank = |q: f64| {
        let idx = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len()) - 1;
        v[idx]
    };
    let max = *v.last()?;
    Some(Percentiles {
        p50: rank(0.50),
        p95: rank(0.95),
        max,
    })
}

/// Nearest-rank quantile of raw samples (0 for an empty set) — for the
/// quantiles [`Percentiles`] doesn't carry, like serving's p99.
fn nearest_rank(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(f64::total_cmp);
    let idx = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len()) - 1;
    v[idx]
}

fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.1}µs", s * 1e6)
    }
}

/// Saturation note for a fixed-bucket histogram: observations past the last
/// finite bound land in the +Inf bucket, where quantiles clip.
fn overflow_note(h: &argo_rt::metrics::Histogram) -> String {
    let o = h.overflow_count();
    if o > 0 {
        format!(" overflow={o}")
    } else {
        String::new()
    }
}

/// Renders the report from parsed events plus (optionally) the live
/// telemetry handle the run used. With a live handle, per-stage quantiles
/// come from the per-iteration histograms and the overlap fraction from its
/// gauge; from events alone, quantiles are over per-epoch stage totals.
pub fn render_report(events: &[(RunEvent, f64, Source)], live: Option<&Telemetry>) -> String {
    let mut out = String::new();

    // ---- Run summary --------------------------------------------------
    let mut epoch_times = Vec::new();
    let mut sources = (0usize, 0usize); // (measured, modeled)
    let mut first_config = None;
    for (e, _, s) in events {
        match e {
            RunEvent::EpochEnd { record, .. } => {
                epoch_times.push(record.epoch_time);
                match s {
                    Source::Measured => sources.0 += 1,
                    Source::Modeled => sources.1 += 1,
                }
            }
            RunEvent::EpochStart { config, .. } if first_config.is_none() => {
                first_config = Some(*config);
            }
            _ => {}
        }
    }
    out.push_str(&format!(
        "epochs: {} ({} measured, {} modeled), total epoch time {:.3}s\n",
        epoch_times.len(),
        sources.0,
        sources.1,
        epoch_times.iter().sum::<f64>()
    ));
    if let Some(c) = first_config {
        out.push_str(&format!("initial config: {c}\n"));
    }
    if let Some(p) = percentiles(&epoch_times) {
        out.push_str(&format!(
            "epoch time: p50 {} p95 {} max {}\n",
            fmt_seconds(p.p50),
            fmt_seconds(p.p95),
            fmt_seconds(p.max)
        ));
    }

    // ---- Per-stage section -------------------------------------------
    // From events: per-epoch stage totals; from a live handle: the
    // per-iteration histograms (finer-grained).
    let mut by_stage: BTreeMap<String, (Vec<f64>, u64)> = BTreeMap::new();
    for (e, _, _) in events {
        if let RunEvent::StageSummary { summary, .. } = e {
            let entry = by_stage.entry(summary.stage.clone()).or_default();
            entry.0.push(summary.seconds);
            entry.1 += summary.count;
        }
    }
    let live_hists: BTreeMap<String, std::sync::Arc<argo_rt::metrics::Histogram>> = live
        .map(|t| t.metrics.histograms().into_iter().collect())
        .unwrap_or_default();
    if !by_stage.is_empty() || !live_hists.is_empty() {
        out.push_str("\nper-stage timings");
        out.push_str(if live.is_some() {
            " (per iteration, histogram quantiles):\n"
        } else {
            " (per epoch, from stage summaries):\n"
        });
        let stages = ["sample", "gather", "compute", "sync"];
        for stage in stages {
            let hist_name = format!("stage_seconds/{stage}");
            if let Some(h) = live_hists.get(&hist_name) {
                if h.count() == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "  {stage:<8} p50 {:>10} p95 {:>10} max {:>10} total {:>10} n={}{}\n",
                    fmt_seconds(h.quantile(0.50)),
                    fmt_seconds(h.quantile(0.95)),
                    fmt_seconds(h.max()),
                    fmt_seconds(h.sum()),
                    h.count(),
                    overflow_note(h)
                ));
            } else if let Some((samples, count)) = by_stage.get(stage) {
                if let Some(p) = percentiles(samples) {
                    out.push_str(&format!(
                        "  {stage:<8} p50 {:>10} p95 {:>10} max {:>10} total {:>10} n={}\n",
                        fmt_seconds(p.p50),
                        fmt_seconds(p.p95),
                        fmt_seconds(p.max),
                        fmt_seconds(samples.iter().sum::<f64>()),
                        count
                    ));
                }
            }
        }
    }

    // ---- Overlap fraction (Figure 2) ---------------------------------
    if let Some(t) = live {
        let gauges: BTreeMap<String, f64> = t.metrics.gauges().into_iter().collect();
        if let Some(f) = gauges.get(names::OVERLAP_FRACTION) {
            out.push_str(&format!("\ngather/compute overlap fraction: {f:.3}\n"));
        } else if t.trace.is_enabled() && !t.trace.events().is_empty() {
            out.push_str(&format!(
                "\ngather/compute overlap fraction: {:.3}\n",
                t.trace.overlap_fraction(t.trace.now())
            ));
        }
    }

    // ---- Critical path (span profiler attribution) --------------------
    // Per-epoch fractions of wall time each stage — or wait on the channel
    // or reorder heap — was the binding constraint, averaged over epochs.
    // (epoch, per-stage fractions, spans recorded, spans dropped)
    type CpRow<'a> = (u64, &'a Vec<(String, f64)>, u64, u64);
    let cp: Vec<CpRow> = events
        .iter()
        .filter_map(|(e, _, _)| match e {
            RunEvent::CriticalPath {
                epoch,
                fractions,
                spans,
                dropped,
            } => Some((*epoch, fractions, *spans, *dropped)),
            _ => None,
        })
        .collect();
    if !cp.is_empty() {
        out.push_str("\ncritical path (fraction of epoch each stage or wait was binding):\n");
        let mut avg: BTreeMap<&str, f64> = BTreeMap::new();
        for (_, fractions, _, _) in &cp {
            for (stage, f) in fractions.iter() {
                *avg.entry(stage.as_str()).or_default() += f;
            }
        }
        let n = cp.len() as f64;
        for stage in argo_rt::CRITICAL_PATH_STAGES {
            if let Some(v) = avg.get(stage).filter(|v| **v > 0.0) {
                out.push_str(&format!("  {stage:<12} {:>5.1}%\n", v / n * 100.0));
            }
        }
        let spans: u64 = cp.iter().map(|c| c.2).sum();
        let dropped: u64 = cp.iter().map(|c| c.3).sum();
        out.push_str(&format!(
            "  ({spans} spans, {dropped} dropped; channel_wait = enqueue backpressure, \
             heap_wait = reorder stall, other = unattributed)\n"
        ));
    }

    // ---- Bytes/batch (loader and cache data movement). Metadata is the
    // measured arena-CSR footprint per batch (ids + degrees + indptr +
    // indices + values), reported by the loader workers. -----------------
    let bytes: Vec<_> = events
        .iter()
        .filter_map(|(e, _, _)| match e {
            RunEvent::BytesSummary { epoch, record } => Some((*epoch, *record)),
            _ => None,
        })
        .collect();
    if !bytes.is_empty() {
        out.push_str("\nbytes/batch:\n");
        for (epoch, r) in &bytes {
            out.push_str(&format!(
                "  epoch {epoch:>3} {:>8.1} KB metadata/batch, {:>7.1} MB cache-served, \
                 {} scratch allocs ({} batches)\n",
                r.metadata_bytes_per_batch() / 1e3,
                r.cache_bytes as f64 / 1e6,
                r.scratch_allocs,
                r.batches,
            ));
        }
    }

    // ---- Feature cache (only present when the cache was enabled) ------
    let cache_epochs: Vec<_> = events
        .iter()
        .filter_map(|(e, _, _)| match e {
            RunEvent::CacheSummary { epoch, summary } => Some((*epoch, *summary)),
            _ => None,
        })
        .collect();
    if !cache_epochs.is_empty() {
        out.push_str("\nfeature cache (per epoch):\n");
        for (epoch, s) in &cache_epochs {
            out.push_str(&format!(
                "  epoch {epoch:>3} hit rate {:>6.1}% ({} hits / {} lookups), \
                 {} evictions, {} / {} rows resident ({:.1} MB)\n",
                s.hit_rate() * 100.0,
                s.hits,
                s.hits + s.misses,
                s.evictions,
                s.resident_rows,
                s.capacity_rows,
                s.bytes as f64 / 1e6,
            ));
        }
        let hits: u64 = cache_epochs.iter().map(|(_, s)| s.hits).sum();
        let lookups: u64 = cache_epochs.iter().map(|(_, s)| s.hits + s.misses).sum();
        if lookups > 0 {
            out.push_str(&format!(
                "  overall hit rate {:.1}% over {lookups} lookups\n",
                hits as f64 / lookups as f64 * 100.0
            ));
        }
    }

    // ---- Serving (only present for `argo-serve` sessions) --------------
    let requests: Vec<_> = events
        .iter()
        .filter_map(|(e, _, _)| match e {
            RunEvent::ServeRequest { record } => Some(record),
            _ => None,
        })
        .collect();
    let batches: Vec<_> = events
        .iter()
        .filter_map(|(e, _, _)| match e {
            RunEvent::ServeBatch { record } => Some(record),
            _ => None,
        })
        .collect();
    if !requests.is_empty() {
        let latencies: Vec<f64> = requests.iter().map(|r| r.latency_seconds).collect();
        let queues: Vec<f64> = requests.iter().map(|r| r.queue_seconds).collect();
        let hits = requests.iter().filter(|r| r.cache_hit).count();
        out.push_str(&format!(
            "\nserving ({} requests, {} micro-batches):\n",
            requests.len(),
            batches.len()
        ));
        if let Some(p) = percentiles(&latencies) {
            out.push_str(&format!(
                "  latency   p50 {:>10} p95 {:>10} p99 {:>10} max {:>10}\n",
                fmt_seconds(p.p50),
                fmt_seconds(p.p95),
                fmt_seconds(nearest_rank(&latencies, 0.99)),
                fmt_seconds(p.max),
            ));
        }
        if let Some(p) = percentiles(&queues) {
            out.push_str(&format!(
                "  queue     p50 {:>10} p95 {:>10} max {:>10}  (serve_queue spans)\n",
                fmt_seconds(p.p50),
                fmt_seconds(p.p95),
                fmt_seconds(p.max),
            ));
        }
        out.push_str(&format!(
            "  result cache: {hits} hits / {} requests ({:.1}%)\n",
            requests.len(),
            hits as f64 / requests.len() as f64 * 100.0
        ));
        if !batches.is_empty() {
            let exec: Vec<f64> = batches.iter().map(|b| b.exec_seconds).collect();
            let total_reqs: u64 = batches.iter().map(|b| b.requests).sum();
            let full = batches.iter().filter(|b| b.flush == "full").count();
            let deadline = batches.iter().filter(|b| b.flush == "deadline").count();
            let drain = batches.len() - full - deadline;
            out.push_str(&format!(
                "  batches: mean size {:.1}, flushes {full} full / {deadline} deadline / \
                 {drain} drain\n",
                total_reqs as f64 / batches.len() as f64,
            ));
            if let Some(p) = percentiles(&exec) {
                out.push_str(&format!(
                    "  exec      p50 {:>10} p95 {:>10} max {:>10}  (serve_exec spans)\n",
                    fmt_seconds(p.p50),
                    fmt_seconds(p.p95),
                    fmt_seconds(p.max),
                ));
            }
        }
    }

    // ---- Tuner convergence -------------------------------------------
    let trials: Vec<_> = events
        .iter()
        .filter_map(|(e, _, _)| match e {
            RunEvent::TunerTrial(t) => Some(t),
            _ => None,
        })
        .collect();
    if let Some(last) = trials.last() {
        out.push_str("\ntuner convergence (incumbent best per trial):\n");
        for t in &trials {
            let marker = if (t.epoch_time - t.best_epoch_time).abs() < 1e-12 {
                " *"
            } else {
                ""
            };
            out.push_str(&format!(
                "  trial {:>3} {:<22} {:>9} best {:>9}{marker}\n",
                t.trial,
                t.config.to_string(),
                fmt_seconds(t.epoch_time),
                fmt_seconds(t.best_epoch_time),
            ));
        }
        out.push_str(&format!(
            "  selected {} at {} after {} trials (tuner cpu: suggest {}, observe {})\n",
            last.best_config,
            fmt_seconds(last.best_epoch_time),
            trials.len(),
            fmt_seconds(trials.iter().map(|t| t.suggest_seconds).sum::<f64>()),
            fmt_seconds(trials.iter().map(|t| t.observe_seconds).sum::<f64>()),
        ));
    }

    // ---- Bottleneck audit ---------------------------------------------
    // Each search epoch of an audited run: the perf model's predicted
    // bottleneck vs what the span profiler actually measured as binding.
    let audits: Vec<_> = events
        .iter()
        .filter_map(|(e, _, _)| match e {
            RunEvent::BottleneckCheck {
                epoch,
                config,
                predicted,
                measured,
            } => Some((*epoch, config, predicted, measured)),
            _ => None,
        })
        .collect();
    if !audits.is_empty() {
        out.push_str("\nbottleneck audit (perf model vs measured critical path):\n");
        let mut agree = 0usize;
        for (epoch, config, predicted, measured) in &audits {
            let verdict = if predicted == measured {
                agree += 1;
                "agree"
            } else {
                "DISAGREE"
            };
            out.push_str(&format!(
                "  epoch {epoch:>3} {:<22} predicted {predicted:<8} measured {measured:<12} {verdict}\n",
                config.to_string(),
            ));
        }
        out.push_str(&format!("  {agree}/{} agreements\n", audits.len()));
    }

    // ---- Config applications -----------------------------------------
    // Every `ConfigApplied` event: which configuration the runtime switched
    // to and why (search trial, final selection, …).
    let applied: Vec<_> = events
        .iter()
        .filter_map(|(e, _, _)| match e {
            RunEvent::ConfigApplied { config, reason } => Some((config, reason)),
            _ => None,
        })
        .collect();
    if !applied.is_empty() {
        out.push_str("\nconfig applications:\n");
        for (config, reason) in &applied {
            out.push_str(&format!("  {reason:<10} {config}\n"));
        }
    }

    // ---- Metrics snapshot (live handle only) --------------------------
    // Renders the registry under its schema names. Together with the
    // overlap gauge above this consumes every constant in `names`;
    // argo-lint's schema rule enforces that coverage stays complete.
    if let Some(t) = live {
        let counters: BTreeMap<String, u64> = t.metrics.counters().into_iter().collect();
        let gauges: BTreeMap<String, f64> = t.metrics.gauges().into_iter().collect();
        let mut section = String::new();
        for name in [
            names::EPOCHS_TOTAL,
            names::ITERATIONS_TOTAL,
            names::MINIBATCHES_TOTAL,
            names::EDGES_TOTAL,
            names::TUNER_TRIALS_TOTAL,
            names::CACHE_HITS_TOTAL,
            names::CACHE_MISSES_TOTAL,
            names::CACHE_EVICTIONS_TOTAL,
            names::CACHE_MOVED_BYTES_TOTAL,
            names::SCRATCH_ALLOCS_TOTAL,
            names::METADATA_BYTES_TOTAL,
            names::SPANS_RECORDED_TOTAL,
            names::SPANS_DROPPED_TOTAL,
            names::SERVE_REQUESTS_TOTAL,
            names::SERVE_BATCHES_TOTAL,
            names::SERVE_RESULT_HITS_TOTAL,
            names::SERVE_RESULT_MISSES_TOTAL,
        ] {
            if let Some(v) = counters.get(name) {
                section.push_str(&format!("  {name:<26} {v}\n"));
            }
        }
        // Runtime-checker verdicts (only present under `--features race` /
        // `sanitize` builds). Zero is the healthy steady state, so render
        // the line whenever the counter exists and flag any non-zero count
        // loudly — a race must not hide in a wall of healthy metrics.
        for name in [
            names::CHECK_RACE_REPORTS_TOTAL,
            names::CHECK_LOCK_VIOLATIONS_TOTAL,
        ] {
            if let Some(v) = counters.get(name) {
                let verdict = if *v == 0 { "" } else { "  <-- FAILED" };
                section.push_str(&format!("  {name:<26} {v}{verdict}\n"));
            }
        }
        for name in [
            names::TUNER_BEST_EPOCH_SECONDS,
            names::CACHE_BYTES,
            names::CACHE_HIT_RATE,
            names::SERVE_RESULT_HIT_RATE,
        ] {
            if let Some(v) = gauges.get(name) {
                section.push_str(&format!("  {name:<26} {v:.3}\n"));
            }
        }
        for name in [
            names::EPOCH_SECONDS,
            names::TUNER_SUGGEST_SECONDS,
            names::TUNER_OBSERVE_SECONDS,
        ] {
            if let Some(h) = live_hists.get(name).filter(|h| h.count() > 0) {
                section.push_str(&format!(
                    "  {name:<26} p50 {:>10} p95 {:>10} n={}{}\n",
                    fmt_seconds(h.quantile(0.50)),
                    fmt_seconds(h.quantile(0.95)),
                    h.count(),
                    overflow_note(h)
                ));
            }
        }
        // Serving latency is a tail-latency metric: its snapshot line leads
        // with the p99 the serve tuner objective optimizes.
        {
            let name = names::SERVE_REQUEST_SECONDS;
            if let Some(h) = live_hists.get(name).filter(|h| h.count() > 0) {
                section.push_str(&format!(
                    "  {name:<26} p50 {:>10} p99 {:>10} n={}{}\n",
                    fmt_seconds(h.quantile(0.50)),
                    fmt_seconds(h.quantile(0.99)),
                    h.count(),
                    overflow_note(h)
                ));
            }
        }
        if !section.is_empty() {
            out.push_str("\nmetrics snapshot:\n");
            out.push_str(&section);
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_rt::{Config, EpochRecord, RunLogger, StageSummaryRecord, TrialRecord};

    fn evs() -> Vec<(RunEvent, f64, Source)> {
        let c = Config::new(2, 1, 2);
        let mk = |e: RunEvent| (e, 0.0, Source::Measured);
        vec![
            mk(RunEvent::EpochStart {
                epoch: 0,
                config: c,
            }),
            mk(RunEvent::StageSummary {
                epoch: 0,
                summary: StageSummaryRecord {
                    stage: "gather".into(),
                    seconds: 0.2,
                    count: 10,
                },
            }),
            mk(RunEvent::StageSummary {
                epoch: 0,
                summary: StageSummaryRecord {
                    stage: "compute".into(),
                    seconds: 0.6,
                    count: 10,
                },
            }),
            mk(RunEvent::EpochEnd {
                epoch: 0,
                config: c,
                record: EpochRecord {
                    epoch_time: 1.0,
                    loss: 0.5,
                    train_accuracy: 0.7,
                    iterations: 5,
                    minibatches: 10,
                    edges: 100,
                    sync_time: 0.1,
                },
            }),
            mk(RunEvent::TunerTrial(TrialRecord {
                trial: 0,
                config: c,
                epoch_time: 1.0,
                best_config: c,
                best_epoch_time: 1.0,
                suggest_seconds: 1e-4,
                observe_seconds: 1e-4,
            })),
            mk(RunEvent::TunerTrial(TrialRecord {
                trial: 1,
                config: Config::new(4, 1, 1),
                epoch_time: 0.8,
                best_config: Config::new(4, 1, 1),
                best_epoch_time: 0.8,
                suggest_seconds: 1e-4,
                observe_seconds: 1e-4,
            })),
        ]
    }

    #[test]
    fn percentiles_nearest_rank() {
        let p = percentiles(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]).unwrap();
        assert_eq!(p.p50, 5.0);
        assert_eq!(p.p95, 10.0);
        assert_eq!(p.max, 10.0);
        assert!(percentiles(&[]).is_none());
        let single = percentiles(&[3.5]).unwrap();
        assert_eq!((single.p50, single.p95, single.max), (3.5, 3.5, 3.5));
    }

    #[test]
    fn report_renders_all_sections_from_events() {
        let text = render_report(&evs(), None);
        assert!(text.contains("epochs: 1 (1 measured, 0 modeled)"));
        assert!(text.contains("per-stage timings"));
        assert!(text.contains("gather"));
        assert!(text.contains("p50"));
        assert!(text.contains("tuner convergence"));
        assert!(text.contains("trial   1"));
        assert!(text.contains("selected (proc=4, samp=1, train=1)"));
    }

    #[test]
    fn report_roundtrips_through_jsonl() {
        // Encoding to JSONL and parsing back renders identically.
        let logger = RunLogger::new();
        for (e, _, _) in evs() {
            logger.log(e);
        }
        let parsed = RunLogger::parse_jsonl(&logger.to_jsonl()).unwrap();
        let a = render_report(&parsed, None);
        let b = render_report(&evs(), None);
        // Timestamps differ but are not rendered, so texts match.
        assert_eq!(a, b);
    }

    #[test]
    fn report_empty_events_is_benign() {
        let text = render_report(&[], None);
        assert!(text.contains("epochs: 0"));
        assert!(!text.contains("tuner convergence"));
        assert!(!text.contains("feature cache"));
    }

    #[test]
    fn report_renders_critical_path_and_bytes_sections() {
        use argo_rt::BytesRecord;
        let without = render_report(&evs(), None);
        assert!(!without.contains("critical path"));
        assert!(!without.contains("bytes/batch"));
        let mut events = evs();
        events.push((
            RunEvent::CriticalPath {
                epoch: 0,
                fractions: vec![
                    ("compute".to_string(), 0.6),
                    ("gather".to_string(), 0.25),
                    ("channel_wait".to_string(), 0.15),
                ],
                spans: 1234,
                dropped: 0,
            },
            0.0,
            Source::Measured,
        ));
        events.push((
            RunEvent::BytesSummary {
                epoch: 0,
                record: BytesRecord {
                    batches: 10,
                    metadata_bytes: 50_000,
                    cache_bytes: 3_000_000,
                    scratch_allocs: 4,
                },
            },
            0.0,
            Source::Measured,
        ));
        let with = render_report(&events, None);
        assert!(with.contains("critical path"), "{with}");
        assert!(with.contains("compute       60.0%"), "{with}");
        assert!(with.contains("channel_wait  15.0%"), "{with}");
        assert!(with.contains("1234 spans, 0 dropped"), "{with}");
        assert!(with.contains("bytes/batch:"), "{with}");
        assert!(with.contains("5.0 KB metadata/batch"), "{with}");
        assert!(with.contains("3.0 MB cache-served"), "{with}");
        assert!(with.contains("4 scratch allocs (10 batches)"), "{with}");
    }

    #[test]
    fn report_renders_bottleneck_audit() {
        let mut events = evs();
        let c = Config::new(2, 1, 2);
        events.push((
            RunEvent::BottleneckCheck {
                epoch: 0,
                config: c,
                predicted: "gather".to_string(),
                measured: "gather".to_string(),
            },
            0.0,
            Source::Measured,
        ));
        events.push((
            RunEvent::BottleneckCheck {
                epoch: 1,
                config: c,
                predicted: "compute".to_string(),
                measured: "heap_wait".to_string(),
            },
            0.0,
            Source::Measured,
        ));
        let text = render_report(&events, None);
        assert!(text.contains("bottleneck audit"), "{text}");
        assert!(text.contains("agree"), "{text}");
        assert!(text.contains("DISAGREE"), "{text}");
        assert!(text.contains("1/2 agreements"), "{text}");
    }

    #[test]
    fn report_renders_serving_section_only_when_present() {
        use argo_rt::{ServeBatchRecord, ServeRequestRecord};
        let without = render_report(&evs(), None);
        assert!(!without.contains("serving ("));
        let mut events = evs();
        for i in 0..4u64 {
            events.push((
                RunEvent::ServeRequest {
                    record: ServeRequestRecord {
                        request: i,
                        batch: i / 2,
                        seeds: 1,
                        queue_seconds: 0.001 * (i + 1) as f64,
                        latency_seconds: 0.002 * (i + 1) as f64,
                        cache_hit: i >= 2,
                    },
                },
                0.0,
                Source::Measured,
            ));
        }
        for b in 0..2u64 {
            events.push((
                RunEvent::ServeBatch {
                    record: ServeBatchRecord {
                        batch: b,
                        requests: 2,
                        flush: if b == 0 { "full" } else { "deadline" }.to_string(),
                        exec_seconds: 0.0005,
                    },
                },
                0.0,
                Source::Measured,
            ));
        }
        let with = render_report(&events, None);
        assert!(
            with.contains("serving (4 requests, 2 micro-batches):"),
            "{with}"
        );
        assert!(with.contains("p99"), "{with}");
        assert!(
            with.contains("result cache: 2 hits / 4 requests (50.0%)"),
            "{with}"
        );
        assert!(with.contains("mean size 2.0"), "{with}");
        assert!(with.contains("1 full / 1 deadline / 0 drain"), "{with}");
        assert!(with.contains("serve_queue"), "{with}");
        assert!(with.contains("serve_exec"), "{with}");
        // p99 of 4 samples (nearest rank) is the max: 8ms.
        assert!(with.contains("p99    8.000ms"), "{with}");
    }

    #[test]
    fn serve_metrics_appear_in_the_live_snapshot() {
        let tel = Telemetry::new();
        tel.metrics.counter(names::SERVE_REQUESTS_TOTAL).add(7);
        tel.metrics.counter(names::SERVE_BATCHES_TOTAL).add(3);
        tel.metrics.counter(names::SERVE_RESULT_HITS_TOTAL).add(5);
        tel.metrics.counter(names::SERVE_RESULT_MISSES_TOTAL).add(2);
        tel.metrics
            .gauge(names::SERVE_RESULT_HIT_RATE)
            .set(5.0 / 7.0);
        let h = tel.metrics.time_histogram(names::SERVE_REQUEST_SECONDS);
        h.observe(0.001);
        h.observe(0.004);
        let text = render_report(&[], Some(&tel));
        for name in [
            names::SERVE_REQUESTS_TOTAL,
            names::SERVE_BATCHES_TOTAL,
            names::SERVE_RESULT_HITS_TOTAL,
            names::SERVE_RESULT_MISSES_TOTAL,
            names::SERVE_RESULT_HIT_RATE,
            names::SERVE_REQUEST_SECONDS,
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        assert!(text.contains("p99"), "{text}");
    }

    #[test]
    fn histogram_overflow_is_rendered() {
        let tel = Telemetry::new();
        let h = tel.metrics.time_histogram(names::EPOCH_SECONDS);
        h.observe(0.5);
        h.observe(1e9); // past the last finite bound → +Inf bucket
        let text = render_report(&[], Some(&tel));
        assert!(text.contains("overflow=1"), "{text}");
    }

    #[test]
    fn report_renders_cache_section_only_when_present() {
        use argo_rt::CacheSummaryRecord;
        let without = render_report(&evs(), None);
        assert!(!without.contains("feature cache"));
        let mut events = evs();
        events.push((
            RunEvent::CacheSummary {
                epoch: 0,
                summary: CacheSummaryRecord {
                    hits: 75,
                    misses: 25,
                    evictions: 3,
                    resident_rows: 40,
                    capacity_rows: 64,
                    bytes: 2_000_000,
                },
            },
            0.0,
            Source::Measured,
        ));
        let with = render_report(&events, None);
        assert!(with.contains("feature cache (per epoch):"));
        assert!(
            with.contains("hit rate   75.0% (75 hits / 100 lookups)"),
            "{with}"
        );
        assert!(with.contains("3 evictions"));
        assert!(with.contains("40 / 64 rows resident (2.0 MB)"));
        assert!(with.contains("overall hit rate 75.0% over 100 lookups"));
    }
}
