//! The `argo` binary. See [`argo_cli::usage`] for commands.

use std::process::ExitCode;
use std::sync::Arc;

use argo_cli::{
    dataset_by_name, library_by_name, model_kind_by_name, parse_args,
    perf::{diff_all, diff_serving, render_top, DEFAULT_TOLERANCE},
    platform_by_name,
    report::render_report,
    sampler_kind_by_name, usage, Cli,
};
use argo_core::{Argo, ArgoOptions, Error};
use argo_engine::{evaluate_accuracy, Engine, EngineOptions};
use argo_graph::Dataset;
use argo_nn::{Arch, ConfusionMatrix};
use argo_platform::{Library, ModelKind, PerfModel, SamplerKind, Setup, ICE_LAKE_8380H};
use argo_rt::{RunLogger, Source, Telemetry};
use argo_sample::{ClusterGcnSampler, NeighborSampler, SaintRwSampler, Sampler, ShadowSampler};
use argo_tune::{paper_num_searches, SearchSpace};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // One-line diagnostic; the full usage only for argument errors.
            eprintln!("error: {e}");
            if matches!(e, Error::InvalidArgument(_)) {
                eprintln!("\n{}", usage());
            }
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), Error> {
    let cli = parse_args(args).map_err(Error::InvalidArgument)?;
    match cli.command.as_str() {
        "train" => train(&cli),
        "simulate" => simulate(&cli),
        "report" => report(&cli),
        "top" => top(&cli),
        "perf-diff" => perf_diff(&cli),
        "space" => space(&cli),
        "info" => {
            info();
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(Error::InvalidArgument(format!(
            "unknown subcommand '{other}'"
        ))),
    }
}

/// Builds the run's telemetry sinks: active iff any telemetry flag
/// (`--metrics-out`, `--trace-out`, `--report true`) is present. Returns
/// the handle plus whether to print the report afterwards.
fn telemetry_for(cli: &Cli, source: Source) -> Result<(Telemetry, bool), Error> {
    let want_report = cli.get_bool("report").map_err(Error::InvalidArgument)?;
    // Reject an unwritable --metrics-out/--trace-out destination up front,
    // before the (potentially long) run produces events it cannot flush.
    for key in ["metrics-out", "trace-out"] {
        if let Some(path) = cli.options.get(key) {
            if path.is_empty() {
                return Err(Error::InvalidArgument(format!("--{key} needs a file path")));
            }
            let parent = std::path::Path::new(path).parent();
            if let Some(dir) = parent.filter(|d| !d.as_os_str().is_empty()) {
                if !dir.is_dir() {
                    return Err(Error::InvalidArgument(format!(
                        "--{key} {path}: directory {} does not exist",
                        dir.display()
                    )));
                }
            }
        }
    }
    let active = want_report
        || cli.options.contains_key("metrics-out")
        || cli.options.contains_key("trace-out");
    let tel = if active {
        Telemetry::with_source(source)
    } else {
        Telemetry::disabled()
    };
    Ok((tel, want_report))
}

/// Writes the `--metrics-out` JSONL and `--trace-out` Chrome-trace files
/// and prints the report when requested.
fn flush_telemetry(cli: &Cli, tel: &Telemetry, want_report: bool) -> Result<(), Error> {
    if let Some(path) = cli.options.get("metrics-out") {
        std::fs::write(path, tel.logger.to_jsonl())
            .map_err(|e| Error::Io(format!("write {path}: {e}")))?;
        println!("wrote {} events to {path}", tel.logger.len());
    }
    if let Some(path) = cli.options.get("trace-out") {
        std::fs::write(path, tel.trace.to_chrome_json())
            .map_err(|e| Error::Io(format!("write {path}: {e}")))?;
        println!(
            "wrote {} trace events to {path} (open in chrome://tracing or ui.perfetto.dev)",
            tel.trace.events().len()
        );
    }
    if want_report {
        let events: Vec<_> = tel
            .logger
            .events()
            .into_iter()
            .map(|(ts, e)| (e, ts, tel.logger.source()))
            .collect();
        print!("\n{}", render_report(&events, Some(tel)));
    }
    Ok(())
}

/// `argo top` — compact live view of the most recent epoch in a metrics
/// JSONL. Re-reads the file every `--refresh` seconds for `--frames`
/// iterations, so it can watch a run that is appending with `--metrics-out`.
fn top(cli: &Cli) -> Result<(), Error> {
    let path = cli.options.get("metrics").ok_or_else(|| {
        Error::InvalidArgument(
            "top needs --metrics FILE (a JSONL written with --metrics-out)".into(),
        )
    })?;
    let refresh: f64 = cli.get_num("refresh", 2.0)?;
    let frames: usize = cli.get_num("frames", 1)?;
    for frame in 0..frames.max(1) {
        if frame > 0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(refresh.clamp(0.1, 60.0)));
            // ANSI clear + home so successive frames overwrite in place.
            print!("\x1b[2J\x1b[H");
        }
        // A file that does not exist yet (run not started) or a torn tail
        // line renders as "waiting" rather than an error.
        let events = std::fs::read_to_string(path)
            .ok()
            .and_then(|text| RunLogger::parse_jsonl(&text).ok())
            .unwrap_or_default();
        print!("{}", render_top(&events));
    }
    Ok(())
}

/// `argo perf-diff` — the perf-regression gate. Compares speedup ratios in
/// a fresh bench run against the committed baselines and fails (non-zero
/// exit) when any ratio falls more than the tolerance below its baseline.
fn perf_diff(cli: &Cli) -> Result<(), Error> {
    let quick = cli.get_bool("quick").map_err(Error::InvalidArgument)?;
    let tolerance: f64 = cli.get_num("tolerance", DEFAULT_TOLERANCE)?;
    if !(0.0..1.0).contains(&tolerance) {
        return Err(Error::InvalidArgument(format!(
            "--tolerance must be in [0, 1), got {tolerance}"
        )));
    }
    // Quick and full bench modes use different shapes, so ratios are only
    // comparable within a mode: quick runs diff against the committed
    // quick baselines (conservative min-of-several-runs), full runs against
    // the committed full-mode baselines. Full-mode bench runs write to the
    // full baseline paths themselves, so a non-quick diff needs explicit
    // current paths.
    let (def_base_s, def_base_k, def_base_v, def_cur_s, def_cur_k, def_cur_v) = if quick {
        (
            "BENCH_sampling.quick.json",
            "BENCH_kernels.quick.json",
            "BENCH_serving.quick.json",
            "target/BENCH_sampling.quick.json",
            "target/BENCH_kernels.quick.json",
            "target/BENCH_serving.quick.json",
        )
    } else {
        (
            "BENCH_sampling.json",
            "BENCH_kernels.json",
            "BENCH_serving.json",
            "",
            "",
            "",
        )
    };
    let base_s = cli.get("baseline-sampling", def_base_s);
    let base_k = cli.get("baseline-kernels", def_base_k);
    let base_v = cli.get("baseline-serving", def_base_v);
    let cur_s = cli.get("current-sampling", def_cur_s);
    let cur_k = cli.get("current-kernels", def_cur_k);
    let cur_v = cli.get("current-serving", def_cur_v);
    if cur_s.is_empty() || cur_k.is_empty() {
        return Err(Error::InvalidArgument(
            "perf-diff needs --quick true (compares target/BENCH_*.quick.json) or explicit \
             --current-sampling/--current-kernels paths"
                .into(),
        ));
    }
    let load = |path: &str| -> Result<argo_rt::Json, Error> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| Error::Io(format!("read {path}: {e} (run the bench first)")))?;
        argo_rt::Json::parse(&text).map_err(|e| Error::Io(format!("parse {path}: {e}")))
    };
    let mut rep = diff_all(
        &load(base_s)?,
        &load(cur_s)?,
        &load(base_k)?,
        &load(cur_k)?,
        tolerance,
    );
    // The serving artifact arrived later than the training pair; tolerate a
    // missing current file (e.g. the serving bench wasn't run) with a note
    // rather than failing the whole diff.
    if !cur_v.is_empty() {
        match (load(base_v), load(cur_v)) {
            (Ok(b), Ok(c)) => rep.merge(diff_serving(&b, &c, tolerance)),
            (Err(e), _) | (_, Err(e)) => rep.notes.push(format!("serving diff skipped: {e}")),
        }
    }
    print!("{}", rep.render());
    if rep.regressions() > 0 {
        return Err(Error::Other(format!(
            "{} perf metric(s) regressed past tolerance",
            rep.regressions()
        )));
    }
    Ok(())
}

fn report(cli: &Cli) -> Result<(), Error> {
    let path = cli.options.get("metrics").ok_or_else(|| {
        Error::InvalidArgument(
            "report needs --metrics FILE (a JSONL written with --metrics-out)".into(),
        )
    })?;
    let text = std::fs::read_to_string(path).map_err(|e| Error::Io(format!("read {path}: {e}")))?;
    let events = RunLogger::parse_jsonl(&text)?;
    print!("{}", render_report(&events, None));
    Ok(())
}

fn load_or_synthesize(cli: &Cli) -> Result<Arc<Dataset>, Error> {
    if let Some(path) = cli.options.get("load") {
        let mut f =
            std::fs::File::open(path).map_err(|e| Error::Io(format!("open {path}: {e}")))?;
        let d = argo_graph::io::read_dataset(&mut f)
            .map_err(|e| Error::Io(format!("read {path}: {e}")))?;
        return Ok(Arc::new(d));
    }
    let spec = dataset_by_name(cli.get("dataset", "flickr"))?;
    let scale: f64 = cli.get_num("scale", 0.02)?;
    let seed: u64 = cli.get_num("seed", 0)?;
    Ok(Arc::new(spec.synthesize(scale, seed)))
}

fn train(cli: &Cli) -> Result<(), Error> {
    // Validate telemetry flags before the (potentially long) run starts.
    let (tel, want_report) = telemetry_for(cli, Source::Measured)?;
    let dataset = load_or_synthesize(cli)?;
    if let Some(path) = cli.options.get("save") {
        let mut f =
            std::fs::File::create(path).map_err(|e| Error::Io(format!("create {path}: {e}")))?;
        argo_graph::io::write_dataset(&mut f, &dataset)
            .map_err(|e| Error::Io(format!("write: {e}")))?;
        println!("saved dataset to {path}");
    }
    let layers: usize = cli.get_num("layers", 2)?;
    let sampler: Arc<dyn Sampler> = match cli.get("sampler", "neighbor") {
        "neighbor" => Arc::new(NeighborSampler::new(
            vec![10, 5, 5][..layers.min(3)].to_vec(),
        )),
        "shadow" => Arc::new(ShadowSampler::new(vec![10, 5], layers)),
        "saint" => Arc::new(SaintRwSampler::new(3, layers)),
        "cluster" => Arc::new(ClusterGcnSampler::new(&dataset.graph, 32, layers)),
        other => return Err(Error::InvalidArgument(format!("unknown sampler '{other}'"))),
    };
    let arch = match cli.get("model", "sage") {
        "sage" | "graphsage" => Arch::Sage,
        "gcn" => Arch::Gcn,
        "gat" => Arch::Gat {
            heads: cli.get_num("heads", 2)?,
        },
        other => return Err(Error::InvalidArgument(format!("unknown model '{other}'"))),
    };
    let epochs: usize = cli.get_num("epochs", 20)?;
    let n_search: usize = cli.get_num("n-search", 5)?;
    let cache_rows: usize = cli
        .get_num("cache-rows", 0)
        .map_err(Error::InvalidArgument)?;
    let mut engine = Engine::new(
        Arc::clone(&dataset),
        sampler,
        EngineOptions::builder()
            .with_kind(arch)
            .with_hidden(cli.get_num("hidden", 64)?)
            .with_num_layers(layers)
            .with_global_batch(cli.get_num("batch", 512)?)
            .with_lr(cli.get_num("lr", 3e-3)?)
            .with_seed(cli.get_num("seed", 0)?)
            .with_cache_capacity(cache_rows),
    );
    println!(
        "training {} on {} ({} nodes, {} classes) for {epochs} epochs, {n_search} searches",
        arch.name(),
        dataset.spec.name,
        dataset.graph.num_nodes(),
        dataset.num_classes
    );
    let mut runtime = Argo::new(ArgoOptions {
        n_search: n_search.max(1),
        epochs: epochs.max(n_search.max(1)),
        ..Default::default()
    });
    // During the search phase, cross-check the measured critical path
    // against the stage the analytic model predicts to be binding (the
    // `bottleneck_check` events rendered by `argo report`).
    let audit_model = PerfModel::new(Setup {
        platform: ICE_LAKE_8380H,
        library: Library::Dgl,
        sampler: match cli.get("sampler", "neighbor") {
            "shadow" => SamplerKind::Shadow,
            _ => SamplerKind::Neighbor,
        },
        model: match cli.get("model", "sage") {
            "gcn" => ModelKind::Gcn,
            _ => ModelKind::Sage,
        },
        dataset: dataset.spec,
    });
    let tel_opt = if tel.is_enabled() { Some(&tel) } else { None };
    let report = runtime.train_audited(
        &mut engine,
        &audit_model,
        tel_opt,
        |epoch, config, stats| {
            println!(
                "epoch {epoch:>3} {config}: {:.3}s loss {:.4} acc {:.3}",
                stats.epoch_time, stats.loss, stats.train_accuracy
            );
        },
    );
    println!(
        "\nselected {} (space: {} configs)",
        report.config_opt, report.space_size
    );
    println!("total time {:.2}s (tuning included)", report.total_time);
    // Final metrics on the validation split.
    let model = engine.model();
    let acc = evaluate_accuracy(&model, &dataset, &dataset.val_nodes);
    let sampler_eval = NeighborSampler::new(vec![dataset.graph.max_degree().max(1); layers]);
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
    let mut preds: Vec<u32> = Vec::new();
    let mut truth: Vec<u32> = Vec::new();
    for chunk in dataset.val_nodes.chunks(256) {
        let batch = argo_sample::Sampler::sample(&sampler_eval, &dataset.graph, chunk, &mut rng);
        let logits = model.forward(&batch, &dataset.features, None);
        for (i, &v) in chunk.iter().enumerate() {
            let row = logits.row(i);
            let mut best = 0usize;
            for (j, &x) in row.iter().enumerate() {
                if x > row[best] {
                    best = j;
                }
            }
            preds.push(best as u32);
            truth.push(dataset.labels[v as usize]);
        }
    }
    let cm = ConfusionMatrix::from_predictions(&preds, &truth, dataset.num_classes);
    println!(
        "validation: accuracy {:.3}, macro-F1 {:.3}, micro-F1 {:.3} (n={})",
        acc,
        cm.macro_f1(),
        cm.micro_f1(),
        dataset.val_nodes.len()
    );
    flush_telemetry(cli, &tel, want_report)?;
    Ok(())
}

fn simulate(cli: &Cli) -> Result<(), Error> {
    // Validate telemetry flags before the (potentially long) run starts.
    let (tel, want_report) = telemetry_for(cli, Source::Modeled)?;
    let platform = platform_by_name(cli.get("platform", "icelake"))?;
    let library = library_by_name(cli.get("library", "dgl"))?;
    let sampler = sampler_kind_by_name(cli.get("sampler", "neighbor"))?;
    let model = model_kind_by_name(cli.get("model", "sage"))?;
    let dataset = dataset_by_name(cli.get("dataset", "products"))?;
    let m = PerfModel::new(Setup {
        platform,
        library,
        sampler,
        model,
        dataset,
    });
    println!(
        "task: {} on {} ({})",
        m.setup().label(),
        platform.name,
        library.name()
    );
    let (best_cfg, best) = m.argo_best_epoch_time(platform.total_cores);
    let default = m.epoch_time(m.default_config());
    println!(
        "  default setup    : {:.2}s/epoch at {}",
        default,
        m.default_config()
    );
    println!("  exhaustive best  : {best:.2}s/epoch at {best_cfg}");
    let n_search = paper_num_searches(
        platform.total_cores,
        matches!(sampler, argo_platform::SamplerKind::Shadow),
    );
    let mut runtime = Argo::new(ArgoOptions {
        n_search,
        epochs: 200,
        total_cores: platform.total_cores,
        seed: cli.get_num("seed", 0)?,
    });
    let tel_opt = if tel.is_enabled() { Some(&tel) } else { None };
    let report = runtime.run_modeled(&m, tel_opt);
    println!(
        "  auto-tuner       : {:.2}s/epoch at {} ({} searches, {:.2}x of optimal)",
        report.best_epoch_time,
        report.config_opt,
        n_search,
        best / report.best_epoch_time
    );
    println!(
        "  200-epoch total  : default {:.0}s vs ARGO {:.0}s ({:.2}x speedup)",
        200.0 * default,
        report.total_time,
        200.0 * default / report.total_time
    );
    flush_telemetry(cli, &tel, want_report)?;
    Ok(())
}

fn space(cli: &Cli) -> Result<(), Error> {
    let cores: usize = cli.get_num("cores", argo_rt::num_available_cores().max(4))?;
    let space = SearchSpace::for_cores(cores);
    println!(
        "design space for {cores} cores: {} configurations",
        space.len()
    );
    println!("  processes 2..8, sampling cores 1..4, training cores 1..(cores/p − s)");
    let show = 8.min(space.len());
    for i in 0..show {
        println!("  {}", space.get(i));
    }
    if space.len() > show {
        println!("  … {} more", space.len() - show);
    }
    Ok(())
}

fn info() {
    println!("datasets (paper Table III):");
    for s in argo_graph::datasets::ALL_SPECS {
        println!(
            "  {:<16} |V|={:<11} |E|={:<13} f0={:<4} classes={}",
            s.name, s.num_nodes, s.num_edges, s.f0, s.f2
        );
    }
    println!("\nplatforms (paper Table II):");
    for p in [
        argo_platform::ICE_LAKE_8380H,
        argo_platform::SAPPHIRE_RAPIDS_6430L,
    ] {
        println!(
            "  {:<34} {} sockets, {} cores, {} GB/s peak",
            p.name, p.sockets, p.total_cores, p.peak_bw_gbs
        );
    }
}
