//! The discrete design space the auto-tuner searches.

use argo_rt::{enumerate_space, Config};

/// The valid-configuration set for a machine, with index↔config mapping and
/// coordinate normalization for the GP surrogate.
///
/// The space is four-dimensional: the paper's `(n_proc, n_samp, n_train)`
/// knobs plus the optional feature-cache capacity (`cache_rows`). Plain
/// spaces built with [`SearchSpace::for_cores`] keep the cache axis
/// degenerate (every member has `cache_rows = 0`), so the GP sees a constant
/// fourth coordinate there; [`SearchSpace::with_cache_levels`] crosses the
/// core partition with explicit cache capacities.
#[derive(Clone, Debug)]
pub struct SearchSpace {
    configs: Vec<Config>,
    cores: usize,
    max: [f64; 4],
    min: [f64; 4],
}

fn coords(c: &Config) -> [f64; 4] {
    [
        c.n_proc as f64,
        c.n_samp as f64,
        c.n_train as f64,
        c.cache_rows as f64,
    ]
}

impl SearchSpace {
    /// The space for a machine with `cores` cores (see
    /// [`argo_rt::enumerate_space`] for the rule and its relation to the
    /// paper's 726/408 counts). The cache axis stays at 0.
    pub fn for_cores(cores: usize) -> Self {
        Self::from_configs(enumerate_space(cores), cores)
    }

    /// The core-partition space crossed with the given feature-cache
    /// capacities (in rows). `levels` may include 0 (cache off); levels are
    /// deduplicated and sorted so the index order is deterministic.
    pub fn with_cache_levels(cores: usize, levels: &[usize]) -> Self {
        let mut levels: Vec<usize> = levels.to_vec();
        levels.sort_unstable();
        levels.dedup();
        if levels.is_empty() {
            levels.push(0);
        }
        let base = enumerate_space(cores);
        let mut configs = Vec::with_capacity(base.len() * levels.len());
        for &rows in &levels {
            for &c in &base {
                configs.push(c.with_cache_rows(rows));
            }
        }
        Self::from_configs(configs, cores)
    }

    /// The single-process serving space: an inference session never shards
    /// a query across training processes (the paper's `n_proc` axis exists
    /// to stagger training mini-batches), so the serving knobs are the
    /// in-process split — sampling cores `s ∈ {1..cores−1}`, compute cores
    /// `t ∈ {1..cores−s}` — crossed with the feature-cache levels the same
    /// way [`SearchSpace::with_cache_levels`] does.
    pub fn for_serving(cores: usize, cache_levels: &[usize]) -> Self {
        let mut levels: Vec<usize> = cache_levels.to_vec();
        levels.sort_unstable();
        levels.dedup();
        if levels.is_empty() {
            levels.push(0);
        }
        let mut configs = Vec::new();
        for &rows in &levels {
            for s in 1..cores {
                for t in 1..=(cores - s) {
                    configs.push(Config::new(1, s, t).with_cache_rows(rows));
                }
            }
        }
        Self::from_configs(configs, cores)
    }

    fn from_configs(configs: Vec<Config>, cores: usize) -> Self {
        assert!(
            !configs.is_empty(),
            "machine too small for ARGO ({cores} cores)"
        );
        let mut min = [f64::INFINITY; 4];
        let mut max = [f64::NEG_INFINITY; 4];
        for c in &configs {
            let v = coords(c);
            for d in 0..4 {
                min[d] = min[d].min(v[d]);
                max[d] = max[d].max(v[d]);
            }
        }
        Self {
            configs,
            cores,
            max,
            min,
        }
    }

    /// Number of configurations (the design-space size of Table VI).
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the space is empty (never true for supported machines).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// The machine size this space was built for.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// All configurations.
    pub fn configs(&self) -> &[Config] {
        &self.configs
    }

    /// The configuration at `index`.
    pub fn get(&self, index: usize) -> Config {
        self.configs[index]
    }

    /// Index of `config`, if it is in the space.
    pub fn index_of(&self, config: Config) -> Option<usize> {
        self.configs.iter().position(|&c| c == config)
    }

    /// Whether `config` is a member.
    pub fn contains(&self, config: Config) -> bool {
        self.index_of(config).is_some()
    }

    /// Normalizes a configuration into `[0,1]⁴` for the GP kernel. A
    /// degenerate axis (all members share the value, e.g. `cache_rows` in a
    /// plain space) maps to 0.
    pub fn normalize(&self, config: Config) -> [f64; 4] {
        let v = coords(&config);
        let mut out = [0.0; 4];
        for d in 0..4 {
            let span = self.max[d] - self.min[d];
            if span > 1e-12 {
                out[d] = (v[d] - self.min[d]) / span;
            }
        }
        out
    }

    /// Projects an arbitrary `(p, s, t)` proposal onto the nearest member of
    /// the space (L1 distance in raw coordinates) — used by simulated
    /// annealing moves that step outside the valid region. The cache axis is
    /// ignored, so the projection lands on the proposal's nearest core
    /// partition at whatever cache level minimizes nothing (first match).
    pub fn project(&self, p: i64, s: i64, t: i64) -> Config {
        *self
            .configs
            .iter()
            .min_by_key(|c| {
                (c.n_proc as i64 - p).abs()
                    + (c.n_samp as i64 - s).abs()
                    + (c.n_train as i64 - t).abs()
            })
            .expect("non-empty space")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_design_doc() {
        assert_eq!(SearchSpace::for_cores(112).len(), 694);
        assert_eq!(SearchSpace::for_cores(64).len(), 362);
    }

    #[test]
    fn all_members_fit_machine() {
        let s = SearchSpace::for_cores(32);
        for &c in s.configs() {
            assert!(c.fits(32));
            assert!(c.n_proc >= 2 && c.n_proc <= 8);
            assert!(c.n_samp >= 1 && c.n_samp <= 4);
            assert_eq!(c.cache_rows, 0, "plain space keeps the cache off");
        }
    }

    #[test]
    fn serving_space_is_single_process_and_crosses_cache_levels() {
        let s = SearchSpace::for_serving(16, &[0, 1_000]);
        // s ∈ {1..15}, t ∈ {1..16−s}: Σ (16−s) = 120 splits per cache level.
        assert_eq!(s.len(), 240);
        for &c in s.configs() {
            assert_eq!(c.n_proc, 1);
            assert!(c.n_samp >= 1 && c.n_samp + c.n_train <= 16);
            assert!(c.cache_rows == 0 || c.cache_rows == 1_000);
        }
        assert!(s.contains(argo_rt::Config::new(1, 4, 12)));
        assert!(s.contains(argo_rt::Config::new(1, 4, 12).with_cache_rows(1_000)));
        // Duplicate/empty levels collapse like with_cache_levels.
        assert_eq!(SearchSpace::for_serving(16, &[]).len(), 120);
        assert_eq!(SearchSpace::for_serving(16, &[5, 5, 5]).len(), 120);
    }

    #[test]
    fn index_roundtrip() {
        let s = SearchSpace::for_cores(64);
        for (i, &c) in s.configs().iter().enumerate() {
            assert_eq!(s.index_of(c), Some(i));
            assert_eq!(s.get(i), c);
        }
    }

    #[test]
    fn normalize_is_unit_box() {
        let s = SearchSpace::for_cores(64);
        for &c in s.configs() {
            let v = s.normalize(c);
            for d in 0..4 {
                assert!((0.0..=1.0).contains(&v[d]), "{c} -> {v:?}");
            }
            // Degenerate cache axis pins to 0 in a plain space.
            assert_eq!(v[3], 0.0);
        }
        // Extremes hit 0 and 1 on the three core axes.
        let all: Vec<[f64; 4]> = s.configs().iter().map(|&c| s.normalize(c)).collect();
        for d in 0..3 {
            assert!(all.iter().any(|v| v[d] < 1e-9));
            assert!(all.iter().any(|v| v[d] > 1.0 - 1e-9));
        }
    }

    #[test]
    fn project_returns_member() {
        let s = SearchSpace::for_cores(16);
        let c = s.project(100, -5, 3);
        assert!(s.contains(c));
        // Projecting an existing member returns it.
        let m = s.get(7);
        assert_eq!(
            s.project(m.n_proc as i64, m.n_samp as i64, m.n_train as i64),
            m
        );
    }

    #[test]
    fn contains_rejects_foreign_configs() {
        let s = SearchSpace::for_cores(16);
        assert!(!s.contains(Config::new(1, 1, 1))); // p=1 not in space
        assert!(!s.contains(Config::new(2, 1, 100)));
    }

    #[test]
    fn cache_levels_cross_the_core_partition() {
        let plain = SearchSpace::for_cores(16);
        let s = SearchSpace::with_cache_levels(16, &[0, 4096, 4096, 1024]);
        assert_eq!(s.len(), plain.len() * 3, "3 deduped levels");
        for &c in s.configs() {
            assert!([0, 1024, 4096].contains(&c.cache_rows));
            assert!(c.fits(16));
        }
        // The cache axis now spans the unit interval.
        let v_on = s.normalize(plain.get(0).with_cache_rows(4096));
        let v_off = s.normalize(plain.get(0));
        assert!((v_on[3] - 1.0).abs() < 1e-12);
        assert_eq!(v_off[3], 0.0);
        // Members at distinct cache levels are distinct configurations.
        assert_ne!(
            s.index_of(plain.get(0)),
            s.index_of(plain.get(0).with_cache_rows(1024))
        );
    }
}
