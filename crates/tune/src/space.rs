//! The discrete design space the auto-tuner searches.

use argo_rt::{enumerate_space, Config};

/// The valid-configuration set for a machine, with index↔config mapping and
/// coordinate normalization for the GP surrogate.
#[derive(Clone, Debug)]
pub struct SearchSpace {
    configs: Vec<Config>,
    cores: usize,
    max: [f64; 3],
    min: [f64; 3],
}

impl SearchSpace {
    /// The space for a machine with `cores` cores (see
    /// [`argo_rt::enumerate_space`] for the rule and its relation to the
    /// paper's 726/408 counts).
    pub fn for_cores(cores: usize) -> Self {
        let configs = enumerate_space(cores);
        assert!(
            !configs.is_empty(),
            "machine too small for ARGO ({cores} cores)"
        );
        let mut min = [f64::INFINITY; 3];
        let mut max = [f64::NEG_INFINITY; 3];
        for c in &configs {
            let v = [c.n_proc as f64, c.n_samp as f64, c.n_train as f64];
            for d in 0..3 {
                min[d] = min[d].min(v[d]);
                max[d] = max[d].max(v[d]);
            }
        }
        Self {
            configs,
            cores,
            max,
            min,
        }
    }

    /// Number of configurations (the design-space size of Table VI).
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the space is empty (never true for supported machines).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// The machine size this space was built for.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// All configurations.
    pub fn configs(&self) -> &[Config] {
        &self.configs
    }

    /// The configuration at `index`.
    pub fn get(&self, index: usize) -> Config {
        self.configs[index]
    }

    /// Index of `config`, if it is in the space.
    pub fn index_of(&self, config: Config) -> Option<usize> {
        self.configs.iter().position(|&c| c == config)
    }

    /// Whether `config` is a member.
    pub fn contains(&self, config: Config) -> bool {
        self.index_of(config).is_some()
    }

    /// Normalizes a configuration into `[0,1]³` for the GP kernel.
    pub fn normalize(&self, config: Config) -> [f64; 3] {
        let v = [
            config.n_proc as f64,
            config.n_samp as f64,
            config.n_train as f64,
        ];
        let mut out = [0.0; 3];
        for d in 0..3 {
            let span = (self.max[d] - self.min[d]).max(1e-12);
            out[d] = (v[d] - self.min[d]) / span;
        }
        out
    }

    /// Projects an arbitrary `(p, s, t)` proposal onto the nearest member of
    /// the space (L1 distance in raw coordinates) — used by simulated
    /// annealing moves that step outside the valid region.
    pub fn project(&self, p: i64, s: i64, t: i64) -> Config {
        *self
            .configs
            .iter()
            .min_by_key(|c| {
                (c.n_proc as i64 - p).abs()
                    + (c.n_samp as i64 - s).abs()
                    + (c.n_train as i64 - t).abs()
            })
            .expect("non-empty space")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_design_doc() {
        assert_eq!(SearchSpace::for_cores(112).len(), 694);
        assert_eq!(SearchSpace::for_cores(64).len(), 362);
    }

    #[test]
    fn all_members_fit_machine() {
        let s = SearchSpace::for_cores(32);
        for &c in s.configs() {
            assert!(c.fits(32));
            assert!(c.n_proc >= 2 && c.n_proc <= 8);
            assert!(c.n_samp >= 1 && c.n_samp <= 4);
        }
    }

    #[test]
    fn index_roundtrip() {
        let s = SearchSpace::for_cores(64);
        for (i, &c) in s.configs().iter().enumerate() {
            assert_eq!(s.index_of(c), Some(i));
            assert_eq!(s.get(i), c);
        }
    }

    #[test]
    fn normalize_is_unit_box() {
        let s = SearchSpace::for_cores(64);
        for &c in s.configs() {
            let v = s.normalize(c);
            for d in 0..3 {
                assert!((0.0..=1.0).contains(&v[d]), "{c} -> {v:?}");
            }
        }
        // Extremes hit 0 and 1.
        let all: Vec<[f64; 3]> = s.configs().iter().map(|&c| s.normalize(c)).collect();
        for d in 0..3 {
            assert!(all.iter().any(|v| v[d] < 1e-9));
            assert!(all.iter().any(|v| v[d] > 1.0 - 1e-9));
        }
    }

    #[test]
    fn project_returns_member() {
        let s = SearchSpace::for_cores(16);
        let c = s.project(100, -5, 3);
        assert!(s.contains(c));
        // Projecting an existing member returns it.
        let m = s.get(7);
        assert_eq!(
            s.project(m.n_proc as i64, m.n_samp as i64, m.n_train as i64),
            m
        );
    }

    #[test]
    fn contains_rejects_foreign_configs() {
        let s = SearchSpace::for_cores(16);
        assert!(!s.contains(Config::new(1, 1, 1))); // p=1 not in space
        assert!(!s.contains(Config::new(2, 1, 100)));
    }
}
