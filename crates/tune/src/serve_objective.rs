//! A p99-latency objective that retargets the auto-tuner at serving.
//!
//! The paper's tuner minimizes *epoch time*; Algorithm 1 never looks inside
//! the objective, so pointing the same BayesOpt loop at tail latency is just
//! a different black box. [`ServeObjective`] provides that box: a
//! deterministic open-loop simulation of the serving pipeline — Poisson
//! arrivals at a target rate admitted through deadline micro-batching, a
//! single FIFO executor whose batch service time comes from a caller-supplied
//! model (typically `PerfModel::predicted_request_seconds`, or a closed-loop
//! measurement from `argo-bench`) — reduced to the p99 of per-request
//! latency.
//!
//! The simulation is pure: arrivals derive from a counter-based
//! [`StreamRng`] stream keyed by the workload seed, so the same
//! `(workload, config)` pair always yields the same p99. That keeps tuner
//! trajectories reproducible and makes the objective unit-testable without
//! a wall clock — the same design stance as the serving session itself.

use argo_rt::{Config, StreamRng};

/// The synthetic open-loop workload a [`ServeObjective`] simulates.
#[derive(Clone, Copy, Debug)]
pub struct ServeWorkload {
    /// Mean arrival rate, queries per second (Poisson arrivals).
    pub qps: f64,
    /// Number of requests to simulate per evaluation.
    pub num_requests: usize,
    /// Micro-batcher admission cap.
    pub max_batch: usize,
    /// Micro-batcher deadline in microseconds.
    pub deadline_us: u64,
    /// Seed of the arrival stream (evaluations are pure functions of this).
    pub seed: u64,
}

impl Default for ServeWorkload {
    fn default() -> Self {
        Self {
            qps: 500.0,
            num_requests: 2_000,
            max_batch: 8,
            deadline_us: 2_000,
            seed: 0x5EED,
        }
    }
}

/// Tail-latency objective for [`crate::OnlineAutoTuner`] /
/// [`crate::Searcher`]: evaluates a configuration by simulating the
/// workload and returning the latency quantile (default p99) in seconds.
pub struct ServeObjective<F: Fn(Config, usize) -> f64> {
    workload: ServeWorkload,
    /// Seconds to execute one micro-batch of `n` requests under `config`.
    service: F,
    quantile: f64,
}

impl<F: Fn(Config, usize) -> f64> ServeObjective<F> {
    /// An objective over `workload` with batch service times from
    /// `service(config, batch_size) -> seconds`.
    pub fn new(workload: ServeWorkload, service: F) -> Self {
        Self {
            workload,
            service,
            quantile: 0.99,
        }
    }

    /// Targets a different latency quantile (clamped to (0, 1]).
    pub fn with_quantile(mut self, quantile: f64) -> Self {
        self.quantile = quantile.clamp(1e-6, 1.0);
        self
    }

    /// Simulates the workload under `config` and returns every per-request
    /// latency in seconds, in arrival order.
    pub fn latencies(&self, config: Config) -> Vec<f64> {
        let w = self.workload;
        let n = w.num_requests.max(1);
        let qps = w.qps.max(1e-9);
        let deadline = w.deadline_us as f64 / 1e6;
        let max_batch = w.max_batch.max(1);

        // Poisson process: exponential inter-arrival gaps, counter-based
        // stream so the schedule is a pure function of the seed.
        let mut rng = StreamRng::new(w.seed);
        let mut arrivals = Vec::with_capacity(n);
        let mut t = 0.0f64;
        for _ in 0..n {
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            // Exponential gap; clamp keeps ln() off exact zero.
            t += -(1.0 - u).max(f64::MIN_POSITIVE).ln() / qps;
            arrivals.push(t);
        }

        // Deadline micro-batching over the arrival schedule, then one FIFO
        // executor: batch flushes at min(arrival filling max_batch, oldest
        // arrival + deadline); execution starts when the server frees up.
        let mut latencies = Vec::with_capacity(n);
        let mut server_free = 0.0f64;
        let mut i = 0usize;
        while i < n {
            let oldest = arrivals[i];
            let flush_by = oldest + deadline;
            let mut j = i + 1;
            while j < n && j - i < max_batch && arrivals[j] <= flush_by {
                j += 1;
            }
            let batch = j - i;
            let flushed = if batch == max_batch {
                arrivals[j - 1]
            } else {
                flush_by
            };
            let start = if flushed > server_free {
                flushed
            } else {
                server_free
            };
            let done = start + (self.service)(config, batch).max(0.0);
            server_free = done;
            for &a in &arrivals[i..j] {
                latencies.push(done - a);
            }
            i = j;
        }
        latencies
    }

    /// The configured latency quantile (nearest-rank) in seconds.
    pub fn tail_latency(&self, config: Config) -> f64 {
        let mut l = self.latencies(config);
        if l.is_empty() {
            return 0.0;
        }
        l.sort_by(f64::total_cmp);
        let rank = ((self.quantile * l.len() as f64).ceil() as usize).clamp(1, l.len());
        l[rank - 1]
    }

    /// Adapts the objective to the `FnMut(Config) -> f64` shape
    /// [`crate::OnlineAutoTuner::run`] consumes.
    pub fn into_objective(self) -> impl FnMut(Config) -> f64 {
        move |config| self.tail_latency(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BayesOpt, OnlineAutoTuner, SearchSpace};

    /// A toy service model: fixed overhead plus per-request work that
    /// parallelizes across sampling cores — more cores, faster batches.
    fn toy_service(config: Config, batch: usize) -> f64 {
        let cores = (config.n_samp * config.n_proc).max(1) as f64;
        200e-6 + batch as f64 * 400e-6 / cores
    }

    fn workload() -> ServeWorkload {
        ServeWorkload {
            qps: 800.0,
            num_requests: 1_200,
            max_batch: 8,
            deadline_us: 2_000,
            seed: 42,
        }
    }

    #[test]
    fn evaluations_are_deterministic() {
        let obj = ServeObjective::new(workload(), toy_service);
        let a = obj.tail_latency(Config::new(1, 2, 2));
        let b = obj.tail_latency(Config::new(1, 2, 2));
        assert_eq!(a, b, "same workload + config must reproduce exactly");
        assert!(a > 0.0);
    }

    #[test]
    fn more_cores_cut_the_tail() {
        let obj = ServeObjective::new(workload(), toy_service);
        let slow = obj.tail_latency(Config::new(1, 1, 1));
        let fast = obj.tail_latency(Config::new(2, 8, 8));
        assert!(
            fast < slow,
            "16 effective cores should beat 1: {fast} vs {slow}"
        );
    }

    #[test]
    fn p99_dominates_the_median() {
        let obj = ServeObjective::new(workload(), toy_service);
        let p99 = obj.tail_latency(Config::new(1, 2, 2));
        let p50 = ServeObjective::new(workload(), toy_service)
            .with_quantile(0.5)
            .tail_latency(Config::new(1, 2, 2));
        assert!(p99 >= p50);
    }

    #[test]
    fn every_request_is_accounted_for() {
        let obj = ServeObjective::new(workload(), toy_service);
        let lat = obj.latencies(Config::new(1, 2, 2));
        assert_eq!(lat.len(), workload().num_requests);
        assert!(lat.iter().all(|&l| l > 0.0 && l.is_finite()));
    }

    #[test]
    fn deadline_bounds_queueing_when_the_server_keeps_up() {
        // At low load with a fast service, latency ≈ queue wait ≤ deadline
        // plus one batch service time.
        let w = ServeWorkload {
            qps: 100.0,
            num_requests: 500,
            max_batch: 8,
            deadline_us: 1_000,
            seed: 7,
        };
        let obj = ServeObjective::new(w, |_, batch| 10e-6 * batch as f64);
        let p99 = obj.tail_latency(Config::new(1, 1, 1));
        assert!(p99 <= 1_000e-6 + 8.0 * 10e-6 + 1e-9, "p99 {p99}");
    }

    #[test]
    fn tuner_finds_a_better_config_than_default() {
        // Wire the objective into Algorithm 1 exactly as a caller would.
        let obj = ServeObjective::new(workload(), toy_service);
        let searcher = BayesOpt::new(SearchSpace::for_cores(16), 99);
        let report = OnlineAutoTuner::new(searcher, 12).run(40, obj.into_objective(), None);
        let default_p99 =
            ServeObjective::new(workload(), toy_service).tail_latency(Config::new(1, 1, 1));
        assert!(
            report.best_epoch_time < default_p99,
            "tuned {} vs default {default_p99}",
            report.best_epoch_time
        );
    }
}
