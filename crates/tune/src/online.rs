//! Algorithm 1 — Online Auto-Tuning.
//!
//! ```text
//! Input: num_searches      Output: config_opt
//! Tuner = BayesOpt(); config = Tuner.init()
//! for i in num_of_epochs:
//!     if i < num_searches:                    # Online Learning
//!         epoch_time = ARGO(config, GNN_Train)
//!         config = Tuner.train(epoch_time, config)
//!     else:                                   # Reuse the optimum
//!         config_opt = Tuner.get_opt()
//!         ARGO(config_opt, GNN_Train)
//! ```
//!
//! [`OnlineAutoTuner`] is generic over the searcher and the objective, so
//! the same loop drives the real engine (measured epoch times) and the
//! platform model (modeled epoch times), as well as the simulated-annealing
//! baseline under an identical budget.

use std::time::Instant;

use argo_rt::telemetry::names;
use argo_rt::{Config, RunEvent, Telemetry, TrialRecord};

use crate::Searcher;

/// Outcome of a full online-tuned training run.
#[derive(Clone, Debug)]
pub struct TuningReport {
    /// The configuration reused after online learning concluded.
    pub config_opt: Config,
    /// Objective value (epoch time) of `config_opt` when it was found.
    pub best_epoch_time: f64,
    /// Every (config, epoch time) evaluated during online learning, in
    /// order.
    pub history: Vec<(Config, f64)>,
    /// Sum of all epoch times over the whole run (search epochs — including
    /// the sub-optimal ones the paper counts as auto-tuning overhead — plus
    /// the reuse epochs). This is the Figure 10/11 end-to-end time.
    pub total_time: f64,
    /// CPU seconds spent inside the tuner itself (fit + acquisition) — the
    /// Section VI-D overhead numbers.
    pub tuner_overhead: f64,
}

/// Drives a [`Searcher`] through Algorithm 1.
pub struct OnlineAutoTuner<S: Searcher> {
    searcher: S,
    num_searches: usize,
}

impl<S: Searcher> OnlineAutoTuner<S> {
    /// An online tuner that spends `num_searches` epochs learning.
    pub fn new(searcher: S, num_searches: usize) -> Self {
        assert!(num_searches >= 1);
        Self {
            searcher,
            num_searches,
        }
    }

    /// The wrapped searcher.
    pub fn searcher(&self) -> &S {
        &self.searcher
    }

    /// Runs `total_epochs` of training through `objective` (which trains one
    /// epoch under the given configuration and returns its epoch time).
    ///
    /// With `Some(telemetry)`, one `tuner_trial` event per search epoch is
    /// emitted (candidate config, observed epoch time, incumbent best, GP
    /// fit/acquisition CPU time), a `config_applied` event on every
    /// configuration switch, and tuner metrics into `telemetry.metrics`.
    pub fn run(
        self,
        total_epochs: usize,
        objective: impl FnMut(Config) -> f64,
        telemetry: Option<&Telemetry>,
    ) -> TuningReport {
        match telemetry {
            Some(t) => self.run_impl(total_epochs, objective, t),
            None => self.run_impl(total_epochs, objective, &Telemetry::disabled()),
        }
    }

    fn run_impl(
        mut self,
        total_epochs: usize,
        mut objective: impl FnMut(Config) -> f64,
        telemetry: &Telemetry,
    ) -> TuningReport {
        assert!(total_epochs >= self.num_searches);
        let metrics = &telemetry.metrics;
        let trials = metrics.counter(names::TUNER_TRIALS_TOTAL);
        let suggest_h = metrics.time_histogram(names::TUNER_SUGGEST_SECONDS);
        let observe_h = metrics.time_histogram(names::TUNER_OBSERVE_SECONDS);
        let best_gauge = metrics.gauge(names::TUNER_BEST_EPOCH_SECONDS);

        let mut history = Vec::with_capacity(self.num_searches);
        let mut total_time = 0.0;
        let mut tuner_overhead = 0.0;
        for trial in 0..self.num_searches {
            let t0 = Instant::now();
            let config = self.searcher.suggest();
            let suggest_seconds = t0.elapsed().as_secs_f64();
            tuner_overhead += suggest_seconds;
            telemetry.logger.log(RunEvent::ConfigApplied {
                config,
                reason: "search".to_string(),
            });
            let epoch_time = objective(config);
            total_time += epoch_time;
            let t1 = Instant::now();
            self.searcher.observe(config, epoch_time);
            let observe_seconds = t1.elapsed().as_secs_f64();
            tuner_overhead += observe_seconds;
            history.push((config, epoch_time));

            let (best_config, best_epoch_time) =
                self.searcher.best().expect("observed at least one trial");
            trials.inc();
            suggest_h.observe(suggest_seconds);
            observe_h.observe(observe_seconds);
            best_gauge.set(best_epoch_time);
            telemetry.logger.log(RunEvent::TunerTrial(TrialRecord {
                trial: trial as u64,
                config,
                epoch_time,
                best_config,
                best_epoch_time,
                suggest_seconds,
                observe_seconds,
            }));
        }
        let (config_opt, best_epoch_time) =
            self.searcher.best().expect("num_searches >= 1 observation");
        if self.num_searches < total_epochs {
            telemetry.logger.log(RunEvent::ConfigApplied {
                config: config_opt,
                reason: "reuse".to_string(),
            });
        }
        for _ in self.num_searches..total_epochs {
            total_time += objective(config_opt);
        }
        TuningReport {
            config_opt,
            best_epoch_time,
            history,
            total_time,
            tuner_overhead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bayesopt::BayesOpt;
    use crate::space::SearchSpace;

    fn objective(c: Config) -> f64 {
        let p = c.n_proc as f64;
        let s = c.n_samp as f64;
        let t = c.n_train as f64;
        1.0 + 0.1 * (p - 5.0).powi(2) + 0.2 * (s - 2.0).powi(2) + 0.03 * (t - 6.0).powi(2)
    }

    fn tuner(seed: u64, n: usize) -> OnlineAutoTuner<BayesOpt> {
        OnlineAutoTuner::new(BayesOpt::new(SearchSpace::for_cores(64), seed), n)
    }

    #[test]
    fn algorithm1_reuses_best_after_learning() {
        let report = tuner(3, 20).run(200, objective, None);
        assert_eq!(report.history.len(), 20);
        // Total = search epochs at their own cost + 180 reuse epochs at the
        // best cost.
        let search_sum: f64 = report.history.iter().map(|(_, v)| v).sum();
        let expect = search_sum + 180.0 * objective(report.config_opt);
        assert!((report.total_time - expect).abs() < 1e-9);
        assert!((report.best_epoch_time - objective(report.config_opt)).abs() < 1e-12);
    }

    #[test]
    fn config_opt_is_best_of_history() {
        let report = tuner(9, 25).run(25, objective, None);
        let hist_best = report
            .history
            .iter()
            .map(|(_, v)| *v)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(report.best_epoch_time, hist_best);
    }

    #[test]
    fn overhead_is_small_and_measured() {
        let report = tuner(1, 20).run(40, objective, None);
        assert!(report.tuner_overhead > 0.0);
        // The paper requires <1% of training time; with a sub-millisecond
        // Rust GP the bar is easily met for second-scale epochs, but here
        // epochs are synthetic, so just sanity-bound it.
        assert!(report.tuner_overhead < 5.0);
    }

    #[test]
    #[should_panic]
    fn rejects_budget_below_searches() {
        tuner(1, 30).run(10, objective, None);
    }

    #[test]
    fn telemetry_emits_trial_per_search_epoch() {
        use argo_rt::telemetry::names;
        let tel = Telemetry::new();
        let report = tuner(7, 12).run(20, objective, Some(&tel));

        let events = tel.logger.events();
        let trials: Vec<&TrialRecord> = events
            .iter()
            .filter_map(|(_, e)| match e {
                RunEvent::TunerTrial(t) => Some(t),
                _ => None,
            })
            .collect();
        assert_eq!(trials.len(), 12);
        // Trials mirror the report history and the incumbent best is the
        // running minimum — the convergence trace `argo report` renders.
        let mut running_best = f64::INFINITY;
        for (i, t) in trials.iter().enumerate() {
            assert_eq!(t.trial, i as u64);
            assert_eq!((t.config, t.epoch_time), report.history[i]);
            running_best = running_best.min(t.epoch_time);
            assert!((t.best_epoch_time - running_best).abs() < 1e-12);
            assert!(t.suggest_seconds >= 0.0 && t.observe_seconds >= 0.0);
        }
        assert_eq!(trials.last().unwrap().best_config, report.config_opt);

        // Config switches: one "search" per trial, one final "reuse".
        let reasons: Vec<&str> = events
            .iter()
            .filter_map(|(_, e)| match e {
                RunEvent::ConfigApplied { reason, .. } => Some(reason.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(reasons.iter().filter(|r| **r == "search").count(), 12);
        assert_eq!(reasons.iter().filter(|r| **r == "reuse").count(), 1);
        assert_eq!(reasons.last(), Some(&"reuse"));

        let counters: std::collections::BTreeMap<_, _> =
            tel.metrics.counters().into_iter().collect();
        assert_eq!(counters[names::TUNER_TRIALS_TOTAL], 12);
        let gauges: std::collections::BTreeMap<_, _> = tel.metrics.gauges().into_iter().collect();
        assert!((gauges[names::TUNER_BEST_EPOCH_SECONDS] - report.best_epoch_time).abs() < 1e-12);
    }

    #[test]
    fn run_without_telemetry_matches_disabled_telemetry() {
        let a = tuner(5, 10).run(15, objective, None);
        let b = tuner(5, 10).run(15, objective, Some(&Telemetry::disabled()));
        assert_eq!(a.config_opt, b.config_opt);
        assert_eq!(a.history, b.history);
        assert!((a.total_time - b.total_time).abs() < 1e-9);
    }
}
