//! # argo-tune — the online auto-tuner and its baselines
//!
//! Implements the paper's Section V: an online auto-tuner that searches
//! ARGO's 3-D design space — (number of processes, sampling cores, training
//! cores) — using Bayesian optimization with a Gaussian-process surrogate,
//! finding a near-optimal configuration while exploring only ~5% of the
//! space (Table VI).
//!
//! Everything is built from scratch:
//!
//! * [`SearchSpace`] — the valid-configuration enumeration (Section V-B);
//! * [`gp::GaussianProcess`] — Matérn-5/2 GP with Cholesky solves;
//! * [`acquisition`] — Expected Improvement;
//! * [`BayesOpt`] — the auto-tuner (random init → fit → argmax EI);
//! * [`SimulatedAnnealing`], [`ExhaustiveSearch`] — the comparison baselines
//!   of Section VI-D (the *Default* baseline is a single fixed config and
//!   needs no searcher);
//! * [`OnlineAutoTuner`] — Algorithm 1: spend `num_searches` epochs
//!   learning online, then reuse the best configuration found.
//!
//! All searchers implement [`Searcher`], so benches can drive them
//! uniformly against either a measured engine or the platform model.

pub mod acquisition;
pub mod baselines;
pub mod bayesopt;
pub mod gp;
pub mod online;
pub mod serve_objective;
pub mod space;

pub use baselines::{ExhaustiveSearch, GreedyPruning, SimulatedAnnealing};
pub use bayesopt::BayesOpt;
pub use online::{OnlineAutoTuner, TuningReport};
pub use serve_objective::{ServeObjective, ServeWorkload};
pub use space::SearchSpace;

use argo_rt::Config;

/// A black-box configuration searcher (minimizing epoch time).
pub trait Searcher {
    /// Proposes the next configuration to evaluate.
    fn suggest(&mut self) -> Config;

    /// Reports the measured objective for a configuration.
    fn observe(&mut self, config: Config, value: f64);

    /// Best (configuration, value) observed so far.
    fn best(&self) -> Option<(Config, f64)>;

    /// Searcher name for reports.
    fn name(&self) -> &'static str;
}

/// The number of online-learning searches the paper allots per task
/// (Table VI): 35/45 on the 112-core Ice Lake and 20/25 on the 64-core
/// Sapphire Rapids for Neighbor-/ShaDow-based tasks respectively —
/// 5–6% of the design space.
pub fn paper_num_searches(total_cores: usize, shadow: bool) -> usize {
    match (total_cores >= 100, shadow) {
        (true, false) => 35,
        (true, true) => 45,
        (false, false) => 20,
        (false, true) => 25,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_search_counts() {
        assert_eq!(paper_num_searches(112, false), 35);
        assert_eq!(paper_num_searches(112, true), 45);
        assert_eq!(paper_num_searches(64, false), 20);
        assert_eq!(paper_num_searches(64, true), 25);
    }

    #[test]
    fn search_counts_are_5_to_7_percent_of_space() {
        for cores in [64usize, 112] {
            let space = SearchSpace::for_cores(cores).len() as f64;
            for shadow in [false, true] {
                let frac = paper_num_searches(cores, shadow) as f64 / space;
                assert!(
                    (0.04..0.08).contains(&frac),
                    "{cores} cores shadow={shadow}: {frac}"
                );
            }
        }
    }
}
