//! The Bayesian-optimization auto-tuner (paper Sections IV-B1 and V-C).

use argo_rt::Config;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::acquisition::Acquisition;
use crate::gp::IncrementalGp;
use crate::space::SearchSpace;
use crate::Searcher;

/// Number of random configurations evaluated before the surrogate is
/// trusted (BayesOpt warm-up).
const INIT_RANDOM: usize = 5;

/// Bayesian-optimization searcher over a [`SearchSpace`]:
/// random warm-up → fit GP on (config, epoch-time) pairs → propose the
/// unobserved configuration with maximal Expected Improvement.
pub struct BayesOpt {
    space: SearchSpace,
    rng: SmallRng,
    observed: Vec<(Config, f64)>,
    observed_idx: Vec<bool>,
    init_order: Vec<usize>,
    pending: Option<Config>,
    acquisition: Acquisition,
    /// Incrementally maintained surrogate over (normalized config,
    /// log epoch time): each observation extends the per-scale Cholesky
    /// factors in O(n²) instead of refitting in O(n³), with bitwise-
    /// identical posteriors.
    surrogate: IncrementalGp<4>,
}

impl BayesOpt {
    /// A tuner over `space`, deterministic in `seed`.
    pub fn new(space: SearchSpace, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut init_order: Vec<usize> = (0..space.len()).collect();
        init_order.shuffle(&mut rng);
        init_order.truncate(INIT_RANDOM.min(space.len()));
        Self {
            observed_idx: vec![false; space.len()],
            space,
            rng,
            observed: Vec::new(),
            init_order,
            pending: None,
            acquisition: Acquisition::ExpectedImprovement,
            surrogate: IncrementalGp::new(),
        }
    }

    /// Replaces the acquisition function (EI is the default; the others
    /// support the acquisition ablation bench).
    pub fn with_acquisition(mut self, acquisition: Acquisition) -> Self {
        self.acquisition = acquisition;
        self
    }

    /// The search space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// All observations so far.
    pub fn observations(&self) -> &[(Config, f64)] {
        &self.observed
    }

    fn argmax_ei(&mut self) -> Config {
        // The surrogate already holds every (normalized config, log epoch
        // time) pair — `observe` extends it as results arrive, so this is an
        // O(n²) posterior refresh rather than an O(n³) refit.
        let gp = self.surrogate.gp();
        let best = self
            .surrogate
            .targets()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let mut top: Option<(f64, usize)> = None;
        for i in 0..self.space.len() {
            if self.observed_idx[i] {
                continue;
            }
            let q = self.space.normalize(self.space.get(i));
            let (mean, std) = gp.predict(&q);
            let score = self.acquisition.score(mean, std, best);
            if top.is_none_or(|(t, _)| score > t) {
                top = Some((score, i));
            }
        }
        match top {
            Some((_, i)) => self.space.get(i),
            // Entire space observed: fall back to the incumbent.
            None => self.best().expect("observed something").0,
        }
    }

    fn random_unobserved(&mut self) -> Config {
        use rand::Rng;
        // The shuffled init order guarantees distinct warm-up points; after
        // that, rejection-sample.
        loop {
            let i = self.rng.gen_range(0..self.space.len());
            if !self.observed_idx[i] {
                return self.space.get(i);
            }
        }
    }
}

impl Searcher for BayesOpt {
    fn suggest(&mut self) -> Config {
        if let Some(p) = self.pending {
            return p; // idempotent until observed
        }
        let k = self.observed.len();
        let c = if k < self.init_order.len() {
            self.space.get(self.init_order[k])
        } else if self.observed.len() >= self.space.len() {
            self.best().expect("space exhausted").0
        } else if k < 2 {
            self.random_unobserved()
        } else {
            self.argmax_ei()
        };
        self.pending = Some(c);
        c
    }

    fn observe(&mut self, config: Config, value: f64) {
        assert!(
            value.is_finite() && value > 0.0,
            "objective must be positive"
        );
        if let Some(i) = self.space.index_of(config) {
            self.observed_idx[i] = true;
        }
        // Model log epoch time: multiplicative effects become additive and
        // the GP is less distorted by heavy-tailed slow configs.
        self.surrogate
            .push(self.space.normalize(config), value.max(1e-9).ln());
        self.observed.push((config, value));
        self.pending = None;
    }

    fn best(&self) -> Option<(Config, f64)> {
        self.observed
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    fn name(&self) -> &'static str {
        "Auto-Tuner (BayesOpt)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A smooth synthetic objective with a known optimum in the space.
    fn objective(c: Config) -> f64 {
        let p = c.n_proc as f64;
        let s = c.n_samp as f64;
        let t = c.n_train as f64;
        // Optimum near (6, 2, 8).
        1.0 + 0.15 * (p - 6.0).powi(2) + 0.3 * (s - 2.0).powi(2) + 0.02 * (t - 8.0).powi(2)
    }

    fn run(seed: u64, budget: usize) -> (Config, f64) {
        let space = SearchSpace::for_cores(64);
        let mut bo = BayesOpt::new(space, seed);
        for _ in 0..budget {
            let c = bo.suggest();
            bo.observe(c, objective(c));
        }
        bo.best().unwrap()
    }

    #[test]
    fn finds_near_optimum_with_5_percent_budget() {
        let space = SearchSpace::for_cores(64);
        let opt = space
            .configs()
            .iter()
            .map(|&c| objective(c))
            .fold(f64::INFINITY, f64::min);
        // 20 searches ≈ 5% of 362 configs (Table VI, Sapphire Rapids row).
        let mut ok = 0;
        for seed in 0..5 {
            let (_, v) = run(seed, 20);
            if opt / v >= 0.9 {
                ok += 1;
            }
        }
        assert!(ok >= 4, "only {ok}/5 runs reached 90% of optimal");
    }

    #[test]
    fn beats_random_warmup_alone() {
        // After the full budget the incumbent must improve on the warm-up.
        let space = SearchSpace::for_cores(64);
        let mut bo = BayesOpt::new(space, 7);
        let mut warmup_best = f64::INFINITY;
        for i in 0..25 {
            let c = bo.suggest();
            let v = objective(c);
            bo.observe(c, v);
            if i < INIT_RANDOM {
                warmup_best = warmup_best.min(v);
            }
        }
        assert!(bo.best().unwrap().1 <= warmup_best);
    }

    #[test]
    fn suggest_is_idempotent_until_observed() {
        let mut bo = BayesOpt::new(SearchSpace::for_cores(32), 1);
        let a = bo.suggest();
        let b = bo.suggest();
        assert_eq!(a, b);
        bo.observe(a, 1.0);
        // Next suggestion differs (unobserved warm-up point).
        assert_ne!(bo.suggest(), a);
    }

    #[test]
    fn never_repeats_until_space_exhausted() {
        let space = SearchSpace::for_cores(16);
        let n = space.len();
        let mut bo = BayesOpt::new(space, 3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            let c = bo.suggest();
            assert!(seen.insert(c), "repeated {c}");
            bo.observe(c, objective(c));
        }
        // Space exhausted: falls back to the incumbent.
        let c = bo.suggest();
        assert_eq!(c, bo.best().unwrap().0);
    }

    #[test]
    fn deterministic_given_seed_and_objective() {
        assert_eq!(run(42, 15), run(42, 15));
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_objective() {
        let mut bo = BayesOpt::new(SearchSpace::for_cores(16), 1);
        let c = bo.suggest();
        bo.observe(c, 0.0);
    }
}
