//! A small Gaussian-process regressor (Matérn-5/2 kernel, Cholesky solve)
//! — the BayesOpt surrogate model (paper Section V-C).

/// Dense symmetric-positive-definite solver via Cholesky decomposition.
/// Stores the lower-triangular factor `L` with `A = L Lᵀ`.
#[derive(Clone, Debug)]
pub struct Cholesky {
    n: usize,
    l: Vec<f64>, // row-major lower triangle (full square storage)
}

impl Cholesky {
    /// Factors the `n×n` SPD matrix `a` (row-major). Returns `None` when the
    /// matrix is not positive definite.
    pub fn factor(a: &[f64], n: usize) -> Option<Self> {
        assert_eq!(a.len(), n * n);
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[i * n + j];
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        Some(Self { n, l })
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        // Forward: L y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.l[i * n + k] * y[k];
            }
            y[i] /= self.l[i * n + i];
        }
        // Backward: Lᵀ x = y.
        let mut x = y;
        for i in (0..n).rev() {
            for k in i + 1..n {
                x[i] -= self.l[k * n + i] * x[k];
            }
            x[i] /= self.l[i * n + i];
        }
        x
    }

    /// Log-determinant of `A` (= 2·Σ log L_ii).
    pub fn log_det(&self) -> f64 {
        (0..self.n)
            .map(|i| self.l[i * self.n + i].ln())
            .sum::<f64>()
            * 2.0
    }

    /// An empty (0×0) factor, ready to be grown with [`Cholesky::extend`].
    pub fn empty() -> Self {
        Self {
            n: 0,
            l: Vec::new(),
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Rank-1 bordering update: grows the factor of `A` to the factor of
    /// `[[A, col], [colᵀ, diag]]` in O(n²) instead of refactoring in O(n³).
    /// Returns `false` (leaving the factor unchanged) when the extended
    /// matrix is not positive definite.
    ///
    /// The bottom row replicates [`Cholesky::factor`]'s exact operation
    /// order, and the first `n` rows of a from-scratch factor only ever read
    /// the leading block, so the incrementally grown factor is **bitwise
    /// identical** to a from-scratch factorization of the extended matrix.
    pub fn extend(&mut self, col: &[f64], diag: f64) -> bool {
        assert_eq!(col.len(), self.n);
        let n = self.n;
        let m = n + 1;
        // Re-lay the existing rows onto the wider stride (values unchanged).
        let mut l = vec![0.0f64; m * m];
        for i in 0..n {
            l[i * m..i * m + n].copy_from_slice(&self.l[i * n..i * n + n]);
        }
        for j in 0..n {
            let mut sum = col[j];
            for k in 0..j {
                sum -= l[m * n + k] * l[j * m + k];
            }
            l[m * n + j] = sum / l[j * m + j];
        }
        let mut sum = diag;
        for k in 0..n {
            sum -= l[m * n + k] * l[m * n + k];
        }
        if sum <= 0.0 {
            return false;
        }
        l[m * n + n] = sum.sqrt();
        self.n = m;
        self.l = l;
        true
    }
}

/// Length-scale grid searched by log-marginal-likelihood maximization.
const LENGTH_SCALES: [f64; 4] = [0.15, 0.3, 0.6, 1.2];

/// Observation noise added to the kernel diagonal.
const NOISE: f64 = 1e-3;

/// Matérn-5/2 covariance between two points at scaled distance `r/ℓ`.
fn matern52(r: f64, length_scale: f64) -> f64 {
    let s = (5.0f64).sqrt() * r / length_scale;
    (1.0 + s + s * s / 3.0) * (-s).exp()
}

fn dist<const D: usize>(a: &[f64; D], b: &[f64; D]) -> f64 {
    let mut d2 = 0.0;
    for k in 0..D {
        let d = a[k] - b[k];
        d2 += d * d;
    }
    d2.sqrt()
}

/// GP posterior over a scalar function of normalized `D`-dimensional
/// configurations (`D = 3` for ARGO's space; higher dimensions support the
/// paper's Section VII-B extension direction).
///
/// Targets are standardized internally; predictions are returned in the
/// original units.
#[derive(Clone, Debug)]
pub struct GaussianProcess<const D: usize = 3> {
    x: Vec<[f64; D]>,
    alpha: Vec<f64>, // (K + σ²I)⁻¹ y (standardized)
    chol: Cholesky,
    length_scale: f64,
    noise: f64,
    y_mean: f64,
    y_std: f64,
}

impl<const D: usize> GaussianProcess<D> {
    /// Fits a GP to `(x, y)`; the length scale is selected from a small grid
    /// by maximizing the log marginal likelihood. Needs at least 2 points.
    pub fn fit(x: &[[f64; D]], y: &[f64]) -> GaussianProcess<D> {
        assert_eq!(x.len(), y.len());
        assert!(x.len() >= 2, "GP needs at least two observations");
        let n = x.len();
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let y_var = y.iter().map(|v| (v - y_mean).powi(2)).sum::<f64>() / n as f64;
        let y_std = y_var.sqrt().max(1e-9);
        let ys: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_std).collect();
        let noise = NOISE;

        // Select the kernel length scale by maximizing the log marginal
        // likelihood over a small grid.
        let mut best: Option<(f64, f64, Cholesky, Vec<f64>)> = None;
        for &ls in &LENGTH_SCALES {
            let mut k = vec![0.0f64; n * n];
            for i in 0..n {
                for j in 0..n {
                    k[i * n + j] = matern52(dist(&x[i], &x[j]), ls);
                }
                k[i * n + i] += noise;
            }
            let Some(chol) = Cholesky::factor(&k, n) else {
                continue;
            };
            let alpha = chol.solve(&ys);
            // log p(y) = −½ yᵀα − ½ log|K| + const.
            let fit_term: f64 = ys.iter().zip(&alpha).map(|(a, b)| a * b).sum();
            let lml = -0.5 * fit_term - 0.5 * chol.log_det();
            if best.as_ref().is_none_or(|(b, _, _, _)| lml > *b) {
                best = Some((lml, ls, chol, alpha));
            }
        }
        let (_, length_scale, chol, alpha) = best.expect("at least one length scale factors");
        GaussianProcess {
            x: x.to_vec(),
            alpha,
            chol,
            length_scale,
            noise,
            y_mean,
            y_std,
        }
    }

    /// The selected kernel length scale.
    pub fn length_scale(&self) -> f64 {
        self.length_scale
    }

    /// Posterior mean and standard deviation at `q` (original units).
    pub fn predict(&self, q: &[f64; D]) -> (f64, f64) {
        let n = self.x.len();
        let mut kstar = vec![0.0f64; n];
        for (k, xi) in kstar.iter_mut().zip(&self.x) {
            *k = matern52(dist(xi, q), self.length_scale);
        }
        let mean_std: f64 = kstar.iter().zip(&self.alpha).map(|(a, b)| a * b).sum();
        let v = self.chol.solve(&kstar);
        let kss = matern52(0.0, self.length_scale) + self.noise;
        let var = (kss - kstar.iter().zip(&v).map(|(a, b)| a * b).sum::<f64>()).max(1e-12);
        (mean_std * self.y_std + self.y_mean, var.sqrt() * self.y_std)
    }
}

/// Incrementally maintained GP state: one growing Cholesky factor per
/// length-scale candidate, extended by a rank-1 bordering step per
/// observation. Refitting after the `n`-th observation costs O(n²) per scale
/// instead of [`GaussianProcess::fit`]'s O(n³) refactorization, and —
/// because [`Cholesky::extend`] replicates `factor`'s operation order —
/// [`IncrementalGp::gp`] is **bitwise identical** to a from-scratch fit on
/// the same observations.
#[derive(Clone, Debug, Default)]
pub struct IncrementalGp<const D: usize = 3> {
    x: Vec<[f64; D]>,
    y: Vec<f64>,
    /// Factor of `K + σ²I` per length scale; `None` once an extension hits a
    /// non-PD pivot (a from-scratch factor of any larger matrix stops at
    /// that same pivot, so the scale stays dead — exactly like `fit`
    /// skipping it).
    chols: [Option<Cholesky>; 4],
}

impl<const D: usize> IncrementalGp<D> {
    /// An empty model.
    pub fn new() -> Self {
        Self {
            x: Vec::new(),
            y: Vec::new(),
            chols: std::array::from_fn(|_| Some(Cholesky::empty())),
        }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether no observation has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Observed targets, in push order.
    pub fn targets(&self) -> &[f64] {
        &self.y
    }

    /// Adds one observation, extending every live per-scale factor by its
    /// new kernel row.
    pub fn push(&mut self, x: [f64; D], y: f64) {
        let mut col = Vec::with_capacity(self.x.len());
        for (si, &ls) in LENGTH_SCALES.iter().enumerate() {
            if let Some(c) = &mut self.chols[si] {
                col.clear();
                col.extend(self.x.iter().map(|xi| matern52(dist(xi, &x), ls)));
                // Same diagonal as `fit`: matern52(0) is exactly 1.0.
                if !c.extend(&col, matern52(0.0, ls) + NOISE) {
                    self.chols[si] = None;
                }
            }
        }
        self.x.push(x);
        self.y.push(y);
    }

    /// The posterior over everything pushed so far — bitwise identical to
    /// `GaussianProcess::fit(&x, &y)` on the same data. Needs ≥ 2 points.
    pub fn gp(&self) -> GaussianProcess<D> {
        let n = self.y.len();
        assert!(n >= 2, "GP needs at least two observations");
        let y_mean = self.y.iter().sum::<f64>() / n as f64;
        let y_var = self.y.iter().map(|v| (v - y_mean).powi(2)).sum::<f64>() / n as f64;
        let y_std = y_var.sqrt().max(1e-9);
        let ys: Vec<f64> = self.y.iter().map(|v| (v - y_mean) / y_std).collect();
        let mut best: Option<(f64, f64, &Cholesky, Vec<f64>)> = None;
        for (si, &ls) in LENGTH_SCALES.iter().enumerate() {
            let Some(chol) = &self.chols[si] else {
                continue;
            };
            let alpha = chol.solve(&ys);
            let fit_term: f64 = ys.iter().zip(&alpha).map(|(a, b)| a * b).sum();
            let lml = -0.5 * fit_term - 0.5 * chol.log_det();
            if best.as_ref().is_none_or(|(b, _, _, _)| lml > *b) {
                best = Some((lml, ls, chol, alpha));
            }
        }
        let (_, length_scale, chol, alpha) = best.expect("at least one length scale factors");
        GaussianProcess {
            x: self.x.clone(),
            alpha,
            chol: chol.clone(),
            length_scale,
            noise: NOISE,
            y_mean,
            y_std,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_solves_spd_system() {
        // A = [[4,2],[2,3]], b = [10, 9] → x = [1.5, 2.0]
        let a = vec![4.0, 2.0, 2.0, 3.0];
        let c = Cholesky::factor(&a, 2).unwrap();
        let x = c.solve(&[10.0, 9.0]);
        assert!((x[0] - 1.5).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
        // log det = ln(4·3 − 4) = ln 8.
        assert!((c.log_det() - 8.0f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, −1
        assert!(Cholesky::factor(&a, 2).is_none());
    }

    #[test]
    fn extend_matches_from_scratch_factor_bitwise() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let n = 8usize;
        let mut rng = SmallRng::seed_from_u64(42);
        let b: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        // SPD by construction: A = B Bᵀ + n·I.
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i * n + j] = (0..n).map(|k| b[i * n + k] * b[j * n + k]).sum::<f64>();
            }
            a[i * n + i] += n as f64;
        }
        let mut inc = Cholesky::empty();
        for k in 0..n {
            let col: Vec<f64> = (0..k).map(|j| a[k * n + j]).collect();
            assert!(inc.extend(&col, a[k * n + k]), "PD extension refused");
            let m = k + 1;
            let mut block = Vec::with_capacity(m * m);
            for i in 0..m {
                for j in 0..m {
                    block.push(a[i * n + j]);
                }
            }
            let full = Cholesky::factor(&block, m).unwrap();
            assert_eq!(inc.dim(), m);
            for (x, y) in inc.l.iter().zip(&full.l) {
                assert_eq!(x.to_bits(), y.to_bits(), "factor drifted at n={m}");
            }
        }
    }

    #[test]
    fn extend_rejects_non_pd_extension() {
        let mut c = Cholesky::factor(&[1.0], 1).unwrap();
        // [[1,2],[2,1]] has eigenvalues 3 and −1.
        assert!(!c.extend(&[2.0], 1.0));
        // The factor is untouched and still usable.
        assert_eq!(c.dim(), 1);
        assert_eq!(c.solve(&[3.0]), vec![3.0]);
    }

    #[test]
    fn incremental_gp_matches_fit_bitwise() {
        let xs: Vec<[f64; 3]> = vec![
            [0.0, 0.0, 0.0],
            [0.5, 0.2, 0.1],
            [1.0, 1.0, 1.0],
            [0.2, 0.8, 0.4],
            [0.9, 0.1, 0.6],
            [0.3, 0.3, 0.9],
        ];
        let ys = [3.0, 1.0, 5.0, 2.0, 4.0, 2.5];
        let mut inc = IncrementalGp::<3>::new();
        for (x, y) in xs.iter().zip(&ys) {
            inc.push(*x, *y);
            if inc.len() < 2 {
                continue;
            }
            let full = GaussianProcess::fit(&xs[..inc.len()], &ys[..inc.len()]);
            let fast = inc.gp();
            assert_eq!(fast.length_scale().to_bits(), full.length_scale().to_bits());
            assert_eq!(fast.alpha.len(), full.alpha.len());
            for (a, b) in fast.alpha.iter().zip(&full.alpha) {
                assert_eq!(a.to_bits(), b.to_bits(), "alpha drifted at n={}", inc.len());
            }
            for q in [[0.4, 0.4, 0.4], [0.05, 0.9, 0.5]] {
                let (m1, s1) = fast.predict(&q);
                let (m2, s2) = full.predict(&q);
                assert_eq!(m1.to_bits(), m2.to_bits());
                assert_eq!(s1.to_bits(), s2.to_bits());
            }
        }
    }

    #[test]
    fn matern_properties() {
        assert!((matern52(0.0, 0.5) - 1.0).abs() < 1e-12);
        assert!(matern52(0.1, 0.5) > matern52(0.5, 0.5));
        assert!(matern52(10.0, 0.5) < 1e-6);
    }

    #[test]
    fn gp_interpolates_observations() {
        let x = vec![
            [0.0, 0.0, 0.0],
            [0.5, 0.2, 0.1],
            [1.0, 1.0, 1.0],
            [0.2, 0.8, 0.4],
        ];
        let y = vec![3.0, 1.0, 5.0, 2.0];
        let gp = GaussianProcess::fit(&x, &y);
        for (xi, yi) in x.iter().zip(&y) {
            let (m, s) = gp.predict(xi);
            assert!((m - yi).abs() < 0.3, "mean {m} vs {yi}");
            assert!(s < 0.6, "posterior std {s} at observed point");
        }
    }

    #[test]
    fn gp_uncertainty_grows_away_from_data() {
        let x = vec![[0.0, 0.0, 0.0], [0.1, 0.0, 0.0], [0.0, 0.1, 0.0]];
        let y = vec![1.0, 1.1, 0.9];
        let gp = GaussianProcess::fit(&x, &y);
        let (_, s_near) = gp.predict(&[0.05, 0.05, 0.0]);
        let (_, s_far) = gp.predict(&[1.0, 1.0, 1.0]);
        assert!(s_far > 2.0 * s_near, "near {s_near} far {s_far}");
    }

    #[test]
    fn gp_handles_constant_targets() {
        let x = vec![[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]];
        let y = vec![2.0, 2.0, 2.0];
        let gp = GaussianProcess::fit(&x, &y);
        let (m, s) = gp.predict(&[0.5, 0.5, 0.5]);
        assert!((m - 2.0).abs() < 1e-6);
        assert!(s.is_finite());
    }

    #[test]
    fn gp_learns_smooth_function() {
        // f(x) = sin(2πx₀) sampled on a grid; check held-out prediction.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..12 {
            let t = i as f64 / 11.0;
            x.push([t, 0.0, 0.0]);
            y.push((2.0 * std::f64::consts::PI * t).sin());
        }
        let gp = GaussianProcess::fit(&x, &y);
        let q = [0.37, 0.0, 0.0];
        let truth = (2.0 * std::f64::consts::PI * 0.37).sin();
        let (m, _) = gp.predict(&q);
        assert!((m - truth).abs() < 0.15, "pred {m} vs {truth}");
    }
}
