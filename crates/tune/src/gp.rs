//! A small Gaussian-process regressor (Matérn-5/2 kernel, Cholesky solve)
//! — the BayesOpt surrogate model (paper Section V-C).

/// Dense symmetric-positive-definite solver via Cholesky decomposition.
/// Stores the lower-triangular factor `L` with `A = L Lᵀ`.
#[derive(Clone, Debug)]
pub struct Cholesky {
    n: usize,
    l: Vec<f64>, // row-major lower triangle (full square storage)
}

impl Cholesky {
    /// Factors the `n×n` SPD matrix `a` (row-major). Returns `None` when the
    /// matrix is not positive definite.
    pub fn factor(a: &[f64], n: usize) -> Option<Self> {
        assert_eq!(a.len(), n * n);
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[i * n + j];
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        Some(Self { n, l })
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        // Forward: L y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.l[i * n + k] * y[k];
            }
            y[i] /= self.l[i * n + i];
        }
        // Backward: Lᵀ x = y.
        let mut x = y;
        for i in (0..n).rev() {
            for k in i + 1..n {
                x[i] -= self.l[k * n + i] * x[k];
            }
            x[i] /= self.l[i * n + i];
        }
        x
    }

    /// Log-determinant of `A` (= 2·Σ log L_ii).
    pub fn log_det(&self) -> f64 {
        (0..self.n)
            .map(|i| self.l[i * self.n + i].ln())
            .sum::<f64>()
            * 2.0
    }
}

/// Matérn-5/2 covariance between two points at scaled distance `r/ℓ`.
fn matern52(r: f64, length_scale: f64) -> f64 {
    let s = (5.0f64).sqrt() * r / length_scale;
    (1.0 + s + s * s / 3.0) * (-s).exp()
}

fn dist<const D: usize>(a: &[f64; D], b: &[f64; D]) -> f64 {
    let mut d2 = 0.0;
    for k in 0..D {
        let d = a[k] - b[k];
        d2 += d * d;
    }
    d2.sqrt()
}

/// GP posterior over a scalar function of normalized `D`-dimensional
/// configurations (`D = 3` for ARGO's space; higher dimensions support the
/// paper's Section VII-B extension direction).
///
/// Targets are standardized internally; predictions are returned in the
/// original units.
#[derive(Clone, Debug)]
pub struct GaussianProcess<const D: usize = 3> {
    x: Vec<[f64; D]>,
    alpha: Vec<f64>, // (K + σ²I)⁻¹ y (standardized)
    chol: Cholesky,
    length_scale: f64,
    noise: f64,
    y_mean: f64,
    y_std: f64,
}

impl<const D: usize> GaussianProcess<D> {
    /// Fits a GP to `(x, y)`; the length scale is selected from a small grid
    /// by maximizing the log marginal likelihood. Needs at least 2 points.
    pub fn fit(x: &[[f64; D]], y: &[f64]) -> GaussianProcess<D> {
        assert_eq!(x.len(), y.len());
        assert!(x.len() >= 2, "GP needs at least two observations");
        let n = x.len();
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let y_var = y.iter().map(|v| (v - y_mean).powi(2)).sum::<f64>() / n as f64;
        let y_std = y_var.sqrt().max(1e-9);
        let ys: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_std).collect();
        let noise = 1e-3;

        // Select the kernel length scale by maximizing the log marginal
        // likelihood over a small grid.
        let mut best: Option<(f64, f64, Cholesky, Vec<f64>)> = None;
        for &ls in &[0.15, 0.3, 0.6, 1.2] {
            let mut k = vec![0.0f64; n * n];
            for i in 0..n {
                for j in 0..n {
                    k[i * n + j] = matern52(dist(&x[i], &x[j]), ls);
                }
                k[i * n + i] += noise;
            }
            let Some(chol) = Cholesky::factor(&k, n) else {
                continue;
            };
            let alpha = chol.solve(&ys);
            // log p(y) = −½ yᵀα − ½ log|K| + const.
            let fit_term: f64 = ys.iter().zip(&alpha).map(|(a, b)| a * b).sum();
            let lml = -0.5 * fit_term - 0.5 * chol.log_det();
            if best.as_ref().is_none_or(|(b, _, _, _)| lml > *b) {
                best = Some((lml, ls, chol, alpha));
            }
        }
        let (_, length_scale, chol, alpha) = best.expect("at least one length scale factors");
        GaussianProcess {
            x: x.to_vec(),
            alpha,
            chol,
            length_scale,
            noise,
            y_mean,
            y_std,
        }
    }

    /// The selected kernel length scale.
    pub fn length_scale(&self) -> f64 {
        self.length_scale
    }

    /// Posterior mean and standard deviation at `q` (original units).
    pub fn predict(&self, q: &[f64; D]) -> (f64, f64) {
        let n = self.x.len();
        let mut kstar = vec![0.0f64; n];
        for (k, xi) in kstar.iter_mut().zip(&self.x) {
            *k = matern52(dist(xi, q), self.length_scale);
        }
        let mean_std: f64 = kstar.iter().zip(&self.alpha).map(|(a, b)| a * b).sum();
        let v = self.chol.solve(&kstar);
        let kss = matern52(0.0, self.length_scale) + self.noise;
        let var = (kss - kstar.iter().zip(&v).map(|(a, b)| a * b).sum::<f64>()).max(1e-12);
        (mean_std * self.y_std + self.y_mean, var.sqrt() * self.y_std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_solves_spd_system() {
        // A = [[4,2],[2,3]], b = [10, 9] → x = [1.5, 2.0]
        let a = vec![4.0, 2.0, 2.0, 3.0];
        let c = Cholesky::factor(&a, 2).unwrap();
        let x = c.solve(&[10.0, 9.0]);
        assert!((x[0] - 1.5).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
        // log det = ln(4·3 − 4) = ln 8.
        assert!((c.log_det() - 8.0f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, −1
        assert!(Cholesky::factor(&a, 2).is_none());
    }

    #[test]
    fn matern_properties() {
        assert!((matern52(0.0, 0.5) - 1.0).abs() < 1e-12);
        assert!(matern52(0.1, 0.5) > matern52(0.5, 0.5));
        assert!(matern52(10.0, 0.5) < 1e-6);
    }

    #[test]
    fn gp_interpolates_observations() {
        let x = vec![
            [0.0, 0.0, 0.0],
            [0.5, 0.2, 0.1],
            [1.0, 1.0, 1.0],
            [0.2, 0.8, 0.4],
        ];
        let y = vec![3.0, 1.0, 5.0, 2.0];
        let gp = GaussianProcess::fit(&x, &y);
        for (xi, yi) in x.iter().zip(&y) {
            let (m, s) = gp.predict(xi);
            assert!((m - yi).abs() < 0.3, "mean {m} vs {yi}");
            assert!(s < 0.6, "posterior std {s} at observed point");
        }
    }

    #[test]
    fn gp_uncertainty_grows_away_from_data() {
        let x = vec![[0.0, 0.0, 0.0], [0.1, 0.0, 0.0], [0.0, 0.1, 0.0]];
        let y = vec![1.0, 1.1, 0.9];
        let gp = GaussianProcess::fit(&x, &y);
        let (_, s_near) = gp.predict(&[0.05, 0.05, 0.0]);
        let (_, s_far) = gp.predict(&[1.0, 1.0, 1.0]);
        assert!(s_far > 2.0 * s_near, "near {s_near} far {s_far}");
    }

    #[test]
    fn gp_handles_constant_targets() {
        let x = vec![[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]];
        let y = vec![2.0, 2.0, 2.0];
        let gp = GaussianProcess::fit(&x, &y);
        let (m, s) = gp.predict(&[0.5, 0.5, 0.5]);
        assert!((m - 2.0).abs() < 1e-6);
        assert!(s.is_finite());
    }

    #[test]
    fn gp_learns_smooth_function() {
        // f(x) = sin(2πx₀) sampled on a grid; check held-out prediction.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..12 {
            let t = i as f64 / 11.0;
            x.push([t, 0.0, 0.0]);
            y.push((2.0 * std::f64::consts::PI * t).sin());
        }
        let gp = GaussianProcess::fit(&x, &y);
        let q = [0.37, 0.0, 0.0];
        let truth = (2.0 * std::f64::consts::PI * 0.37).sin();
        let (m, _) = gp.predict(&q);
        assert!((m - truth).abs() < 0.15, "pred {m} vs {truth}");
    }
}
