//! Search baselines of the paper's auto-tuner evaluation (Section VI-D):
//! exhaustive search and simulated annealing. (The third baseline, the
//! libraries' *default* setup, is a fixed configuration —
//! `PerfModel::default_config` — and needs no searcher.)

use argo_rt::Config;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::space::SearchSpace;
use crate::Searcher;

/// Visits every configuration once, in order. Finds the true optimum at the
/// cost of one epoch per configuration (726/408 epochs in the paper —
/// "prohibitively expensive").
pub struct ExhaustiveSearch {
    space: SearchSpace,
    next: usize,
    observed: Vec<(Config, f64)>,
}

impl ExhaustiveSearch {
    /// A fresh sweep over `space`.
    pub fn new(space: SearchSpace) -> Self {
        Self {
            space,
            next: 0,
            observed: Vec::new(),
        }
    }

    /// Whether every configuration has been visited.
    pub fn done(&self) -> bool {
        self.next >= self.space.len()
    }
}

impl Searcher for ExhaustiveSearch {
    fn suggest(&mut self) -> Config {
        self.space.get(self.next.min(self.space.len() - 1))
    }

    fn observe(&mut self, config: Config, value: f64) {
        self.observed.push((config, value));
        self.next += 1;
    }

    fn best(&self) -> Option<(Config, f64)> {
        self.observed
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    fn name(&self) -> &'static str {
        "Exhaustive"
    }
}

/// Simulated annealing: random-restart local moves with Metropolis
/// acceptance — "a random search algorithm that searches for the optimal
/// solution globally" (Section VI-D). Matched to the same search budget as
/// the auto-tuner for a fair comparison.
pub struct SimulatedAnnealing {
    space: SearchSpace,
    rng: SmallRng,
    temperature: f64,
    cooling: f64,
    current: Option<(Config, f64)>,
    pending: Option<Config>,
    observed: Vec<(Config, f64)>,
}

impl SimulatedAnnealing {
    /// A fresh annealer over `space`, deterministic in `seed`.
    ///
    /// The initial temperature is set relative to the objective scale as
    /// observations arrive (first accepted value), with geometric cooling.
    pub fn new(space: SearchSpace, seed: u64) -> Self {
        Self {
            space,
            rng: SmallRng::seed_from_u64(seed),
            temperature: 0.3, // relative (objective values are normalized by the incumbent)
            cooling: 0.88,
            current: None,
            pending: None,
            observed: Vec::new(),
        }
    }

    fn neighbor(&mut self, c: Config) -> Config {
        // Perturb one coordinate by ±1 (processes/sampling) or ±25%
        // (training cores), projected back onto the space.
        let dim = self.rng.gen_range(0..3);
        let step: i64 = if self.rng.gen_bool(0.5) { 1 } else { -1 };
        let (mut p, mut s, mut t) = (c.n_proc as i64, c.n_samp as i64, c.n_train as i64);
        match dim {
            0 => p += step,
            1 => s += step,
            _ => t += step * (1 + t / 4),
        }
        self.space.project(p, s, t)
    }
}

impl Searcher for SimulatedAnnealing {
    fn suggest(&mut self) -> Config {
        if let Some(p) = self.pending {
            return p;
        }
        let c = match self.current {
            None => {
                use rand::Rng;
                let i = self.rng.gen_range(0..self.space.len());
                self.space.get(i)
            }
            Some((cur, _)) => self.neighbor(cur),
        };
        self.pending = Some(c);
        c
    }

    fn observe(&mut self, config: Config, value: f64) {
        assert!(value.is_finite() && value > 0.0);
        self.pending = None;
        self.observed.push((config, value));
        match self.current {
            None => self.current = Some((config, value)),
            Some((_, cur_v)) => {
                let accept = if value <= cur_v {
                    true
                } else {
                    // Relative degradation against temperature.
                    let delta = (value - cur_v) / cur_v;
                    self.rng.gen::<f64>() < (-delta / self.temperature).exp()
                };
                if accept {
                    self.current = Some((config, value));
                }
                self.temperature *= self.cooling;
            }
        }
    }

    fn best(&self) -> Option<(Config, f64)> {
        self.observed
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    fn name(&self) -> &'static str {
        "Sim. Anneal."
    }
}

/// Greedy search-space pruning (paper Section VII-B): probes the corners
/// and midpoint of the current (p, s, t) box, then halves the box around the
/// best probe — the "prune sub-optimal configurations" alternative the
/// paper contrasts with BayesOpt. Works well in 3-D, degrades as dimensions
/// grow.
pub struct GreedyPruning {
    space: SearchSpace,
    lo: [i64; 3],
    hi: [i64; 3],
    probes: Vec<Config>,
    probe_at: usize,
    round_best: Option<(Config, f64)>,
    observed: Vec<(Config, f64)>,
    pending: Option<Config>,
}

impl GreedyPruning {
    /// A fresh pruning search over `space`.
    pub fn new(space: SearchSpace) -> Self {
        let (mut lo, mut hi) = ([i64::MAX; 3], [i64::MIN; 3]);
        for c in space.configs() {
            let v = [c.n_proc as i64, c.n_samp as i64, c.n_train as i64];
            for d in 0..3 {
                lo[d] = lo[d].min(v[d]);
                hi[d] = hi[d].max(v[d]);
            }
        }
        let mut s = Self {
            space,
            lo,
            hi,
            probes: Vec::new(),
            probe_at: 0,
            round_best: None,
            observed: Vec::new(),
            pending: None,
        };
        s.start_round();
        s
    }

    fn start_round(&mut self) {
        let mid = [
            (self.lo[0] + self.hi[0]) / 2,
            (self.lo[1] + self.hi[1]) / 2,
            (self.lo[2] + self.hi[2]) / 2,
        ];
        let mut pts = vec![mid];
        for d in 0..3 {
            let mut a = mid;
            a[d] = self.lo[d];
            let mut b = mid;
            b[d] = self.hi[d];
            pts.push(a);
            pts.push(b);
        }
        self.probes = pts
            .into_iter()
            .map(|v| self.space.project(v[0], v[1], v[2]))
            .collect();
        self.probes.dedup();
        self.probe_at = 0;
        self.round_best = None;
    }

    #[allow(clippy::needless_range_loop)] // lo/hi/center walked per axis
    fn shrink(&mut self) {
        if let Some((best, _)) = self.round_best {
            let center = [best.n_proc as i64, best.n_samp as i64, best.n_train as i64];
            for d in 0..3 {
                let span = ((self.hi[d] - self.lo[d]) / 2).max(1);
                self.lo[d] = (center[d] - span / 2).max(self.lo[d]);
                self.hi[d] = (center[d] + (span + 1) / 2).min(self.hi[d]);
            }
        }
        self.start_round();
    }
}

impl Searcher for GreedyPruning {
    fn suggest(&mut self) -> Config {
        if let Some(p) = self.pending {
            return p;
        }
        if self.probe_at >= self.probes.len() {
            self.shrink();
        }
        let c = self.probes[self.probe_at.min(self.probes.len() - 1)];
        self.pending = Some(c);
        c
    }

    fn observe(&mut self, config: Config, value: f64) {
        assert!(value.is_finite() && value > 0.0);
        self.pending = None;
        self.probe_at += 1;
        self.observed.push((config, value));
        if self.round_best.is_none_or(|(_, b)| value < b) {
            self.round_best = Some((config, value));
        }
    }

    fn best(&self) -> Option<(Config, f64)> {
        self.observed
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    fn name(&self) -> &'static str {
        "Greedy pruning"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn objective(c: Config) -> f64 {
        let p = c.n_proc as f64;
        let s = c.n_samp as f64;
        let t = c.n_train as f64;
        1.0 + 0.15 * (p - 6.0).powi(2) + 0.3 * (s - 2.0).powi(2) + 0.02 * (t - 8.0).powi(2)
    }

    #[test]
    fn exhaustive_finds_true_optimum() {
        let space = SearchSpace::for_cores(32);
        let truth = space
            .configs()
            .iter()
            .map(|&c| objective(c))
            .fold(f64::INFINITY, f64::min);
        let mut ex = ExhaustiveSearch::new(space.clone());
        for _ in 0..space.len() {
            let c = ex.suggest();
            ex.observe(c, objective(c));
        }
        assert!(ex.done());
        assert_eq!(ex.best().unwrap().1, truth);
    }

    #[test]
    fn exhaustive_visits_each_config_once() {
        let space = SearchSpace::for_cores(16);
        let mut ex = ExhaustiveSearch::new(space.clone());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..space.len() {
            let c = ex.suggest();
            assert!(seen.insert(c));
            ex.observe(c, 1.0);
        }
        assert_eq!(seen.len(), space.len());
    }

    #[test]
    fn annealing_improves_over_time() {
        let space = SearchSpace::for_cores(64);
        let mut sa = SimulatedAnnealing::new(space, 5);
        let mut first = None;
        for _ in 0..40 {
            let c = sa.suggest();
            let v = objective(c);
            sa.observe(c, v);
            first.get_or_insert(v);
        }
        assert!(sa.best().unwrap().1 <= first.unwrap());
    }

    #[test]
    fn annealing_stays_in_space() {
        let space = SearchSpace::for_cores(48);
        let mut sa = SimulatedAnnealing::new(space.clone(), 11);
        for _ in 0..60 {
            let c = sa.suggest();
            assert!(space.contains(c), "{c} escaped the space");
            sa.observe(c, objective(c));
        }
    }

    #[test]
    fn annealing_seeds_give_dispersion() {
        // The paper reports a standard deviation for SA across runs.
        let space = SearchSpace::for_cores(64);
        let mut results = Vec::new();
        for seed in 0..6 {
            let mut sa = SimulatedAnnealing::new(space.clone(), seed);
            for _ in 0..20 {
                let c = sa.suggest();
                sa.observe(c, objective(c));
            }
            results.push(sa.best().unwrap().1);
        }
        let distinct: std::collections::HashSet<u64> =
            results.iter().map(|v| v.to_bits()).collect();
        assert!(distinct.len() > 1, "SA runs should disperse");
    }

    #[test]
    fn suggest_idempotent() {
        let mut sa = SimulatedAnnealing::new(SearchSpace::for_cores(16), 1);
        assert_eq!(sa.suggest(), sa.suggest());
    }

    #[test]
    fn pruning_converges_on_separable_objective() {
        let space = SearchSpace::for_cores(64);
        let optimal = space
            .configs()
            .iter()
            .map(|&c| objective(c))
            .fold(f64::INFINITY, f64::min);
        let mut pr = GreedyPruning::new(space.clone());
        for _ in 0..35 {
            let c = pr.suggest();
            assert!(space.contains(c));
            pr.observe(c, objective(c));
        }
        let found = pr.best().unwrap().1;
        assert!(
            optimal / found > 0.85,
            "pruning found {found} vs optimal {optimal}"
        );
    }

    #[test]
    fn pruning_is_deterministic_and_idempotent() {
        let run = || {
            let mut pr = GreedyPruning::new(SearchSpace::for_cores(32));
            let mut out = Vec::new();
            for _ in 0..15 {
                let c = pr.suggest();
                assert_eq!(c, pr.suggest());
                pr.observe(c, objective(c));
                out.push(c);
            }
            out
        };
        assert_eq!(run(), run());
    }
}
