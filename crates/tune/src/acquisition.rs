//! Acquisition functions for Bayesian optimization (paper Section V-C:
//! "an acquisition function, which balances exploration … and
//! exploitation …, to decide the next sample point").

/// Abramowitz–Stegun style erf approximation (max abs error ≈ 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal CDF.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Standard normal PDF.
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Expected Improvement for *minimization*: how much below the incumbent
/// `best` the posterior `(mean, std)` is expected to land, with exploration
/// bonus `xi`.
pub fn expected_improvement(mean: f64, std: f64, best: f64, xi: f64) -> f64 {
    if std <= 1e-12 {
        return (best - mean - xi).max(0.0);
    }
    let delta = best - mean - xi;
    let z = delta / std;
    (delta * normal_cdf(z) + std * normal_pdf(z)).max(0.0)
}

/// Lower Confidence Bound for minimization: `μ − κσ` (smaller is more
/// attractive). The negation is returned so that, like EI, **larger is
/// better**: `−(μ − κσ)`.
pub fn lower_confidence_bound(mean: f64, std: f64, kappa: f64) -> f64 {
    -(mean - kappa * std)
}

/// Probability of Improvement for minimization: `Φ((best − μ − ξ)/σ)`.
pub fn probability_of_improvement(mean: f64, std: f64, best: f64, xi: f64) -> f64 {
    if std <= 1e-12 {
        return if mean < best - xi { 1.0 } else { 0.0 };
    }
    normal_cdf((best - mean - xi) / std)
}

/// The acquisition functions available to the tuner (EI is the paper's
/// choice; the others support the acquisition ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Acquisition {
    /// Expected Improvement (default).
    ExpectedImprovement,
    /// Lower Confidence Bound with κ = 2.
    LowerConfidenceBound,
    /// Probability of Improvement.
    ProbabilityOfImprovement,
    /// Pure exploitation: pick the lowest posterior mean.
    GreedyMean,
}

impl Acquisition {
    /// Scores a candidate; **larger is better** for every variant.
    pub fn score(&self, mean: f64, std: f64, best: f64) -> f64 {
        match self {
            Acquisition::ExpectedImprovement => expected_improvement(mean, std, best, 0.01),
            Acquisition::LowerConfidenceBound => lower_confidence_bound(mean, std, 2.0),
            Acquisition::ProbabilityOfImprovement => {
                probability_of_improvement(mean, std, best, 0.01)
            }
            Acquisition::GreedyMean => -mean,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Acquisition::ExpectedImprovement => "EI",
            Acquisition::LowerConfidenceBound => "LCB",
            Acquisition::ProbabilityOfImprovement => "PI",
            Acquisition::GreedyMean => "greedy-mean",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_reference_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(8.0) > 0.999999);
    }

    #[test]
    fn pdf_symmetric_and_peaked() {
        assert!((normal_pdf(0.0) - 0.39894228).abs() < 1e-7);
        assert!((normal_pdf(1.3) - normal_pdf(-1.3)).abs() < 1e-12);
    }

    #[test]
    fn ei_is_nonnegative() {
        for mean in [-2.0, 0.0, 2.0] {
            for std in [0.0, 0.1, 1.0] {
                for best in [-1.0, 0.0, 1.0] {
                    assert!(expected_improvement(mean, std, best, 0.01) >= 0.0);
                }
            }
        }
    }

    #[test]
    fn ei_prefers_lower_posterior_mean() {
        let a = expected_improvement(0.5, 0.2, 1.0, 0.0);
        let b = expected_improvement(0.9, 0.2, 1.0, 0.0);
        assert!(a > b);
    }

    #[test]
    fn ei_rewards_uncertainty_when_mean_is_poor() {
        // Posterior mean above the incumbent: only variance can help.
        let narrow = expected_improvement(1.5, 0.01, 1.0, 0.0);
        let wide = expected_improvement(1.5, 1.0, 1.0, 0.0);
        assert!(wide > narrow);
        assert!(narrow < 1e-9);
    }

    #[test]
    fn zero_std_is_deterministic_improvement() {
        assert!((expected_improvement(0.4, 0.0, 1.0, 0.0) - 0.6).abs() < 1e-12);
        assert_eq!(expected_improvement(1.4, 0.0, 1.0, 0.0), 0.0);
    }

    #[test]
    fn lcb_prefers_low_mean_and_high_variance() {
        assert!(lower_confidence_bound(1.0, 0.5, 2.0) > lower_confidence_bound(2.0, 0.5, 2.0));
        assert!(lower_confidence_bound(1.0, 1.0, 2.0) > lower_confidence_bound(1.0, 0.1, 2.0));
    }

    #[test]
    fn pi_bounds_and_degenerate() {
        let p = probability_of_improvement(0.5, 0.3, 1.0, 0.0);
        assert!((0.0..=1.0).contains(&p));
        assert!(p > 0.5, "mean below incumbent");
        assert_eq!(probability_of_improvement(0.5, 0.0, 1.0, 0.0), 1.0);
        assert_eq!(probability_of_improvement(1.5, 0.0, 1.0, 0.0), 0.0);
    }

    #[test]
    fn acquisition_variants_rank_sensibly() {
        for acq in [
            Acquisition::ExpectedImprovement,
            Acquisition::LowerConfidenceBound,
            Acquisition::ProbabilityOfImprovement,
            Acquisition::GreedyMean,
        ] {
            // Lower posterior mean must score at least as high, all else equal.
            let lo = acq.score(0.5, 0.2, 1.0);
            let hi = acq.score(1.5, 0.2, 1.0);
            assert!(lo >= hi, "{} ranks a worse mean higher", acq.name());
        }
    }
}
