//! Integration: the auto-tuner against the modeled design-space surfaces —
//! verifies the paper's headline auto-tuning claims (Section VI-D) on the
//! same objective the benches use.

use argo_graph::datasets::{OGBN_PRODUCTS, REDDIT};
use argo_platform::{
    Library, ModelKind, PerfModel, SamplerKind, Setup, ICE_LAKE_8380H, SAPPHIRE_RAPIDS_6430L,
};
use argo_tune::{
    paper_num_searches, BayesOpt, OnlineAutoTuner, SearchSpace, Searcher, SimulatedAnnealing,
};

fn model(
    platform: argo_platform::PlatformSpec,
    sampler: SamplerKind,
    modelk: ModelKind,
) -> PerfModel {
    PerfModel::new(Setup {
        platform,
        library: Library::Dgl,
        sampler,
        model: modelk,
        dataset: OGBN_PRODUCTS,
    })
}

fn optimum(m: &PerfModel) -> f64 {
    m.argo_best_epoch_time(m.setup().platform.total_cores).1
}

/// Paper claim: the auto-tuner finds a configuration at least ~90% as fast
/// as the exhaustive optimum while exploring only 5–6% of the space.
#[test]
fn bayesopt_reaches_90_percent_of_optimal_with_paper_budget() {
    for (platform, sampler, modelk) in [
        (ICE_LAKE_8380H, SamplerKind::Neighbor, ModelKind::Sage),
        (ICE_LAKE_8380H, SamplerKind::Shadow, ModelKind::Gcn),
        (
            SAPPHIRE_RAPIDS_6430L,
            SamplerKind::Neighbor,
            ModelKind::Sage,
        ),
        (SAPPHIRE_RAPIDS_6430L, SamplerKind::Shadow, ModelKind::Gcn),
    ] {
        let m = model(platform, sampler, modelk);
        let opt = optimum(&m);
        let budget =
            paper_num_searches(platform.total_cores, matches!(sampler, SamplerKind::Shadow));
        let mut wins = 0;
        let runs = 5;
        for seed in 0..runs {
            let space = SearchSpace::for_cores(platform.total_cores);
            let tuner = OnlineAutoTuner::new(BayesOpt::new(space, seed), budget);
            let report = tuner.run(budget, |c| m.epoch_time(c), None);
            if opt / report.best_epoch_time >= 0.9 {
                wins += 1;
            }
        }
        assert!(
            wins >= runs - 1,
            "{}: only {wins}/{runs} runs reached 90% of optimal",
            m.setup().label()
        );
    }
}

/// Paper claim: with the same number of searches, the auto-tuner outperforms
/// simulated annealing on average (Table IV discussion).
#[test]
fn bayesopt_beats_simulated_annealing_on_average() {
    let m = model(ICE_LAKE_8380H, SamplerKind::Neighbor, ModelKind::Sage);
    let budget = 35;
    let runs = 7;
    let mean = |mut f: Box<dyn FnMut(u64) -> f64>| -> f64 {
        (0..runs).map(&mut f).sum::<f64>() / runs as f64
    };
    let bo_mean = mean(Box::new(|seed| {
        let mut bo = BayesOpt::new(SearchSpace::for_cores(112), seed);
        for _ in 0..budget {
            let c = bo.suggest();
            bo.observe(c, m.epoch_time(c));
        }
        bo.best().unwrap().1
    }));
    let sa_mean = mean(Box::new(|seed| {
        let mut sa = SimulatedAnnealing::new(SearchSpace::for_cores(112), seed);
        for _ in 0..budget {
            let c = sa.suggest();
            sa.observe(c, m.epoch_time(c));
        }
        sa.best().unwrap().1
    }));
    assert!(
        bo_mean <= sa_mean * 1.02,
        "BayesOpt mean {bo_mean} should beat SA mean {sa_mean}"
    );
}

/// The tuner's own overhead must be a negligible fraction of training time
/// (paper: <1% of overall training; Section VI-D reports seconds on a
/// 200-epoch run).
#[test]
fn tuner_overhead_is_negligible() {
    let m = model(ICE_LAKE_8380H, SamplerKind::Neighbor, ModelKind::Sage);
    let space = SearchSpace::for_cores(112);
    let tuner = OnlineAutoTuner::new(BayesOpt::new(space, 0), 35);
    let report = tuner.run(200, |c| m.epoch_time(c), None);
    assert!(
        report.tuner_overhead < 0.01 * report.total_time,
        "overhead {} vs total {}",
        report.tuner_overhead,
        report.total_time
    );
}

/// End-to-end 200 epochs with auto-tuning (including the sub-optimal search
/// epochs) still beats 200 epochs at the default setup — the Figure 10
/// comparison.
#[test]
fn tuned_200_epochs_beat_default_200_epochs() {
    for (sampler, modelk, dataset) in [
        (SamplerKind::Neighbor, ModelKind::Sage, REDDIT),
        (SamplerKind::Shadow, ModelKind::Gcn, OGBN_PRODUCTS),
    ] {
        let m = PerfModel::new(Setup {
            platform: ICE_LAKE_8380H,
            library: Library::Dgl,
            sampler,
            model: modelk,
            dataset,
        });
        let budget = paper_num_searches(112, matches!(sampler, SamplerKind::Shadow));
        let tuner = OnlineAutoTuner::new(BayesOpt::new(SearchSpace::for_cores(112), 1), budget);
        let report = tuner.run(200, |c| m.epoch_time(c), None);
        let default_total = 200.0 * m.epoch_time(m.default_config());
        assert!(
            report.total_time < default_total,
            "{}: tuned {} !< default {}",
            m.setup().label(),
            report.total_time,
            default_total
        );
    }
}
