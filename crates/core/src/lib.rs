//! # argo-core — the ARGO runtime, as a user-facing API
//!
//! The paper's Listing 1 enables ARGO with a two-line wrapper:
//!
//! ```python
//! runtime = ARGO(n_search=20, epoch=200)
//! runtime.run(train, args=(...))
//! ```
//!
//! [`Argo`] is the Rust equivalent. The training function receives the
//! configuration the runtime chose (number of processes, sampling cores,
//! training cores) and how many epochs to run under it, and returns the
//! measured time — exactly the contract Listing 3 imposes on the modified
//! DGL training script (`num_workers` and `ep` become variables the runtime
//! controls).
//!
//! ```
//! use argo_core::{Argo, ArgoOptions};
//!
//! // A toy "training function": epoch time depends on the configuration.
//! let mut runtime = Argo::new(ArgoOptions {
//!     n_search: 10,
//!     epochs: 40,
//!     total_cores: 16,
//!     seed: 0,
//! });
//! let report = runtime.run(|config, epochs| {
//!     let per_epoch = 1.0 + (config.n_proc as f64 - 4.0).powi(2) * 0.05
//!         + (config.n_samp as f64 - 2.0).powi(2) * 0.1;
//!     per_epoch * epochs as f64
//! });
//! assert_eq!(report.epochs_run, 40);
//! assert!(report.config_opt.fits(16));
//! ```
//!
//! For training real models, [`Argo::train`] drives an
//! [`argo_engine::Engine`] directly; for paper-scale studies,
//! [`Argo::run_modeled`] drives an [`argo_platform::PerfModel`].

use argo_engine::{Engine, EpochStats};
use argo_platform::PerfModel;
use argo_rt::{Config, TraceRecorder};
use argo_tune::{BayesOpt, SearchSpace, Searcher};

pub use argo_rt::Config as ArgoConfig;

/// Options of the ARGO runtime (mirrors `ARGO(n_search=…, epoch=…)`).
#[derive(Clone, Copy, Debug)]
pub struct ArgoOptions {
    /// Online-learning searches before the best configuration is reused
    /// (the paper uses 5–6% of the design space, Table VI).
    pub n_search: usize,
    /// Total training epochs.
    pub epochs: usize,
    /// Cores the runtime may allocate (defaults to the host's).
    pub total_cores: usize,
    /// RNG seed for the tuner.
    pub seed: u64,
}

impl Default for ArgoOptions {
    fn default() -> Self {
        // On hosts with fewer than 4 cores the plan is logical: threads
        // oversubscribe and core binding degrades to a no-op, so ARGO stays
        // functional (if not faster) on small machines.
        let total_cores = argo_rt::num_available_cores().max(4);
        Self {
            n_search: 10,
            epochs: 200,
            total_cores,
            seed: 0,
        }
    }
}

/// Report of a completed ARGO run.
#[derive(Clone, Debug)]
pub struct ArgoReport {
    /// The configuration selected by the auto-tuner and reused after online
    /// learning.
    pub config_opt: Config,
    /// Epoch time of `config_opt` when it was found.
    pub best_epoch_time: f64,
    /// Every configuration evaluated during online learning with its epoch
    /// time.
    pub history: Vec<(Config, f64)>,
    /// End-to-end time including auto-tuning overhead and sub-optimal
    /// search epochs (what Figures 10/11 report).
    pub total_time: f64,
    /// Epochs actually run.
    pub epochs_run: usize,
    /// Design-space size for this machine.
    pub space_size: usize,
}

/// The ARGO runtime (paper Listing 1).
pub struct Argo {
    opts: ArgoOptions,
    space: SearchSpace,
}

impl Argo {
    /// Creates a runtime. Panics if the machine is too small to host even
    /// the smallest multi-process configuration (4 cores).
    pub fn new(opts: ArgoOptions) -> Self {
        assert!(opts.n_search >= 1, "need at least one search epoch");
        assert!(
            opts.epochs >= opts.n_search,
            "epochs ({}) must cover n_search ({})",
            opts.epochs,
            opts.n_search
        );
        let mut opts = opts;
        opts.total_cores = opts.total_cores.max(4);
        let space = SearchSpace::for_cores(opts.total_cores);
        Self { opts, space }
    }

    /// Runtime options.
    pub fn options(&self) -> &ArgoOptions {
        &self.opts
    }

    /// The design space the tuner searches.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Runs training under ARGO: `train(config, epochs)` must train for
    /// `epochs` epochs under `config` and return the elapsed time in
    /// seconds. During online learning it is called with `epochs = 1`;
    /// afterwards once with the remaining epochs (mirroring the `ep`
    /// variable of Listing 3).
    pub fn run(&mut self, mut train: impl FnMut(Config, usize) -> f64) -> ArgoReport {
        // No point searching longer than the space is large (tiny hosts).
        let n_search = self.opts.n_search.min(self.opts.epochs).min(self.space.len());
        let mut tuner = BayesOpt::new(self.space.clone(), self.opts.seed);
        let mut history = Vec::with_capacity(n_search);
        let mut total_time = 0.0;
        for _ in 0..n_search {
            let config = tuner.suggest();
            let t = train(config, 1);
            tuner.observe(config, t);
            history.push((config, t));
            total_time += t;
        }
        let (config_opt, best_epoch_time) = tuner.best().expect("n_search >= 1");
        let remaining = self.opts.epochs - n_search;
        if remaining > 0 {
            total_time += train(config_opt, remaining);
        }
        ArgoReport {
            config_opt,
            best_epoch_time,
            history,
            total_time,
            epochs_run: self.opts.epochs,
            space_size: self.space.len(),
        }
    }

    /// Trains a real [`Engine`] under ARGO, reporting per-epoch statistics
    /// through `on_epoch`.
    pub fn train(
        &mut self,
        engine: &mut Engine,
        mut on_epoch: impl FnMut(usize, Config, &EpochStats),
    ) -> ArgoReport {
        let trace = TraceRecorder::disabled();
        let mut epoch_idx = 0usize;
        self.run(|config, epochs| {
            let mut elapsed = 0.0;
            for _ in 0..epochs {
                let stats = engine.train_epoch(config, &trace);
                on_epoch(epoch_idx, config, &stats);
                epoch_idx += 1;
                elapsed += stats.epoch_time;
            }
            elapsed
        })
    }

    /// Runs the full schedule against a modeled platform (paper-scale
    /// studies on hardware this host does not have).
    pub fn run_modeled(&mut self, model: &PerfModel) -> ArgoReport {
        self.run(|config, epochs| model.epoch_time(config) * epochs as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_engine::EngineOptions;
    use argo_graph::datasets::{FLICKR, OGBN_PRODUCTS};
    use argo_platform::{
        Library, ModelKind, SamplerKind, Setup, ICE_LAKE_8380H,
    };
    use argo_sample::NeighborSampler;
    use std::sync::Arc;

    fn toy_objective(config: Config, epochs: usize) -> f64 {
        let per = 1.0
            + 0.05 * (config.n_proc as f64 - 5.0).powi(2)
            + 0.08 * (config.n_samp as f64 - 2.0).powi(2)
            + 0.01 * (config.n_train as f64 - 6.0).powi(2);
        per * epochs as f64
    }

    #[test]
    fn run_respects_epoch_budget() {
        let mut argo = Argo::new(ArgoOptions {
            n_search: 8,
            epochs: 50,
            total_cores: 32,
            seed: 1,
        });
        let mut search_calls = 0usize;
        let mut reuse_epochs = 0usize;
        let report = argo.run(|c, e| {
            if e == 1 {
                search_calls += 1;
            } else {
                reuse_epochs += e;
            }
            toy_objective(c, e)
        });
        assert_eq!(search_calls, 8);
        assert_eq!(reuse_epochs, 42);
        assert_eq!(report.epochs_run, 50);
        assert_eq!(report.history.len(), 8);
        assert!(report.config_opt.fits(32));
    }

    #[test]
    fn total_time_accounts_search_and_reuse() {
        let mut argo = Argo::new(ArgoOptions {
            n_search: 5,
            epochs: 20,
            total_cores: 16,
            seed: 2,
        });
        let report = argo.run(toy_objective);
        let search_sum: f64 = report.history.iter().map(|(_, t)| t).sum();
        let expect = search_sum + toy_objective(report.config_opt, 15);
        assert!((report.total_time - expect).abs() < 1e-9);
    }

    #[test]
    fn n_search_equal_epochs_is_all_search() {
        let mut argo = Argo::new(ArgoOptions {
            n_search: 6,
            epochs: 6,
            total_cores: 16,
            seed: 3,
        });
        let report = argo.run(toy_objective);
        assert_eq!(report.history.len(), 6);
    }

    #[test]
    #[should_panic]
    fn epochs_below_n_search_panics() {
        Argo::new(ArgoOptions {
            n_search: 10,
            epochs: 5,
            total_cores: 16,
            seed: 0,
        });
    }

    #[test]
    fn run_modeled_matches_direct_model_calls() {
        let model = PerfModel::new(Setup {
            platform: ICE_LAKE_8380H,
            library: Library::Dgl,
            sampler: SamplerKind::Neighbor,
            model: ModelKind::Sage,
            dataset: OGBN_PRODUCTS,
        });
        let mut argo = Argo::new(ArgoOptions {
            n_search: 35,
            epochs: 200,
            total_cores: 112,
            seed: 4,
        });
        let report = argo.run_modeled(&model);
        // The reused configuration is near-optimal (≥85% of exhaustive).
        let opt = model.argo_best_epoch_time(112).1;
        assert!(
            opt / report.best_epoch_time > 0.85,
            "found {} vs optimal {opt}",
            report.best_epoch_time
        );
        assert_eq!(report.space_size, 694);
    }

    #[test]
    fn train_drives_a_real_engine() {
        let dataset = Arc::new(FLICKR.synthesize(0.008, 3));
        let sampler: Arc<dyn argo_sample::Sampler> = Arc::new(NeighborSampler::new(vec![6, 3]));
        let mut engine = Engine::new(
            dataset,
            sampler,
            EngineOptions {
                hidden: 8,
                num_layers: 2,
                global_batch: 64,
                total_cores: 16,
                ..Default::default()
            },
        );
        let mut argo = Argo::new(ArgoOptions {
            n_search: 3,
            epochs: 5,
            total_cores: 16,
            seed: 5,
        });
        let mut epochs_seen = Vec::new();
        let report = argo.train(&mut engine, |i, c, stats| {
            epochs_seen.push((i, c, stats.loss));
        });
        assert_eq!(epochs_seen.len(), 5);
        assert_eq!(engine.epochs_done(), 5);
        // Epoch indices in order.
        assert!(epochs_seen.windows(2).all(|w| w[1].0 == w[0].0 + 1));
        // Final epochs reuse config_opt.
        assert_eq!(epochs_seen.last().unwrap().1, report.config_opt);
        assert!(report.total_time > 0.0);
    }
}
