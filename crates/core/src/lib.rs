//! # argo-core — the ARGO runtime, as a user-facing API
//!
//! The paper's Listing 1 enables ARGO with a two-line wrapper:
//!
//! ```python
//! runtime = ARGO(n_search=20, epoch=200)
//! runtime.run(train, args=(...))
//! ```
//!
//! [`Argo`] is the Rust equivalent. The training function receives the
//! configuration the runtime chose (number of processes, sampling cores,
//! training cores) and how many epochs to run under it, and returns the
//! measured time — exactly the contract Listing 3 imposes on the modified
//! DGL training script (`num_workers` and `ep` become variables the runtime
//! controls).
//!
//! ```
//! use argo_core::{Argo, ArgoOptions};
//!
//! // A toy "training function": epoch time depends on the configuration.
//! let mut runtime = Argo::new(
//!     ArgoOptions::builder()
//!         .with_n_search(10)
//!         .with_epochs(40)
//!         .with_total_cores(16),
//! );
//! let report = runtime.run(
//!     |config, epochs| {
//!         let per_epoch = 1.0 + (config.n_proc as f64 - 4.0).powi(2) * 0.05
//!             + (config.n_samp as f64 - 2.0).powi(2) * 0.1;
//!         per_epoch * epochs as f64
//!     },
//!     None, // pass Some(&telemetry) to record tuner introspection
//! );
//! assert_eq!(report.epochs_run, 40);
//! assert!(report.config_opt.fits(16));
//! ```
//!
//! For training real models, [`Argo::train`] drives an
//! [`argo_engine::Engine`] directly; for paper-scale studies,
//! [`Argo::run_modeled`] drives an [`argo_platform::PerfModel`]. Each entry
//! point takes an `Option<&Telemetry>` (the pre-0.2 `*_telemetry` variants
//! have been removed).

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use argo_engine::{Engine, EpochStats};
use argo_platform::PerfModel;
use argo_rt::telemetry::names;
use argo_rt::{Config, RunEvent, Telemetry, TrialRecord};
use argo_tune::{BayesOpt, SearchSpace, Searcher};

pub use argo_rt::Config as ArgoConfig;

/// Errors surfaced by ARGO entry points (CLI flag parsing, telemetry
/// sinks). Each renders as a one-line diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// A command-line flag or option had an invalid value.
    InvalidArgument(String),
    /// An I/O operation (e.g. writing `--metrics-out`) failed.
    Io(String),
    /// A serving request could not finish before its deadline budget.
    DeadlineExceeded(String),
    /// The serving admission queue was at capacity; the request was shed.
    QueueFull(String),
    /// A serving query named a seed node outside the loaded graph.
    UnknownSeedNode(String),
    /// Any other runtime failure.
    Other(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            Error::Io(msg) => write!(f, "i/o error: {msg}"),
            Error::DeadlineExceeded(msg) => write!(f, "deadline exceeded: {msg}"),
            Error::QueueFull(msg) => write!(f, "queue full: {msg}"),
            Error::UnknownSeedNode(msg) => write!(f, "unknown seed node: {msg}"),
            Error::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<String> for Error {
    fn from(msg: String) -> Self {
        Error::Other(msg)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

/// Options of the ARGO runtime (mirrors `ARGO(n_search=…, epoch=…)`).
#[derive(Clone, Copy, Debug)]
pub struct ArgoOptions {
    /// Online-learning searches before the best configuration is reused
    /// (the paper uses 5–6% of the design space, Table VI).
    pub n_search: usize,
    /// Total training epochs.
    pub epochs: usize,
    /// Cores the runtime may allocate (defaults to the host's).
    pub total_cores: usize,
    /// RNG seed for the tuner.
    pub seed: u64,
}

impl Default for ArgoOptions {
    fn default() -> Self {
        // On hosts with fewer than 4 cores the plan is logical: threads
        // oversubscribe and core binding degrades to a no-op, so ARGO stays
        // functional (if not faster) on small machines.
        let total_cores = argo_rt::num_available_cores().max(4);
        Self {
            n_search: 10,
            epochs: 200,
            total_cores,
            seed: 0,
        }
    }
}

impl ArgoOptions {
    /// Fluent starting point: defaults, refined with the `with_*` methods.
    pub fn builder() -> Self {
        Self::default()
    }

    /// Sets the number of online-learning search epochs.
    pub fn with_n_search(mut self, n_search: usize) -> Self {
        self.n_search = n_search;
        self
    }

    /// Sets the total training epochs.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the core budget the runtime may allocate.
    pub fn with_total_cores(mut self, total_cores: usize) -> Self {
        self.total_cores = total_cores;
        self
    }

    /// Sets the tuner's RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Report of a completed ARGO run.
#[derive(Clone, Debug)]
pub struct ArgoReport {
    /// The configuration selected by the auto-tuner and reused after online
    /// learning.
    pub config_opt: Config,
    /// Epoch time of `config_opt` when it was found.
    pub best_epoch_time: f64,
    /// Every configuration evaluated during online learning with its epoch
    /// time.
    pub history: Vec<(Config, f64)>,
    /// End-to-end time including auto-tuning overhead and sub-optimal
    /// search epochs (what Figures 10/11 report).
    pub total_time: f64,
    /// Epochs actually run.
    pub epochs_run: usize,
    /// Design-space size for this machine.
    pub space_size: usize,
}

/// The ARGO runtime (paper Listing 1).
pub struct Argo {
    opts: ArgoOptions,
    space: SearchSpace,
}

impl Argo {
    /// Creates a runtime. Panics if the machine is too small to host even
    /// the smallest multi-process configuration (4 cores).
    pub fn new(opts: ArgoOptions) -> Self {
        assert!(opts.n_search >= 1, "need at least one search epoch");
        assert!(
            opts.epochs >= opts.n_search,
            "epochs ({}) must cover n_search ({})",
            opts.epochs,
            opts.n_search
        );
        let mut opts = opts;
        opts.total_cores = opts.total_cores.max(4);
        let space = SearchSpace::for_cores(opts.total_cores);
        Self { opts, space }
    }

    /// Runtime options.
    pub fn options(&self) -> &ArgoOptions {
        &self.opts
    }

    /// The design space the tuner searches.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Runs training under ARGO: `train(config, epochs)` must train for
    /// `epochs` epochs under `config` and return the elapsed time in
    /// seconds. During online learning it is called with `epochs = 1`;
    /// afterwards once with the remaining epochs (mirroring the `ep`
    /// variable of Listing 3).
    ///
    /// With `Some(telemetry)`, the tuner's introspection is recorded: one
    /// `tuner_trial` event per search epoch (candidate configuration,
    /// observed epoch time, incumbent best, suggest/observe CPU seconds), a
    /// `config_applied` event on every configuration switch, and tuner
    /// metrics into `telemetry.metrics`. `None` runs without any recording.
    pub fn run(
        &mut self,
        train: impl FnMut(Config, usize) -> f64,
        telemetry: Option<&Telemetry>,
    ) -> ArgoReport {
        match telemetry {
            Some(t) => self.run_impl(train, t),
            None => self.run_impl(train, &Telemetry::disabled()),
        }
    }

    fn run_impl(
        &mut self,
        mut train: impl FnMut(Config, usize) -> f64,
        telemetry: &Telemetry,
    ) -> ArgoReport {
        // No point searching longer than the space is large (tiny hosts).
        let n_search = self
            .opts
            .n_search
            .min(self.opts.epochs)
            .min(self.space.len());
        let metrics = &telemetry.metrics;
        let trials = metrics.counter(names::TUNER_TRIALS_TOTAL);
        let suggest_h = metrics.time_histogram(names::TUNER_SUGGEST_SECONDS);
        let observe_h = metrics.time_histogram(names::TUNER_OBSERVE_SECONDS);
        let best_gauge = metrics.gauge(names::TUNER_BEST_EPOCH_SECONDS);

        let mut tuner = BayesOpt::new(self.space.clone(), self.opts.seed);
        let mut history = Vec::with_capacity(n_search);
        let mut total_time = 0.0;
        for trial in 0..n_search {
            let t0 = Instant::now();
            let config = tuner.suggest();
            let suggest_seconds = t0.elapsed().as_secs_f64();
            telemetry.logger.log(RunEvent::ConfigApplied {
                config,
                reason: "search".to_string(),
            });
            let t = train(config, 1);
            let t1 = Instant::now();
            tuner.observe(config, t);
            let observe_seconds = t1.elapsed().as_secs_f64();
            history.push((config, t));
            total_time += t;

            let (best_config, best_epoch_time) = tuner.best().expect("observed this trial");
            trials.inc();
            suggest_h.observe(suggest_seconds);
            observe_h.observe(observe_seconds);
            best_gauge.set(best_epoch_time);
            telemetry.logger.log(RunEvent::TunerTrial(TrialRecord {
                trial: trial as u64,
                config,
                epoch_time: t,
                best_config,
                best_epoch_time,
                suggest_seconds,
                observe_seconds,
            }));
        }
        let (config_opt, best_epoch_time) = tuner.best().expect("n_search >= 1");
        let remaining = self.opts.epochs - n_search;
        if remaining > 0 {
            telemetry.logger.log(RunEvent::ConfigApplied {
                config: config_opt,
                reason: "reuse".to_string(),
            });
            total_time += train(config_opt, remaining);
        }
        ArgoReport {
            config_opt,
            best_epoch_time,
            history,
            total_time,
            epochs_run: self.opts.epochs,
            space_size: self.space.len(),
        }
    }

    /// Trains a real [`Engine`] under ARGO, reporting per-epoch statistics
    /// through `on_epoch`. With `Some(telemetry)`, the full layer is
    /// recorded: per-epoch engine telemetry (stage histograms, structured
    /// epoch events, cache summaries) plus the tuner introspection of
    /// [`Argo::run`], all into the same sinks.
    pub fn train(
        &mut self,
        engine: &mut Engine,
        telemetry: Option<&Telemetry>,
        mut on_epoch: impl FnMut(usize, Config, &EpochStats),
    ) -> ArgoReport {
        let mut epoch_idx = 0usize;
        self.run(
            |config, epochs| {
                let mut elapsed = 0.0;
                for _ in 0..epochs {
                    let stats = engine.train_epoch(config, telemetry);
                    on_epoch(epoch_idx, config, &stats);
                    epoch_idx += 1;
                    elapsed += stats.epoch_time;
                }
                elapsed
            },
            telemetry,
        )
    }

    /// Like [`Argo::train`], but audits the span profiler's measured
    /// critical-path attribution against `model`'s predicted bottleneck.
    ///
    /// After each search epoch, the most recent `critical_path` event the
    /// engine logged is compared with [`PerfModel::predicted_bottleneck`]
    /// for that epoch's configuration, and one `bottleneck_check` event is
    /// emitted carrying both labels — `argo report` renders per-trial
    /// agreement or disagreement. Requires an enabled event logger in
    /// `telemetry`; with `None` (or events off) this is exactly
    /// [`Argo::train`].
    pub fn train_audited(
        &mut self,
        engine: &mut Engine,
        model: &PerfModel,
        telemetry: Option<&Telemetry>,
        mut on_epoch: impl FnMut(usize, Config, &EpochStats),
    ) -> ArgoReport {
        let n_search = self.opts.n_search;
        let logger = telemetry.map(|t| Arc::clone(&t.logger));
        self.train(engine, telemetry, move |epoch_idx, config, stats| {
            if epoch_idx < n_search {
                if let Some(l) = logger.as_ref().filter(|l| l.is_enabled()) {
                    let measured = l.events().iter().rev().find_map(|(_, e)| match e {
                        RunEvent::CriticalPath { fractions, .. } => fractions
                            .iter()
                            .max_by(|a, b| a.1.total_cmp(&b.1))
                            .map(|(stage, _)| stage.clone()),
                        _ => None,
                    });
                    if let Some(measured) = measured {
                        l.log(RunEvent::BottleneckCheck {
                            epoch: epoch_idx as u64,
                            config,
                            predicted: model.predicted_bottleneck(config).to_string(),
                            measured,
                        });
                    }
                }
            }
            on_epoch(epoch_idx, config, stats);
        })
    }

    /// Runs the full schedule against a modeled platform (paper-scale
    /// studies on hardware this host does not have). With
    /// `Some(telemetry)`, per-epoch modeled telemetry is emitted through
    /// [`PerfModel::record_epoch`] alongside the tuner events — the same
    /// schema a measured run produces. Build such telemetry with
    /// [`argo_rt::Source::Modeled`] so the provenance is tagged.
    pub fn run_modeled(&mut self, model: &PerfModel, telemetry: Option<&Telemetry>) -> ArgoReport {
        match telemetry {
            Some(tel) => {
                let mut epoch_idx = 0u64;
                self.run(
                    |config, epochs| {
                        let mut elapsed = 0.0;
                        for _ in 0..epochs {
                            elapsed += model.record_epoch(tel, epoch_idx, config);
                            epoch_idx += 1;
                        }
                        elapsed
                    },
                    Some(tel),
                )
            }
            None => self.run(
                |config, epochs| model.epoch_time(config) * epochs as f64,
                None,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_engine::EngineOptions;
    use argo_graph::datasets::{FLICKR, OGBN_PRODUCTS};
    use argo_platform::{Library, ModelKind, SamplerKind, Setup, ICE_LAKE_8380H};
    use argo_sample::NeighborSampler;
    use std::sync::Arc;

    fn toy_objective(config: Config, epochs: usize) -> f64 {
        let per = 1.0
            + 0.05 * (config.n_proc as f64 - 5.0).powi(2)
            + 0.08 * (config.n_samp as f64 - 2.0).powi(2)
            + 0.01 * (config.n_train as f64 - 6.0).powi(2);
        per * epochs as f64
    }

    #[test]
    fn run_respects_epoch_budget() {
        let mut argo = Argo::new(ArgoOptions {
            n_search: 8,
            epochs: 50,
            total_cores: 32,
            seed: 1,
        });
        let mut search_calls = 0usize;
        let mut reuse_epochs = 0usize;
        let report = argo.run(
            |c, e| {
                if e == 1 {
                    search_calls += 1;
                } else {
                    reuse_epochs += e;
                }
                toy_objective(c, e)
            },
            None,
        );
        assert_eq!(search_calls, 8);
        assert_eq!(reuse_epochs, 42);
        assert_eq!(report.epochs_run, 50);
        assert_eq!(report.history.len(), 8);
        assert!(report.config_opt.fits(32));
    }

    #[test]
    fn total_time_accounts_search_and_reuse() {
        let mut argo = Argo::new(ArgoOptions {
            n_search: 5,
            epochs: 20,
            total_cores: 16,
            seed: 2,
        });
        let report = argo.run(toy_objective, None);
        let search_sum: f64 = report.history.iter().map(|(_, t)| t).sum();
        let expect = search_sum + toy_objective(report.config_opt, 15);
        assert!((report.total_time - expect).abs() < 1e-9);
    }

    #[test]
    fn n_search_equal_epochs_is_all_search() {
        let mut argo = Argo::new(ArgoOptions {
            n_search: 6,
            epochs: 6,
            total_cores: 16,
            seed: 3,
        });
        let report = argo.run(toy_objective, None);
        assert_eq!(report.history.len(), 6);
    }

    #[test]
    #[should_panic]
    fn epochs_below_n_search_panics() {
        Argo::new(ArgoOptions {
            n_search: 10,
            epochs: 5,
            total_cores: 16,
            seed: 0,
        });
    }

    #[test]
    fn run_modeled_matches_direct_model_calls() {
        let model = PerfModel::new(Setup {
            platform: ICE_LAKE_8380H,
            library: Library::Dgl,
            sampler: SamplerKind::Neighbor,
            model: ModelKind::Sage,
            dataset: OGBN_PRODUCTS,
        });
        let mut argo = Argo::new(ArgoOptions {
            n_search: 35,
            epochs: 200,
            total_cores: 112,
            seed: 4,
        });
        let report = argo.run_modeled(&model, None);
        // The reused configuration is near-optimal (≥85% of exhaustive).
        let opt = model.argo_best_epoch_time(112).1;
        assert!(
            opt / report.best_epoch_time > 0.85,
            "found {} vs optimal {opt}",
            report.best_epoch_time
        );
        assert_eq!(report.space_size, 694);
    }

    #[test]
    fn train_drives_a_real_engine() {
        let dataset = Arc::new(FLICKR.synthesize(0.008, 3));
        let sampler: Arc<dyn argo_sample::Sampler> = Arc::new(NeighborSampler::new(vec![6, 3]));
        let mut engine = Engine::new(
            dataset,
            sampler,
            EngineOptions {
                hidden: 8,
                num_layers: 2,
                global_batch: 64,
                total_cores: 16,
                ..Default::default()
            },
        );
        let mut argo = Argo::new(ArgoOptions {
            n_search: 3,
            epochs: 5,
            total_cores: 16,
            seed: 5,
        });
        let mut epochs_seen = Vec::new();
        let report = argo.train(&mut engine, None, |i, c, stats| {
            epochs_seen.push((i, c, stats.loss));
        });
        assert_eq!(epochs_seen.len(), 5);
        assert_eq!(engine.epochs_done(), 5);
        // Epoch indices in order.
        assert!(epochs_seen.windows(2).all(|w| w[1].0 == w[0].0 + 1));
        // Final epochs reuse config_opt.
        assert_eq!(epochs_seen.last().unwrap().1, report.config_opt);
        assert!(report.total_time > 0.0);
    }

    #[test]
    fn run_telemetry_traces_convergence() {
        use argo_rt::RunEvent;
        let tel = Telemetry::new();
        let mut argo = Argo::new(ArgoOptions {
            n_search: 6,
            epochs: 30,
            total_cores: 32,
            seed: 7,
        });
        let report = argo.run(toy_objective, Some(&tel));
        let events = tel.logger.events();
        let trials: Vec<_> = events
            .iter()
            .filter_map(|(_, e)| match e {
                RunEvent::TunerTrial(t) => Some(t),
                _ => None,
            })
            .collect();
        assert_eq!(trials.len(), 6);
        assert_eq!(trials.last().unwrap().best_config, report.config_opt);
        // Incumbent-best trajectory is non-increasing.
        assert!(trials
            .windows(2)
            .all(|w| w[1].best_epoch_time <= w[0].best_epoch_time));
        // Telemetry must not change the outcome.
        let mut argo2 = Argo::new(ArgoOptions {
            n_search: 6,
            epochs: 30,
            total_cores: 32,
            seed: 7,
        });
        let plain = argo2.run(toy_objective, None);
        assert_eq!(plain.config_opt, report.config_opt);
        assert_eq!(plain.history, report.history);
    }

    #[test]
    fn modeled_telemetry_tags_source_and_covers_all_epochs() {
        use argo_rt::{RunEvent, Source};
        let model = PerfModel::new(Setup {
            platform: ICE_LAKE_8380H,
            library: Library::Dgl,
            sampler: SamplerKind::Neighbor,
            model: ModelKind::Sage,
            dataset: OGBN_PRODUCTS,
        });
        let tel = Telemetry::with_source(Source::Modeled);
        let mut argo = Argo::new(ArgoOptions {
            n_search: 5,
            epochs: 12,
            total_cores: 112,
            seed: 4,
        });
        let report = argo.run_modeled(&model, Some(&tel));
        let parsed = argo_rt::RunLogger::parse_jsonl(&tel.logger.to_jsonl()).unwrap();
        assert!(parsed.iter().all(|(_, _, s)| *s == Source::Modeled));
        let ends: Vec<_> = parsed
            .iter()
            .filter_map(|(e, _, _)| match e {
                RunEvent::EpochEnd { epoch, .. } => Some(*epoch),
                _ => None,
            })
            .collect();
        assert_eq!(ends, (0..12).collect::<Vec<u64>>());
        // Sum of modeled epoch times equals the report's total.
        let total: f64 = parsed
            .iter()
            .filter_map(|(e, _, _)| match e {
                RunEvent::EpochEnd { record, .. } => Some(record.epoch_time),
                _ => None,
            })
            .sum();
        assert!((total - report.total_time).abs() < 1e-9 * report.total_time.max(1.0));
    }

    #[test]
    fn train_audited_emits_bottleneck_checks() {
        use argo_rt::RunEvent;
        let dataset = Arc::new(FLICKR.synthesize(0.008, 3));
        let sampler: Arc<dyn argo_sample::Sampler> = Arc::new(NeighborSampler::new(vec![6, 3]));
        let mut engine = Engine::new(
            dataset,
            sampler,
            EngineOptions {
                hidden: 8,
                num_layers: 2,
                global_batch: 64,
                total_cores: 16,
                ..Default::default()
            },
        );
        let model = PerfModel::new(Setup {
            platform: ICE_LAKE_8380H,
            library: Library::Dgl,
            sampler: SamplerKind::Neighbor,
            model: ModelKind::Sage,
            dataset: FLICKR,
        });
        let tel = Telemetry::new();
        let mut argo = Argo::new(ArgoOptions {
            n_search: 3,
            epochs: 5,
            total_cores: 16,
            seed: 5,
        });
        argo.train_audited(&mut engine, &model, Some(&tel), |_, _, _| {});
        let checks: Vec<_> = tel
            .logger
            .events()
            .iter()
            .filter_map(|(_, e)| match e {
                RunEvent::BottleneckCheck {
                    epoch,
                    predicted,
                    measured,
                    ..
                } => Some((*epoch, predicted.clone(), measured.clone())),
                _ => None,
            })
            .collect();
        // One audit per search epoch, none for the reuse phase.
        assert_eq!(checks.len(), 3);
        for (epoch, predicted, measured) in &checks {
            assert!(*epoch < 3);
            assert!(["sample", "gather", "compute", "sync"].contains(&predicted.as_str()));
            assert!(argo_rt::CRITICAL_PATH_STAGES.contains(&measured.as_str()));
        }

        // Without telemetry the audited path is exactly Argo::train.
        let dataset = Arc::new(FLICKR.synthesize(0.008, 3));
        let sampler: Arc<dyn argo_sample::Sampler> = Arc::new(NeighborSampler::new(vec![6, 3]));
        let mut engine2 = Engine::new(
            dataset,
            sampler,
            EngineOptions {
                hidden: 8,
                num_layers: 2,
                global_batch: 64,
                total_cores: 16,
                ..Default::default()
            },
        );
        let mut argo2 = Argo::new(ArgoOptions {
            n_search: 3,
            epochs: 5,
            total_cores: 16,
            seed: 5,
        });
        let mut n = 0usize;
        argo2.train_audited(&mut engine2, &model, None, |_, _, _| n += 1);
        assert_eq!(n, 5);
    }

    #[test]
    fn options_builder_matches_struct_literal() {
        let b = ArgoOptions::builder()
            .with_n_search(7)
            .with_epochs(42)
            .with_total_cores(24)
            .with_seed(9);
        assert_eq!(b.n_search, 7);
        assert_eq!(b.epochs, 42);
        assert_eq!(b.total_cores, 24);
        assert_eq!(b.seed, 9);
    }

    #[test]
    fn error_renders_one_line_diagnostics() {
        let e = Error::InvalidArgument("--cache-rows wants a number, got 'many'".into());
        let line = e.to_string();
        assert!(line.starts_with("invalid argument:"), "{line}");
        assert!(!line.contains('\n'));
        let io: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "no dir").into();
        assert!(matches!(io, Error::Io(_)));
        let other: Error = String::from("boom").into();
        assert_eq!(other.to_string(), "boom");
    }

    #[test]
    fn serving_errors_render_one_line_diagnostics() {
        let d = Error::DeadlineExceeded("request 4 queued 900us".into());
        assert_eq!(d.to_string(), "deadline exceeded: request 4 queued 900us");
        let q = Error::QueueFull("1024 requests pending (cap 1024)".into());
        assert_eq!(
            q.to_string(),
            "queue full: 1024 requests pending (cap 1024)"
        );
        let u = Error::UnknownSeedNode("node 9000 out of range".into());
        assert_eq!(u.to_string(), "unknown seed node: node 9000 out of range");
    }
}
