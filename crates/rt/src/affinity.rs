//! Core binding — the `taskset` equivalent of ARGO's Core-Binder
//! (paper Section IV-B3).
//!
//! A [`CoreSet`] is an explicit list of logical CPU ids. The [`CoreBinder`]
//! plans how a machine's cores are partitioned across `n` GNN training
//! processes, and within each process across the *sampling* stage and the
//! *training* (model propagation) stage. On Linux the plan can be applied for
//! real via `sched_setaffinity`; elsewhere (or when the host has fewer cores
//! than the plan, e.g. when simulating a 112-core Ice Lake on a laptop) the
//! plan remains a logical description consumed by the platform model.

use std::fmt;

/// An ordered set of logical CPU core ids.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CoreSet {
    ids: Vec<usize>,
}

impl CoreSet {
    /// Creates a core set from explicit core ids. Duplicates are removed
    /// while preserving first-occurrence order.
    pub fn new(mut ids: Vec<usize>) -> Self {
        let mut seen = std::collections::HashSet::new();
        ids.retain(|id| seen.insert(*id));
        Self { ids }
    }

    /// The contiguous range `[start, start + len)`.
    pub fn range(start: usize, len: usize) -> Self {
        Self {
            ids: (start..start + len).collect(),
        }
    }

    /// Number of cores in the set.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The core ids.
    pub fn ids(&self) -> &[usize] {
        &self.ids
    }

    /// Splits the set into `(first, rest)` where `first` holds the first
    /// `n` cores. Panics if `n > len`.
    pub fn split_at(&self, n: usize) -> (CoreSet, CoreSet) {
        assert!(
            n <= self.ids.len(),
            "split_at({n}) on CoreSet of {}",
            self.ids.len()
        );
        let (a, b) = self.ids.split_at(n);
        (CoreSet { ids: a.to_vec() }, CoreSet { ids: b.to_vec() })
    }
}

impl fmt::Display for CoreSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.ids.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, "}}")
    }
}

/// The core allocation for one GNN training process: which cores serve the
/// sampler and which serve model propagation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageBinding {
    /// Cores running mini-batch sampling (the paper's "sampling cores").
    pub sampling: CoreSet,
    /// Cores running forward/backward propagation ("training cores").
    pub training: CoreSet,
}

/// Plans core assignments for a multi-process GNN training run.
///
/// Given a machine with `total_cores` cores, [`CoreBinder::plan`] carves out
/// for each of `n_proc` processes a contiguous block of
/// `⌊total_cores / n_proc⌋` cores and splits it into `n_samp` sampling cores
/// and `n_train` training cores, exactly mirroring Figure 4 of the paper.
#[derive(Clone, Debug)]
pub struct CoreBinder {
    total_cores: usize,
}

impl CoreBinder {
    /// A binder for a machine with `total_cores` logical cores.
    pub fn new(total_cores: usize) -> Self {
        assert!(total_cores > 0, "machine must have at least one core");
        Self { total_cores }
    }

    /// Total cores managed by the binder.
    pub fn total_cores(&self) -> usize {
        self.total_cores
    }

    /// Plans bindings for `n_proc` processes, each with `n_samp` sampling and
    /// `n_train` training cores.
    ///
    /// Returns `None` when the request does not fit the machine
    /// (`n_proc * (n_samp + n_train) > total_cores`) or any count is zero.
    pub fn plan(&self, n_proc: usize, n_samp: usize, n_train: usize) -> Option<Vec<StageBinding>> {
        if n_proc == 0 || n_samp == 0 || n_train == 0 {
            return None;
        }
        let per_proc = n_samp + n_train;
        if n_proc * per_proc > self.total_cores {
            return None;
        }
        // Each process gets a contiguous block so that, on a NUMA machine,
        // a process's cores tend to share a socket.
        let block = self.total_cores / n_proc;
        let mut out = Vec::with_capacity(n_proc);
        for p in 0..n_proc {
            let base = p * block;
            let all = CoreSet::range(base, per_proc);
            let (sampling, training) = all.split_at(n_samp);
            out.push(StageBinding { sampling, training });
        }
        Some(out)
    }

    /// NUMA-aware plan (the paper's Section IX future-work direction): never
    /// lets one process's cores straddle a socket boundary when the process
    /// fits inside a socket, so its memory traffic stays on the local DDR
    /// channels instead of crossing UPI.
    ///
    /// Processes are distributed round-robin over sockets; within a socket
    /// they are packed contiguously. Returns `None` when the request does
    /// not fit, or when a single process needs more cores than a socket has
    /// (then no NUMA-local plan exists).
    pub fn plan_numa(
        &self,
        sockets: usize,
        n_proc: usize,
        n_samp: usize,
        n_train: usize,
    ) -> Option<Vec<StageBinding>> {
        if n_proc == 0 || n_samp == 0 || n_train == 0 || sockets == 0 {
            return None;
        }
        let per_proc = n_samp + n_train;
        let per_socket = self.total_cores / sockets;
        if per_proc > per_socket {
            return None; // a process cannot be socket-local
        }
        // Capacity check: each socket hosts ⌊per_socket / per_proc⌋ procs.
        let cap_per_socket = per_socket / per_proc;
        if cap_per_socket * sockets < n_proc {
            return None;
        }
        let mut out = Vec::with_capacity(n_proc);
        let mut used = vec![0usize; sockets];
        for p in 0..n_proc {
            let socket = p % sockets;
            // Overflow to the next socket with room (round-robin may fill
            // unevenly when n_proc is not a multiple of sockets).
            let socket = (0..sockets)
                .map(|k| (socket + k) % sockets)
                .find(|&s| used[s] < cap_per_socket)
                .expect("capacity checked above");
            let base = socket * per_socket + used[socket] * per_proc;
            used[socket] += 1;
            let all = CoreSet::range(base, per_proc);
            let (sampling, training) = all.split_at(n_samp);
            out.push(StageBinding { sampling, training });
        }
        Some(out)
    }

    /// Socket index of a core under an even split into `sockets` sockets.
    pub fn socket_of(&self, core: usize, sockets: usize) -> usize {
        let per_socket = (self.total_cores / sockets).max(1);
        (core / per_socket).min(sockets - 1)
    }
}

/// Number of cores the current process may run on.
///
/// Uses the scheduler affinity mask on Linux (so it respects cgroup/taskset
/// restrictions) and falls back to [`std::thread::available_parallelism`].
pub fn num_available_cores() -> usize {
    #[cfg(target_os = "linux")]
    {
        // SAFETY: `cpu_set_t` is a plain `repr(C)` bitmask for which the
        // all-zero pattern is a valid (empty) value, so `zeroed` is sound.
        // `sched_getaffinity` is passed the exact size of `set` and writes
        // only within it; `CPU_COUNT` just reads the mask.
        unsafe {
            let mut set: libc::cpu_set_t = std::mem::zeroed();
            if libc::sched_getaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &mut set) == 0 {
                let n = libc::CPU_COUNT(&set);
                if n > 0 {
                    return n as usize;
                }
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Binds the calling thread to the given cores.
///
/// Core ids beyond the host's actual core count are silently dropped, so a
/// logical plan for a 112-core machine degrades gracefully on a smaller host.
/// Returns `true` if an affinity mask was applied.
pub fn bind_current_thread(cores: &CoreSet) -> bool {
    #[cfg(target_os = "linux")]
    {
        let host = num_available_cores();
        let usable: Vec<usize> = cores.ids().iter().copied().filter(|&c| c < host).collect();
        if usable.is_empty() {
            return false;
        }
        // SAFETY: the all-zero `cpu_set_t` is a valid empty mask; `CPU_SET`
        // bounds-checks the core id against the mask width internally; and
        // `sched_setaffinity` only reads `size_of::<cpu_set_t>()` bytes from
        // the fully initialized mask it is handed.
        unsafe {
            let mut set: libc::cpu_set_t = std::mem::zeroed();
            for &c in &usable {
                libc::CPU_SET(c, &mut set);
            }
            libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set) == 0
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = cores;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coreset_dedups_and_keeps_order() {
        let cs = CoreSet::new(vec![3, 1, 3, 2, 1]);
        assert_eq!(cs.ids(), &[3, 1, 2]);
        assert_eq!(cs.len(), 3);
    }

    #[test]
    fn coreset_range_and_split() {
        let cs = CoreSet::range(4, 6);
        assert_eq!(cs.ids(), &[4, 5, 6, 7, 8, 9]);
        let (a, b) = cs.split_at(2);
        assert_eq!(a.ids(), &[4, 5]);
        assert_eq!(b.ids(), &[6, 7, 8, 9]);
    }

    #[test]
    #[should_panic]
    fn coreset_split_out_of_range_panics() {
        CoreSet::range(0, 2).split_at(3);
    }

    #[test]
    fn plan_matches_figure4_example() {
        // Figure 4: 8 processes, 2 sampling + 6 training cores each,
        // on a 64-core machine.
        let binder = CoreBinder::new(64);
        let plan = binder.plan(8, 2, 6).expect("fits");
        assert_eq!(plan.len(), 8);
        for (p, b) in plan.iter().enumerate() {
            assert_eq!(b.sampling.len(), 2);
            assert_eq!(b.training.len(), 6);
            assert_eq!(b.sampling.ids()[0], p * 8);
        }
        // No core appears in two processes.
        let mut all: Vec<usize> = plan
            .iter()
            .flat_map(|b| b.sampling.ids().iter().chain(b.training.ids()).copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8 * 8);
    }

    #[test]
    fn plan_rejects_oversubscription_and_zeroes() {
        let binder = CoreBinder::new(16);
        assert!(binder.plan(4, 2, 3).is_none()); // 4*5 > 16
        assert!(binder.plan(0, 1, 1).is_none());
        assert!(binder.plan(1, 0, 1).is_none());
        assert!(binder.plan(1, 1, 0).is_none());
        assert!(binder.plan(4, 1, 3).is_some()); // exactly 16
    }

    #[test]
    fn numa_plan_keeps_processes_socket_local() {
        // 112-core 4-socket Ice Lake: 28 cores/socket.
        let binder = CoreBinder::new(112);
        let plan = binder.plan_numa(4, 8, 2, 6).expect("fits");
        assert_eq!(plan.len(), 8);
        for b in &plan {
            let sockets: std::collections::HashSet<usize> = b
                .sampling
                .ids()
                .iter()
                .chain(b.training.ids())
                .map(|&c| binder.socket_of(c, 4))
                .collect();
            assert_eq!(sockets.len(), 1, "process straddles sockets: {b:?}");
        }
        // Cores remain disjoint across processes.
        let mut all: Vec<usize> = plan
            .iter()
            .flat_map(|b| b.sampling.ids().iter().chain(b.training.ids()).copied())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n);
    }

    #[test]
    fn numa_plan_spreads_over_sockets() {
        let binder = CoreBinder::new(64);
        let plan = binder.plan_numa(2, 4, 1, 7).expect("fits");
        let sockets: std::collections::HashSet<usize> = plan
            .iter()
            .map(|b| binder.socket_of(b.sampling.ids()[0], 2))
            .collect();
        assert_eq!(sockets.len(), 2, "processes should use both sockets");
    }

    #[test]
    fn numa_plan_rejects_oversized_process() {
        // One process needing 40 cores cannot be local on a 28-core socket.
        let binder = CoreBinder::new(112);
        assert!(binder.plan_numa(4, 1, 8, 32).is_none());
        // The plain planner accepts it (it may straddle).
        assert!(binder.plan(1, 8, 32).is_some());
    }

    #[test]
    fn numa_plan_handles_overflow_round_robin() {
        // 5 processes of 12 cores on 2×32: capacity 2 per socket = 4 < 5.
        let binder = CoreBinder::new(64);
        assert!(binder.plan_numa(2, 5, 4, 8).is_none());
        // 4 fit exactly.
        assert!(binder.plan_numa(2, 4, 4, 8).is_some());
    }

    #[test]
    fn available_cores_positive() {
        assert!(num_available_cores() >= 1);
    }

    #[test]
    fn bind_current_thread_is_graceful() {
        // Must not panic even with absurd core ids.
        let _ = bind_current_thread(&CoreSet::new(vec![100_000]));
        let _ = bind_current_thread(&CoreSet::range(0, 1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(CoreSet::new(vec![0, 2]).to_string(), "{0,2}");
        assert_eq!(CoreSet::new(vec![]).to_string(), "{}");
    }
}
