//! Deterministic seed fan-out.
//!
//! Reproducibility underpins the paper's correctness experiment (Figure 9):
//! to show that ARGO with `n` processes follows the same convergence curve as
//! a single process, both runs must draw identical mini-batch samples. A
//! [`SeedSequence`] derives independent, stable sub-seeds for every
//! (process, epoch, batch) coordinate with a SplitMix64 mix, so the sampled
//! subgraphs depend only on the logical training schedule, never on thread
//! timing.

/// Stateless deterministic seed derivation tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedSequence {
    root: u64,
}

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedSequence {
    /// A seed tree rooted at `root`.
    pub fn new(root: u64) -> Self {
        Self { root }
    }

    /// The root seed.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Derives a child sequence for stream `index` (e.g. a process rank).
    pub fn child(&self, index: u64) -> SeedSequence {
        SeedSequence {
            root: splitmix64(self.root ^ splitmix64(index.wrapping_add(0xA5A5_A5A5))),
        }
    }

    /// A concrete 64-bit seed for coordinate (`a`, `b`) under this sequence —
    /// typically (epoch, batch).
    pub fn seed_for(&self, a: u64, b: u64) -> u64 {
        splitmix64(
            self.root ^ splitmix64(a.wrapping_mul(0x9E37_79B9)) ^ splitmix64(b ^ 0x5DEECE66D),
        )
    }
}

/// Counter-based SplitMix64 generator for per-item random streams.
///
/// A [`StreamRng`] is cheap enough to construct *per sampled row*: the
/// parallel samplers key one off [`SeedSequence::seed_for`]`(layer, row)` so
/// every row's draws are a pure function of its logical coordinate. That is
/// what makes within-batch pool parallelism deterministic — however seeds are
/// partitioned across workers, row `r` of layer `l` always consumes the same
/// stream, so batch content is bitwise independent of worker count.
#[derive(Clone, Copy, Debug)]
pub struct StreamRng {
    state: u64,
}

impl StreamRng {
    /// A stream keyed by `key` (typically a [`SeedSequence::seed_for`] value).
    #[inline]
    pub fn new(key: u64) -> Self {
        Self { state: key }
    }

    /// Next 64 random bits (SplitMix64: add the golden gamma, finalize-mix).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..bound` (`bound > 0`) via the 128-bit
    /// multiply-shift reduction — no modulo bias worth caring about at
    /// graph-degree bounds, and branch-free.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn stream_rng_is_deterministic_per_key() {
        let mut a = StreamRng::new(99);
        let mut b = StreamRng::new(99);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StreamRng::new(100);
        assert_ne!(StreamRng::new(99).next_u64(), c.next_u64());
    }

    #[test]
    fn stream_rng_index_in_bounds_and_spreads() {
        let mut r = StreamRng::new(7);
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            let i = r.index(17);
            assert!(i < 17);
            seen.insert(i);
        }
        assert_eq!(seen.len(), 17, "all residues should appear in 1000 draws");
        let mut r = StreamRng::new(8);
        for _ in 0..100 {
            assert_eq!(r.index(1), 0);
        }
    }

    #[test]
    fn deterministic() {
        let s = SeedSequence::new(42);
        assert_eq!(s.seed_for(1, 2), SeedSequence::new(42).seed_for(1, 2));
        assert_eq!(s.child(3), SeedSequence::new(42).child(3));
    }

    #[test]
    fn children_differ_from_parent_and_each_other() {
        let s = SeedSequence::new(7);
        let mut seen = HashSet::new();
        seen.insert(s.root());
        for i in 0..100 {
            assert!(seen.insert(s.child(i).root()), "collision at child {i}");
        }
    }

    #[test]
    fn coordinates_spread() {
        let s = SeedSequence::new(0);
        let mut seen = HashSet::new();
        for a in 0..50 {
            for b in 0..50 {
                assert!(seen.insert(s.seed_for(a, b)), "collision at ({a},{b})");
            }
        }
    }

    #[test]
    fn splitmix_reference_values() {
        // Values from the canonical SplitMix64 reference implementation
        // seeded with 0: first output is mix(0 + gamma).
        assert_eq!(
            splitmix64(0x9E3779B97F4A7C15 - 0x9E3779B97F4A7C15),
            splitmix64(0)
        );
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
