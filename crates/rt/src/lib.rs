//! # argo-rt — runtime substrate for ARGO
//!
//! Low-level parallel-runtime primitives that every other ARGO crate builds
//! on:
//!
//! * [`ThreadPool`] — a fixed-size worker pool whose threads can be *pinned*
//!   to explicit CPU cores. ARGO's contribution is deciding how many cores
//!   serve the sampling stage vs. the model-propagation stage of each GNN
//!   training process, so unlike rayon's global pool, every pool here is
//!   created with an explicit [`CoreSet`].
//! * [`CoreBinder`] / [`CoreSet`] — the Rust equivalent of the paper's
//!   `taskset` usage (Section IV-B3): plans a partition of the machine's
//!   cores across processes and stages, and (on Linux) applies it with
//!   `sched_setaffinity`.
//! * [`allreduce`] — the synchronous gradient all-reduce used by the
//!   Multi-Process Engine to emulate PyTorch DDP (Section IV-B2).
//! * [`trace`] — a lightweight event recorder used to regenerate the paper's
//!   Figure 2 time-traces.
//! * [`metrics`] / [`events`] / [`telemetry`] — the observability layer:
//!   lock-cheap counters/gauges/histograms, structured JSONL run events
//!   (epoch stats, tuner trials, config switches) and the [`Telemetry`]
//!   handle that bundles them with the trace recorder.
//! * [`rng`] — deterministic seed fan-out so that multi-process runs are
//!   reproducible and semantics tests can compare runs bit-for-bit.

pub mod affinity;
pub mod allreduce;
pub mod config;
pub mod events;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod racecheck;
pub mod rng;
pub mod spans;
pub mod telemetry;
pub mod trace;

pub use affinity::{bind_current_thread, num_available_cores, CoreBinder, CoreSet, StageBinding};
pub use allreduce::AllReduce;
pub use config::{enumerate_space, Config};
pub use events::{
    BytesRecord, CacheSummaryRecord, EpochRecord, RunEvent, RunLogger, ServeBatchRecord,
    ServeRequestRecord, Source, StageSummaryRecord, TrialRecord,
};
pub use json::Json;
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use pool::ThreadPool;
pub use rng::{SeedSequence, StreamRng};
pub use spans::{
    critical_path, Role, SpanDrain, SpanKind, SpanProfiler, SpanRecord, WorkerRing,
    CRITICAL_PATH_STAGES,
};
pub use telemetry::Telemetry;
pub use trace::{Stage, TraceEvent, TraceRecorder};
