//! # argo-rt — runtime substrate for ARGO
//!
//! Low-level parallel-runtime primitives that every other ARGO crate builds
//! on:
//!
//! * [`ThreadPool`] — a fixed-size worker pool whose threads can be *pinned*
//!   to explicit CPU cores. ARGO's contribution is deciding how many cores
//!   serve the sampling stage vs. the model-propagation stage of each GNN
//!   training process, so unlike rayon's global pool, every pool here is
//!   created with an explicit [`CoreSet`].
//! * [`CoreBinder`] / [`CoreSet`] — the Rust equivalent of the paper's
//!   `taskset` usage (Section IV-B3): plans a partition of the machine's
//!   cores across processes and stages, and (on Linux) applies it with
//!   `sched_setaffinity`.
//! * [`allreduce`] — the synchronous gradient all-reduce used by the
//!   Multi-Process Engine to emulate PyTorch DDP (Section IV-B2).
//! * [`trace`] — a lightweight event recorder used to regenerate the paper's
//!   Figure 2 time-traces.
//! * [`rng`] — deterministic seed fan-out so that multi-process runs are
//!   reproducible and semantics tests can compare runs bit-for-bit.

pub mod affinity;
pub mod allreduce;
pub mod config;
pub mod pool;
pub mod rng;
pub mod trace;

pub use affinity::{bind_current_thread, num_available_cores, CoreBinder, CoreSet, StageBinding};
pub use config::{enumerate_space, Config};
pub use allreduce::AllReduce;
pub use pool::ThreadPool;
pub use rng::SeedSequence;
pub use trace::{Stage, TraceEvent, TraceRecorder};
