//! One handle bundling the three telemetry sinks.
//!
//! The engine, auto-tuner and platform model all want the same trio: a
//! [`TraceRecorder`] for Figure-2 interval traces, a [`MetricsRegistry`] for
//! counters/gauges/histograms, and a [`RunLogger`] for structured JSONL
//! events. [`Telemetry`] carries them together (each behind an `Arc`, so a
//! clone per training process is cheap) and provides the canonical metric
//! names so producers and the `report` renderer agree.

use std::sync::Arc;

use crate::events::{RunLogger, Source};
use crate::metrics::MetricsRegistry;
use crate::trace::{Stage, TraceRecorder};

/// Shared handle to all telemetry sinks. Cloning shares the same
/// underlying recorder, registry and logger.
#[derive(Clone)]
pub struct Telemetry {
    pub trace: Arc<TraceRecorder>,
    pub metrics: Arc<MetricsRegistry>,
    pub logger: Arc<RunLogger>,
}

impl Telemetry {
    /// All sinks active, tagged as a measured run.
    pub fn new() -> Self {
        Self {
            trace: Arc::new(TraceRecorder::new()),
            metrics: Arc::new(MetricsRegistry::new()),
            logger: Arc::new(RunLogger::new()),
        }
    }

    /// All sinks active, with events tagged `source` (use
    /// [`Source::Modeled`] for platform/DES runs so real and modeled
    /// telemetry share one schema).
    pub fn with_source(source: Source) -> Self {
        Self {
            trace: Arc::new(TraceRecorder::new()),
            metrics: Arc::new(MetricsRegistry::new()),
            logger: Arc::new(RunLogger::with_source(source)),
        }
    }

    /// All sinks disabled — zero overhead in hot loops.
    pub fn disabled() -> Self {
        Self {
            trace: Arc::new(TraceRecorder::disabled()),
            metrics: Arc::new(MetricsRegistry::disabled()),
            logger: Arc::new(RunLogger::disabled()),
        }
    }

    /// A live trace recorder with metrics and events disabled — for callers
    /// (e.g. the figure benches) that only want Figure-2 interval traces.
    pub fn with_trace(trace: Arc<TraceRecorder>) -> Self {
        Self {
            trace,
            metrics: Arc::new(MetricsRegistry::disabled()),
            logger: Arc::new(RunLogger::disabled()),
        }
    }

    /// Builds a handle around existing sinks.
    pub fn from_parts(
        trace: Arc<TraceRecorder>,
        metrics: Arc<MetricsRegistry>,
        logger: Arc<RunLogger>,
    ) -> Self {
        Self {
            trace,
            metrics,
            logger,
        }
    }

    /// Whether any sink is live. Callers of the unified entry points can use
    /// this to decide between `Some(&tel)` and `None`.
    pub fn is_enabled(&self) -> bool {
        self.trace.is_enabled() || self.metrics.is_enabled() || self.logger.is_enabled()
    }

    /// Canonical histogram name for per-iteration stage durations, e.g.
    /// `stage_seconds/gather`.
    pub fn stage_histogram_name(stage: Stage) -> String {
        format!("stage_seconds/{}", stage.label())
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

/// Well-known metric names shared by producers and the report renderer.
pub mod names {
    /// Histogram of whole-epoch wall-clock seconds.
    pub const EPOCH_SECONDS: &str = "epoch_seconds";
    /// Counter of completed epochs.
    pub const EPOCHS_TOTAL: &str = "epochs_total";
    /// Counter of executed mini-batches (all processes).
    pub const MINIBATCHES_TOTAL: &str = "minibatches_total";
    /// Counter of sampled edges (all processes).
    pub const EDGES_TOTAL: &str = "edges_total";
    /// Counter of synchronized iterations.
    pub const ITERATIONS_TOTAL: &str = "iterations_total";
    /// Counter of auto-tuner trials.
    pub const TUNER_TRIALS_TOTAL: &str = "tuner_trials_total";
    /// Histogram of tuner suggest (GP fit + acquisition) CPU seconds.
    pub const TUNER_SUGGEST_SECONDS: &str = "tuner_suggest_seconds";
    /// Histogram of tuner observe CPU seconds.
    pub const TUNER_OBSERVE_SECONDS: &str = "tuner_observe_seconds";
    /// Gauge: best (lowest) epoch time seen by the tuner so far.
    pub const TUNER_BEST_EPOCH_SECONDS: &str = "tuner_best_epoch_seconds";
    /// Gauge: overlap fraction of the most recent epoch (Figure 2).
    pub const OVERLAP_FRACTION: &str = "overlap_fraction";
    /// Counter of feature-cache lookups served from the cache.
    pub const CACHE_HITS_TOTAL: &str = "cache_hits_total";
    /// Counter of feature-cache lookups that fell through to DRAM.
    pub const CACHE_MISSES_TOTAL: &str = "cache_misses_total";
    /// Counter of feature-cache evictions.
    pub const CACHE_EVICTIONS_TOTAL: &str = "cache_evictions_total";
    /// Gauge: feature-cache resident bytes at the last epoch end.
    pub const CACHE_BYTES: &str = "cache_bytes";
    /// Gauge: feature-cache hit rate over the most recent epoch.
    pub const CACHE_HIT_RATE: &str = "cache_hit_rate";
    /// Counter of sampler scratch-arena allocations (steady state: 0).
    pub const SCRATCH_ALLOCS_TOTAL: &str = "loader_scratch_allocs_total";
    /// Counter of batch-metadata bytes (node ids + edge indices) produced.
    pub const METADATA_BYTES_TOTAL: &str = "batch_metadata_bytes_total";
    /// Counter of feature bytes served out of the cross-batch cache.
    pub const CACHE_MOVED_BYTES_TOTAL: &str = "cache_moved_bytes_total";
    /// Counter of profiler spans recorded across all rings.
    pub const SPANS_RECORDED_TOTAL: &str = "prof_spans_total";
    /// Counter of profiler spans lost to full rings.
    pub const SPANS_DROPPED_TOTAL: &str = "prof_spans_dropped_total";
    /// Counter of serving requests completed.
    pub const SERVE_REQUESTS_TOTAL: &str = "serve_requests_total";
    /// Counter of serving micro-batches executed.
    pub const SERVE_BATCHES_TOTAL: &str = "serve_batches_total";
    /// Histogram of end-to-end request latency seconds (queue + execute).
    pub const SERVE_REQUEST_SECONDS: &str = "serve_request_seconds";
    /// Counter of serving responses answered from the result cache.
    pub const SERVE_RESULT_HITS_TOTAL: &str = "serve_result_hits_total";
    /// Counter of serving responses that required sampling + a forward pass.
    pub const SERVE_RESULT_MISSES_TOTAL: &str = "serve_result_misses_total";
    /// Gauge: result-cache hit rate over the session so far.
    pub const SERVE_RESULT_HIT_RATE: &str = "serve_result_hit_rate";
    /// Counter of data races found by the happens-before detector (only
    /// present when built with the `race` feature; steady state: 0).
    pub const CHECK_RACE_REPORTS_TOTAL: &str = "check_race_reports_total";
    /// Counter of lock-order violations found by the lock sanitizer (only
    /// present when built with the `sanitize` feature; steady state: 0).
    pub const CHECK_LOCK_VIOLATIONS_TOTAL: &str = "check_lock_violations_total";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_sinks() {
        let t = Telemetry::new();
        let t2 = t.clone();
        t.metrics.counter("c").inc();
        assert_eq!(t2.metrics.counters(), vec![("c".to_string(), 1)]);
        t2.trace.record(0, Stage::Sample, 0.0, 0.1);
        assert_eq!(t.trace.events().len(), 1);
    }

    #[test]
    fn disabled_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.trace.is_enabled());
        assert!(!t.metrics.is_enabled());
        assert!(!t.logger.is_enabled());
        assert!(!t.is_enabled());
        assert!(Telemetry::new().is_enabled());
    }

    #[test]
    fn with_trace_enables_only_the_trace() {
        let rec = Arc::new(TraceRecorder::new());
        let t = Telemetry::with_trace(Arc::clone(&rec));
        assert!(t.is_enabled());
        assert!(!t.metrics.is_enabled());
        assert!(!t.logger.is_enabled());
        t.trace.record(0, Stage::Gather, 0.0, 0.1);
        assert_eq!(rec.events().len(), 1);
    }

    #[test]
    fn stage_histogram_names() {
        assert_eq!(
            Telemetry::stage_histogram_name(Stage::Gather),
            "stage_seconds/gather"
        );
        assert_eq!(
            Telemetry::stage_histogram_name(Stage::Sync),
            "stage_seconds/sync"
        );
    }

    #[test]
    fn modeled_source_propagates() {
        let t = Telemetry::with_source(Source::Modeled);
        assert_eq!(t.logger.source(), Source::Modeled);
    }
}
