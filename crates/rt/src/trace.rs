//! Execution-trace recording for Figure 2 style time-lines.
//!
//! The paper motivates multi-processing with a time-trace (Figure 2) showing
//! that memory-intensive phases (e.g. `aten::index_select` feature gathering)
//! of one process overlap with compute-intensive phases of another.
//! [`TraceRecorder`] collects `(process, stage, start, end)` intervals with
//! negligible overhead so benches can print the same kind of time-line.

use std::time::Instant;

use parking_lot::Mutex;

/// The pipeline stage an interval belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Mini-batch subgraph sampling (graph traversal; latency bound).
    Sample,
    /// Feature gathering / `index_select` (memory-bandwidth bound).
    Gather,
    /// Forward + backward propagation (compute bound).
    Compute,
    /// Gradient synchronization across processes (communication).
    Sync,
}

impl Stage {
    /// Short label used in printed traces.
    pub fn label(&self) -> &'static str {
        match self {
            Stage::Sample => "sample",
            Stage::Gather => "gather",
            Stage::Compute => "compute",
            Stage::Sync => "sync",
        }
    }
}

/// One recorded interval.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Emitting process rank.
    pub process: usize,
    /// Pipeline stage.
    pub stage: Stage,
    /// Interval start, seconds since recorder creation.
    pub start: f64,
    /// Interval end, seconds since recorder creation.
    pub end: f64,
}

/// Thread-safe interval recorder.
pub struct TraceRecorder {
    origin: Instant,
    events: Mutex<Vec<TraceEvent>>,
    enabled: bool,
}

impl TraceRecorder {
    /// An active recorder.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
            events: Mutex::new(Vec::new()),
            enabled: true,
        }
    }

    /// A recorder that drops all events (zero overhead in hot loops).
    pub fn disabled() -> Self {
        Self {
            origin: Instant::now(),
            events: Mutex::new(Vec::new()),
            enabled: false,
        }
    }

    /// Whether events are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Seconds since the recorder was created.
    pub fn now(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }

    /// Records an interval for `process`/`stage` spanning `[start, end]`
    /// (both in recorder time, see [`TraceRecorder::now`]).
    ///
    /// Inverted intervals (`end < start`) are a caller bug; they are clamped
    /// to zero-length at `start` so aggregate statistics can never go
    /// negative, and debug builds assert.
    pub fn record(&self, process: usize, stage: Stage, start: f64, end: f64) {
        if !self.enabled {
            return;
        }
        debug_assert!(
            end >= start,
            "trace interval ends before it starts: {stage:?} [{start}, {end}]"
        );
        self.events.lock().push(TraceEvent {
            process,
            stage,
            start,
            end: end.max(start),
        });
    }

    /// Times `f` and records it as one interval.
    pub fn timed<T>(&self, process: usize, stage: Stage, f: impl FnOnce() -> T) -> T {
        if !self.enabled {
            return f();
        }
        let start = self.now();
        let out = f();
        let end = self.now();
        self.record(process, stage, start, end);
        out
    }

    /// Snapshot of all events, sorted by start time.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut v = self.events.lock().clone();
        v.sort_by(|a, b| a.start.total_cmp(&b.start));
        v
    }

    /// Total time spent in `stage` by `process`.
    pub fn stage_time(&self, process: usize, stage: Stage) -> f64 {
        self.events
            .lock()
            .iter()
            .filter(|e| e.process == process && e.stage == stage)
            .map(|e| e.end - e.start)
            .sum()
    }

    /// Fraction of `[0, horizon]` during which at least one process was in a
    /// memory-bound stage ([`Stage::Gather`] or [`Stage::Sample`]) *while*
    /// another was in [`Stage::Compute`] — the overlap the paper's Figure 2
    /// illustrates. Returns 0 when fewer than two processes traced.
    pub fn overlap_fraction(&self, horizon: f64) -> f64 {
        if horizon <= 0.0 {
            return 0.0;
        }
        let events = self.events.lock();
        const BINS: usize = 2048;
        let mut mem = vec![false; BINS];
        let mut cpu = vec![false; BINS];
        let mut procs = std::collections::HashSet::new();
        for e in events.iter() {
            procs.insert(e.process);
            // Clamp both endpoints into [0, BINS]: events may legitimately
            // extend past `horizon` (callers often pass the epoch time while
            // a straggler rank finishes later) or sit entirely outside it.
            let lo = (((e.start / horizon) * BINS as f64).floor().max(0.0) as usize).min(BINS);
            let hi = (((e.end / horizon) * BINS as f64).ceil().max(0.0) as usize).min(BINS);
            if lo >= hi {
                continue;
            }
            let target = match e.stage {
                Stage::Gather | Stage::Sample => &mut mem,
                Stage::Compute => &mut cpu,
                Stage::Sync => continue,
            };
            for b in target.iter_mut().take(hi).skip(lo) {
                *b = true;
            }
        }
        if procs.len() < 2 {
            return 0.0;
        }
        let both = mem
            .iter()
            .zip(cpu.iter())
            .filter(|(m, c)| **m && **c)
            .count();
        both as f64 / BINS as f64
    }
}

impl TraceRecorder {
    /// Serializes the events as a Chrome tracing JSON array
    /// (`chrome://tracing` / Perfetto "complete" events, one track per
    /// process), so real Figure-2 traces can be inspected visually.
    pub fn to_chrome_json(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(events.len() * 96 + 2);
        out.push('[');
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Times in microseconds, as the format requires.
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{:.1},\"dur\":{:.1},\"pid\":0,\"tid\":{}}}",
                e.stage.label(),
                e.start * 1e6,
                (e.end - e.start).max(0.0) * 1e6,
                e.process
            ));
        }
        out.push(']');
        out
    }
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_sorts() {
        let t = TraceRecorder::new();
        t.record(0, Stage::Compute, 0.5, 0.9);
        t.record(1, Stage::Gather, 0.1, 0.4);
        let ev = t.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].process, 1);
        assert!(ev[0].start < ev[1].start);
    }

    #[test]
    fn disabled_drops_events() {
        let t = TraceRecorder::disabled();
        t.record(0, Stage::Sync, 0.0, 1.0);
        let out = t.timed(0, Stage::Compute, || 42);
        assert_eq!(out, 42);
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn stage_time_sums_intervals() {
        let t = TraceRecorder::new();
        t.record(0, Stage::Sample, 0.0, 0.25);
        t.record(0, Stage::Sample, 0.5, 0.75);
        t.record(0, Stage::Compute, 0.25, 0.5);
        t.record(1, Stage::Sample, 0.0, 1.0);
        assert!((t.stage_time(0, Stage::Sample) - 0.5).abs() < 1e-12);
        assert!((t.stage_time(0, Stage::Compute) - 0.25).abs() < 1e-12);
        assert!((t.stage_time(1, Stage::Sample) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_detects_interleaving() {
        let t = TraceRecorder::new();
        // Process 0 gathers 0..0.5 while process 1 computes 0..0.5.
        t.record(0, Stage::Gather, 0.0, 0.5);
        t.record(1, Stage::Compute, 0.0, 0.5);
        let f = t.overlap_fraction(1.0);
        assert!(f > 0.45 && f <= 0.55, "overlap {f}");
    }

    #[test]
    fn overlap_zero_for_single_process() {
        let t = TraceRecorder::new();
        t.record(0, Stage::Gather, 0.0, 0.5);
        t.record(0, Stage::Compute, 0.5, 1.0);
        assert_eq!(t.overlap_fraction(1.0), 0.0);
    }

    #[test]
    fn chrome_json_shape() {
        let t = TraceRecorder::new();
        t.record(0, Stage::Gather, 0.001, 0.002);
        t.record(1, Stage::Compute, 0.002, 0.004);
        let json = t.to_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"name\":\"gather\""));
        assert!(json.contains("\"tid\":1"));
        // µs conversion: 0.001s -> 1000µs.
        assert!(json.contains("\"ts\":1000.0"));
        // Empty recorder gives an empty array.
        assert_eq!(TraceRecorder::new().to_chrome_json(), "[]");
    }

    #[test]
    fn overlap_robust_to_events_past_horizon() {
        let t = TraceRecorder::new();
        // Straggler intervals extend past (or sit entirely outside) the
        // horizon; they must be clamped, not panic or inflate the fraction.
        t.record(0, Stage::Gather, 0.0, 5.0);
        t.record(1, Stage::Compute, 0.0, 5.0);
        t.record(0, Stage::Gather, 9.0, 12.0);
        t.record(1, Stage::Compute, -3.0, -1.0);
        let f = t.overlap_fraction(1.0);
        assert!((0.0..=1.0).contains(&f), "overlap {f}");
        assert!(f > 0.99, "fully overlapped inside horizon, got {f}");
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "ends before it starts"))]
    fn record_clamps_inverted_interval() {
        let t = TraceRecorder::new();
        // Debug builds assert on the caller bug; release builds clamp the
        // interval to zero length so stage times stay non-negative.
        t.record(0, Stage::Sync, 1.0, 0.5);
        assert_eq!(t.stage_time(0, Stage::Sync), 0.0);
    }

    #[test]
    fn timed_measures_nonnegative() {
        let t = TraceRecorder::new();
        t.timed(0, Stage::Compute, || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        let ev = t.events();
        assert_eq!(ev.len(), 1);
        assert!(ev[0].end >= ev[0].start);
    }
}
