//! # racecheck — shadow-memory annotations for claimed-disjoint windows
//!
//! The hot paths in this workspace (pool chunking, neighbor sampling, CSC
//! scatter, fused dispatch kernels, the serve result-cache handoff) all use
//! the same `unsafe` pattern: a buffer's base pointer is smuggled across a
//! closure boundary as a `usize` and every worker writes a *claimed-disjoint*
//! window of it. The compiler cannot check that claim; this module lets the
//! happens-before race detector in `parking_lot::race` check it at runtime.
//!
//! A call site registers a [`Region`] sized in *logical cells* (typically one
//! cell per output row, not per byte) next to the `as_mut_ptr() as usize`
//! escape, then records each window access with [`write`] / [`read`]. The
//! detector crosses those accesses with the vector clocks it derives from
//! lock, channel and [`SyncPoint`] edges: two accesses to the same cell that
//! are not ordered by any such edge are reported as a data race with both
//! call sites attached.
//!
//! Everything here compiles unconditionally so annotation sites need no
//! `cfg`; with the `race` feature off, [`Region`] is a ZST and every function
//! is an empty `#[inline]` that the optimizer deletes (asserted by the
//! `micro_sampling` bench in quick mode via [`enabled`]).

#[cfg(feature = "race")]
pub use parking_lot::race::RaceReport;

use crate::metrics::MetricsRegistry;
use crate::telemetry::names;

/// True when the `race` feature is compiled in (annotations are live).
#[must_use]
pub const fn enabled() -> bool {
    cfg!(feature = "race")
}

/// A registered shadow-memory range: one detector cell per logical unit
/// (e.g. output row) of a buffer whose windows are claimed disjoint.
///
/// Dropping the region unregisters its shadow cells, so per-call regions do
/// not accumulate state across a training run. That also scopes the check:
/// races *within* one region's lifetime are caught; reuse of the underlying
/// buffer by a later call is a fresh region and deliberately out of scope.
#[must_use = "a shadow region only checks accesses recorded while it is alive"]
pub struct Region {
    #[cfg(feature = "race")]
    id: parking_lot::race::ObjectId,
}

impl Drop for Region {
    fn drop(&mut self) {
        #[cfg(feature = "race")]
        parking_lot::race::region_unregister(self.id);
    }
}

/// Registers a shadow region of `cells` logical units under `name`.
#[inline]
pub fn region(name: &'static str, cells: usize) -> Region {
    let _ = (name, cells);
    Region {
        #[cfg(feature = "race")]
        id: parking_lot::race::region_register(name, cells),
    }
}

/// Records a write of `len` cells starting at `start`, attributed to the
/// caller's source location.
#[track_caller]
#[inline]
pub fn write(region: &Region, start: usize, len: usize) {
    let _ = (region, start, len);
    #[cfg(feature = "race")]
    parking_lot::race::region_access(
        region.id,
        start,
        len,
        parking_lot::race::AccessKind::Write,
        std::panic::Location::caller(),
    );
}

/// Records a read of `len` cells starting at `start`, attributed to the
/// caller's source location.
#[track_caller]
#[inline]
pub fn read(region: &Region, start: usize, len: usize) {
    let _ = (region, start, len);
    #[cfg(feature = "race")]
    parking_lot::race::region_access(
        region.id,
        start,
        len,
        parking_lot::race::AccessKind::Read,
        std::panic::Location::caller(),
    );
}

/// An explicit fork/join happens-before edge for synchronization built on
/// bare atomics, which the lock-level hooks cannot see.
///
/// The pool's `Completion` counts workers down with `fetch_sub` and only the
/// *last* worker touches a lock, so without this the caller's post-`wait`
/// reads would look unordered with every non-final worker's writes. Each
/// worker calls [`SyncPoint::publish`] when its slice is done; the waiter
/// calls [`SyncPoint::acquire`] after the count hits zero.
pub struct SyncPoint {
    #[cfg(feature = "race")]
    id: parking_lot::race::ObjectId,
}

impl SyncPoint {
    #[must_use]
    pub fn new() -> Self {
        Self {
            #[cfg(feature = "race")]
            id: parking_lot::race::point_register(),
        }
    }

    /// Merges the calling thread's clock into the point (worker side).
    #[inline]
    pub fn publish(&self) {
        #[cfg(feature = "race")]
        parking_lot::race::point_publish(self.id);
    }

    /// Merges the point's accumulated clock into the calling thread
    /// (waiter side).
    #[inline]
    pub fn acquire(&self) {
        #[cfg(feature = "race")]
        parking_lot::race::point_acquire(self.id);
    }
}

impl Default for SyncPoint {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for SyncPoint {
    fn drop(&mut self) {
        #[cfg(feature = "race")]
        parking_lot::race::point_unregister(self.id);
    }
}

/// Number of race reports recorded so far (0 when the feature is off).
#[must_use]
pub fn report_count() -> usize {
    #[cfg(feature = "race")]
    {
        parking_lot::race::report_count()
    }
    #[cfg(not(feature = "race"))]
    {
        0
    }
}

/// Drains the accumulated race reports (feature-gated: without the detector
/// there is nothing to drain).
#[cfg(feature = "race")]
#[must_use]
pub fn take_reports() -> Vec<RaceReport> {
    parking_lot::race::take_reports()
}

/// Clears detector state between independent runs (no-op when off).
///
/// Thread slots and clocks persist — clocks only ever grow, which can hide a
/// cross-run race but never fabricate one — while regions, reports and
/// dedup state are dropped.
pub fn reset() {
    #[cfg(feature = "race")]
    parking_lot::race::reset();
}

/// Publishes runtime-checker verdict counters into `metrics` so a race (or
/// lock-order violation) found during a telemetry-enabled run shows up in
/// `argo report`, not just on stderr.
///
/// Counters are monotonic, so the publish is expressed as a delta against
/// what was already recorded — calling this repeatedly (per epoch, at drain)
/// is idempotent. When neither checker feature is compiled in, no counters
/// are created at all and the report omits the section.
pub fn publish_verdicts(metrics: &MetricsRegistry) {
    let _ = metrics;
    #[cfg(feature = "race")]
    {
        let c = metrics.counter(names::CHECK_RACE_REPORTS_TOTAL);
        let n = parking_lot::race::report_count() as u64;
        c.add(n.saturating_sub(c.get()));
    }
    #[cfg(feature = "sanitize")]
    {
        let c = metrics.counter(names::CHECK_LOCK_VIOLATIONS_TOTAL);
        let n = parking_lot::sanitizer::violation_count() as u64;
        c.add(n.saturating_sub(c.get()));
    }
    #[cfg(not(any(feature = "race", feature = "sanitize")))]
    let _ = names::CHECK_RACE_REPORTS_TOTAL;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_mode_api_is_inert() {
        // Whole-API smoke test: with the feature off these are all no-ops;
        // with it on they must still be self-consistent (a single-threaded
        // write/read sequence is ordered and reports nothing).
        let r = region("test.region", 8);
        write(&r, 0, 4);
        read(&r, 0, 4);
        let p = SyncPoint::new();
        p.publish();
        p.acquire();
        drop(p);
        drop(r);
        assert_eq!(report_count(), 0);
        reset();
    }

    #[test]
    fn publish_verdicts_is_idempotent() {
        let m = MetricsRegistry::new();
        publish_verdicts(&m);
        publish_verdicts(&m);
        let race_counter = m
            .counters()
            .into_iter()
            .find(|(name, _)| name == names::CHECK_RACE_REPORTS_TOTAL);
        if enabled() {
            assert_eq!(
                race_counter,
                Some((names::CHECK_RACE_REPORTS_TOTAL.to_string(), 0))
            );
        } else {
            assert_eq!(race_counter, None);
        }
    }
}
