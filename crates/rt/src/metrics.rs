//! Lock-cheap runtime metrics: counters, gauges and fixed-bucket
//! histograms.
//!
//! ARGO's adaptivity argument rests on *measured* per-stage behaviour
//! (paper Figures 2 and 6, the auto-tuner's epoch-time objective), so the
//! runtime carries a [`MetricsRegistry`] everywhere the trace recorder
//! already goes. Design constraints:
//!
//! * **Hot-path cost is one atomic op.** Handles ([`Counter`], [`Gauge`],
//!   [`Histogram`]) are `Arc`s over atomics; the registry's internal lock is
//!   only taken at registration time, never per observation.
//! * **Per-process registries merge.** The Multi-Process Engine gives each
//!   training process its own view; [`MetricsRegistry::merge`] folds them
//!   into a run-global registry with the same totals (property-tested in
//!   `tests/proptests.rs`).
//! * **Disabled is free.** A registry built with
//!   [`MetricsRegistry::disabled`] drops all observations so un-instrumented
//!   runs stay un-perturbed.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Monotone event counter.
#[derive(Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value (stored as `f64` bits).
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram over non-negative `f64` observations (seconds,
/// bytes, …). Buckets are upper-bound–inclusive like Prometheus's:
/// observation `x` lands in the first bucket with `x <= bound`; anything
/// above the last bound lands in the implicit `+Inf` bucket.
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` bucket counts (last = +Inf overflow bucket).
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations, in f64 bits, updated by CAS.
    sum_bits: AtomicU64,
    /// Maximum observation, in f64 bits, updated by CAS.
    max_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            max_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Default bounds for stage latencies: 20 exponential buckets from
    /// 10 µs to ~5 s.
    pub fn default_time_bounds() -> Vec<f64> {
        (0..20).map(|i| 1e-5 * 2f64.powi(i)).collect()
    }

    /// Records one observation. Negative or NaN observations are clamped
    /// to zero so a skewed clock cannot corrupt the histogram.
    pub fn observe(&self, x: f64) {
        let x = if x.is_finite() && x > 0.0 { x } else { 0.0 };
        let idx = self
            .bounds
            .partition_point(|&b| b < x)
            .min(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&self.sum_bits, |s| s + x);
        atomic_f64_update(&self.max_bits, |m| m.max(x));
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Largest observation (0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    /// Mean observation (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Bucket upper bounds.
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Observations that saturated the histogram: samples above the last
    /// finite bound, i.e. the `+Inf` bucket's count. A non-zero overflow
    /// means the configured bounds are too tight for the workload — the
    /// tail quantiles above the saturation point are untrustworthy, which
    /// is why `argo report` renders this next to the quantiles.
    #[must_use]
    pub fn overflow_count(&self) -> u64 {
        self.buckets[self.bounds.len()].load(Ordering::Relaxed)
    }

    /// Per-bucket counts (`bounds().len() + 1` entries, last = +Inf).
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Quantile estimate from the bucket counts (`q` in `[0, 1]`): the
    /// upper bound of the bucket containing the `q`-th observation, clamped
    /// to the observed maximum so no quantile ever exceeds `max()`. The
    /// overflow bucket reports the observed maximum. Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return if i < self.bounds.len() {
                    self.bounds[i].min(self.max())
                } else {
                    self.max()
                };
            }
        }
        self.max()
    }
}

fn atomic_f64_update(bits: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

#[derive(Default)]
struct Tables {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A named collection of metrics. Cloning a handle (`counter`, `gauge`,
/// `histogram`) is the only operation that takes the internal lock;
/// observations through the returned handles are lock-free.
pub struct MetricsRegistry {
    tables: Mutex<Tables>,
    enabled: bool,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An active registry.
    pub fn new() -> Self {
        Self {
            tables: Mutex::new(Tables::default()),
            enabled: true,
        }
    }

    /// A registry that drops all observations.
    pub fn disabled() -> Self {
        Self {
            tables: Mutex::new(Tables::default()),
            enabled: false,
        }
    }

    /// Whether observations are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The counter registered under `name` (created on first use).
    /// Disabled registries hand out dangling handles that are never stored.
    pub fn counter(&self, name: &str) -> Counter {
        if !self.enabled {
            return Counter::default();
        }
        self.tables
            .lock()
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        if !self.enabled {
            return Gauge::default();
        }
        self.tables
            .lock()
            .gauges
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The histogram registered under `name`, created with `bounds` on
    /// first use (later calls reuse the existing buckets and ignore
    /// `bounds`).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        if !self.enabled {
            return Arc::new(Histogram::new(bounds.to_vec()));
        }
        Arc::clone(
            self.tables
                .lock()
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds.to_vec()))),
        )
    }

    /// Stage-latency histogram with the default exponential time bounds.
    pub fn time_histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram(name, &Histogram::default_time_bounds())
    }

    /// Registered counter names and values, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.tables
            .lock()
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Registered gauge names and values, sorted by name.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        self.tables
            .lock()
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Registered histogram names and handles, sorted by name.
    pub fn histograms(&self) -> Vec<(String, Arc<Histogram>)> {
        self.tables
            .lock()
            .histograms
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// Folds `other`'s observations into `self`: counters add, gauges take
    /// `other`'s value when set, histogram buckets/sums add (bounds must
    /// match for shared names). This is how per-process registries combine
    /// into the run-global view.
    pub fn merge(&self, other: &MetricsRegistry) {
        if !self.enabled || !other.enabled {
            return;
        }
        for (name, value) in other.counters() {
            self.counter(&name).add(value);
        }
        for (name, value) in other.gauges() {
            self.gauge(&name).set(value);
        }
        for (name, h) in other.histograms() {
            let mine = self.histogram(&name, h.bounds());
            assert_eq!(
                mine.bounds(),
                h.bounds(),
                "merge: histogram '{name}' bounds differ"
            );
            for (idx, n) in h.bucket_counts().into_iter().enumerate() {
                mine.buckets[idx].fetch_add(n, Ordering::Relaxed);
            }
            mine.count.fetch_add(h.count(), Ordering::Relaxed);
            atomic_f64_update(&mine.sum_bits, |s| s + h.sum());
            atomic_f64_update(&mine.max_bits, |m| m.max(h.max()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_is_shared() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("iters");
        let b = reg.counter("iters");
        a.inc();
        b.add(4);
        assert_eq!(reg.counter("iters").get(), 5);
        assert_eq!(reg.counters(), vec![("iters".to_string(), 5)]);
    }

    #[test]
    fn gauge_last_write_wins() {
        let reg = MetricsRegistry::new();
        reg.gauge("overlap").set(0.25);
        reg.gauge("overlap").set(0.75);
        assert_eq!(reg.gauge("overlap").get(), 0.75);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[1.0, 2.0, 4.0]);
        // Exactly on a bound -> that bucket; above the last -> overflow.
        for x in [0.5, 1.0, 1.5, 2.0, 4.0, 9.0] {
            h.observe(x);
        }
        assert_eq!(h.bucket_counts(), vec![2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert!((h.sum() - 18.0).abs() < 1e-12);
        assert_eq!(h.max(), 9.0);
    }

    #[test]
    fn histogram_clamps_negative_and_nan() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[1.0]);
        h.observe(-3.0);
        h.observe(f64::NAN);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.bucket_counts(), vec![2, 0]);
    }

    #[test]
    fn histogram_quantiles_from_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[1.0, 2.0, 4.0, 8.0]);
        for _ in 0..50 {
            h.observe(0.5); // bucket <=1
        }
        for _ in 0..45 {
            h.observe(3.0); // bucket <=4
        }
        for _ in 0..5 {
            h.observe(20.0); // overflow
        }
        assert_eq!(h.quantile(0.5), 1.0);
        assert_eq!(h.quantile(0.95), 4.0);
        assert_eq!(h.quantile(1.0), 20.0); // overflow reports the max
        assert_eq!(h.quantile(0.0), 1.0); // first non-empty bucket
    }

    #[test]
    fn overflow_count_tracks_saturation() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[1.0, 2.0]);
        assert_eq!(h.overflow_count(), 0);
        h.observe(0.5);
        h.observe(2.0); // on the last finite bound — not overflow
        assert_eq!(h.overflow_count(), 0);
        h.observe(3.0);
        h.observe(100.0);
        assert_eq!(h.overflow_count(), 2);
        // Merging adds overflow like any other bucket.
        let global = MetricsRegistry::new();
        global.histogram("lat", &[1.0, 2.0]).observe(9.0);
        global.merge(&reg);
        assert_eq!(global.histogram("lat", &[1.0, 2.0]).overflow_count(), 3);
    }

    #[test]
    fn quantile_empty_is_zero() {
        let reg = MetricsRegistry::new();
        let h = reg.time_histogram("lat");
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn disabled_registry_drops_everything() {
        let reg = MetricsRegistry::disabled();
        reg.counter("n").add(7);
        reg.gauge("g").set(1.0);
        reg.histogram("h", &[1.0]).observe(0.5);
        assert!(!reg.is_enabled());
        assert!(reg.counters().is_empty());
        assert!(reg.gauges().is_empty());
        assert!(reg.histograms().is_empty());
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let global = MetricsRegistry::new();
        let p0 = MetricsRegistry::new();
        let p1 = MetricsRegistry::new();
        p0.counter("edges").add(10);
        p1.counter("edges").add(32);
        p0.histogram("t", &[1.0, 2.0]).observe(0.5);
        p1.histogram("t", &[1.0, 2.0]).observe(1.5);
        p1.histogram("t", &[1.0, 2.0]).observe(5.0);
        global.merge(&p0);
        global.merge(&p1);
        assert_eq!(global.counter("edges").get(), 42);
        let h = global.histogram("t", &[1.0, 2.0]);
        assert_eq!(h.bucket_counts(), vec![1, 1, 1]);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 7.0).abs() < 1e-12);
        assert_eq!(h.max(), 5.0);
    }

    #[test]
    fn concurrent_observations_are_complete() {
        let reg = Arc::new(MetricsRegistry::new());
        let h = reg.time_histogram("t");
        let c = reg.counter("n");
        let mut handles = Vec::new();
        for _ in 0..4 {
            let h = Arc::clone(&h);
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    h.observe(i as f64 * 1e-5);
                    c.inc();
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn default_time_bounds_cover_microseconds_to_seconds() {
        let bounds = Histogram::default_time_bounds();
        assert_eq!(bounds.len(), 20);
        assert!(bounds[0] <= 1e-5);
        assert!(*bounds.last().unwrap() > 1.0);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
    }
}
