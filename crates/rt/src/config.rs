//! The ARGO runtime configuration — the three parallelization parameters the
//! auto-tuner searches over (paper Section V).

use std::fmt;

/// A point in ARGO's design space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Config {
    /// Number of GNN training processes to instantiate.
    pub n_proc: usize,
    /// Sampling cores per process.
    pub n_samp: usize,
    /// Training (model-propagation) cores per process.
    pub n_train: usize,
    /// Feature-cache capacity in rows shared across processes; 0 disables
    /// the cache (the paper's original 3-parameter space).
    pub cache_rows: usize,
}

impl Config {
    /// Creates a configuration; all fields must be positive. The feature
    /// cache starts disabled — opt in with [`Config::with_cache_rows`].
    pub fn new(n_proc: usize, n_samp: usize, n_train: usize) -> Self {
        assert!(
            n_proc > 0 && n_samp > 0 && n_train > 0,
            "config fields must be positive"
        );
        Self {
            n_proc,
            n_samp,
            n_train,
            cache_rows: 0,
        }
    }

    /// The same core allocation with a feature-cache capacity attached.
    pub fn with_cache_rows(mut self, cache_rows: usize) -> Self {
        self.cache_rows = cache_rows;
        self
    }

    /// Total cores this configuration occupies.
    pub fn total_cores(&self) -> usize {
        self.n_proc * (self.n_samp + self.n_train)
    }

    /// Whether the configuration fits a machine with `cores` cores.
    pub fn fits(&self, cores: usize) -> bool {
        self.total_cores() <= cores
    }
}

/// Enumerates ARGO's design space on a machine with `cores` cores:
/// `p ∈ {2..8}`, `s ∈ {1..4}`, `t ∈ {1..⌊cores/p⌋ − s}`.
///
/// The paper reports 726 configurations on 112 cores and 408 on 64 without
/// giving the enumeration rule; this rule yields 694 and 362 (within 5–11%,
/// see DESIGN.md) and matches the axes of the paper's Figures 7 and 12.
pub fn enumerate_space(cores: usize) -> Vec<Config> {
    let mut out = Vec::new();
    for p in 2..=8usize {
        let per = cores / p;
        if per < 2 {
            continue;
        }
        for s in 1..=4usize.min(per - 1) {
            for t in 1..=(per - s) {
                out.push(Config::new(p, s, t));
            }
        }
    }
    out
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cache_rows > 0 {
            write!(
                f,
                "(proc={}, samp={}, train={}, cache={})",
                self.n_proc, self.n_samp, self.n_train, self.cache_rows
            )
        } else {
            write!(
                f,
                "(proc={}, samp={}, train={})",
                self.n_proc, self.n_samp, self.n_train
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fit() {
        let c = Config::new(8, 2, 6);
        assert_eq!(c.total_cores(), 64);
        assert!(c.fits(64));
        assert!(!c.fits(63));
    }

    #[test]
    #[should_panic]
    fn zero_field_panics() {
        Config::new(1, 0, 1);
    }

    #[test]
    fn display() {
        assert_eq!(
            Config::new(2, 1, 3).to_string(),
            "(proc=2, samp=1, train=3)"
        );
    }

    #[test]
    fn display_includes_cache_only_when_enabled() {
        assert_eq!(
            Config::new(2, 1, 3).with_cache_rows(4096).to_string(),
            "(proc=2, samp=1, train=3, cache=4096)"
        );
    }

    #[test]
    fn cache_rows_defaults_off_and_does_not_affect_cores() {
        let c = Config::new(4, 2, 2);
        assert_eq!(c.cache_rows, 0);
        assert_eq!(c.total_cores(), c.with_cache_rows(1 << 20).total_cores());
    }
}
