//! Structured run events (JSONL) — the run-level half of the telemetry
//! layer.
//!
//! Every meaningful runtime decision becomes one [`RunEvent`]: epochs
//! starting and ending (with full [`EpochRecord`] statistics), per-stage
//! summaries, auto-tuner trials (candidate configuration, observed epoch
//! time, incumbent best, tuner CPU cost) and configuration switches. The
//! [`RunLogger`] collects them thread-safely and serializes one JSON object
//! per line, so a run's history can be replayed, diffed, or rendered by
//! `argo report` — and since the platform model emits the *same* schema
//! with [`Source::Modeled`], real and modeled runs are directly comparable.

use std::io::Write;

use parking_lot::Mutex;

use crate::config::Config;
use crate::json::Json;

/// Where telemetry came from: a real measured run or the DES/platform
/// model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    Measured,
    Modeled,
}

impl Source {
    pub fn label(&self) -> &'static str {
        match self {
            Source::Measured => "measured",
            Source::Modeled => "modeled",
        }
    }

    fn from_label(s: &str) -> Result<Self, String> {
        match s {
            "measured" => Ok(Source::Measured),
            "modeled" => Ok(Source::Modeled),
            other => Err(format!("unknown source '{other}'")),
        }
    }
}

/// Epoch statistics carried by [`RunEvent::EpochEnd`]. Mirrors the
/// engine's `EpochStats` (the engine depends on this crate, so the
/// telemetry-side record lives here).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochRecord {
    /// Wall-clock epoch time in seconds — the auto-tuner's objective.
    pub epoch_time: f64,
    /// Mean training loss across all iterations and processes.
    pub loss: f64,
    /// Mean training accuracy.
    pub train_accuracy: f64,
    /// Synchronized iterations executed.
    pub iterations: u64,
    /// Mini-batches executed across all processes.
    pub minibatches: u64,
    /// Total sampled edges (workload proxy, paper Figure 6).
    pub edges: u64,
    /// Seconds inside gradient synchronization (rank 0).
    pub sync_time: f64,
}

/// Per-stage aggregate carried by [`RunEvent::StageSummary`].
#[derive(Clone, Debug, PartialEq)]
pub struct StageSummaryRecord {
    /// Stage label (`sample`/`gather`/`compute`/`sync`).
    pub stage: String,
    /// Total seconds spent in the stage (summed over processes).
    pub seconds: f64,
    /// Number of recorded intervals.
    pub count: u64,
}

/// One auto-tuner search step carried by [`RunEvent::TunerTrial`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrialRecord {
    /// Zero-based search-epoch index.
    pub trial: u64,
    /// Candidate configuration the searcher proposed.
    pub config: Config,
    /// Observed objective (epoch time, seconds).
    pub epoch_time: f64,
    /// Incumbent best configuration after observing this trial.
    pub best_config: Config,
    /// Incumbent best objective after observing this trial.
    pub best_epoch_time: f64,
    /// CPU seconds the searcher spent proposing (GP fit + acquisition).
    pub suggest_seconds: f64,
    /// CPU seconds the searcher spent absorbing the observation.
    pub observe_seconds: f64,
}

/// Per-epoch feature-cache counters carried by [`RunEvent::CacheSummary`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheSummaryRecord {
    /// Lookups served from the cache this epoch.
    pub hits: u64,
    /// Lookups that fell through to the backing feature store this epoch.
    pub misses: u64,
    /// Rows displaced by eviction this epoch.
    pub evictions: u64,
    /// Rows resident at epoch end.
    pub resident_rows: u64,
    /// Configured capacity in rows.
    pub capacity_rows: u64,
    /// Bytes of feature data resident at epoch end.
    pub bytes: u64,
}

impl CacheSummaryRecord {
    /// Fraction of this epoch's lookups served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let n = self.hits + self.misses;
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }
}

/// Per-epoch byte/alloc accounting carried by [`RunEvent::BytesSummary`] —
/// the "metadata tax" view: how many bytes of batch metadata the host
/// pipeline shuffled per batch, how many feature bytes the cache served,
/// and how often the sampler scratch arena had to grow. Metadata bytes are
/// measured on the arena-resident batch CSR (node ids, degrees, `u32` row
/// pointers, column indices, fused normalization values), not estimated
/// from separate node-id/edge-index arrays.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BytesRecord {
    /// Mini-batches the epoch processed (denominator for per-batch rates).
    pub batches: u64,
    /// Bytes of batch metadata (compact arena-CSR layout) produced.
    pub metadata_bytes: u64,
    /// Bytes of feature rows served out of the cross-batch cache.
    pub cache_bytes: u64,
    /// Scratch-arena allocations observed (steady state should be 0).
    pub scratch_allocs: u64,
}

impl BytesRecord {
    /// Average metadata bytes per mini-batch (0 when no batches ran).
    pub fn metadata_bytes_per_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.metadata_bytes as f64 / self.batches as f64
        }
    }
}

/// Per-request serving record carried by [`RunEvent::ServeRequest`]: one
/// line per answered query so tail latency can be recomputed offline from
/// the JSONL alone.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeRequestRecord {
    /// Session-unique request id (admission order).
    pub request: u64,
    /// Micro-batch id the request executed in.
    pub batch: u64,
    /// Number of seed nodes in the query.
    pub seeds: u64,
    /// Seconds spent queued between admission and micro-batch flush.
    pub queue_seconds: f64,
    /// End-to-end seconds from admission to response.
    pub latency_seconds: f64,
    /// Whether the response came from the layered result cache.
    pub cache_hit: bool,
}

/// Per-micro-batch serving record carried by [`RunEvent::ServeBatch`].
#[derive(Clone, Debug, PartialEq)]
pub struct ServeBatchRecord {
    /// Session-unique micro-batch id.
    pub batch: u64,
    /// Requests flushed together in this micro-batch.
    pub requests: u64,
    /// Why the batcher flushed: `"full"` (hit `max_batch`) or
    /// `"deadline"` (oldest admit aged past `deadline_us`).
    pub flush: String,
    /// Seconds spent executing the batch (sample + gather + forward).
    pub exec_seconds: f64,
}

/// A structured event in a training run.
#[derive(Clone, Debug, PartialEq)]
pub enum RunEvent {
    /// An epoch began under `config`.
    EpochStart { epoch: u64, config: Config },
    /// An epoch finished; `record` holds its statistics.
    EpochEnd {
        epoch: u64,
        config: Config,
        record: EpochRecord,
    },
    /// Aggregate time of one pipeline stage over an epoch.
    StageSummary {
        epoch: u64,
        summary: StageSummaryRecord,
    },
    /// Feature-cache counters for one epoch (emitted only when the cache
    /// is enabled).
    CacheSummary {
        epoch: u64,
        summary: CacheSummaryRecord,
    },
    /// One online-learning search step of the auto-tuner.
    TunerTrial(TrialRecord),
    /// The runtime switched to `config` (`reason` = `search` while
    /// learning online, `reuse` once the optimum is locked in).
    ConfigApplied { config: Config, reason: String },
    /// Per-epoch critical-path attribution from the span profiler: for each
    /// stage (or channel/heap wait) the fraction of epoch wall time it was
    /// the binding constraint; fractions sum to ~1.0. `spans`/`dropped`
    /// record profiler coverage.
    CriticalPath {
        epoch: u64,
        fractions: Vec<(String, f64)>,
        spans: u64,
        dropped: u64,
    },
    /// Per-epoch byte/alloc accounting (the metadata tax).
    BytesSummary { epoch: u64, record: BytesRecord },
    /// Audit of one tuner decision: the stage `PerfModel` predicted to be
    /// the bottleneck under `config` vs. the stage the measured critical
    /// path actually crowned.
    BottleneckCheck {
        epoch: u64,
        config: Config,
        predicted: String,
        measured: String,
    },
    /// One serving request completed (online inference path).
    ServeRequest { record: ServeRequestRecord },
    /// One serving micro-batch flushed and executed.
    ServeBatch { record: ServeBatchRecord },
}

fn config_json(c: Config) -> Json {
    let mut fields = vec![
        ("n_proc", Json::Num(c.n_proc as f64)),
        ("n_samp", Json::Num(c.n_samp as f64)),
        ("n_train", Json::Num(c.n_train as f64)),
    ];
    // Omitted when 0 so PR-1 readers keep parsing cache-less runs.
    if c.cache_rows > 0 {
        fields.push(("cache_rows", Json::Num(c.cache_rows as f64)));
    }
    Json::obj(fields)
}

fn config_from_json(v: &Json) -> Result<Config, String> {
    let field = |k: &str| {
        v.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("config missing '{k}'"))
    };
    let cache_rows = v.get("cache_rows").and_then(Json::as_u64).unwrap_or(0);
    Ok(Config::new(
        field("n_proc")? as usize,
        field("n_samp")? as usize,
        field("n_train")? as usize,
    )
    .with_cache_rows(cache_rows as usize))
}

impl RunEvent {
    /// Event-type tag (`"epoch_end"`, `"tuner_trial"`, …).
    pub fn kind(&self) -> &'static str {
        match self {
            RunEvent::EpochStart { .. } => "epoch_start",
            RunEvent::EpochEnd { .. } => "epoch_end",
            RunEvent::StageSummary { .. } => "stage_summary",
            RunEvent::CacheSummary { .. } => "cache_summary",
            RunEvent::TunerTrial(_) => "tuner_trial",
            RunEvent::ConfigApplied { .. } => "config_applied",
            RunEvent::CriticalPath { .. } => "critical_path",
            RunEvent::BytesSummary { .. } => "bytes_summary",
            RunEvent::BottleneckCheck { .. } => "bottleneck_check",
            RunEvent::ServeRequest { .. } => "serve_request",
            RunEvent::ServeBatch { .. } => "serve_batch",
        }
    }

    /// Encodes the event as one JSON object with envelope fields `event`,
    /// `ts` (seconds since the logger's origin) and `source`.
    pub fn to_json(&self, ts: f64, source: Source) -> Json {
        let mut fields = vec![
            ("event", Json::str(self.kind())),
            ("ts", Json::Num(ts)),
            ("source", Json::str(source.label())),
        ];
        match self {
            RunEvent::EpochStart { epoch, config } => {
                fields.push(("epoch", Json::Num(*epoch as f64)));
                fields.push(("config", config_json(*config)));
            }
            RunEvent::EpochEnd {
                epoch,
                config,
                record,
            } => {
                fields.push(("epoch", Json::Num(*epoch as f64)));
                fields.push(("config", config_json(*config)));
                fields.push((
                    "stats",
                    Json::obj(vec![
                        ("epoch_time", Json::Num(record.epoch_time)),
                        ("loss", Json::Num(record.loss)),
                        ("train_accuracy", Json::Num(record.train_accuracy)),
                        ("iterations", Json::Num(record.iterations as f64)),
                        ("minibatches", Json::Num(record.minibatches as f64)),
                        ("edges", Json::Num(record.edges as f64)),
                        ("sync_time", Json::Num(record.sync_time)),
                    ]),
                ));
            }
            RunEvent::StageSummary { epoch, summary } => {
                fields.push(("epoch", Json::Num(*epoch as f64)));
                fields.push(("stage", Json::str(&summary.stage)));
                fields.push(("seconds", Json::Num(summary.seconds)));
                fields.push(("count", Json::Num(summary.count as f64)));
            }
            RunEvent::CacheSummary { epoch, summary } => {
                fields.push(("epoch", Json::Num(*epoch as f64)));
                fields.push(("hits", Json::Num(summary.hits as f64)));
                fields.push(("misses", Json::Num(summary.misses as f64)));
                fields.push(("evictions", Json::Num(summary.evictions as f64)));
                fields.push(("resident_rows", Json::Num(summary.resident_rows as f64)));
                fields.push(("capacity_rows", Json::Num(summary.capacity_rows as f64)));
                fields.push(("bytes", Json::Num(summary.bytes as f64)));
            }
            RunEvent::TunerTrial(t) => {
                fields.push(("trial", Json::Num(t.trial as f64)));
                fields.push(("config", config_json(t.config)));
                fields.push(("epoch_time", Json::Num(t.epoch_time)));
                fields.push(("best_config", config_json(t.best_config)));
                fields.push(("best_epoch_time", Json::Num(t.best_epoch_time)));
                fields.push(("suggest_seconds", Json::Num(t.suggest_seconds)));
                fields.push(("observe_seconds", Json::Num(t.observe_seconds)));
            }
            RunEvent::ConfigApplied { config, reason } => {
                fields.push(("config", config_json(*config)));
                fields.push(("reason", Json::str(reason)));
            }
            RunEvent::CriticalPath {
                epoch,
                fractions,
                spans,
                dropped,
            } => {
                fields.push(("epoch", Json::Num(*epoch as f64)));
                fields.push((
                    "fractions",
                    Json::Arr(
                        fractions
                            .iter()
                            .map(|(stage, f)| {
                                Json::obj(vec![
                                    ("stage", Json::str(stage)),
                                    ("fraction", Json::Num(*f)),
                                ])
                            })
                            .collect(),
                    ),
                ));
                fields.push(("spans", Json::Num(*spans as f64)));
                fields.push(("dropped", Json::Num(*dropped as f64)));
            }
            RunEvent::BytesSummary { epoch, record } => {
                fields.push(("epoch", Json::Num(*epoch as f64)));
                fields.push(("batches", Json::Num(record.batches as f64)));
                fields.push(("metadata_bytes", Json::Num(record.metadata_bytes as f64)));
                fields.push(("cache_bytes", Json::Num(record.cache_bytes as f64)));
                fields.push(("scratch_allocs", Json::Num(record.scratch_allocs as f64)));
            }
            RunEvent::BottleneckCheck {
                epoch,
                config,
                predicted,
                measured,
            } => {
                fields.push(("epoch", Json::Num(*epoch as f64)));
                fields.push(("config", config_json(*config)));
                fields.push(("predicted", Json::str(predicted)));
                fields.push(("measured", Json::str(measured)));
            }
            RunEvent::ServeRequest { record } => {
                fields.push(("request", Json::Num(record.request as f64)));
                fields.push(("batch", Json::Num(record.batch as f64)));
                fields.push(("seeds", Json::Num(record.seeds as f64)));
                fields.push(("queue_seconds", Json::Num(record.queue_seconds)));
                fields.push(("latency_seconds", Json::Num(record.latency_seconds)));
                fields.push(("cache_hit", Json::Bool(record.cache_hit)));
            }
            RunEvent::ServeBatch { record } => {
                fields.push(("batch", Json::Num(record.batch as f64)));
                fields.push(("requests", Json::Num(record.requests as f64)));
                fields.push(("flush", Json::str(&record.flush)));
                fields.push(("exec_seconds", Json::Num(record.exec_seconds)));
            }
        }
        Json::obj(fields)
    }

    /// Decodes an event from its JSON object form; returns the event with
    /// its envelope `(ts, source)`.
    pub fn from_json(v: &Json) -> Result<(RunEvent, f64, Source), String> {
        let kind = v
            .get("event")
            .and_then(Json::as_str)
            .ok_or("missing 'event'")?;
        let ts = v.get("ts").and_then(Json::as_f64).ok_or("missing 'ts'")?;
        let source = Source::from_label(
            v.get("source")
                .and_then(Json::as_str)
                .ok_or("missing 'source'")?,
        )?;
        let epoch = || {
            v.get("epoch")
                .and_then(Json::as_u64)
                .ok_or("missing 'epoch'")
        };
        let num = |obj: &Json, k: &str| {
            obj.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing '{k}'"))
        };
        let event = match kind {
            "epoch_start" => RunEvent::EpochStart {
                epoch: epoch()?,
                config: config_from_json(v.get("config").ok_or("missing 'config'")?)?,
            },
            "epoch_end" => {
                let stats = v.get("stats").ok_or("missing 'stats'")?;
                RunEvent::EpochEnd {
                    epoch: epoch()?,
                    config: config_from_json(v.get("config").ok_or("missing 'config'")?)?,
                    record: EpochRecord {
                        epoch_time: num(stats, "epoch_time")?,
                        loss: num(stats, "loss")?,
                        train_accuracy: num(stats, "train_accuracy")?,
                        iterations: num(stats, "iterations")? as u64,
                        minibatches: num(stats, "minibatches")? as u64,
                        edges: num(stats, "edges")? as u64,
                        sync_time: num(stats, "sync_time")?,
                    },
                }
            }
            "stage_summary" => RunEvent::StageSummary {
                epoch: epoch()?,
                summary: StageSummaryRecord {
                    stage: v
                        .get("stage")
                        .and_then(Json::as_str)
                        .ok_or("missing 'stage'")?
                        .to_string(),
                    seconds: num(v, "seconds")?,
                    count: num(v, "count")? as u64,
                },
            },
            "cache_summary" => RunEvent::CacheSummary {
                epoch: epoch()?,
                summary: CacheSummaryRecord {
                    hits: num(v, "hits")? as u64,
                    misses: num(v, "misses")? as u64,
                    evictions: num(v, "evictions")? as u64,
                    resident_rows: num(v, "resident_rows")? as u64,
                    capacity_rows: num(v, "capacity_rows")? as u64,
                    bytes: num(v, "bytes")? as u64,
                },
            },
            "tuner_trial" => RunEvent::TunerTrial(TrialRecord {
                trial: v
                    .get("trial")
                    .and_then(Json::as_u64)
                    .ok_or("missing 'trial'")?,
                config: config_from_json(v.get("config").ok_or("missing 'config'")?)?,
                epoch_time: num(v, "epoch_time")?,
                best_config: config_from_json(
                    v.get("best_config").ok_or("missing 'best_config'")?,
                )?,
                best_epoch_time: num(v, "best_epoch_time")?,
                suggest_seconds: num(v, "suggest_seconds")?,
                observe_seconds: num(v, "observe_seconds")?,
            }),
            "config_applied" => RunEvent::ConfigApplied {
                config: config_from_json(v.get("config").ok_or("missing 'config'")?)?,
                reason: v
                    .get("reason")
                    .and_then(Json::as_str)
                    .ok_or("missing 'reason'")?
                    .to_string(),
            },
            "critical_path" => {
                let arr = v
                    .get("fractions")
                    .and_then(Json::as_arr)
                    .ok_or("missing 'fractions'")?;
                let mut fractions = Vec::with_capacity(arr.len());
                for f in arr {
                    let stage = f
                        .get("stage")
                        .and_then(Json::as_str)
                        .ok_or("missing 'stage'")?
                        .to_string();
                    fractions.push((stage, num(f, "fraction")?));
                }
                RunEvent::CriticalPath {
                    epoch: epoch()?,
                    fractions,
                    spans: num(v, "spans")? as u64,
                    dropped: num(v, "dropped")? as u64,
                }
            }
            "bytes_summary" => RunEvent::BytesSummary {
                epoch: epoch()?,
                record: BytesRecord {
                    batches: num(v, "batches")? as u64,
                    metadata_bytes: num(v, "metadata_bytes")? as u64,
                    cache_bytes: num(v, "cache_bytes")? as u64,
                    scratch_allocs: num(v, "scratch_allocs")? as u64,
                },
            },
            "bottleneck_check" => RunEvent::BottleneckCheck {
                epoch: epoch()?,
                config: config_from_json(v.get("config").ok_or("missing 'config'")?)?,
                predicted: v
                    .get("predicted")
                    .and_then(Json::as_str)
                    .ok_or("missing 'predicted'")?
                    .to_string(),
                measured: v
                    .get("measured")
                    .and_then(Json::as_str)
                    .ok_or("missing 'measured'")?
                    .to_string(),
            },
            "serve_request" => RunEvent::ServeRequest {
                record: ServeRequestRecord {
                    request: num(v, "request")? as u64,
                    batch: num(v, "batch")? as u64,
                    seeds: num(v, "seeds")? as u64,
                    queue_seconds: num(v, "queue_seconds")?,
                    latency_seconds: num(v, "latency_seconds")?,
                    cache_hit: match v.get("cache_hit") {
                        Some(Json::Bool(b)) => *b,
                        _ => return Err("missing 'cache_hit'".to_string()),
                    },
                },
            },
            "serve_batch" => RunEvent::ServeBatch {
                record: ServeBatchRecord {
                    batch: num(v, "batch")? as u64,
                    requests: num(v, "requests")? as u64,
                    flush: v
                        .get("flush")
                        .and_then(Json::as_str)
                        .ok_or("missing 'flush'")?
                        .to_string(),
                    exec_seconds: num(v, "exec_seconds")?,
                },
            },
            other => return Err(format!("unknown event kind '{other}'")),
        };
        Ok((event, ts, source))
    }
}

/// Thread-safe collector of [`RunEvent`]s with JSONL export.
pub struct RunLogger {
    origin: std::time::Instant,
    source: Source,
    events: Mutex<Vec<(f64, RunEvent)>>,
    enabled: bool,
}

impl RunLogger {
    /// An active logger for measured runs.
    pub fn new() -> Self {
        Self::with_source(Source::Measured)
    }

    /// An active logger tagging every event with `source`.
    pub fn with_source(source: Source) -> Self {
        Self {
            origin: std::time::Instant::now(),
            source,
            events: Mutex::new(Vec::new()),
            enabled: true,
        }
    }

    /// A logger that drops all events (zero overhead in hot loops).
    pub fn disabled() -> Self {
        Self {
            origin: std::time::Instant::now(),
            source: Source::Measured,
            events: Mutex::new(Vec::new()),
            enabled: false,
        }
    }

    /// Whether events are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The source tag applied to emitted events.
    pub fn source(&self) -> Source {
        self.source
    }

    /// Records one event, stamped with seconds since logger creation.
    pub fn log(&self, event: RunEvent) {
        if !self.enabled {
            return;
        }
        let ts = self.origin.elapsed().as_secs_f64();
        self.events.lock().push((ts, event));
    }

    /// Snapshot of `(ts, event)` pairs in emission order.
    pub fn events(&self) -> Vec<(f64, RunEvent)> {
        self.events.lock().clone()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Serializes all events as JSONL (one JSON object per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (ts, event) in self.events.lock().iter() {
            out.push_str(&event.to_json(*ts, self.source).encode());
            out.push('\n');
        }
        out
    }

    /// Writes [`RunLogger::to_jsonl`] to `w`.
    pub fn write_jsonl(&self, w: &mut impl Write) -> std::io::Result<()> {
        w.write_all(self.to_jsonl().as_bytes())
    }

    /// Parses a JSONL document back into `(event, ts, source)` triples.
    /// Blank lines are skipped; any malformed line is an error.
    pub fn parse_jsonl(text: &str) -> Result<Vec<(RunEvent, f64, Source)>, String> {
        let mut out = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            out.push(RunEvent::from_json(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
        }
        Ok(out)
    }
}

impl Default for RunLogger {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<RunEvent> {
        let c = Config::new(2, 1, 2);
        vec![
            RunEvent::ConfigApplied {
                config: c,
                reason: "search".to_string(),
            },
            RunEvent::EpochStart {
                epoch: 0,
                config: c,
            },
            RunEvent::StageSummary {
                epoch: 0,
                summary: StageSummaryRecord {
                    stage: "gather".to_string(),
                    seconds: 0.125,
                    count: 17,
                },
            },
            RunEvent::EpochEnd {
                epoch: 0,
                config: c,
                record: EpochRecord {
                    epoch_time: 1.5,
                    loss: 0.693,
                    train_accuracy: 0.51,
                    iterations: 12,
                    minibatches: 24,
                    edges: 4096,
                    sync_time: 0.25,
                },
            },
            RunEvent::TunerTrial(TrialRecord {
                trial: 0,
                config: c,
                epoch_time: 1.5,
                best_config: c,
                best_epoch_time: 1.5,
                suggest_seconds: 1e-4,
                observe_seconds: 2e-4,
            }),
        ]
    }

    #[test]
    fn jsonl_roundtrip_preserves_every_event() {
        let logger = RunLogger::new();
        for e in sample_events() {
            logger.log(e);
        }
        let text = logger.to_jsonl();
        assert_eq!(text.lines().count(), 5);
        let parsed = RunLogger::parse_jsonl(&text).unwrap();
        assert_eq!(parsed.len(), 5);
        for ((event, ts, source), want) in parsed.iter().zip(sample_events()) {
            assert_eq!(event, &want);
            assert!(*ts >= 0.0);
            assert_eq!(*source, Source::Measured);
        }
    }

    #[test]
    fn modeled_source_survives_roundtrip() {
        let logger = RunLogger::with_source(Source::Modeled);
        logger.log(RunEvent::EpochStart {
            epoch: 3,
            config: Config::new(4, 2, 2),
        });
        let parsed = RunLogger::parse_jsonl(&logger.to_jsonl()).unwrap();
        assert_eq!(parsed[0].2, Source::Modeled);
    }

    #[test]
    fn disabled_logger_drops_events() {
        let logger = RunLogger::disabled();
        logger.log(RunEvent::EpochStart {
            epoch: 0,
            config: Config::new(2, 1, 1),
        });
        assert!(logger.is_empty());
        assert_eq!(logger.to_jsonl(), "");
        assert!(!logger.is_enabled());
    }

    #[test]
    fn timestamps_are_monotone() {
        let logger = RunLogger::new();
        for e in sample_events() {
            logger.log(e);
        }
        let ts: Vec<f64> = logger.events().iter().map(|(t, _)| *t).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(RunLogger::parse_jsonl("{\"event\":\"epoch_start\"}").is_err());
        assert!(RunLogger::parse_jsonl("not json").is_err());
        // Blank lines are fine.
        assert_eq!(RunLogger::parse_jsonl("\n\n").unwrap().len(), 0);
    }

    #[test]
    fn cache_summary_roundtrip() {
        let logger = RunLogger::new();
        logger.log(RunEvent::CacheSummary {
            epoch: 4,
            summary: CacheSummaryRecord {
                hits: 900,
                misses: 100,
                evictions: 7,
                resident_rows: 512,
                capacity_rows: 512,
                bytes: 512 * 64 * 4,
            },
        });
        let parsed = RunLogger::parse_jsonl(&logger.to_jsonl()).unwrap();
        assert_eq!(parsed.len(), 1);
        let (event, _, _) = &parsed[0];
        assert_eq!(event.kind(), "cache_summary");
        match event {
            RunEvent::CacheSummary { epoch, summary } => {
                assert_eq!(*epoch, 4);
                assert_eq!(summary.hits, 900);
                assert!((summary.hit_rate() - 0.9).abs() < 1e-12);
            }
            other => panic!("wrong event: {other:?}"),
        }
    }

    #[test]
    fn config_cache_rows_survives_roundtrip_and_stays_optional() {
        let logger = RunLogger::new();
        logger.log(RunEvent::EpochStart {
            epoch: 0,
            config: Config::new(2, 1, 2).with_cache_rows(1024),
        });
        logger.log(RunEvent::EpochStart {
            epoch: 1,
            config: Config::new(2, 1, 2),
        });
        let text = logger.to_jsonl();
        let mut lines = text.lines();
        assert!(lines.next().unwrap().contains("cache_rows"));
        // Cache-less configs keep the PR-1 wire format exactly.
        assert!(!lines.next().unwrap().contains("cache_rows"));
        let parsed = RunLogger::parse_jsonl(&text).unwrap();
        match &parsed[0].0 {
            RunEvent::EpochStart { config, .. } => assert_eq!(config.cache_rows, 1024),
            other => panic!("wrong event: {other:?}"),
        }
        match &parsed[1].0 {
            RunEvent::EpochStart { config, .. } => assert_eq!(config.cache_rows, 0),
            other => panic!("wrong event: {other:?}"),
        }
    }

    #[test]
    fn critical_path_and_bytes_summary_roundtrip() {
        let logger = RunLogger::new();
        logger.log(RunEvent::CriticalPath {
            epoch: 2,
            fractions: vec![
                ("compute".to_string(), 0.625),
                ("sample".to_string(), 0.25),
                ("heap_wait".to_string(), 0.125),
            ],
            spans: 321,
            dropped: 0,
        });
        logger.log(RunEvent::BytesSummary {
            epoch: 2,
            record: BytesRecord {
                batches: 16,
                metadata_bytes: 65536,
                cache_bytes: 4096,
                scratch_allocs: 3,
            },
        });
        logger.log(RunEvent::BottleneckCheck {
            epoch: 2,
            config: Config::new(4, 2, 2),
            predicted: "gather".to_string(),
            measured: "compute".to_string(),
        });
        let parsed = RunLogger::parse_jsonl(&logger.to_jsonl()).unwrap();
        assert_eq!(parsed.len(), 3);
        match &parsed[0].0 {
            RunEvent::CriticalPath {
                epoch,
                fractions,
                spans,
                dropped,
            } => {
                assert_eq!(*epoch, 2);
                assert_eq!(fractions.len(), 3);
                assert_eq!(fractions[0], ("compute".to_string(), 0.625));
                assert_eq!(*spans, 321);
                assert_eq!(*dropped, 0);
            }
            other => panic!("wrong event: {other:?}"),
        }
        match &parsed[1].0 {
            RunEvent::BytesSummary { record, .. } => {
                assert_eq!(record.batches, 16);
                assert_eq!(record.metadata_bytes, 65536);
                assert!((record.metadata_bytes_per_batch() - 4096.0).abs() < 1e-12);
            }
            other => panic!("wrong event: {other:?}"),
        }
        match &parsed[2].0 {
            RunEvent::BottleneckCheck {
                config,
                predicted,
                measured,
                ..
            } => {
                assert_eq!(*config, Config::new(4, 2, 2));
                assert_eq!(predicted, "gather");
                assert_eq!(measured, "compute");
            }
            other => panic!("wrong event: {other:?}"),
        }
        assert_eq!(parsed[0].0.kind(), "critical_path");
        assert_eq!(parsed[1].0.kind(), "bytes_summary");
        assert_eq!(parsed[2].0.kind(), "bottleneck_check");
    }

    #[test]
    fn serve_events_roundtrip() {
        let logger = RunLogger::new();
        logger.log(RunEvent::ServeBatch {
            record: ServeBatchRecord {
                batch: 7,
                requests: 3,
                flush: "deadline".to_string(),
                exec_seconds: 0.004,
            },
        });
        logger.log(RunEvent::ServeRequest {
            record: ServeRequestRecord {
                request: 21,
                batch: 7,
                seeds: 4,
                queue_seconds: 0.001,
                latency_seconds: 0.005,
                cache_hit: true,
            },
        });
        let parsed = RunLogger::parse_jsonl(&logger.to_jsonl()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0.kind(), "serve_batch");
        assert_eq!(parsed[1].0.kind(), "serve_request");
        match &parsed[0].0 {
            RunEvent::ServeBatch { record } => {
                assert_eq!(record.batch, 7);
                assert_eq!(record.requests, 3);
                assert_eq!(record.flush, "deadline");
                assert!((record.exec_seconds - 0.004).abs() < 1e-12);
            }
            other => panic!("wrong event: {other:?}"),
        }
        match &parsed[1].0 {
            RunEvent::ServeRequest { record } => {
                assert_eq!(record.request, 21);
                assert_eq!(record.batch, 7);
                assert_eq!(record.seeds, 4);
                assert!(record.cache_hit);
                assert!((record.latency_seconds - 0.005).abs() < 1e-12);
            }
            other => panic!("wrong event: {other:?}"),
        }
        // A request served uncached keeps `cache_hit: false` on the wire.
        let miss = RunEvent::ServeRequest {
            record: ServeRequestRecord {
                request: 22,
                batch: 8,
                seeds: 1,
                queue_seconds: 0.0,
                latency_seconds: 0.002,
                cache_hit: false,
            },
        };
        let line = miss.to_json(0.5, Source::Measured).encode();
        assert!(line.contains("\"cache_hit\":false"));
        let (back, _, _) = RunEvent::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, miss);
    }

    #[test]
    fn event_kinds_are_stable() {
        let kinds: Vec<&str> = sample_events().iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                "config_applied",
                "epoch_start",
                "stage_summary",
                "epoch_end",
                "tuner_trial"
            ]
        );
    }
}
