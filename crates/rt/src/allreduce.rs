//! Synchronous all-reduce across emulated processes.
//!
//! The Multi-Process Engine performs a synchronous SGD step: after every
//! iteration each process contributes its local gradient, the gradients are
//! averaged, and every process observes the same averaged result (paper
//! Section IV-B2, mirroring PyTorch DDP). [`AllReduce`] implements this with
//! a shared accumulation buffer and a two-phase barrier.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

use parking_lot::Mutex;

/// Reusable average-all-reduce for a fixed group of `n` participants.
///
/// Every participant calls [`AllReduce::reduce_mean`] with its local buffer;
/// the call returns once the buffer has been overwritten with the element-wise
/// mean over all participants. The structure is reusable across rounds.
pub struct AllReduce {
    n: usize,
    accum: Mutex<Vec<f32>>,
    arrived: AtomicUsize,
    enter: Barrier,
    exit: Barrier,
}

impl AllReduce {
    /// An all-reduce group of `n` participants exchanging buffers of length
    /// `dim`.
    pub fn new(n: usize, dim: usize) -> Self {
        assert!(n > 0);
        Self {
            n,
            accum: Mutex::new(vec![0.0; dim]),
            arrived: AtomicUsize::new(0),
            enter: Barrier::new(n),
            exit: Barrier::new(n),
        }
    }

    /// Number of participants.
    pub fn world_size(&self) -> usize {
        self.n
    }

    /// Element-wise mean across all participants' `buf`s; `buf` is
    /// overwritten with the result. All `n` participants must call this the
    /// same number of times with equal-length buffers.
    pub fn reduce_mean(&self, buf: &mut [f32]) {
        if self.n == 1 {
            return; // mean of a single buffer is itself
        }
        // Phase 1: everyone adds its contribution.
        {
            let mut acc = self.accum.lock();
            assert_eq!(acc.len(), buf.len(), "all-reduce buffer length mismatch");
            for (a, b) in acc.iter_mut().zip(buf.iter()) {
                *a += *b;
            }
            self.arrived.fetch_add(1, Ordering::AcqRel);
        }
        self.enter.wait();
        // Phase 2: everyone reads the mean; last one out resets the buffer.
        {
            let acc = self.accum.lock();
            let inv = 1.0 / self.n as f32;
            for (b, a) in buf.iter_mut().zip(acc.iter()) {
                *b = *a * inv;
            }
        }
        let before = self.arrived.fetch_sub(1, Ordering::AcqRel);
        if before == 1 {
            let mut acc = self.accum.lock();
            for a in acc.iter_mut() {
                *a = 0.0;
            }
        }
        self.exit.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_participant_is_identity() {
        let ar = AllReduce::new(1, 3);
        let mut v = vec![1.0, 2.0, 3.0];
        ar.reduce_mean(&mut v);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn mean_across_four_participants() {
        let n = 4;
        let ar = Arc::new(AllReduce::new(n, 8));
        let mut handles = Vec::new();
        for rank in 0..n {
            let ar = Arc::clone(&ar);
            handles.push(std::thread::spawn(move || {
                let mut buf = vec![rank as f32; 8];
                ar.reduce_mean(&mut buf);
                buf
            }));
        }
        let expected = (0..n).map(|r| r as f32).sum::<f32>() / n as f32;
        for h in handles {
            let buf = h.join().unwrap();
            assert!(buf.iter().all(|&x| (x - expected).abs() < 1e-6));
        }
    }

    #[test]
    fn reusable_across_rounds() {
        let n = 3;
        let rounds = 10;
        let ar = Arc::new(AllReduce::new(n, 4));
        let mut handles = Vec::new();
        for rank in 0..n {
            let ar = Arc::clone(&ar);
            handles.push(std::thread::spawn(move || {
                let mut out = Vec::new();
                for round in 0..rounds {
                    let mut buf = vec![(rank * rounds + round) as f32; 4];
                    ar.reduce_mean(&mut buf);
                    out.push(buf[0]);
                }
                out
            }));
        }
        let results: Vec<Vec<f32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for round in 0..rounds {
            let expected = (0..n).map(|r| (r * rounds + round) as f32).sum::<f32>() / n as f32;
            for r in &results {
                assert!((r[round] - expected).abs() < 1e-5, "round {round}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let ar = AllReduce::new(2, 4);
        // Run both participants so we do not deadlock before the panic.
        let ar = Arc::new(ar);
        let a2 = Arc::clone(&ar);
        let h = std::thread::spawn(move || {
            let mut ok = vec![0.0; 4];
            a2.reduce_mean(&mut ok);
        });
        let mut bad = vec![0.0; 3];
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ar.reduce_mean(&mut bad);
        }));
        drop(h); // participant thread will hang; leak it (test process exits)
        if res.is_err() {
            panic!("mismatch detected");
        }
    }
}
